#include "suite.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <iostream>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "util/timer.hpp"

namespace trico::bench {

namespace {

EdgeList cached(const std::string& cache_dir, const std::string& name,
                const std::function<EdgeList()>& generate) {
  if (cache_dir.empty()) return generate();
  std::filesystem::create_directories(cache_dir);
  const std::string path = cache_dir + "/" + name + ".trico";
  if (std::filesystem::exists(path)) {
    return io::read_binary_file(path);
  }
  EdgeList edges = generate();
  io::write_binary_file(path, edges);
  return edges;
}

}  // namespace

std::vector<EvalGraph> evaluation_suite(const std::string& cache_dir) {
  std::vector<EvalGraph> suite;

  auto add = [&](EvalGraph row, const std::function<EdgeList()>& generate) {
    row.edges = cached(cache_dir, row.name, generate);
    suite.push_back(std::move(row));
  };

  // ---- Real-world stand-ins (SNAP / DIMACS graphs are not available
  //      offline; generators chosen to match degree skew and the
  //      triangles-per-slot ratio of each original). ----

  {
    EvalGraph row;
    row.name = "internet-topology";
    row.paper_slots = 22e6;
    row.paper_triangles = 29'000'000;
    row.paper_cpu_ms = 3459;
    row.paper_c2050_ms = 277;
    row.paper_4xc2050_ms = 306;
    row.paper_gtx980_ms = 186;
    row.paper_hit_pct = 80.78;
    row.paper_bw_gbps = 95.90;
    // AS-topology-like: power-law, low triangle density (29M tri / 22M slots).
    add(row, [] {
      gen::SocialParams params;
      params.n = 60000;
      params.attach = 5;
      params.closure_rounds = 0.6;
      params.closure_prob = 0.20;
      return gen::social(params, 101);
    });
  }
  {
    EvalGraph row;
    row.name = "livejournal";
    row.paper_slots = 69e6;
    row.paper_triangles = 178'000'000;
    row.paper_cpu_ms = 13829;
    row.paper_c2050_ms = 951;
    row.paper_4xc2050_ms = 947;
    row.paper_gtx980_ms = 540;
    row.paper_hit_pct = 79.73;
    row.paper_bw_gbps = 100.28;
    add(row, [] {
      gen::SocialParams params;
      params.n = 60000;
      params.attach = 8;
      params.closure_rounds = 2.0;
      params.closure_prob = 0.5;
      return gen::social(params, 102);
    });
  }
  {
    EvalGraph row;
    row.name = "orkut";
    row.paper_slots = 234e6;
    row.paper_triangles = 628'000'000;
    row.paper_cpu_ms = 82558;
    row.paper_c2050_ms = 9690;
    row.paper_4xc2050_ms = 7580;
    row.paper_gtx980_ms = 2815;
    row.paper_hit_pct = 82.71;
    row.paper_bw_gbps = 98.55;
    row.paper_dagger_c2050 = true;
    add(row, [] {
      gen::SocialParams params;
      params.n = 75000;
      params.attach = 11;
      params.closure_rounds = 1.6;
      params.closure_prob = 0.5;
      return gen::social(params, 103);
    });
  }
  {
    EvalGraph row;
    row.name = "citeseer";
    row.paper_slots = 32e6;
    row.paper_triangles = 872'000'000;
    row.paper_cpu_ms = 4990;
    row.paper_c2050_ms = 578;
    row.paper_4xc2050_ms = 456;
    row.paper_gtx980_ms = 329;
    row.paper_hit_pct = 76.68;
    row.paper_bw_gbps = 117.92;
    // Co-paper clique union: very high triangles/slot (27 in the paper).
    add(row, [] {
      gen::CopaperParams params;
      params.n = 25000;
      params.papers = 6000;
      params.min_authors = 3;
      params.max_authors = 60;  // proceedings-style large author cliques
      return gen::copaper(params, 104);
    });
  }
  {
    EvalGraph row;
    row.name = "dblp";
    row.paper_slots = 30e6;
    row.paper_triangles = 442'000'000;
    row.paper_cpu_ms = 4712;
    row.paper_c2050_ms = 446;
    row.paper_4xc2050_ms = 410;
    row.paper_gtx980_ms = 239;
    row.paper_hit_pct = 78.14;
    row.paper_bw_gbps = 112.96;
    add(row, [] {
      gen::CopaperParams params;
      params.n = 30000;
      params.papers = 10000;
      params.min_authors = 2;
      params.max_authors = 40;
      return gen::copaper(params, 105);
    });
  }

  // ---- Synthetic graphs (same generators as the paper, reduced scale:
  //      our Kronecker scale s stands in for the paper's scale s+5). ----

  // Paper Kronecker rows 16..21 (Table I), stood in by our scales 11..16.
  const struct KronRow {
    unsigned paper_scale;
    double slots;
    std::uint64_t triangles;
    double cpu, c2050, c2050x4, gtx;
    double hit, bw;
    bool dagger;
  } kron_rows[] = {
      {16, 5e6, 119'000'000, 2810, 179, 97, 82, 80.95, 143.99, false},
      {17, 10e6, 288'000'000, 6957, 476, 219, 219, 79.75, 134.33, false},
      {18, 21e6, 688'000'000, 17808, 1274, 499, 558, 78.35, 128.33, false},
      {19, 44e6, 1'626'000'000, 45947, 3434, 1304, 1443, 77.59, 122.60, false},
      {20, 89e6, 3'804'000'000, 116811, 9308, 3296, 3942, 76.78, 113.37, false},
      {21, 182e6, 8'816'000'000, 297426, 33150, 13624, 12009, 75.81, 93.65, true},
  };
  for (const KronRow& k : kron_rows) {
    EvalGraph row;
    row.name = "kronecker-" + std::to_string(k.paper_scale);
    row.real_world = false;
    row.paper_slots = k.slots;
    row.paper_triangles = k.triangles;
    row.paper_cpu_ms = k.cpu;
    row.paper_c2050_ms = k.c2050;
    row.paper_4xc2050_ms = k.c2050x4;
    row.paper_gtx980_ms = k.gtx;
    row.paper_hit_pct = k.hit;
    row.paper_bw_gbps = k.bw;
    row.paper_dagger_c2050 = k.dagger;
    const unsigned scale = k.paper_scale - 5;
    add(row, [scale] {
      gen::RmatParams params;
      params.scale = scale;
      params.edge_factor = 24;
      return gen::rmat(params, 200 + scale);
    });
  }

  {
    EvalGraph row;
    row.name = "barabasi-albert";
    row.real_world = false;
    row.paper_slots = 20e6;
    row.paper_triangles = 3'000'000;
    row.paper_cpu_ms = 5508;
    row.paper_c2050_ms = 327;
    row.paper_4xc2050_ms = 263;
    row.paper_gtx980_ms = 155;
    row.paper_hit_pct = 64.45;
    row.paper_bw_gbps = 137.56;
    add(row, [] { return gen::barabasi_albert(40000, 12, 106); });
  }
  {
    EvalGraph row;
    row.name = "watts-strogatz";
    row.real_world = false;
    row.paper_slots = 50e6;
    row.paper_triangles = 219'000'000;
    row.paper_cpu_ms = 9627;
    row.paper_c2050_ms = 589;
    row.paper_4xc2050_ms = 576;
    row.paper_gtx980_ms = 324;
    row.paper_hit_pct = 74.55;
    row.paper_bw_gbps = 116.82;
    add(row, [] { return gen::watts_strogatz(60000, 10, 0.10, 107); });
  }

  return suite;
}

simt::DeviceConfig bench_device(const simt::DeviceConfig& base,
                                const EvalGraph& row) {
  simt::DeviceConfig config = base.scaled_memory(kCacheScale);
  const double capacity_scale =
      row.paper_slots /
      std::max<double>(1.0, static_cast<double>(row.edges.num_edge_slots()));
  config.memory_bytes = static_cast<std::uint64_t>(
      static_cast<double>(base.memory_bytes) / std::max(1.0, capacity_scale));
  return config;
}

core::CountingOptions bench_options() {
  core::CountingOptions options;
  options.sim.sample_sms = 2;
  return options;
}

std::uint32_t threads_flag(int argc, char** argv, std::uint32_t def) {
  auto parse = [](const std::string& text) {
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != text.size() || value > 1024) {
      std::cerr << "usage: --threads N  (0 = hardware concurrency)\n";
      std::exit(2);
    }
    return static_cast<std::uint32_t>(value);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "usage: --threads N  (0 = hardware concurrency)\n";
        std::exit(2);
      }
      return parse(argv[i + 1]);
    }
    if (arg.rfind("--threads=", 0) == 0) {
      return parse(arg.substr(10));
    }
  }
  return def;
}

double cpu_baseline_ms(const EdgeList& edges, int reps) {
  double best = 0;
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    volatile TriangleCount count = cpu::count_forward(edges);
    (void)count;
    times.push_back(timer.elapsed_ms());
  }
  std::sort(times.begin(), times.end());
  best = times[times.size() / 2];
  return best;
}

}  // namespace trico::bench
