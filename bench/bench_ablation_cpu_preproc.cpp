// Experiment E10 — §III-D6 ablation: CPU preprocessing for very large
// graphs.
//
// When the edge array does not fit device memory during the sort step, the
// paper computes degrees and removes backward edges on the CPU first,
// halving the device footprint and allowing graphs twice as large, at the
// cost of slower preprocessing (the dagger rows of Table I). This bench
// forces the fallback on and off and reports the footprint halving and the
// time penalty.

#include <iostream>
#include <sstream>

#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-D6: CPU-preprocessing fallback ablation (GTX 980) "
               "===\n\n";

  auto suite = bench::evaluation_suite();
  util::Table table({"Graph", "GPU-pre total [ms]", "CPU-pre total [ms]",
                     "penalty", "device bytes GPU-pre", "device bytes CPU-pre"});

  for (std::size_t i : {std::size_t{1}, std::size_t{7}, std::size_t{10}}) {
    const auto& row = suite[i];
    std::cerr << "[cpu-preproc] " << row.name << " ...\n";
    // Use the unscaled-capacity device so the gate does not auto-trigger;
    // we force the path explicitly.
    const auto device =
        simt::DeviceConfig::gtx_980().scaled_memory(bench::kCacheScale);

    auto gpu_options = bench::bench_options();
    gpu_options.allow_cpu_preprocess = false;
    core::GpuForwardCounter gpu_pre(device, gpu_options);
    const auto r_gpu = gpu_pre.count(row.edges);

    auto cpu_options = bench::bench_options();
    cpu_options.force_cpu_preprocess = true;
    core::GpuForwardCounter cpu_pre(device, cpu_options);
    const auto r_cpu = cpu_pre.count(row.edges);

    if (r_gpu.triangles != r_cpu.triangles) {
      std::cerr << "MISMATCH on " << row.name << "\n";
      return 1;
    }

    // Device footprint during preprocessing: the gate quantity of SIII-D6.
    const auto full_bytes = core::GpuForwardCounter::device_preprocess_bytes(
        row.edges.num_edge_slots(), row.edges.num_vertices());
    const auto halved_bytes = core::GpuForwardCounter::device_preprocess_bytes(
        row.edges.num_edge_slots() / 2, row.edges.num_vertices());

    std::ostringstream penalty;
    penalty.precision(1);
    penalty.setf(std::ios::fixed);
    penalty << 100.0 *
                   (r_cpu.phases.total_ms() - r_gpu.phases.total_ms()) /
                   r_gpu.phases.total_ms()
            << "%";
    table.row()
        .cell(row.name)
        .cell(r_gpu.phases.total_ms(), 2)
        .cell(r_cpu.phases.total_ms(), 2)
        .cell(penalty.str())
        .cell(static_cast<std::uint64_t>(full_bytes))
        .cell(static_cast<std::uint64_t>(halved_bytes));
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: CPU preprocessing path is slower overall "
               "but needs ~half the device memory during the sort step "
               "(allows graphs twice as large).\n";
  return 0;
}
