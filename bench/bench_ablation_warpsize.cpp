// Experiment E9 — §III-D5 ablation: reducing the (effective) warp size.
//
// The trick: double the threads and idle half of each warp, so a cache miss
// stalls fewer useful lanes. The paper saw 30% gains on an earlier,
// latency-bound version of the kernel, but no benefit on the final one.
// This bench sweeps effective warp sizes for both the final and preliminary
// kernels on a representative skewed graph.

#include <iostream>

#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-D5: effective warp size sweep (GTX 980, "
               "kronecker-19 stand-in) ===\n\n";

  auto suite = bench::evaluation_suite();
  const auto& row = suite[8];  // kronecker-19
  std::cout << "graph: " << row.name << ", " << row.edges.num_edge_slots()
            << " slots\n\n";
  const auto device = bench::bench_device(simt::DeviceConfig::gtx_980(), row);

  util::Table table({"Kernel", "warp 32 [ms]", "warp 16 [ms]", "warp 8 [ms]",
                     "best"});

  for (const bool final_loop : {true, false}) {
    double times[3];
    int i = 0;
    TriangleCount expected = 0;
    for (std::uint32_t warp : {32u, 16u, 8u}) {
      auto options = bench::bench_options();
      options.variant.final_loop = final_loop;
      options.launch.effective_warp_size = warp;
      core::GpuForwardCounter counter(device, options);
      const auto r = counter.count(row.edges);
      if (i == 0) {
        expected = r.triangles;
      } else if (r.triangles != expected) {
        std::cerr << "MISMATCH at warp size " << warp << "\n";
        return 1;
      }
      times[i++] = r.phases.counting_ms;
    }
    const char* best = times[0] <= times[1] && times[0] <= times[2] ? "32"
                       : times[1] <= times[2]                       ? "16"
                                                                    : "8";
    table.row()
        .cell(final_loop ? "final" : "preliminary")
        .cell(times[0], 2)
        .cell(times[1], 2)
        .cell(times[2], 2)
        .cell(best);
  }

  table.print(std::cout);
  std::cout << "\nPaper: 30% gain on an earlier (more latency-bound) kernel; "
               "no benefit for the final version.\n";
  return 0;
}
