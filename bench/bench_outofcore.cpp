// Experiment E16 — §VI future work: out-of-core partitioned counting.
//
// The paper's biggest stated limitation is graphs that do not fit device
// memory: §III-D6 stretches capacity by 2x, nothing helps beyond that.
// This bench compares, on a device with artificially small memory:
//   * the whole-graph pipeline (fails / needs the big device),
//   * the §III-D6 CPU-preprocessing fallback (works up to ~2x),
//   * color-triple partitioned counting at several color counts (works for
//     any size, each edge shipped to ~k subgraphs).
// It reports per-strategy totals, the per-task memory high-water mark, and
// the partitioning overhead — quantifying the trade-off the paper
// speculates about, including the multi-device variant that needs no
// whole-graph broadcast.

#include <iostream>
#include <sstream>

#include "outofcore/counter.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SVI: out-of-core partitioned counting (Tesla C2050 with "
               "shrunken memory) ===\n\n";

  auto suite = bench::evaluation_suite();
  const auto& row = suite[9];  // kronecker-20 stand-in
  std::cout << "graph: " << row.name << ", " << row.edges.num_edge_slots()
            << " slots\n";

  // A device the whole graph does not fit: memory sized to half the
  // counting arrays.
  simt::DeviceConfig tiny =
      simt::DeviceConfig::tesla_c2050().scaled_memory(bench::kCacheScale);
  tiny.memory_bytes = row.edges.num_edge_slots() * 2;
  std::cout << "device memory cap: " << tiny.memory_bytes / 1024
            << " KiB (whole graph needs ~"
            << row.edges.num_edge_slots() * 4 / 1024 << " KiB)\n\n";

  // Reference: the same device with enough memory.
  simt::DeviceConfig big = tiny;
  big.memory_bytes = 1ull << 32;
  core::GpuForwardCounter reference(big, bench::bench_options());
  const auto ref = reference.count(row.edges);
  std::cout << "reference (big device): " << ref.triangles << " triangles, "
            << ref.phases.total_ms() << " ms\n\n";

  util::Table table({"strategy", "triangles", "total [ms]", "device [ms]",
                     "partition [ms]", "max task KiB", "shipped slots"});

  for (std::uint32_t k : {4u, 6u, 8u}) {
    std::cerr << "[outofcore] k = " << k << " ...\n";
    outofcore::OutOfCoreCounter counter(tiny, k, 1, bench::bench_options());
    try {
      const auto r = counter.count(row.edges);
      std::ostringstream name;
      name << "partitioned k=" << k;
      table.row()
          .cell(name.str())
          .cell(static_cast<std::uint64_t>(r.triangles))
          .cell(r.total_ms(), 1)
          .cell(r.device_ms, 1)
          .cell(r.partition_ms, 1)
          .cell(static_cast<std::uint64_t>(r.max_task_bytes / 1024))
          .cell(static_cast<std::uint64_t>(r.total_task_slots));
      if (r.triangles != ref.triangles) {
        std::cerr << "MISMATCH at k = " << k << "\n";
        return 1;
      }
    } catch (const std::exception& error) {
      std::ostringstream name;
      name << "partitioned k=" << k;
      table.row().cell(name.str()).cell("does not fit").cell("-").cell("-")
          .cell("-").cell("-").cell(error.what());
    }
  }

  // Multi-device: independent tasks, no broadcast.
  for (unsigned devices : {2u, 4u}) {
    std::cerr << "[outofcore] k = 8 on " << devices << " devices ...\n";
    outofcore::OutOfCoreCounter counter(tiny, 8, devices,
                                        bench::bench_options());
    const auto r = counter.count(row.edges);
    std::ostringstream name;
    name << "partitioned k=8, " << devices << " devices";
    table.row()
        .cell(name.str())
        .cell(static_cast<std::uint64_t>(r.triangles))
        .cell(r.total_ms(), 1)
        .cell(r.device_ms, 1)
        .cell(r.partition_ms, 1)
        .cell(static_cast<std::uint64_t>(r.max_task_bytes / 1024))
        .cell(static_cast<std::uint64_t>(r.total_task_slots));
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: partitioned counting matches the reference "
               "count under a memory cap the whole graph exceeds; shipped "
               "volume (and partition cost) grows with k; extra devices cut "
               "device time without any whole-graph broadcast.\n";
  return 0;
}
