// Shared evaluation-graph suite for the benchmark harness.
//
// Each EvalGraph row is a reduced-scale stand-in for one row of the paper's
// Table I, generated with the matching structural generator (DESIGN.md §2)
// and annotated with the paper's published numbers so every bench can print
// paper-vs-measured side by side.
//
// Scale methodology:
//  * Graphs are ~30-200x smaller than the paper's (1-core time budget).
//  * Caches are shrunk by a fixed, calibrated factor (kCacheScale) so the
//    capacity-to-working-set regime matches the paper's runs; the per-SM
//    cache is left at hardware size because the frontier working set scales
//    with resident threads, not graph size (simt::DeviceConfig docs).
//  * Device *memory* is shrunk per row by the row's own size reduction, so
//    the graphs that exceeded device memory in the paper (the dagger rows:
//    Orkut and Kronecker 21 on the Tesla C2050) exceed it here too and take
//    the §III-D6 CPU-preprocessing path.

#pragma once

#include <string>
#include <vector>

#include "core/gpu_forward.hpp"
#include "graph/edge_list.hpp"
#include "simt/device_config.hpp"

namespace trico::bench {

/// Cache-capacity scale factor calibrated once against the paper's GTX 980
/// speedup band and Table II profile (see DESIGN.md §6), held fixed across
/// all experiments.
inline constexpr double kCacheScale = 2.2;

/// One row of the evaluation suite.
struct EvalGraph {
  std::string name;        ///< paper's graph name
  bool real_world = true;  ///< section in Table I
  EdgeList edges;          ///< the reduced-scale stand-in

  // Paper-published values for this row (Table I / Table II).
  double paper_slots = 0;        ///< paper "Edges" column (directed slots)
  std::uint64_t paper_triangles = 0;
  double paper_cpu_ms = 0;
  double paper_c2050_ms = 0;     ///< negative = not published
  double paper_4xc2050_ms = 0;
  double paper_gtx980_ms = 0;
  double paper_hit_pct = 0;      ///< Table II cache hit rate (GTX 980)
  double paper_bw_gbps = 0;      ///< Table II bandwidth (GTX 980)
  bool paper_dagger_c2050 = false;  ///< paper marks C2050 run with dagger
};

/// Builds the 13-row evaluation suite (5 real-world stand-ins, 6 Kronecker
/// scales, Barabasi-Albert, Watts-Strogatz). Graphs are cached on disk under
/// `cache_dir` ('' disables caching) so repeated bench runs skip generation.
std::vector<EvalGraph> evaluation_suite(const std::string& cache_dir = "trico_bench_cache");

/// Device configuration for benching `row` on `base`: caches scaled by
/// kCacheScale, device memory scaled by the row's own size reduction.
simt::DeviceConfig bench_device(const simt::DeviceConfig& base,
                                const EvalGraph& row);

/// Counting options used by all table benches (paper's final configuration
/// plus SM sampling to keep simulation wall time reasonable).
core::CountingOptions bench_options();

/// Parses `--threads N` / `--threads=N` from argv: host threads for the SM
/// simulation (simt::SimOptions::threads; 0 = hardware concurrency).
/// Returns `def` when the flag is absent; exits with usage on a malformed
/// value. Unrelated arguments are ignored.
std::uint32_t threads_flag(int argc, char** argv, std::uint32_t def = 1);

/// Measured CPU-forward baseline in ms (median of `reps` runs).
double cpu_baseline_ms(const EdgeList& edges, int reps = 3);

}  // namespace trico::bench
