// Experiment E7 — §III-D3 ablation: avoiding unnecessary reads.
//
// The paper's final merge loop buffers the two frontier values in registers
// and re-reads only the list(s) it advanced — one load per iteration unless
// a triangle closes — while the preliminary loop loads both frontiers every
// iteration. The final loop is 36-48% faster. This bench runs both kernels
// on every evaluation graph.

#include <iostream>
#include <sstream>

#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-D3: read-avoidance ablation (final vs preliminary "
               "merge loop, GTX 980) ===\n\n";

  auto suite = bench::evaluation_suite();
  util::Table table({"Graph", "preliminary [ms]", "final [ms]", "final gain",
                     "loads prel.", "loads final"});

  double min_gain = 1e9, max_gain = -1e9;
  for (const auto& row : suite) {
    std::cerr << "[reads] " << row.name << " ...\n";
    const auto device = bench::bench_device(simt::DeviceConfig::gtx_980(), row);

    auto final_options = bench::bench_options();
    final_options.variant.final_loop = true;
    core::GpuForwardCounter final_counter(device, final_options);
    const auto r_final = final_counter.count(row.edges);

    auto prelim_options = bench::bench_options();
    prelim_options.variant.final_loop = false;
    core::GpuForwardCounter prelim_counter(device, prelim_options);
    const auto r_prelim = prelim_counter.count(row.edges);

    if (r_final.triangles != r_prelim.triangles) {
      std::cerr << "MISMATCH on " << row.name << "\n";
      return 1;
    }
    const double gain = 100.0 * (r_prelim.phases.counting_ms -
                                 r_final.phases.counting_ms) /
                        r_final.phases.counting_ms;
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);

    std::ostringstream gain_text;
    gain_text.precision(1);
    gain_text.setf(std::ios::fixed);
    gain_text << gain << "%";
    table.row()
        .cell(row.name)
        .cell(r_prelim.phases.counting_ms, 2)
        .cell(r_final.phases.counting_ms, 2)
        .cell(gain_text.str())
        .cell(r_prelim.kernel.lane_loads)
        .cell(r_final.kernel.lane_loads);
  }

  table.print(std::cout);
  std::cout << "\nFinal-loop gain range: " << min_gain << "% .. " << max_gain
            << "% (paper: 36% .. 48%)\n";
  return 0;
}
