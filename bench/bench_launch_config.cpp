// Experiment E11 — §III-C launch-configuration grid search.
//
// The paper tunes threads/block over powers of two from 32 to 1024 and
// blocks/SM from 1 to 16, concluding that 64 threads x 8 blocks/SM is
// (nearly) optimal on all three devices, and that on the GTX 980 any
// combination giving 512 threads/SM performs similarly. This bench sweeps
// the same grid (restricted to each device's occupancy limits) and reports
// the counting-kernel time per configuration.

#include <iostream>
#include <vector>

#include "gen/generators.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-C: launch-configuration grid search ===\n\n";

  gen::RmatParams params;
  params.scale = 12;
  params.edge_factor = 24;
  const EdgeList g = gen::rmat(params, 42);
  std::cout << "graph: kronecker scale 12 stand-in, " << g.num_edge_slots()
            << " slots\n";

  bench::EvalGraph row;
  row.edges = g;
  row.paper_slots = static_cast<double>(g.num_edge_slots()) * 64.0;

  for (const auto& base :
       {simt::DeviceConfig::tesla_c2050(), simt::DeviceConfig::gtx_980(),
        simt::DeviceConfig::nvs_5200m()}) {
    const auto device = bench::bench_device(base, row);
    std::cout << "\n--- " << base.name << " (kernel time [ms]) ---\n";

    std::vector<std::string> header{"thr\\blk"};
    const std::uint32_t blocks_sweep[] = {1, 2, 4, 8, 16};
    for (auto b : blocks_sweep) header.push_back(std::to_string(b));
    util::Table table(header);

    double best_ms = 1e18;
    std::uint32_t best_threads = 0, best_blocks = 0;
    for (std::uint32_t threads = 32; threads <= 1024; threads *= 2) {
      auto& table_row = table.row().cell(std::to_string(threads));
      for (auto blocks : blocks_sweep) {
        auto options = bench::bench_options();
        options.launch.threads_per_block = threads;
        options.launch.blocks_per_sm = blocks;
        if (threads > device.max_threads_per_block ||
            blocks > device.max_blocks_per_sm ||
            threads * blocks > device.max_threads_per_sm) {
          table_row.cell("-");
          continue;
        }
        core::GpuForwardCounter counter(device, options);
        const auto r = counter.count(g);
        if (r.phases.counting_ms < best_ms) {
          best_ms = r.phases.counting_ms;
          best_threads = threads;
          best_blocks = blocks;
        }
        table_row.cell(r.phases.counting_ms, 2);
      }
      std::cerr << "[launch] " << base.name << " threads " << threads
                << " done\n";
    }
    table.print(std::cout);
    std::cout << "best: " << best_threads << " threads/block x " << best_blocks
              << " blocks/SM = " << best_threads * best_blocks
              << " threads/SM (" << best_ms
              << " ms; paper optimum: 64 x 8 = 512 threads/SM)\n";
  }
  return 0;
}
