// Experiment E2 — Table II: CountTriangles kernel profiling on the GTX 980.
//
// Reproduces the paper's profiler table: cache hit rate and achieved DRAM
// bandwidth of the counting kernel for every evaluation graph. Expected
// shape: hit rates clustered in a band around ~75-85% with Barabasi-Albert
// the outlier at the bottom, and bandwidth a substantial fraction (roughly
// half) of the device's 224 GB/s peak.
//
// The suite runs twice — once with a single host thread, once with
// --threads N (default 4) — to measure the wall-clock speedup of the
// parallel per-SM simulation. The two passes must agree bit-for-bit (the
// sharded L2 makes per-SM state independent of host scheduling); the run
// aborts if they do not. Results land in BENCH_table2.json.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "report.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

namespace {

struct RowRun {
  core::GpuCountResult result;
};

std::vector<RowRun> run_suite(const std::vector<bench::EvalGraph>& suite,
                              core::CountingOptions options,
                              std::uint32_t threads, double* wall_ms) {
  options.sim.threads = threads;
  std::vector<RowRun> runs;
  runs.reserve(suite.size());
  util::Timer timer;
  for (const auto& row : suite) {
    std::cerr << "[table2] " << row.name << " (threads=" << threads
              << ") ...\n";
    core::GpuForwardCounter gtx(
        bench::bench_device(simt::DeviceConfig::gtx_980(), row), options);
    runs.push_back({gtx.count(row.edges)});
  }
  *wall_ms = timer.elapsed_ms();
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t threads = bench::threads_flag(argc, argv, 4);
  std::cout << "=== Table II: profiling results on GTX 980 (paper values in "
               "brackets) ===\n\n";

  auto suite = bench::evaluation_suite();
  const auto options = bench::bench_options();

  double wall_seq_ms = 0;
  double wall_par_ms = 0;
  const auto baseline = run_suite(suite, options, 1, &wall_seq_ms);
  const auto parallel = run_suite(suite, options, threads, &wall_par_ms);

  util::Table table({"Graph", "Hit rate", "(paper)", "BW [GB/s]", "(paper)",
                     "Transactions", "DRAM [MB]"});
  bool in_synthetic = false;
  table.section("Real world graphs");

  bench::Json graphs = bench::Json::array();
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto& row = suite[i];
    const auto& r = parallel[i].result;
    const auto& ref = baseline[i].result;
    // Determinism gate: the parallel pass must reproduce the sequential
    // pass exactly, counts and modeled statistics alike.
    if (r.triangles != ref.triangles ||
        r.kernel.memory.transactions != ref.kernel.memory.transactions ||
        r.kernel.memory.dram_bytes != ref.kernel.memory.dram_bytes ||
        r.kernel.cycles != ref.kernel.cycles) {
      std::cerr << "FATAL: threads=" << threads
                << " diverged from threads=1 on " << row.name << "\n";
      return 1;
    }
    if (!row.real_world && !in_synthetic) {
      table.section("Synthetic graphs");
      in_synthetic = true;
    }
    std::ostringstream hit, paper_hit, bw, paper_bw;
    hit.precision(2);
    hit.setf(std::ios::fixed);
    hit << 100.0 * r.kernel.cache_hit_rate() << "%";
    paper_hit << row.paper_hit_pct << "%";
    bw.precision(2);
    bw.setf(std::ios::fixed);
    bw << r.kernel.achieved_bandwidth_gbps();
    paper_bw << row.paper_bw_gbps;
    const auto transactions = static_cast<std::uint64_t>(
        static_cast<double>(r.kernel.memory.transactions) *
        r.kernel.sample_scale);
    const auto dram_mb = static_cast<std::uint64_t>(
        static_cast<double>(r.kernel.memory.dram_bytes) *
        r.kernel.sample_scale / 1e6);
    table.row()
        .cell(row.name)
        .cell(hit.str())
        .cell(paper_hit.str())
        .cell(bw.str())
        .cell(paper_bw.str())
        .cell(transactions)
        .cell(dram_mb);

    graphs.push(
        bench::Json::object()
            .set("name", row.name)
            .set("vertices", static_cast<std::uint64_t>(row.edges.num_vertices()))
            .set("edge_slots",
                 static_cast<std::uint64_t>(row.edges.num_edge_slots()))
            .set("triangles", static_cast<std::uint64_t>(r.triangles))
            .set("hit_rate_pct", 100.0 * r.kernel.cache_hit_rate())
            .set("paper_hit_rate_pct", row.paper_hit_pct)
            .set("bandwidth_gbps", r.kernel.achieved_bandwidth_gbps())
            .set("paper_bandwidth_gbps", row.paper_bw_gbps)
            .set("transactions", transactions)
            .set("dram_mbytes", dram_mb)
            .set("modeled_counting_ms", r.phases.counting_ms)
            .set("modeled_total_ms", r.phases.total_ms()));
  }

  table.print(std::cout);

  const double speedup = wall_par_ms > 0 ? wall_seq_ms / wall_par_ms : 0.0;
  std::cout << "\nHost wall clock: " << wall_seq_ms << " ms at 1 thread, "
            << wall_par_ms << " ms at " << threads
            << " threads -> speedup " << speedup << "x ("
            << std::thread::hardware_concurrency()
            << " hardware threads available)\n";

  bench::write_bench_report(
      "table2",
      bench::Json::object()
          .set("bench", "table2")
          .set("device", "gtx_980")
          .set("sample_sms", options.sim.sample_sms)
          .set("hardware_concurrency",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
          .set("harness",
               bench::Json::object()
                   .set("threads_baseline", 1)
                   .set("threads", threads)
                   .set("wall_clock_ms_threads_1", wall_seq_ms)
                   .set("wall_clock_ms_threads_n", wall_par_ms)
                   .set("speedup", speedup)
                   .set("deterministic", true))
          .set("graphs", std::move(graphs)));
  return 0;
}
