// Experiment E2 — Table II: CountTriangles kernel profiling on the GTX 980.
//
// Reproduces the paper's profiler table: cache hit rate and achieved DRAM
// bandwidth of the counting kernel for every evaluation graph. Expected
// shape: hit rates clustered in a band around ~75-85% with Barabasi-Albert
// the outlier at the bottom, and bandwidth a substantial fraction (roughly
// half) of the device's 224 GB/s peak.

#include <iostream>
#include <sstream>

#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== Table II: profiling results on GTX 980 (paper values in "
               "brackets) ===\n\n";

  auto suite = bench::evaluation_suite();
  const auto options = bench::bench_options();

  util::Table table({"Graph", "Hit rate", "(paper)", "BW [GB/s]", "(paper)",
                     "Transactions", "DRAM [MB]"});
  bool in_synthetic = false;
  table.section("Real world graphs");

  for (const auto& row : suite) {
    if (!row.real_world && !in_synthetic) {
      table.section("Synthetic graphs");
      in_synthetic = true;
    }
    std::cerr << "[table2] " << row.name << " ...\n";
    core::GpuForwardCounter gtx(
        bench::bench_device(simt::DeviceConfig::gtx_980(), row), options);
    const auto r = gtx.count(row.edges);
    std::ostringstream hit, paper_hit, bw, paper_bw;
    hit.precision(2);
    hit.setf(std::ios::fixed);
    hit << 100.0 * r.kernel.cache_hit_rate() << "%";
    paper_hit << row.paper_hit_pct << "%";
    bw.precision(2);
    bw.setf(std::ios::fixed);
    bw << r.kernel.achieved_bandwidth_gbps();
    paper_bw << row.paper_bw_gbps;
    table.row()
        .cell(row.name)
        .cell(hit.str())
        .cell(paper_hit.str())
        .cell(bw.str())
        .cell(paper_bw.str())
        .cell(static_cast<std::uint64_t>(
            static_cast<double>(r.kernel.memory.transactions) *
            r.kernel.sample_scale))
        .cell(static_cast<std::uint64_t>(
            static_cast<double>(r.kernel.memory.dram_bytes) *
            r.kernel.sample_scale / 1e6));
  }

  table.print(std::cout);
  return 0;
}
