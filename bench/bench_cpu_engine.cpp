// Experiment E21 — adaptive hybrid intersection engine for the CPU tier.
//
// Sweeps the engine's strategy thresholds (gallop skew ratio, bitmap
// oriented-degree cutoff) across the Table I stand-in suite and compares the
// adaptive engine against the scalar two-pointer merge baseline at equal
// thread count. The counting-phase speedup on the skewed rows (livejournal,
// the Kronecker scales) is the ISSUE acceptance number; the sweep tables are
// where the EngineOptions defaults come from (docs/cpu_engine.md).
//
// Flags:
//   --graph <name>   bench only the named suite row (default: whole suite)
//   --threads N      pool width (default: hardware concurrency)
//   --smoke          small generated graphs, no disk cache, no sweep — the
//                    CI configuration (seconds, not minutes)
//   --ablation simd  E24: vector-vs-scalar intersection kernels. Each
//                    strategy (merge / gallop / adaptive) runs the counting
//                    phase twice over the *same* prepared graph — once with
//                    the ISA forced to scalar, once at the host's best
//                    level — at equal thread count, and the bench asserts
//                    the counts and dispatch stats are bit-identical before
//                    reporting the speedup.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cpu/counting.hpp"
#include "cpu/simd/intersect.hpp"
#include "gen/generators.hpp"
#include "report.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

namespace {

struct BenchGraph {
  std::string name;
  EdgeList edges;
};

/// Median-of-3 engine run with a fixed option set.
cpu::EngineResult run_engine(const EdgeList& edges, prim::ThreadPool& pool,
                             const cpu::EngineOptions& options, int reps = 3) {
  std::vector<cpu::EngineResult> runs;
  for (int r = 0; r < reps; ++r) runs.push_back(cpu::count_engine(edges, pool, options));
  std::sort(runs.begin(), runs.end(),
            [](const cpu::EngineResult& a, const cpu::EngineResult& b) {
              return a.counting.counting_ms < b.counting.counting_ms;
            });
  return runs[runs.size() / 2];
}

bench::Json timings_json(const cpu::PreprocessTimings& t) {
  return bench::Json::object()
      .set("degrees_ms", t.degrees_ms)
      .set("orient_ms", t.orient_ms)
      .set("relabel_ms", t.relabel_ms)
      .set("sort_ms", t.sort_ms)
      .set("csr_ms", t.csr_ms)
      .set("bitmap_ms", t.bitmap_ms)
      .set("total_ms", t.total_ms());
}

bench::Json stats_json(const cpu::CountingStats& s) {
  return bench::Json::object()
      .set("merge_edges", s.merge_edges)
      .set("gallop_edges", s.gallop_edges)
      .set("bitmap_edges", s.bitmap_edges)
      .set("counting_ms", s.counting_ms)
      .set("isa", cpu::simd::to_string(s.isa));
}

/// Median-of-`reps` counting phase over an already-prepared graph (the ISA
/// ablation must not re-prepare between levels: both levels consume the
/// identical CSR + bitmap state).
cpu::CountingStats run_counting(const cpu::PreparedGraph& prepared,
                                prim::ThreadPool& pool,
                                TriangleCount& triangles, int reps = 3) {
  std::vector<cpu::CountingStats> runs;
  for (int r = 0; r < reps; ++r) {
    cpu::CountingStats stats;
    const TriangleCount t = cpu::count_prepared(prepared, pool, &stats);
    if (r == 0) triangles = t;
    if (t != triangles) {
      std::cerr << "NONDETERMINISTIC COUNT across reps\n";
      std::exit(1);
    }
    runs.push_back(stats);
  }
  std::sort(runs.begin(), runs.end(),
            [](const cpu::CountingStats& a, const cpu::CountingStats& b) {
              return a.counting_ms < b.counting_ms;
            });
  return runs[runs.size() / 2];
}

/// E24: SIMD ablation. Returns the process exit code.
int run_simd_ablation(std::vector<BenchGraph>& graphs, prim::ThreadPool& pool,
                      std::uint32_t threads, bool smoke) {
  const cpu::simd::IsaLevel best = cpu::simd::resolve_isa();
  std::cout << "=== E24: SIMD intersection-kernel ablation ===\n"
            << "pool threads: " << threads
            << "  host features: " << cpu::simd::detect_cpu_features().to_string()
            << "  vector level: " << cpu::simd::to_string(best)
            << (smoke ? "  (smoke mode)" : "") << "\n\n";
  if (best == cpu::simd::IsaLevel::kScalar) {
    std::cout << "host has no vector level — nothing to ablate\n";
    return 0;
  }

  struct StrategyRow {
    const char* name;
    cpu::EngineOptions opts;
  };
  std::vector<StrategyRow> strategies;
  {
    cpu::EngineOptions merge;
    merge.strategy = cpu::IntersectStrategy::kMergeOnly;
    cpu::EngineOptions gallop;
    gallop.strategy = cpu::IntersectStrategy::kGallopOnly;
    strategies.push_back({"merge", merge});
    strategies.push_back({"gallop", gallop});
    strategies.push_back({"adaptive", {}});
  }

  util::Table table({"graph", "strategy", "scalar [ms]",
                     std::string(cpu::simd::to_string(best)) + " [ms]",
                     "speedup"});
  bench::Json rows = bench::Json::array();
  bool all_ok = true;
  // Acceptance: the vector kernels must beat scalar on the skewed suite
  // rows (livejournal / orkut / kronecker) for every strategy.
  double min_accept_speedup = 1e300;

  for (BenchGraph& g : graphs) {
    const TriangleCount expected = cpu::count_forward(g.edges);
    const bool acceptance_row =
        g.name.find("livejournal") != std::string::npos ||
        g.name.find("orkut") != std::string::npos ||
        g.name.find("kronecker") != std::string::npos;

    bench::Json strategy_rows = bench::Json::array();
    for (const StrategyRow& s : strategies) {
      cpu::PreparedGraph prepared = cpu::prepare(g.edges, pool, s.opts);

      prepared.options.isa = cpu::simd::IsaRequest::kScalar;
      TriangleCount scalar_triangles = 0;
      const cpu::CountingStats scalar =
          run_counting(prepared, pool, scalar_triangles);

      prepared.options.isa = cpu::simd::IsaRequest::kAuto;
      TriangleCount vector_triangles = 0;
      const cpu::CountingStats vector =
          run_counting(prepared, pool, vector_triangles);

      if (scalar_triangles != expected || vector_triangles != expected) {
        std::cerr << "COUNT MISMATCH on " << g.name << "/" << s.name << "\n";
        all_ok = false;
      }
      if (scalar.merge_edges != vector.merge_edges ||
          scalar.gallop_edges != vector.gallop_edges ||
          scalar.bitmap_edges != vector.bitmap_edges) {
        std::cerr << "STATS DIVERGED ACROSS ISA on " << g.name << "/"
                  << s.name << "\n";
        all_ok = false;
      }

      const double speedup =
          scalar.counting_ms / std::max(1e-9, vector.counting_ms);
      if (acceptance_row) {
        min_accept_speedup = std::min(min_accept_speedup, speedup);
      }
      table.row()
          .cell(g.name)
          .cell(s.name)
          .cell(scalar.counting_ms, 2)
          .cell(vector.counting_ms, 2)
          .cell(speedup, 2);
      strategy_rows.push(bench::Json::object()
                             .set("strategy", s.name)
                             .set("scalar", stats_json(scalar))
                             .set("vector", stats_json(vector))
                             .set("speedup", speedup));
    }
    rows.push(bench::Json::object()
                  .set("graph", g.name)
                  .set("edge_slots", g.edges.num_edge_slots())
                  .set("triangles", expected)
                  .set("threads", threads)
                  .set("strategies", std::move(strategy_rows)));
  }

  table.print(std::cout);
  if (min_accept_speedup < 1e300) {
    std::cout << "\nmin vector-vs-scalar speedup over the acceptance rows "
                 "(livejournal/orkut/kronecker), all strategies: "
              << min_accept_speedup << "x (target: > 1x)\n";
  }

  bench::Json payload = bench::Json::object()
                            .set("experiment", "cpu_engine")
                            .set("ablation", "simd")
                            .set("threads", threads)
                            .set("smoke", smoke)
                            .set("vector_isa", cpu::simd::to_string(best))
                            .set("cpu_features",
                                 cpu::simd::detect_cpu_features().to_string())
                            .set("rows", std::move(rows));
  if (min_accept_speedup < 1e300) {
    payload.set("min_acceptance_speedup", min_accept_speedup);
  }
  bench::write_bench_report("cpu_engine", payload);
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string only_graph;
  std::string ablation;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--graph") == 0 && i + 1 < argc) {
      only_graph = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--ablation") == 0 && i + 1 < argc) {
      ablation = argv[i + 1];
    }
  }
  if (!ablation.empty() && ablation != "simd") {
    std::cerr << "unknown --ablation '" << ablation << "' (supported: simd)\n";
    return 1;
  }
  const std::uint32_t threads = bench::threads_flag(
      argc, argv, std::max(1u, std::thread::hardware_concurrency()));

  if (ablation.empty()) {
    std::cout << "=== E21: adaptive hybrid CPU intersection engine ===\n"
              << "pool threads: " << threads << (smoke ? " (smoke mode)" : "")
              << "\n\n";
  }

  std::vector<BenchGraph> graphs;
  if (smoke) {
    graphs.push_back({"rmat_smoke", gen::rmat({.scale = 11, .edge_factor = 12}, 3)});
    graphs.push_back({"social_smoke", gen::social({.n = 4000, .attach = 8}, 3)});
    graphs.push_back({"ws_smoke", gen::watts_strogatz(4000, 8, 0.1, 3)});
  } else {
    for (auto& row : bench::evaluation_suite()) {
      if (!only_graph.empty() && row.name != only_graph) continue;
      graphs.push_back({row.name, std::move(row.edges)});
    }
    if (graphs.empty()) {
      std::cerr << "no suite row named '" << only_graph << "'\n";
      return 1;
    }
  }

  prim::ThreadPool pool(threads);

  if (ablation == "simd") return run_simd_ablation(graphs, pool, threads, smoke);

  cpu::EngineOptions merge_opts;
  merge_opts.strategy = cpu::IntersectStrategy::kMergeOnly;
  merge_opts.relabel_by_degree = false;  // the paper's scalar baseline layout
  cpu::EngineOptions gallop_opts;
  gallop_opts.strategy = cpu::IntersectStrategy::kGallopOnly;

  bench::Json rows = bench::Json::array();
  util::Table table({"graph", "slots", "merge [ms]", "gallop [ms]",
                     "adaptive [ms]", "counting speedup", "e2e speedup",
                     "bitmap%"});

  bool all_ok = true;
  double min_skewed_speedup = 1e300;
  for (const BenchGraph& g : graphs) {
    const TriangleCount expected = cpu::count_forward(g.edges);

    const cpu::EngineResult merge = run_engine(g.edges, pool, merge_opts);
    const cpu::EngineResult gallop = run_engine(g.edges, pool, gallop_opts);
    const cpu::EngineResult adaptive = run_engine(g.edges, pool, {});
    if (merge.triangles != expected || gallop.triangles != expected ||
        adaptive.triangles != expected) {
      std::cerr << "COUNT MISMATCH on " << g.name << "\n";
      all_ok = false;
    }

    const double counting_speedup =
        merge.counting.counting_ms / std::max(1e-9, adaptive.counting.counting_ms);
    const double e2e_speedup =
        (merge.preprocess.total_ms() + merge.counting.counting_ms) /
        std::max(1e-9,
                 adaptive.preprocess.total_ms() + adaptive.counting.counting_ms);
    const double bitmap_pct =
        adaptive.counting.total_edges() == 0
            ? 0.0
            : 100.0 * static_cast<double>(adaptive.counting.bitmap_edges) /
                  static_cast<double>(adaptive.counting.total_edges());
    // The acceptance rows: the paper's skewed graphs (social and Kronecker
    // stand-ins) are where the adaptive engine must pay off.
    if (g.name.find("livejournal") != std::string::npos ||
        g.name.find("kronecker") != std::string::npos) {
      min_skewed_speedup = std::min(min_skewed_speedup, counting_speedup);
    }

    table.row()
        .cell(g.name)
        .cell(std::to_string(g.edges.num_edge_slots()))
        .cell(merge.counting.counting_ms, 1)
        .cell(gallop.counting.counting_ms, 1)
        .cell(adaptive.counting.counting_ms, 1)
        .cell(counting_speedup, 2)
        .cell(e2e_speedup, 2)
        .cell(bitmap_pct, 1);

    bench::Json row = bench::Json::object()
                          .set("graph", g.name)
                          .set("edge_slots", g.edges.num_edge_slots())
                          .set("triangles", expected)
                          .set("threads", threads)
                          .set("merge_baseline", stats_json(merge.counting))
                          .set("gallop_only", stats_json(gallop.counting))
                          .set("adaptive", stats_json(adaptive.counting))
                          .set("adaptive_preprocess", timings_json(adaptive.preprocess))
                          .set("counting_speedup", counting_speedup)
                          .set("end_to_end_speedup", e2e_speedup);

    // Threshold sweeps (skipped in smoke mode): skew ratio with the bitmap
    // cutoff fixed at its default, then the bitmap cutoff with skew fixed.
    if (!smoke) {
      bench::Json skew_sweep = bench::Json::array();
      for (double skew : {2.0, 4.0, 8.0, 16.0, 32.0}) {
        cpu::EngineOptions o;
        o.skew_threshold = skew;
        const cpu::EngineResult r = run_engine(g.edges, pool, o);
        if (r.triangles != expected) all_ok = false;
        skew_sweep.push(bench::Json::object()
                            .set("skew_threshold", skew)
                            .set("counting_ms", r.counting.counting_ms)
                            .set("gallop_edges", r.counting.gallop_edges));
      }
      row.set("skew_sweep", std::move(skew_sweep));

      bench::Json bitmap_sweep = bench::Json::array();
      for (EdgeIndex cutoff : {std::uint64_t{0}, std::uint64_t{2},
                               std::uint64_t{4}, std::uint64_t{8},
                               std::uint64_t{16}, std::uint64_t{32}}) {
        cpu::EngineOptions o;
        o.bitmap_threshold = cutoff;
        const cpu::EngineResult r = run_engine(g.edges, pool, o);
        if (r.triangles != expected) all_ok = false;
        bitmap_sweep.push(bench::Json::object()
                              .set("bitmap_threshold", cutoff)
                              .set("counting_ms", r.counting.counting_ms)
                              .set("bitmap_edges", r.counting.bitmap_edges)
                              .set("bitmap_build_ms", r.preprocess.bitmap_ms));
      }
      row.set("bitmap_sweep", std::move(bitmap_sweep));
    }
    rows.push(std::move(row));
  }

  table.print(std::cout);
  if (min_skewed_speedup < 1e300) {
    std::cout << "\nmin counting-phase speedup over the skewed acceptance rows "
                 "(livejournal/kronecker): "
              << min_skewed_speedup << "x (target: >= 2x)\n";
  }

  bench::Json payload = bench::Json::object()
                            .set("experiment", "cpu_engine")
                            .set("threads", threads)
                            .set("smoke", smoke)
                            .set("rows", std::move(rows));
  if (min_skewed_speedup < 1e300) {
    payload.set("min_skewed_counting_speedup", min_skewed_speedup);
  }
  bench::write_bench_report("cpu_engine", payload);

  if (!all_ok) return 1;
  std::cout << (smoke ? "\nsmoke OK: all strategies exact\n" : "");
  return 0;
}
