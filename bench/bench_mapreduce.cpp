// Experiment E20 — §V related-work: GPU vs MapReduce.
//
// "MapReduce approach to the problem [5] has significant overhead, and even
// for moderately sized graphs the execution time is in the order of
// minutes. It is beneficial to use it for extremely large graphs, with the
// number of edges in the order of one billion."
//
// This bench runs the two Suri-Vassilvitskii algorithms on the modeled
// cluster next to the GPU pipeline, reports the fixed-overhead domination
// at evaluation scale, shows the curse-of-the-last-reducer skew that the
// degree ordering fixes, and extrapolates the crossover edge count at
// which the cluster's aggregate throughput would overtake a single GPU.

#include <iostream>
#include <sstream>

#include "gen/generators.hpp"
#include "mapreduce/triangles.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SV: GPU vs MapReduce ===\n\n";

  auto suite = bench::evaluation_suite();
  const mr::ClusterConfig cluster;  // 40 workers, 25 s/round

  util::Table table({"Graph", "GPU [ms]", "MR NI++ [s]", "MR GP(k=4) [s]",
                     "MR rounds overhead [s]", "last-reducer recs"});

  for (std::size_t i : {std::size_t{0}, std::size_t{8}}) {
    const auto& row = suite[i];
    std::cerr << "[mapreduce] " << row.name << " ...\n";

    core::GpuForwardCounter gpu(
        bench::bench_device(simt::DeviceConfig::gtx_980(), row),
        bench::bench_options());
    const auto r_gpu = gpu.count(row.edges);

    const mr::MrCountResult ni = mr::count_node_iterator_pp(row.edges, cluster);
    const mr::MrCountResult gp =
        mr::count_graph_partition(row.edges, cluster, 4);

    if (ni.triangles != r_gpu.triangles || gp.triangles != r_gpu.triangles) {
      std::cerr << "MISMATCH on " << row.name << "\n";
      return 1;
    }

    table.row()
        .cell(row.name)
        .cell(r_gpu.phases.total_ms(), 1)
        .cell(ni.job.total_s(), 1)
        .cell(gp.job.total_s(), 1)
        .cell(cluster.per_round_overhead_s *
                  static_cast<double>(ni.job.rounds.size()),
              0)
        .cell(ni.job.max_reducer_records());
  }
  table.print(std::cout);

  // Skew ablation: the degree order vs the naive order on a small skewed
  // graph (the naive variant's wedge volume explodes with hub degree).
  {
    std::cerr << "[mapreduce] skew ablation ...\n";
    gen::RmatParams params;
    params.scale = 10;
    params.edge_factor = 8;
    const EdgeList g = gen::rmat(params, 4);
    const auto ordered = mr::count_node_iterator_pp(g, cluster, true);
    const auto naive = mr::count_node_iterator_pp(g, cluster, false);
    // Wedge volume = round 2's map input minus the joined edge set.
    const auto wedges = [&](const mr::MrCountResult& r) {
      return r.job.rounds[1].map_input_records - g.num_edges();
    };
    std::cout << "\ncurse of the last reducer (rmat scale 10): wedges "
              << wedges(ordered) << " (degree order) vs " << wedges(naive)
              << " (naive order), last-reducer load "
              << ordered.job.max_reducer_records() << " vs "
              << naive.job.max_reducer_records() << "\n";
  }

  // Crossover extrapolation: GPU time scales ~linearly in m (Figure 1);
  // MapReduce amortizes its fixed overhead. Solve for m where they meet.
  {
    const auto& row = suite[8];  // kronecker-19 stand-in
    core::GpuForwardCounter gpu(
        bench::bench_device(simt::DeviceConfig::gtx_980(), row),
        bench::bench_options());
    const auto r_gpu = gpu.count(row.edges);
    const mr::MrCountResult ni = mr::count_node_iterator_pp(row.edges, cluster);
    const double m = static_cast<double>(row.edges.num_edge_slots());
    const double gpu_s_per_edge = r_gpu.phases.total_ms() / 1e3 / m;
    const double mr_fixed = cluster.per_round_overhead_s * 2;
    const double mr_s_per_edge = (ni.job.total_s() - mr_fixed) / m;
    if (gpu_s_per_edge > mr_s_per_edge) {
      const double crossover = mr_fixed / (gpu_s_per_edge - mr_s_per_edge);
      std::cout << "\ncrossover estimate: MapReduce overtakes one GPU near "
                << crossover / 1e9
                << "B edge slots (paper: 'beneficial ... in the order of one "
                   "billion' edges)\n";
    } else {
      // Per-edge the GPU stays ahead — the paper's actual argument for
      // MapReduce at extreme scale is *capacity*, not throughput: a single
      // device simply cannot hold a billion-edge graph.
      const double gpu_capacity_slots =
          static_cast<double>(simt::DeviceConfig::gtx_980().memory_bytes) /
          17.0;  // the SIII-D6 preprocessing footprint per slot
      std::cout << "\nper-edge the GPU stays ahead at every scale; the "
                   "paper's case for MapReduce is capacity: one GTX 980 "
                   "tops out near "
                << gpu_capacity_slots / 1e6
                << "M edge slots (SIII-D6 gate), ~0.25B — MapReduce (and our "
                   "SVI out-of-core extension) keep scaling past it.\n";
    }
  }
  return 0;
}
