// Experiment E14 — §II-A baseline-algorithm comparison (google-benchmark).
//
// Schank & Wagner's study: edge-iterator and forward are the practical
// winners; forward is more robust to skewed degree distributions (its
// oriented lists are bounded by sqrt(2m)). This bench times every CPU
// algorithm in the library on a uniform-degree graph (Erdos-Renyi) and a
// skewed one (R-MAT), plus the two intersection-strategy variants the
// paper's related work discusses.
//
// Expected shape: node-iterator degrades sharply on the skewed graph;
// forward/compact-forward/hashed stay close; binary-search intersection
// loses to the merge on comparable list lengths.

#include <benchmark/benchmark.h>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"

namespace {

using namespace trico;

const EdgeList& uniform_graph() {
  static const EdgeList g = gen::erdos_renyi(20000, 160000, 7);
  return g;
}

const EdgeList& skewed_graph() {
  static const EdgeList g = [] {
    gen::RmatParams params;
    params.scale = 13;
    params.edge_factor = 20;
    return gen::rmat(params, 7);
  }();
  return g;
}

template <TriangleCount (*Fn)(const EdgeList&)>
void BM_Uniform(benchmark::State& state) {
  const EdgeList& g = uniform_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fn(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

template <TriangleCount (*Fn)(const EdgeList&)>
void BM_Skewed(benchmark::State& state) {
  const EdgeList& g = skewed_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fn(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_edges()));
}

BENCHMARK(BM_Uniform<cpu::count_node_iterator>)->Name("uniform/node_iterator")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform<cpu::count_edge_iterator>)->Name("uniform/edge_iterator")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform<cpu::count_forward>)->Name("uniform/forward")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform<cpu::count_compact_forward>)->Name("uniform/compact_forward")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform<cpu::count_forward_hashed>)->Name("uniform/forward_hashed")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform<cpu::count_forward_binary_search>)->Name("uniform/forward_binary_search")->Unit(benchmark::kMillisecond);

BENCHMARK(BM_Skewed<cpu::count_node_iterator>)->Name("skewed/node_iterator")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Skewed<cpu::count_edge_iterator>)->Name("skewed/edge_iterator")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Skewed<cpu::count_forward>)->Name("skewed/forward")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Skewed<cpu::count_compact_forward>)->Name("skewed/compact_forward")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Skewed<cpu::count_forward_hashed>)->Name("skewed/forward_hashed")->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Skewed<cpu::count_forward_binary_search>)->Name("skewed/forward_binary_search")->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
