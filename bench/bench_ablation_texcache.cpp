// Experiment E8 — §III-D4 ablation: read-only data cache.
//
// On Kepler/Maxwell the L1 does not cache global loads; marking the arrays
// const __restrict__ lets loads use the per-SM read-only (texture) path,
// which the paper measures as a 17-66% kernel speedup. On Fermi (Tesla
// C2050) the L1 caches all global loads, so the qualifier changes nothing.
// This bench toggles the qualifier on both device models.

#include <iostream>
#include <sstream>

#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-D4: read-only cache ablation ===\n\n";

  auto suite = bench::evaluation_suite();
  util::Table table({"Graph", "GTX no-RO [ms]", "GTX RO [ms]", "GTX gain",
                     "C2050 no-RO [ms]", "C2050 RO [ms]", "C2050 gain"});

  double min_gain = 1e9, max_gain = -1e9;
  for (const auto& row : suite) {
    std::cerr << "[texcache] " << row.name << " ...\n";

    double kernel_ms[2][2];  // [device][readonly]
    TriangleCount triangles[2][2];
    const simt::DeviceConfig bases[2] = {simt::DeviceConfig::gtx_980(),
                                         simt::DeviceConfig::tesla_c2050()};
    for (int d = 0; d < 2; ++d) {
      for (int ro = 0; ro < 2; ++ro) {
        auto options = bench::bench_options();
        options.variant.readonly_qualifier = (ro == 1);
        core::GpuForwardCounter counter(bench::bench_device(bases[d], row),
                                        options);
        const auto r = counter.count(row.edges);
        kernel_ms[d][ro] = r.phases.counting_ms;
        triangles[d][ro] = r.triangles;
      }
      if (triangles[d][0] != triangles[d][1]) {
        std::cerr << "MISMATCH on " << row.name << "\n";
        return 1;
      }
    }

    const double gtx_gain =
        100.0 * (kernel_ms[0][0] - kernel_ms[0][1]) / kernel_ms[0][1];
    const double c2050_gain =
        100.0 * (kernel_ms[1][0] - kernel_ms[1][1]) / kernel_ms[1][1];
    min_gain = std::min(min_gain, gtx_gain);
    max_gain = std::max(max_gain, gtx_gain);

    auto pct = [](double v) {
      std::ostringstream out;
      out.precision(1);
      out.setf(std::ios::fixed);
      out << v << "%";
      return out.str();
    };
    table.row()
        .cell(row.name)
        .cell(kernel_ms[0][0], 2)
        .cell(kernel_ms[0][1], 2)
        .cell(pct(gtx_gain))
        .cell(kernel_ms[1][0], 2)
        .cell(kernel_ms[1][1], 2)
        .cell(pct(c2050_gain));
  }

  table.print(std::cout);
  std::cout << "\nGTX 980 read-only cache gain range: " << min_gain << "% .. "
            << max_gain
            << "% (paper: 17% .. 66% on Kepler/Maxwell; ~0% expected on "
               "Fermi, whose L1 caches all global loads)\n";
  return 0;
}
