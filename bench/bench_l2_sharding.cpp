// Validation bench — sharded per-SM L2 vs the legacy device-wide L2.
//
// The parallel SM simulation gives every SM a private L2 slice of capacity
// L2/num_sms (the same proportional-share idea the sampling path has always
// used for its l2_scale). This bench quantifies what that approximation
// costs in model fidelity: it runs the counting kernel over the Table II
// suite under both topologies and reports the cache-hit-rate and modeled
// kernel-time deltas. Triangle counts must match exactly — the topology
// only affects timing statistics, never results. Numbers land in
// BENCH_l2_sharding.json and a summary feeds docs/simulator.md.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "report.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

int main(int argc, char** argv) {
  const std::uint32_t threads = bench::threads_flag(argc, argv, 0);
  std::cout << "=== L2 topology validation: per-SM sharded slices vs legacy "
               "shared L2 (GTX 980) ===\n\n";

  auto suite = bench::evaluation_suite();
  auto options = bench::bench_options();

  util::Table table({"Graph", "Hit% sharded", "Hit% shared", "delta [pp]",
                     "Kernel ms sharded", "Kernel ms shared", "ratio"});

  bench::Json graphs = bench::Json::array();
  double max_abs_delta_pp = 0;
  double sum_abs_delta_pp = 0;
  double wall_sharded_ms = 0;
  double wall_shared_ms = 0;

  for (const auto& row : suite) {
    std::cerr << "[l2-sharding] " << row.name << " ...\n";
    const auto device = bench::bench_device(simt::DeviceConfig::gtx_980(), row);

    options.sim.l2_topology = simt::L2Topology::kSharded;
    options.sim.threads = threads;
    util::Timer t_sharded;
    core::GpuForwardCounter sharded_counter(device, options);
    const auto sharded = sharded_counter.count(row.edges);
    wall_sharded_ms += t_sharded.elapsed_ms();

    options.sim.l2_topology = simt::L2Topology::kShared;  // forces 1 thread
    util::Timer t_shared;
    core::GpuForwardCounter shared_counter(device, options);
    const auto shared = shared_counter.count(row.edges);
    wall_shared_ms += t_shared.elapsed_ms();

    if (sharded.triangles != shared.triangles) {
      std::cerr << "FATAL: topology changed the triangle count on "
                << row.name << "\n";
      return 1;
    }

    const double hit_sharded = 100.0 * sharded.kernel.cache_hit_rate();
    const double hit_shared = 100.0 * shared.kernel.cache_hit_rate();
    const double delta_pp = hit_sharded - hit_shared;
    max_abs_delta_pp = std::max(max_abs_delta_pp, std::abs(delta_pp));
    sum_abs_delta_pp += std::abs(delta_pp);
    const double ratio = shared.phases.counting_ms > 0
                             ? sharded.phases.counting_ms /
                                   shared.phases.counting_ms
                             : 0.0;

    table.row()
        .cell(row.name)
        .cell(hit_sharded, 2)
        .cell(hit_shared, 2)
        .cell(delta_pp, 2)
        .cell(sharded.phases.counting_ms, 2)
        .cell(shared.phases.counting_ms, 2)
        .cell(ratio, 3);

    graphs.push(bench::Json::object()
                    .set("name", row.name)
                    .set("triangles", static_cast<std::uint64_t>(sharded.triangles))
                    .set("hit_rate_pct_sharded", hit_sharded)
                    .set("hit_rate_pct_shared", hit_shared)
                    .set("hit_rate_delta_pp", delta_pp)
                    .set("bandwidth_gbps_sharded",
                         sharded.kernel.achieved_bandwidth_gbps())
                    .set("bandwidth_gbps_shared",
                         shared.kernel.achieved_bandwidth_gbps())
                    .set("kernel_ms_sharded", sharded.phases.counting_ms)
                    .set("kernel_ms_shared", shared.phases.counting_ms)
                    .set("kernel_ms_ratio", ratio));
  }

  table.print(std::cout);
  const double mean_abs_delta_pp =
      suite.empty() ? 0.0 : sum_abs_delta_pp / static_cast<double>(suite.size());
  std::cout << "\nHit-rate delta (sharded - shared): mean |delta| = "
            << mean_abs_delta_pp << " pp, max |delta| = " << max_abs_delta_pp
            << " pp over " << suite.size() << " graphs.\n";
  std::cout << "Triangle counts identical under both topologies.\n";

  bench::write_bench_report(
      "l2_sharding",
      bench::Json::object()
          .set("bench", "l2_sharding")
          .set("device", "gtx_980")
          .set("sample_sms", bench::bench_options().sim.sample_sms)
          .set("threads", threads)
          .set("wall_clock_ms_sharded", wall_sharded_ms)
          .set("wall_clock_ms_shared", wall_shared_ms)
          .set("summary", bench::Json::object()
                              .set("mean_abs_hit_delta_pp", mean_abs_delta_pp)
                              .set("max_abs_hit_delta_pp", max_abs_delta_pp)
                              .set("counts_identical", true))
          .set("graphs", std::move(graphs)));
  return 0;
}
