// Experiment E22 — service-layer throughput: cold vs warm catalog.
//
// Drives the TriangleService with concurrent synchronous clients over the
// kronecker-18 + livejournal + orkut mix (the prebuilt trico_bench_cache
// graphs) and reports requests/second at 1, 4 and 8 client threads, in
// three catalog configurations:
//
//   cold       byte budget 0 — caching disabled, every request pays the
//              full hybrid-engine preprocessing (the no-service baseline);
//   warm-art   1 GiB budget, result memoization OFF, pre-warmed — requests
//              pay counting only (isolates the preprocessing amortization);
//   warm       the service default (artifacts + memoized exact results),
//              pre-warmed — repeat queries are a lookup.
//
// The warm/cold ratio is the serving restatement of the paper's §III-E
// observation that preprocessing dominates end-to-end time: the ISSUE
// acceptance asks warm >= 5x cold on this mix; warm-art is reported
// alongside so the artifact-only amortization stays visible. Results go to
// BENCH_service.json.
//
// A second mode, --overload, measures *tenant isolation* instead of
// throughput: one hot tenant floods the service with `--hot-tenant-share`
// of the offered load while the remaining tenants trickle paced requests
// with deadlines. The service runs with per-tenant queue caps and fair
// dequeue; the scenario fails (exit 1) if any light-tenant request is
// starved — anything but an on-time kOk — and reports per-tenant p50/p99
// and rejection counts into BENCH_service.json. This is the CI overload
// smoke job's harness.
//
// A third mode, --restart, measures the zero-copy artifact store
// (docs/storage.md): for each graph it times a catalog "restart" that must
// re-run the full hybrid-engine preprocess against one that mmaps a
// published artifact (checksum-verified) and counts straight off page
// cache. Counts from both paths must be identical; the acceptance target is
// artifact restart >= 10x faster than re-preprocessing on the real graphs.
//
// Flags:
//   --cache DIR     prebuilt graph directory (default: trico_bench_cache)
//   --requests N    total requests per measurement (default: 24)
//   --smoke         tiny generated graphs, no disk cache — the CI config
//   --overload      run the tenant-isolation overload scenario instead
//   --restart       run the artifact-store warm-restart scenario instead
//   --tenants N     overload: total tenants incl. the hot one (default: 8)
//   --hot-tenant-share S  overload: hot tenant's share of offered load
//                         (default: 0.9, i.e. ~10x each light tenant)
//   --duration-ms D overload: measurement length (default: 5000)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cpu/hybrid_engine.hpp"
#include "gen/generators.hpp"
#include "prim/thread_pool.hpp"
#include "report.hpp"
#include "service/service.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

namespace {

using GraphPtr = std::shared_ptr<const EdgeList>;

/// Runs `total_requests` synchronous count queries round-robin over
/// `graphs` from `clients` threads; returns requests/second.
double measure_rps(service::TriangleService& svc,
                   const std::vector<GraphPtr>& graphs, int clients,
                   int total_requests) {
  const int per_client = (total_requests + clients - 1) / clients;
  util::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        service::Request request;
        request.graph = graphs[static_cast<std::size_t>(c + i) % graphs.size()];
        const service::Response response = svc.execute(std::move(request));
        if (response.status != service::Status::kOk) {
          std::cerr << "request failed: " << response.reason << "\n";
          std::exit(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = timer.elapsed_ms() / 1000.0;
  return static_cast<double>(per_client) * clients / seconds;
}

service::ServiceOptions service_options(std::uint64_t catalog_budget,
                                        bool cache_results) {
  service::ServiceOptions options;
  options.scheduler.workers = 2;
  options.scheduler.queue_capacity = 256;
  options.catalog.byte_budget = catalog_budget;
  options.catalog.cache_results = cache_results;
  return options;
}

/// One count per graph so artifacts (and, when enabled, results) are hot.
void prewarm(service::TriangleService& svc, const std::vector<GraphPtr>& graphs) {
  for (const GraphPtr& graph : graphs) {
    service::Request request;
    request.graph = graph;
    if (svc.execute(std::move(request)).status != service::Status::kOk) {
      std::cerr << "warmup failed\n";
      std::exit(1);
    }
  }
}

/// The --overload scenario: one hot tenant floods, N-1 light tenants
/// trickle with deadlines. Returns the process exit code (1 = a light
/// tenant was starved past its deadline).
int run_overload(const std::vector<GraphPtr>& graphs, int tenants,
                 double hot_share, double duration_ms) {
  constexpr double kLightIntervalMs = 10.0;  ///< each light tenant's pacing
  constexpr double kLightDeadlineMs = 1000.0;
  const int lights = tenants > 1 ? tenants - 1 : 1;
  // Offered-load accounting: each light tenant submits 1/interval req/ms,
  // the hot tenant submits share/(1-share) times the light total.
  const double light_total_per_ms =
      static_cast<double>(lights) / kLightIntervalMs;
  const double hot_per_ms = hot_share >= 1.0
                                ? 100.0 * light_total_per_ms
                                : hot_share / (1.0 - hot_share) *
                                      light_total_per_ms;
  const double hot_interval_ms = 1.0 / hot_per_ms;

  service::ServiceOptions options;
  options.scheduler.workers = 2;
  options.scheduler.queue_capacity = 64;
  options.scheduler.per_tenant_queue_cap = 16;
  options.scheduler.watchdog_interval_ms = 2.0;
  options.scheduler.max_execution_ms = 10'000.0;
  service::TriangleService svc(options);
  prewarm(svc, graphs);

  std::atomic<bool> stop{false};
  std::uint64_t hot_submitted = 0;
  std::thread hot([&] {
    util::Timer pace;
    while (!stop.load(std::memory_order_relaxed)) {
      service::Request request;
      request.graph = graphs[hot_submitted % graphs.size()];
      request.backend = service::Backend::kGpu;  // the expensive tier
      request.tenant_id = "hot";
      service::Ticket ticket = svc.submit(std::move(request));
      ++hot_submitted;
      const bool rejected =
          ticket.done() &&
          ticket.wait().status == service::Status::kRejectedQueueFull;
      // Pace to the offered rate; on rejection ease off a little so the
      // flood saturates the cap without drowning the submit path itself.
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          rejected ? hot_interval_ms * 4 : hot_interval_ms));
    }
  });

  std::vector<std::thread> light_threads;
  std::vector<std::uint64_t> starved(static_cast<std::size_t>(lights), 0);
  std::mutex print_mutex;
  for (int t = 0; t < lights; ++t) {
    light_threads.emplace_back([&, t] {
      util::Timer clock;
      while (clock.elapsed_ms() < duration_ms) {
        service::Request request;
        request.graph = graphs[static_cast<std::size_t>(t) % graphs.size()];
        request.tenant_id = "light-" + std::to_string(t);
        request.deadline_ms = kLightDeadlineMs;
        const service::Response response = svc.execute(std::move(request));
        if (response.status != service::Status::kOk) {
          ++starved[static_cast<std::size_t>(t)];
          std::lock_guard lock(print_mutex);
          std::cerr << "light-" << t << " starved: "
                    << service::to_string(response.status) << " ("
                    << response.reason << ")\n";
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(kLightIntervalMs));
      }
    });
  }
  for (std::thread& thread : light_threads) thread.join();
  stop.store(true);
  hot.join();

  const service::MetricsSnapshot metrics = svc.metrics();
  util::Table table(
      {"tenant", "submitted", "ok", "rejected", "expired", "p50 ms", "p99 ms"});
  bench::Json tenant_rows = bench::Json::array();
  std::uint64_t total_starved = 0;
  for (const std::uint64_t s : starved) total_starved += s;
  for (const auto& [raw_id, slice] : metrics.tenants) {
    const std::string id = raw_id.empty() ? "(default)" : raw_id;
    const double p50 = slice.total_latency.quantile_upper_bound_ms(0.5);
    const double p99 = slice.total_latency.quantile_upper_bound_ms(0.99);
    table.row()
        .cell(id)
        .cell(slice.submitted)
        .cell(slice.ok)
        .cell(slice.rejected_queue_full)
        .cell(slice.deadline_expired)
        .cell(p50, 3)
        .cell(p99, 3);
    tenant_rows.push(bench::Json::object()
                         .set("tenant", id)
                         .set("submitted", slice.submitted)
                         .set("ok", slice.ok)
                         .set("rejected_queue_full", slice.rejected_queue_full)
                         .set("deadline_expired", slice.deadline_expired)
                         .set("p50_ms", p50)
                         .set("p99_ms", p99));
  }
  table.print(std::cout);
  const std::uint64_t hot_rejected =
      metrics.tenants.count("hot")
          ? metrics.tenants.at("hot").rejected_queue_full
          : 0;
  std::cout << "hot tenant: " << hot_submitted << " submitted, "
            << hot_rejected << " rejected at the tenant cap\n"
            << "light tenants starved past deadline: " << total_starved
            << " (target 0)\n";

  bench::Json payload =
      bench::Json::object()
          .set("experiment", "E22-service-overload")
          .set("tenants", static_cast<std::uint64_t>(lights) + 1)
          .set("hot_tenant_share", hot_share)
          .set("duration_ms", duration_ms)
          .set("light_starved", total_starved)
          .set("hot_rejected_queue_full", hot_rejected)
          .set("per_tenant", std::move(tenant_rows));
  bench::write_bench_report("service", payload);
  if (total_starved > 0) {
    std::cerr << "FAIL: " << total_starved
              << " light-tenant request(s) starved past deadline\n";
    return 1;
  }
  return 0;
}

/// The --restart scenario: time-to-ready of a restarted catalog that must
/// re-preprocess vs one that mmaps a published artifact, with the counts
/// from both paths cross-checked for equality.
int run_restart(const std::vector<std::string>& names,
                const std::vector<GraphPtr>& graphs, bool smoke) {
  namespace fs = std::filesystem;
  const std::string root = "bench_store_restart";
  std::error_code ec;
  fs::remove_all(root, ec);

  prim::ThreadPool pool;
  service::CatalogOptions plain_options;   // no store: restart = re-preprocess
  service::CatalogOptions store_options;   // store: restart = mmap artifact
  store_options.store.root = root;

  util::Table table({"graph", "rebuild ms", "restart ms", "speedup",
                     "triangles"});
  bench::Json rows = bench::Json::array();
  double min_speedup = -1;
  // Best-of reps: both paths run against a warm page cache (the scenario is
  // a service restart, not a machine reboot). The count runs once per path,
  // outside the timing loop — the measurement is time-to-ready.
  constexpr int kRebuildReps = 3;
  constexpr int kRestartReps = 5;

  for (std::size_t g = 0; g < graphs.size(); ++g) {
    double rebuild_ms = std::numeric_limits<double>::infinity();
    TriangleCount rebuilt_count = 0;
    for (int rep = 0; rep < kRebuildReps; ++rep) {
      service::GraphCatalog catalog(plain_options);
      util::Timer timer;
      const auto acquired = catalog.acquire(graphs[g], pool);
      rebuild_ms = std::min(rebuild_ms, timer.elapsed_ms());
      if (rep + 1 == kRebuildReps) {
        rebuilt_count =
            cpu::count_prepared(acquired.entry->prepared_view, pool);
      }
    }

    {
      // Publish once — the "previous run" of the service.
      service::GraphCatalog publisher(store_options);
      (void)publisher.acquire(graphs[g], pool);
    }
    double restart_ms = std::numeric_limits<double>::infinity();
    TriangleCount mapped_count = 0;
    std::uint64_t store_loads = 0;
    for (int rep = 0; rep < kRestartReps; ++rep) {
      service::GraphCatalog restarted(store_options);
      util::Timer timer;
      const auto acquired = restarted.acquire(graphs[g], pool);
      restart_ms = std::min(restart_ms, timer.elapsed_ms());
      if (!acquired.entry->from_store) {
        std::cerr << "FAIL: " << names[g]
                  << " restart was not served from the artifact store\n";
        return 1;
      }
      if (rep + 1 == kRestartReps) {
        mapped_count =
            cpu::count_prepared(acquired.entry->prepared_view, pool);
        store_loads = restarted.stats().store_loads;
      }
    }

    if (mapped_count != rebuilt_count) {
      std::cerr << "FAIL: " << names[g] << " count mismatch: rebuilt="
                << rebuilt_count << " mapped=" << mapped_count << "\n";
      return 1;
    }
    const double speedup = rebuild_ms / restart_ms;
    if (min_speedup < 0 || speedup < min_speedup) min_speedup = speedup;
    table.row()
        .cell(names[g])
        .cell(rebuild_ms, 3)
        .cell(restart_ms, 3)
        .cell(speedup, 2)
        .cell(rebuilt_count);
    rows.push(bench::Json::object()
                  .set("graph", names[g])
                  .set("rebuild_ms", rebuild_ms)
                  .set("restart_ms", restart_ms)
                  .set("speedup", speedup)
                  .set("triangles", static_cast<std::uint64_t>(rebuilt_count))
                  .set("store_loads", store_loads)
                  .set("counts_identical", true));
  }
  table.print(std::cout);
  std::cout << "min restart speedup: " << min_speedup
            << (smoke ? " (smoke graphs)" : " (target >= 10)") << "\n";

  bench::Json payload = bench::Json::object()
                            .set("experiment", "E23-service-restart")
                            .set("smoke", smoke)
                            .set("min_speedup", min_speedup)
                            .set("rows", std::move(rows));
  bench::write_bench_report("service", payload);
  fs::remove_all(root, ec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cache_dir = "trico_bench_cache";
  int total_requests = 24;
  bool smoke = false;
  bool overload = false;
  bool restart = false;
  int tenants = 8;
  double hot_share = 0.9;
  double duration_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      total_requests = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--restart") == 0) {
      restart = true;
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      tenants = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--hot-tenant-share") == 0 && i + 1 < argc) {
      hot_share = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = std::stod(argv[++i]);
    }
  }

  // The restart scenario targets the two graphs the acceptance criterion
  // names; orkut's artifact adds nothing but wall-clock here.
  const std::vector<const char*> real_names =
      restart ? std::vector<const char*>{"kronecker-18", "livejournal"}
              : std::vector<const char*>{"kronecker-18", "livejournal",
                                         "orkut"};
  std::vector<std::string> names;
  std::vector<GraphPtr> graphs;
  if (smoke) {
    for (const unsigned scale : {9u, 10u, 11u}) {
      gen::RmatParams params;
      params.scale = scale;
      names.push_back("rmat-" + std::to_string(scale));
      graphs.push_back(std::make_shared<const EdgeList>(gen::rmat(params, 1)));
    }
  } else {
    for (const char* name : real_names) {
      names.emplace_back(name);
      try {
        graphs.push_back(std::make_shared<const EdgeList>(
            service::GraphCatalog::load_graph_file(cache_dir + "/" + name +
                                                   ".trico")));
      } catch (const service::CatalogError& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
      }
    }
  }

  if (overload) return run_overload(graphs, tenants, hot_share, duration_ms);
  if (restart) return run_restart(names, graphs, smoke);

  util::Table table({"clients", "cold req/s", "warm-art req/s", "warm req/s",
                     "warm/cold"});
  bench::Json rows = bench::Json::array();
  double min_speedup = -1;
  const std::uint64_t budget = std::uint64_t{1} << 30;
  for (const int clients : {1, 4, 8}) {
    // Fresh services per row so LRU state and queue gauges don't leak
    // between measurements.
    service::TriangleService cold(service_options(0, false));
    const double cold_rps = measure_rps(cold, graphs, clients, total_requests);

    service::TriangleService warm_art(service_options(budget, false));
    prewarm(warm_art, graphs);
    const double warm_art_rps =
        measure_rps(warm_art, graphs, clients, total_requests);

    service::TriangleService warm(service_options(budget, true));
    prewarm(warm, graphs);
    const double warm_rps = measure_rps(warm, graphs, clients, total_requests);

    const double speedup = warm_rps / cold_rps;
    if (min_speedup < 0 || speedup < min_speedup) min_speedup = speedup;

    table.row().cell(clients).cell(cold_rps, 2).cell(warm_art_rps, 2).cell(
        warm_rps, 2).cell(speedup, 2);
    rows.push(bench::Json::object()
                  .set("clients", clients)
                  .set("cold_rps", cold_rps)
                  .set("warm_artifacts_rps", warm_art_rps)
                  .set("warm_rps", warm_rps)
                  .set("speedup", speedup));
  }
  table.print(std::cout);
  std::cout << "min warm/cold speedup: " << min_speedup
            << (smoke ? " (smoke graphs)" : " (target >= 5)") << "\n";

  bench::Json graph_names = bench::Json::array();
  for (const std::string& name : names) graph_names.push(name);
  bench::Json payload = bench::Json::object()
                            .set("experiment", "E22-service-throughput")
                            .set("smoke", smoke)
                            .set("graphs", std::move(graph_names))
                            .set("total_requests", total_requests)
                            .set("min_speedup", min_speedup)
                            .set("rows", std::move(rows));
  bench::write_bench_report("service", payload);
  return 0;
}
