// Experiment E22 — service-layer throughput: cold vs warm catalog.
//
// Drives the TriangleService with concurrent synchronous clients over the
// kronecker-18 + livejournal + orkut mix (the prebuilt trico_bench_cache
// graphs) and reports requests/second at 1, 4 and 8 client threads, in
// three catalog configurations:
//
//   cold       byte budget 0 — caching disabled, every request pays the
//              full hybrid-engine preprocessing (the no-service baseline);
//   warm-art   1 GiB budget, result memoization OFF, pre-warmed — requests
//              pay counting only (isolates the preprocessing amortization);
//   warm       the service default (artifacts + memoized exact results),
//              pre-warmed — repeat queries are a lookup.
//
// The warm/cold ratio is the serving restatement of the paper's §III-E
// observation that preprocessing dominates end-to-end time: the ISSUE
// acceptance asks warm >= 5x cold on this mix; warm-art is reported
// alongside so the artifact-only amortization stays visible. Results go to
// BENCH_service.json.
//
// Flags:
//   --cache DIR     prebuilt graph directory (default: trico_bench_cache)
//   --requests N    total requests per measurement (default: 24)
//   --smoke         tiny generated graphs, no disk cache — the CI config

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "report.hpp"
#include "service/service.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

namespace {

using GraphPtr = std::shared_ptr<const EdgeList>;

/// Runs `total_requests` synchronous count queries round-robin over
/// `graphs` from `clients` threads; returns requests/second.
double measure_rps(service::TriangleService& svc,
                   const std::vector<GraphPtr>& graphs, int clients,
                   int total_requests) {
  const int per_client = (total_requests + clients - 1) / clients;
  util::Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        service::Request request;
        request.graph = graphs[static_cast<std::size_t>(c + i) % graphs.size()];
        const service::Response response = svc.execute(std::move(request));
        if (response.status != service::Status::kOk) {
          std::cerr << "request failed: " << response.reason << "\n";
          std::exit(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = timer.elapsed_ms() / 1000.0;
  return static_cast<double>(per_client) * clients / seconds;
}

service::ServiceOptions service_options(std::uint64_t catalog_budget,
                                        bool cache_results) {
  service::ServiceOptions options;
  options.scheduler.workers = 2;
  options.scheduler.queue_capacity = 256;
  options.catalog.byte_budget = catalog_budget;
  options.catalog.cache_results = cache_results;
  return options;
}

/// One count per graph so artifacts (and, when enabled, results) are hot.
void prewarm(service::TriangleService& svc, const std::vector<GraphPtr>& graphs) {
  for (const GraphPtr& graph : graphs) {
    service::Request request;
    request.graph = graph;
    if (svc.execute(std::move(request)).status != service::Status::kOk) {
      std::cerr << "warmup failed\n";
      std::exit(1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string cache_dir = "trico_bench_cache";
  int total_requests = 24;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      cache_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      total_requests = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  std::vector<std::string> names;
  std::vector<GraphPtr> graphs;
  if (smoke) {
    for (const unsigned scale : {9u, 10u, 11u}) {
      gen::RmatParams params;
      params.scale = scale;
      names.push_back("rmat-" + std::to_string(scale));
      graphs.push_back(std::make_shared<const EdgeList>(gen::rmat(params, 1)));
    }
  } else {
    for (const char* name : {"kronecker-18", "livejournal", "orkut"}) {
      names.emplace_back(name);
      try {
        graphs.push_back(std::make_shared<const EdgeList>(
            service::GraphCatalog::load_graph_file(cache_dir + "/" + name +
                                                   ".trico")));
      } catch (const service::CatalogError& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
      }
    }
  }

  util::Table table({"clients", "cold req/s", "warm-art req/s", "warm req/s",
                     "warm/cold"});
  bench::Json rows = bench::Json::array();
  double min_speedup = -1;
  const std::uint64_t budget = std::uint64_t{1} << 30;
  for (const int clients : {1, 4, 8}) {
    // Fresh services per row so LRU state and queue gauges don't leak
    // between measurements.
    service::TriangleService cold(service_options(0, false));
    const double cold_rps = measure_rps(cold, graphs, clients, total_requests);

    service::TriangleService warm_art(service_options(budget, false));
    prewarm(warm_art, graphs);
    const double warm_art_rps =
        measure_rps(warm_art, graphs, clients, total_requests);

    service::TriangleService warm(service_options(budget, true));
    prewarm(warm, graphs);
    const double warm_rps = measure_rps(warm, graphs, clients, total_requests);

    const double speedup = warm_rps / cold_rps;
    if (min_speedup < 0 || speedup < min_speedup) min_speedup = speedup;

    table.row().cell(clients).cell(cold_rps, 2).cell(warm_art_rps, 2).cell(
        warm_rps, 2).cell(speedup, 2);
    rows.push(bench::Json::object()
                  .set("clients", clients)
                  .set("cold_rps", cold_rps)
                  .set("warm_artifacts_rps", warm_art_rps)
                  .set("warm_rps", warm_rps)
                  .set("speedup", speedup));
  }
  table.print(std::cout);
  std::cout << "min warm/cold speedup: " << min_speedup
            << (smoke ? " (smoke graphs)" : " (target >= 5)") << "\n";

  bench::Json graph_names = bench::Json::array();
  for (const std::string& name : names) graph_names.push(name);
  bench::Json payload = bench::Json::object()
                            .set("experiment", "E22-service-throughput")
                            .set("smoke", smoke)
                            .set("graphs", std::move(graph_names))
                            .set("total_requests", total_requests)
                            .set("min_speedup", min_speedup)
                            .set("rows", std::move(rows));
  bench::write_bench_report("service", payload);
  return 0;
}
