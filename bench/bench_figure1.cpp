// Experiment E3 — Figure 1: scaling on synthetic Kronecker R-MAT graphs.
//
// Reproduces the paper's log-log plot: execution time vs node count for the
// CPU baseline, one Tesla C2050, four Tesla C2050s, and the GTX 980, over a
// sweep of Kronecker scales. Expected shape: four roughly parallel lines
// (the algorithm is near-linear in m at fixed edge factor) with CPU on top,
// then C2050, then GTX 980, and 4x C2050 pulling ahead of 1x C2050 as the
// triangle count grows.
//
// Prints one row per scale; pipe into a plotting tool of choice for the
// visual version.

#include <iostream>

#include "gen/generators.hpp"
#include "multigpu/multi_gpu.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== Figure 1: Kronecker R-MAT scaling (time [ms] vs #nodes) "
               "===\n\n";

  const auto options = bench::bench_options();
  util::Table table({"scale", "#nodes", "#edges", "triangles", "CPU",
                     "C2050", "4xC2050", "GTX980"});

  for (unsigned scale = 10; scale <= 15; ++scale) {
    std::cerr << "[figure1] scale " << scale << " ...\n";
    gen::RmatParams params;
    params.scale = scale;
    params.edge_factor = 24;
    const EdgeList g = gen::rmat(params, 300 + scale);

    // A Figure-1 point is an anonymous Kronecker graph; reuse the Table I
    // scale mapping (paper scale = ours + 5) for the capacity gate.
    bench::EvalGraph row;
    row.edges = g;
    row.paper_slots = static_cast<double>(g.num_edge_slots()) * 64.0;

    const double cpu_ms = bench::cpu_baseline_ms(g, 1);

    core::GpuForwardCounter c2050(
        bench::bench_device(simt::DeviceConfig::tesla_c2050(), row), options);
    const auto r1 = c2050.count(g);

    multigpu::MultiGpuCounter c2050x4(
        bench::bench_device(simt::DeviceConfig::tesla_c2050(), row), 4,
        options);
    const auto r4 = c2050x4.count(g);

    core::GpuForwardCounter gtx(
        bench::bench_device(simt::DeviceConfig::gtx_980(), row), options);
    const auto rg = gtx.count(g);

    table.row()
        .cell(static_cast<int>(scale))
        .cell(static_cast<std::uint64_t>(g.num_vertices()))
        .cell(static_cast<std::uint64_t>(g.num_edge_slots()))
        .cell(static_cast<std::uint64_t>(rg.triangles))
        .cell(cpu_ms, 1)
        .cell(r1.phases.total_ms(), 2)
        .cell(r4.total_ms(), 2)
        .cell(rg.phases.total_ms(), 2);
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: near-parallel lines on log-log axes; "
               "CPU > C2050 > GTX 980; 4xC2050 gains grow with scale.\n";
  return 0;
}
