// Experiment E6 — §III-D2 ablation: sorting edges as 64-bit integers.
//
// The paper: thrust::sort on the edge array is ~5x faster when edges are
// passed as packed 64-bit integers (radix sort) than as pairs of 32-bit
// integers (comparison sort), with the caveat that the memcpy/little-endian
// packing orders by the *second* vertex. This bench measures both the real
// host-side sorts (trico::prim) and the modeled device costs, and verifies
// the ordering caveat.

#include <iostream>

#include "prim/radix_sort.hpp"
#include "simt/cost_model.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-D2: 64-bit sort ablation ===\n\n";

  auto suite = bench::evaluation_suite();
  const auto& row = suite[1];  // livejournal stand-in
  std::cout << "graph: " << row.name << ", " << row.edges.num_edge_slots()
            << " slots\n\n";

  prim::ThreadPool pool;
  const auto slots = row.edges.edges();

  auto median_ms = [](auto body) {
    std::vector<double> times;
    for (int r = 0; r < 3; ++r) {
      util::Timer timer;
      body();
      times.push_back(timer.elapsed_ms());
    }
    std::sort(times.begin(), times.end());
    return times[1];
  };

  std::vector<Edge> work(slots.begin(), slots.end());
  const double u64_ms = median_ms([&] {
    std::copy(slots.begin(), slots.end(), work.begin());
    prim::sort_edges_as_u64(pool, work);
  });
  const double u64le_ms = median_ms([&] {
    std::copy(slots.begin(), slots.end(), work.begin());
    prim::sort_edges_as_u64_le(pool, work);
  });
  const double pairs_ms = median_ms([&] {
    std::copy(slots.begin(), slots.end(), work.begin());
    prim::sort_edges_as_pairs(pool, work);
  });

  // Verify the little-endian caveat: LE packing orders by (v, u).
  std::copy(slots.begin(), slots.end(), work.begin());
  prim::sort_edges_as_u64_le(pool, work);
  bool ordered_by_second = true;
  for (std::size_t i = 1; i < work.size(); ++i) {
    if (work[i - 1].v > work[i].v) {
      ordered_by_second = false;
      break;
    }
  }

  const simt::CostModel cost(simt::DeviceConfig::gtx_980());
  const double device_radix = cost.radix_sort_ms(slots.size(), 8, 5);
  const double device_merge = cost.merge_sort_ms(slots.size(), 8);

  util::Table table({"Sort", "host measured [ms]", "device modeled [ms]"});
  table.row().cell("u64 radix (u,v) keys").cell(u64_ms, 1).cell(device_radix, 3);
  table.row().cell("u64 radix little-endian").cell(u64le_ms, 1).cell(device_radix, 3);
  table.row().cell("(u32,u32) comparison sort").cell(pairs_ms, 1).cell(device_merge, 3);
  table.print(std::cout);

  std::cout << "\nhost speedup u64 vs pairs:   " << pairs_ms / u64_ms
            << "x (paper: ~5x)\n";
  std::cout << "device speedup u64 vs pairs: " << device_merge / device_radix
            << "x (paper: ~5x)\n";
  std::cout << "LE packing orders by second vertex: "
            << (ordered_by_second ? "confirmed" : "VIOLATED") << "\n";
  return ordered_by_second ? 0 : 1;
}
