// Machine-readable bench reports.
//
// Every table bench, in addition to its human-readable table on stdout,
// serializes its results to BENCH_<name>.json in the working directory so
// downstream tooling (regression tracking, plots, the ISSUE acceptance
// checks) can consume the numbers without scraping tables. The writer is a
// deliberately tiny ordered JSON builder — no external dependency.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace trico::bench {

/// Minimal ordered JSON value: null, bool, integer, double, string, array,
/// object. Keys keep insertion order so reports diff cleanly.
class Json {
 public:
  Json() = default;
  Json(bool value) : kind_(Kind::kBool), bool_(value) {}
  Json(double value) : kind_(Kind::kDouble), double_(value) {}
  Json(std::uint64_t value) : kind_(Kind::kUint), uint_(value) {}
  Json(std::uint32_t value) : Json(static_cast<std::uint64_t>(value)) {}
  Json(int value)
      : kind_(Kind::kDouble), double_(static_cast<double>(value)) {}
  Json(const char* value) : kind_(Kind::kString), string_(value) {}
  Json(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Appends `key: value` to an object; returns *this for chaining.
  Json& set(const std::string& key, Json value);
  /// Appends `value` to an array; returns *this for chaining.
  Json& push(Json value);

  [[nodiscard]] std::string dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kUint, kDouble, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> children_;
};

/// Writes `payload` to BENCH_<name>.json in the current working directory
/// (overwriting), logs the path to stderr, and returns it.
std::string write_bench_report(const std::string& name, const Json& payload);

}  // namespace trico::bench
