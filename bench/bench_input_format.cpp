// Experiment E4 — §III-A input-format study.
//
// The paper argues for edge-array input: on LiveJournal, the CPU solver
// optimized for adjacency-list input runs ~12 s, the edge-array-input
// solver ~2 s slower, and converting edge array -> adjacency list costs
// ~7 s (so converting first is a net loss), while adjacency -> edge array
// is a fast single pass. This bench reproduces those relationships on the
// LiveJournal stand-in.

#include <iostream>

#include "cpu/counting.hpp"
#include "graph/conversion.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

namespace {

double timed_ms(const std::function<void()>& body, int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    util::Timer timer;
    body();
    times.push_back(timer.elapsed_ms());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  std::cout << "=== SIII-A: input format study (LiveJournal stand-in) ===\n\n";

  auto suite = bench::evaluation_suite();
  const EdgeList& edges = suite[1].edges;  // livejournal
  std::cout << "graph: " << suite[1].name << ", " << edges.num_edge_slots()
            << " slots\n\n";

  const Csr adjacency = edge_array_to_adjacency(edges);

  TriangleCount t1 = 0, t2 = 0;
  const double solve_adj_ms =
      timed_ms([&] { t1 = cpu::count_forward_from_adjacency(adjacency); });
  const double solve_edges_ms = timed_ms([&] { t2 = cpu::count_forward(edges); });
  const double convert_to_adj_ms =
      timed_ms([&] { volatile auto c = edge_array_to_adjacency(edges); (void)c; });
  const double convert_to_edges_ms = timed_ms(
      [&] { volatile auto e = adjacency_to_edge_array(adjacency); (void)e; });

  if (t1 != t2) {
    std::cerr << "MISMATCH: adjacency and edge-array solvers disagree\n";
    return 1;
  }

  util::Table table({"Operation", "Time [ms]", "Paper analogue"});
  table.row().cell("solve (adjacency-list input)").cell(solve_adj_ms, 1).cell("~12 s");
  table.row().cell("solve (edge-array input)").cell(solve_edges_ms, 1).cell("~14 s (2 s slower)");
  table.row().cell("convert edge array -> adjacency").cell(convert_to_adj_ms, 1).cell("~7 s (needs sort)");
  table.row().cell("convert adjacency -> edge array").cell(convert_to_edges_ms, 1).cell("fast single pass");
  table.print(std::cout);

  std::cout << "\nShape checks:\n";
  std::cout << "  edge-array solver overhead vs adjacency solver: "
            << (solve_edges_ms - solve_adj_ms) << " ms ("
            << 100.0 * (solve_edges_ms - solve_adj_ms) / solve_adj_ms
            << "%, paper: ~17%)\n";
  std::cout << "  edge->adj conversion / adj->edge conversion: "
            << convert_to_adj_ms / convert_to_edges_ms
            << "x (paper: sort-bound, >> 1)\n";
  return 0;
}
