// Experiment E18 — cost-model validation: analytic vs fully-simulated
// preprocessing.
//
// The Table I/Figure 1 pipelines charge the §III-B preprocessing steps with
// an analytic streaming model (DESIGN.md §6). This bench runs the same
// steps as real kernels on the SIMT simulator (preprocess_sim) and prints
// both timings per step, validating the model. It also reports the phase
// profile the paper's §III-E Amdahl analysis depends on (sort dominating
// preprocessing).

#include <iostream>
#include <sstream>

#include "core/preprocess.hpp"
#include "core/preprocess_sim.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== Preprocessing cost-model validation (GTX 980) ===\n\n";

  auto suite = bench::evaluation_suite();
  const auto options = bench::bench_options();
  prim::ThreadPool pool;

  for (std::size_t i : {std::size_t{1}, std::size_t{9}}) {
    const auto& row = suite[i];
    std::cerr << "[preproc] " << row.name << " ...\n";
    const auto device = bench::bench_device(simt::DeviceConfig::gtx_980(), row);

    const core::PreprocessedGraph analytic =
        core::preprocess_for_device(row.edges, device, options, pool);
    const core::SimulatedPreprocessing sim =
        core::simulate_preprocessing(row.edges, device, options);

    if (analytic.oriented != sim.graph.oriented ||
        analytic.node != sim.graph.node) {
      std::cerr << "MISMATCH: simulated preprocessing diverged on " << row.name
                << "\n";
      return 1;
    }

    std::cout << "--- " << row.name << " (" << row.edges.num_edge_slots()
              << " slots) ---\n";
    util::Table table({"step", "analytic [ms]", "simulated [ms]", "ratio"});
    const struct {
      const char* name;
      double analytic_ms;
      double simulated_ms;
    } steps[] = {
        {"vertex count (reduce)", analytic.phases.vertex_count_ms,
         sim.graph.phases.vertex_count_ms},
        {"sort (radix)", analytic.phases.sort_ms, sim.graph.phases.sort_ms},
        {"node array", analytic.phases.node_array_ms,
         sim.graph.phases.node_array_ms},
        {"mark backward", analytic.phases.mark_backward_ms,
         sim.graph.phases.mark_backward_ms},
        {"remove_if", analytic.phases.remove_ms, sim.graph.phases.remove_ms},
        {"unzip", analytic.phases.unzip_ms, sim.graph.phases.unzip_ms},
        {"node array rebuild", analytic.phases.node_array2_ms,
         sim.graph.phases.node_array2_ms},
    };
    for (const auto& step : steps) {
      std::ostringstream ratio;
      ratio.precision(2);
      ratio.setf(std::ios::fixed);
      ratio << (step.analytic_ms > 0 ? step.simulated_ms / step.analytic_ms
                                     : 0.0);
      table.row()
          .cell(step.name)
          .cell(step.analytic_ms, 3)
          .cell(step.simulated_ms, 3)
          .cell(ratio.str());
    }
    table.row()
        .cell("TOTAL (excl. H2D)")
        .cell(analytic.phases.preprocessing_ms() - analytic.phases.h2d_ms, 3)
        .cell(sim.graph.phases.preprocessing_ms() - sim.graph.phases.h2d_ms, 3)
        .cell("");
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Expected shape: ratios near 1 for the streaming steps; sort "
               "dominates preprocessing in both models (the SIII-E Amdahl "
               "premise).\n";
  return 0;
}
