// Experiment E19 — design-choice ablation: degree orientation vs id
// orientation (DESIGN.md §5).
//
// The forward algorithm's degree orientation bounds every oriented list by
// sqrt(2m) (§II-B), which is what makes it "more robust to skewed degree
// distributions" than edge-iterator. Orienting by vertex id instead is
// equally correct but leaves hub vertices with huge forward lists, blowing
// up the per-edge intersections on power-law graphs. This bench runs the
// GPU pipeline both ways and reports kernel time and the max oriented list
// length.

#include <cmath>
#include <iostream>
#include <sstream>

#include "graph/orientation.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== Orientation ablation: degree order vs id order "
               "(GTX 980) ===\n\n";

  auto suite = bench::evaluation_suite();
  util::Table table({"Graph", "deg-orient [ms]", "id-orient [ms]", "slowdown",
                     "maxlist deg", "maxlist id", "sqrt(2m)"});

  for (std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{8},
                        std::size_t{11}, std::size_t{12}}) {
    const auto& row = suite[i];
    std::cerr << "[orientation] " << row.name << " ...\n";
    const auto device = bench::bench_device(simt::DeviceConfig::gtx_980(), row);

    core::GpuForwardCounter by_degree(device, bench::bench_options());
    const auto r_degree = by_degree.count(row.edges);

    auto id_options = bench::bench_options();
    id_options.orient_by_degree = false;
    core::GpuForwardCounter by_id(device, id_options);
    const auto r_id = by_id.count(row.edges);

    if (r_degree.triangles != r_id.triangles) {
      std::cerr << "MISMATCH on " << row.name << "\n";
      return 1;
    }

    const EdgeIndex maxlist_degree =
        max_oriented_degree(oriented_csr(row.edges));
    const EdgeIndex maxlist_id =
        Csr::from_edge_list(orient_by_id(row.edges)).max_degree();

    std::ostringstream slowdown;
    slowdown.precision(2);
    slowdown.setf(std::ios::fixed);
    slowdown << r_id.phases.counting_ms / r_degree.phases.counting_ms << "x";
    table.row()
        .cell(row.name)
        .cell(r_degree.phases.counting_ms, 2)
        .cell(r_id.phases.counting_ms, 2)
        .cell(slowdown.str())
        .cell(static_cast<std::uint64_t>(maxlist_degree))
        .cell(static_cast<std::uint64_t>(maxlist_id))
        .cell(std::sqrt(2.0 * static_cast<double>(row.edges.num_edges())), 0);
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: degree orientation keeps every list under "
               "sqrt(2m) and wins big on skewed graphs (the forward "
               "algorithm's SII-B advantage); id orientation leaves "
               "hub-length lists and much slower kernels.\n";
  return 0;
}
