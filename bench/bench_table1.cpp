// Experiment E1 — Table I: full evaluation matrix.
//
// Reproduces the paper's main results table: for each of the 13 evaluation
// graphs, the single-threaded CPU forward baseline (measured wall clock),
// the Tesla C2050 (modeled), 4x Tesla C2050 (modeled) and GTX 980 (modeled)
// pipelines, with the three speedup columns. Rows whose working set exceeds
// the (row-scaled) device memory take the §III-D6 CPU-preprocessing path
// and are marked with a dagger, exactly like the paper's Orkut and
// Kronecker-21 rows on the C2050.
//
// Expected shape vs the paper: C2050 speedup 8-17x, GTX 980 speedup 15-36x,
// 4-GPU speedup ~1x for preprocessing-bound graphs up to ~2.8x for
// triangle-rich Kronecker graphs.
//
// --threads N sets the host threads used by the per-SM simulation
// (0 = hardware concurrency; modeled results are identical for any value).
// Results land in BENCH_table1.json.

#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "multigpu/multi_gpu.hpp"
#include "report.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace trico;

std::string dagger(bool flag, double value, int digits = 0) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << (flag ? "†" : "") << value;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t threads = bench::threads_flag(argc, argv, 0);
  std::cout << "=== Table I: experimental results (paper-scale reference in "
               "EXPERIMENTS.md) ===\n";
  std::cout << "dagger = graph exceeded device memory; CPU preprocessing "
               "fallback used (SIII-D6)\n\n";

  auto suite = bench::evaluation_suite();
  auto options = bench::bench_options();
  options.sim.threads = threads;

  util::Table table({"Graph", "Nodes", "Edges", "Triangles", "CPU[ms]",
                     "C2050[ms]", "x", "4xC2050[ms]", "x", "GTX980[ms]", "x"});
  bool in_synthetic = false;
  table.section("Real world graphs");

  bench::Json graphs = bench::Json::array();
  util::Timer wall;
  for (const auto& row : suite) {
    if (!row.real_world && !in_synthetic) {
      table.section("Synthetic graphs");
      in_synthetic = true;
    }
    std::cerr << "[table1] " << row.name << " ..." << std::flush;

    const double cpu_ms = bench::cpu_baseline_ms(row.edges);

    core::GpuForwardCounter c2050(
        bench::bench_device(simt::DeviceConfig::tesla_c2050(), row), options);
    const auto r_c2050 = c2050.count(row.edges);

    multigpu::MultiGpuCounter c2050x4(
        bench::bench_device(simt::DeviceConfig::tesla_c2050(), row), 4,
        options);
    const auto r_c2050x4 = c2050x4.count(row.edges);

    core::GpuForwardCounter gtx(
        bench::bench_device(simt::DeviceConfig::gtx_980(), row), options);
    const auto r_gtx = gtx.count(row.edges);

    std::cerr << " done (tri=" << r_gtx.triangles << ")\n";

    table.row()
        .cell(row.name)
        .cell(util::human_count(row.edges.num_vertices()))
        .cell(util::human_count(row.edges.num_edge_slots()))
        .cell(util::human_count(r_gtx.triangles))
        .cell(cpu_ms, 0)
        .cell(dagger(r_c2050.used_cpu_preprocessing, r_c2050.phases.total_ms(), 1))
        .cell(cpu_ms / r_c2050.phases.total_ms(), 2)
        .cell(dagger(r_c2050x4.slices.empty() ? false
                                              : r_c2050.used_cpu_preprocessing,
                     r_c2050x4.total_ms(), 1))
        .cell(r_c2050.phases.total_ms() / r_c2050x4.total_ms(), 2)
        .cell(dagger(r_gtx.used_cpu_preprocessing, r_gtx.phases.total_ms(), 1))
        .cell(cpu_ms / r_gtx.phases.total_ms(), 2);

    graphs.push(
        bench::Json::object()
            .set("name", row.name)
            .set("vertices", static_cast<std::uint64_t>(row.edges.num_vertices()))
            .set("edge_slots",
                 static_cast<std::uint64_t>(row.edges.num_edge_slots()))
            .set("triangles", static_cast<std::uint64_t>(r_gtx.triangles))
            .set("cpu_ms", cpu_ms)
            .set("c2050_ms", r_c2050.phases.total_ms())
            .set("c2050_dagger", r_c2050.used_cpu_preprocessing)
            .set("c2050x4_ms", r_c2050x4.total_ms())
            .set("gtx980_ms", r_gtx.phases.total_ms())
            .set("gtx980_dagger", r_gtx.used_cpu_preprocessing)
            .set("speedup_c2050", cpu_ms / r_c2050.phases.total_ms())
            .set("speedup_4x", r_c2050.phases.total_ms() / r_c2050x4.total_ms())
            .set("speedup_gtx980", cpu_ms / r_gtx.phases.total_ms()));
  }
  const double wall_ms = wall.elapsed_ms();

  table.print(std::cout);
  std::cout << "\nSpeedup columns: GPU-over-CPU, 4-GPU-over-1-GPU, "
               "GPU-over-CPU (as in the paper).\n";

  bench::write_bench_report(
      "table1",
      bench::Json::object()
          .set("bench", "table1")
          .set("sample_sms", options.sim.sample_sms)
          .set("threads", threads)
          .set("hardware_concurrency",
               static_cast<std::uint64_t>(std::thread::hardware_concurrency()))
          .set("wall_clock_ms", wall_ms)
          .set("graphs", std::move(graphs)));
  return 0;
}
