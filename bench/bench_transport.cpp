// Experiment E23 — transport-layer overhead: wire codec and loopback RTT.
//
// The cross-process transport must not eat the speedup the engine earns, so
// this bench puts numbers on its two costs:
//
//   codec      encode_request + decode_request over graphs of increasing
//              size — MB/s through the framing layer (the per-request
//              serialization tax, paid once per wire hop);
//   loopback   full client → server → TriangleService → client round trips
//              over localhost TCP with a warm catalog, at 1 and 4 client
//              threads — requests/second including framing, checksums, the
//              dedup table and the scheduler, plus the heartbeat RTT as the
//              floor (a heartbeat is a frame round trip with no service
//              work attached).
//
// The loopback/heartbeat gap is the service-side cost; the heartbeat RTT
// itself is the wire tax. Results go to BENCH_transport.json.
//
// Flags:
//   --requests N   round trips per loopback measurement (default: 64)

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/generators.hpp"
#include "gen/reference.hpp"
#include "report.hpp"
#include "service/service.hpp"
#include "transport/client.hpp"
#include "transport/server.hpp"
#include "transport/wire.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

namespace {

using GraphPtr = std::shared_ptr<const EdgeList>;

struct CodecRow {
  std::string name;
  std::size_t payload_bytes = 0;
  double encode_ms = 0;
  double decode_ms = 0;
  double round_trip_mbps = 0;
};

CodecRow measure_codec(const std::string& name, const EdgeList& edges) {
  service::Request request;
  request.graph = std::make_shared<const EdgeList>(edges);
  request.op = service::Operation::kCount;
  request.backend = service::Backend::kCpuHybrid;
  request.tenant_id = "bench";

  CodecRow row;
  row.name = name;
  const std::vector<std::uint8_t> payload = transport::encode_request(request);
  row.payload_bytes = payload.size();

  constexpr std::size_t kReps = 20;
  row.encode_ms =
      util::repeat_timed(kReps, [&] {
        volatile std::size_t sink = transport::encode_request(request).size();
        (void)sink;
      }).mean_ms;
  row.decode_ms =
      util::repeat_timed(kReps, [&] {
        const service::Request decoded = transport::decode_request(payload);
        volatile std::size_t sink = decoded.graph->num_edge_slots();
        (void)sink;
      }).mean_ms;
  const double round_ms = row.encode_ms + row.decode_ms;
  row.round_trip_mbps =
      round_ms > 0 ? (row.payload_bytes / 1.0e6) / (round_ms / 1.0e3) : 0;
  return row;
}

struct LoopbackRow {
  int threads = 1;
  int requests = 0;
  double total_ms = 0;
  double requests_per_s = 0;
};

LoopbackRow measure_loopback(std::uint16_t port, int threads, int requests,
                             const GraphPtr& graph) {
  LoopbackRow row;
  row.threads = threads;
  row.requests = requests;

  util::Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      // Client is single-threaded by contract: one per worker thread.
      transport::ClientOptions copts;
      copts.port = port;
      transport::Client client(copts);
      for (int i = t; i < requests; i += threads) {
        service::Request request;
        request.graph = graph;
        request.op = service::Operation::kCount;
        request.backend = service::Backend::kCpuHybrid;
        request.tenant_id = "bench-" + std::to_string(t);
        (void)client.execute(request);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  row.total_ms = timer.elapsed_ms();
  row.requests_per_s =
      row.total_ms > 0 ? requests / (row.total_ms / 1.0e3) : 0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 64;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    }
  }

  // --- codec -------------------------------------------------------------
  std::vector<CodecRow> codec;
  codec.push_back(measure_codec("er-16k", gen::erdos_renyi(2000, 16'384, 1)));
  codec.push_back(measure_codec("er-131k", gen::erdos_renyi(8000, 131'072, 2)));
  codec.push_back(
      measure_codec("er-1m", gen::erdos_renyi(40'000, 1'048'576, 3)));

  util::Table codec_table({"Graph", "Payload B", "Encode ms", "Decode ms",
                           "MB/s"});
  codec_table.section("Wire codec");
  for (const CodecRow& row : codec) {
    codec_table.row()
        .cell(row.name)
        .cell(std::uint64_t{row.payload_bytes})
        .cell(row.encode_ms, 3)
        .cell(row.decode_ms, 3)
        .cell(row.round_trip_mbps, 1);
  }
  codec_table.print(std::cout);

  // --- loopback ------------------------------------------------------------
  service::TriangleService svc;
  transport::Server server(svc);
  server.start();

  const gen::ReferenceGraph reference = gen::complete(24);
  const auto graph = std::make_shared<const EdgeList>(reference.edges);

  // Warm the catalog so round trips measure transport, not preprocessing.
  (void)measure_loopback(server.port(), 1, 2, graph);

  std::vector<LoopbackRow> loopback;
  for (int threads : {1, 4}) {
    loopback.push_back(
        measure_loopback(server.port(), threads, requests, graph));
  }

  // Heartbeat RTT: a frame round trip with no service work attached.
  transport::ClientOptions copts;
  copts.port = server.port();
  transport::Client heartbeater(copts);
  const double heartbeat_ms =
      util::repeat_timed(50, [&] { (void)heartbeater.heartbeat(); }).mean_ms;
  heartbeater.disconnect();

  util::Table loop_table({"Clients", "Requests", "Total ms", "Req/s"});
  loop_table.section("Loopback round trip (warm catalog)");
  for (const LoopbackRow& row : loopback) {
    loop_table.row()
        .cell(row.threads)
        .cell(row.requests)
        .cell(row.total_ms, 1)
        .cell(row.requests_per_s, 1);
  }
  loop_table.print(std::cout);
  std::cout << "Heartbeat RTT: " << heartbeat_ms << " ms\n";

  server.stop();

  // --- report --------------------------------------------------------------
  bench::Json codec_json = bench::Json::array();
  for (const CodecRow& row : codec) {
    codec_json.push(bench::Json::object()
                        .set("graph", row.name)
                        .set("payload_bytes", std::uint64_t{row.payload_bytes})
                        .set("encode_ms", row.encode_ms)
                        .set("decode_ms", row.decode_ms)
                        .set("round_trip_mbps", row.round_trip_mbps));
  }
  bench::Json loop_json = bench::Json::array();
  for (const LoopbackRow& row : loopback) {
    loop_json.push(bench::Json::object()
                       .set("clients", row.threads)
                       .set("requests", row.requests)
                       .set("total_ms", row.total_ms)
                       .set("requests_per_s", row.requests_per_s));
  }
  bench::Json payload = bench::Json::object()
                            .set("experiment", "transport")
                            .set("codec", std::move(codec_json))
                            .set("loopback", std::move(loop_json))
                            .set("heartbeat_rtt_ms", heartbeat_ms);
  bench::write_bench_report("transport", payload);
  return 0;
}
