// Experiment E26 — distributed coordinator scaling: affinity vs scatter.
//
// The coordinator's claim is that a pool of supervised worker processes
// behaves like one service with more capacity. This bench puts numbers on
// the two plan modes across pool sizes:
//
//   affinity   many *distinct* small graphs routed whole by rendezvous
//              hashing — throughput should scale with workers because
//              different content keys land on different processes with
//              their own catalogs and thread pools;
//   scatter    one large graph sharded across the pool — per-request
//              latency should drop with workers because every request
//              fans its row ranges out in parallel.
//
// Each (workers, mode) cell reports requests/second and p50/p99 latency
// over concurrent submitters. Results go to BENCH_cluster.json.
//
// Flags:
//   --requests N   requests per measurement cell (default: 48)
//   --smoke        CI-sized run: fewer requests, pool sizes {1, 2}

#include <algorithm>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.hpp"
#include "gen/generators.hpp"
#include "report.hpp"
#include "service/request.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

#ifndef TRICO_CLI_PATH
#error "TRICO_CLI_PATH must be defined by the build (path to trico_cli)"
#endif

using namespace trico;

namespace {

using GraphPtr = std::shared_ptr<const EdgeList>;

struct Cell {
  int workers = 0;
  std::string mode;
  int requests = 0;
  double total_ms = 0;
  double requests_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto index = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

Cell measure(cluster::Coordinator& coordinator, int workers,
             const std::string& mode, const std::vector<GraphPtr>& graphs,
             int requests, int threads) {
  Cell cell;
  cell.workers = workers;
  cell.mode = mode;
  cell.requests = requests;

  std::mutex mutex;
  std::vector<double> latencies_ms;
  util::Timer timer;
  std::vector<std::thread> submitters;
  for (int t = 0; t < threads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = t; i < requests; i += threads) {
        service::Request request;
        request.graph = graphs[static_cast<std::size_t>(i) % graphs.size()];
        request.op = service::Operation::kCount;
        request.backend = service::Backend::kCpuHybrid;
        request.tenant_id = "bench-" + std::to_string(t);
        util::Timer rtt;
        const service::Response response =
            coordinator.execute(std::move(request));
        const double ms = rtt.elapsed_ms();
        if (response.status != service::Status::kOk) {
          std::cerr << "bench request failed: " << response.reason << "\n";
          continue;
        }
        std::lock_guard lock(mutex);
        latencies_ms.push_back(ms);
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  cell.total_ms = timer.elapsed_ms();
  cell.requests_per_s =
      cell.total_ms > 0
          ? static_cast<double>(latencies_ms.size()) / (cell.total_ms / 1.0e3)
          : 0;
  cell.p50_ms = percentile(latencies_ms, 0.50);
  cell.p99_ms = percentile(latencies_ms, 0.99);
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 48;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  std::vector<int> pool_sizes = smoke ? std::vector<int>{1, 2}
                                      : std::vector<int>{1, 2, 4};
  if (smoke) requests = std::min(requests, 16);

  // Affinity workload: distinct content keys so rendezvous hashing spreads
  // the graphs across the pool (one key always lands on one worker); enough
  // keys that the HRW placement is reasonably even at 4 slots.
  std::vector<GraphPtr> affinity_graphs;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    affinity_graphs.push_back(std::make_shared<const EdgeList>(
        gen::erdos_renyi(1500, 12'000, seed)));
  }
  // Scatter workload: one graph big enough that every request shards.
  gen::RmatParams params;
  params.scale = smoke ? 11 : 13;
  params.edge_factor = 8;
  std::vector<GraphPtr> scatter_graphs{
      std::make_shared<const EdgeList>(gen::rmat(params, 42))};

  std::vector<Cell> cells;
  for (const int workers : pool_sizes) {
    cluster::CoordinatorOptions copts;
    copts.supervisor.cli_path = TRICO_CLI_PATH;
    copts.supervisor.num_workers = workers;
    // Affinity graphs (12k edge slots) stay below; the rmat graph scatters.
    copts.scatter_edge_threshold = std::uint64_t{1} << 15;
    cluster::Coordinator coordinator(copts);
    coordinator.start();

    // Warm every worker's catalog so the cells measure steady-state
    // dispatch, not first-touch preprocessing.
    (void)measure(coordinator, workers, "warmup", affinity_graphs,
                  static_cast<int>(affinity_graphs.size()), 4);
    (void)measure(coordinator, workers, "warmup", scatter_graphs, 2, 1);

    // 8 submitters so the pool, not the client side, is the limiter —
    // per-worker dispatch lanes serialize at roughly one request per RTT,
    // so demand must exceed workers/RTT for scaling to be visible. (On a
    // host with fewer cores than workers+1 no scaling is physically
    // available; host_cores in the report says which regime this ran in.)
    cells.push_back(measure(coordinator, workers, "affinity", affinity_graphs,
                            requests, 8));
    cells.push_back(measure(coordinator, workers, "scatter", scatter_graphs,
                            requests, 2));
    coordinator.stop();
  }

  util::Table table({"Workers", "Mode", "Requests", "Total ms", "Req/s",
                     "p50 ms", "p99 ms"});
  table.section("Coordinator scaling (loopback worker pool)");
  for (const Cell& cell : cells) {
    table.row()
        .cell(cell.workers)
        .cell(cell.mode)
        .cell(cell.requests)
        .cell(cell.total_ms, 1)
        .cell(cell.requests_per_s, 1)
        .cell(cell.p50_ms, 2)
        .cell(cell.p99_ms, 2);
  }
  table.print(std::cout);

  bench::Json rows = bench::Json::array();
  for (const Cell& cell : cells) {
    rows.push(bench::Json::object()
                  .set("workers", cell.workers)
                  .set("mode", cell.mode)
                  .set("requests", cell.requests)
                  .set("total_ms", cell.total_ms)
                  .set("requests_per_s", cell.requests_per_s)
                  .set("p50_ms", cell.p50_ms)
                  .set("p99_ms", cell.p99_ms));
  }
  bench::Json payload =
      bench::Json::object()
          .set("experiment", "cluster")
          .set("smoke", smoke)
          .set("host_cores",
               std::uint64_t{std::thread::hardware_concurrency()})
          .set("cells", std::move(rows));
  bench::write_bench_report("cluster", payload);
  return 0;
}
