// Experiment E5 — §III-D1 ablation: unzipping edges (AoS -> SoA).
//
// The paper: the CountTriangles kernel runs 13-32% faster when the edge
// array is a structure of arrays, and the unzip conversion itself costs
// under 30 ms even for 200M-edge graphs. This bench compares the kernel in
// both layouts on each evaluation graph and reports the unzip cost.

#include <iostream>
#include <sstream>

#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-D1: unzip ablation (SoA vs AoS kernel, GTX 980) "
               "===\n\n";

  auto suite = bench::evaluation_suite();
  util::Table table({"Graph", "AoS kernel [ms]", "SoA kernel [ms]",
                     "SoA gain", "unzip cost [ms]"});

  double min_gain = 1e9, max_gain = -1e9;
  for (const auto& row : suite) {
    std::cerr << "[unzip] " << row.name << " ...\n";
    const auto device = bench::bench_device(simt::DeviceConfig::gtx_980(), row);

    auto soa_options = bench::bench_options();
    soa_options.variant.soa = true;
    core::GpuForwardCounter soa(device, soa_options);
    const auto r_soa = soa.count(row.edges);

    auto aos_options = bench::bench_options();
    aos_options.variant.soa = false;
    core::GpuForwardCounter aos(device, aos_options);
    const auto r_aos = aos.count(row.edges);

    if (r_soa.triangles != r_aos.triangles) {
      std::cerr << "MISMATCH on " << row.name << "\n";
      return 1;
    }
    const double gain = 100.0 * (r_aos.phases.counting_ms -
                                 r_soa.phases.counting_ms) /
                        r_soa.phases.counting_ms;
    min_gain = std::min(min_gain, gain);
    max_gain = std::max(max_gain, gain);

    std::ostringstream gain_text;
    gain_text.precision(1);
    gain_text.setf(std::ios::fixed);
    gain_text << gain << "%";
    table.row()
        .cell(row.name)
        .cell(r_aos.phases.counting_ms, 2)
        .cell(r_soa.phases.counting_ms, 2)
        .cell(gain_text.str())
        .cell(r_soa.phases.unzip_ms, 3);
  }

  table.print(std::cout);
  std::cout << "\nSoA kernel gain range: " << min_gain << "% .. " << max_gain
            << "% (paper: 13% .. 32%)\n";
  return 0;
}
