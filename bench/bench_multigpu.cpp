// Experiment E12 — §III-E multi-GPU scaling and the Amdahl bound.
//
// The paper: preprocessing runs on one device, so the 4-GPU speedup is
// bounded by 1/(p + (1-p)/4) where p is the preprocessing fraction
// (0.08-0.76 across the evaluation graphs, giving bounds 3.23-1.22). The
// largest gains are on Kronecker graphs with high triangles/edges ratios.
// This bench sweeps 1-4 Tesla C2050 devices over representative graphs and
// compares the measured speedup to the Amdahl prediction.

#include <iostream>

#include "multigpu/multi_gpu.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SIII-E: multi-GPU scaling (Tesla C2050) ===\n\n";

  auto suite = bench::evaluation_suite();
  util::Table table({"Graph", "preproc frac", "1 GPU [ms]", "2 GPU [ms]",
                     "3 GPU [ms]", "4 GPU [ms]", "4-GPU speedup",
                     "Amdahl bound"});

  // Internet topology: preprocessing-heavy. Kronecker rows: counting-heavy.
  for (std::size_t i : {std::size_t{0}, std::size_t{3}, std::size_t{7},
                        std::size_t{9}, std::size_t{10}}) {
    const auto& row = suite[i];
    std::cerr << "[multigpu] " << row.name << " ...\n";
    const auto device =
        bench::bench_device(simt::DeviceConfig::tesla_c2050(), row);

    double totals[4];
    double fraction = 0;
    TriangleCount expected = 0;
    for (unsigned devices = 1; devices <= 4; ++devices) {
      multigpu::MultiGpuCounter counter(device, devices, bench::bench_options());
      const auto r = counter.count(row.edges);
      totals[devices - 1] = r.total_ms();
      if (devices == 1) {
        expected = r.triangles;
        fraction = r.preprocessing_ms / r.total_ms();
      } else if (r.triangles != expected) {
        std::cerr << "MISMATCH on " << row.name << " at " << devices
                  << " devices\n";
        return 1;
      }
    }

    table.row()
        .cell(row.name)
        .cell(fraction, 2)
        .cell(totals[0], 1)
        .cell(totals[1], 1)
        .cell(totals[2], 1)
        .cell(totals[3], 1)
        .cell(totals[0] / totals[3], 2)
        .cell(multigpu::amdahl_max_speedup(fraction, 4), 2);
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: measured 4-GPU speedup approaches but does "
               "not exceed the Amdahl bound; Kronecker graphs scale best "
               "(paper: up to 2.8x), preprocessing-bound graphs stay near "
               "1x.\n";
  return 0;
}
