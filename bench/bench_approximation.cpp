// Experiment E15 — §V related-work: exact GPU pipeline vs approximation.
//
// The paper positions its exact GPU counter against approximation
// algorithms: approximations are fast and small-memory but only
// approximate. This bench quantifies that trade-off on the evaluation
// suite's LiveJournal stand-in: exact CPU forward, exact GPU (modeled),
// DOULION at several sparsification levels, and wedge sampling at several
// sample sizes, with measured error.

#include <iostream>
#include <sstream>

#include "cpu/approx.hpp"
#include "cpu/counting.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

int main() {
  std::cout << "=== SV: exact vs approximate counting ===\n\n";

  auto suite = bench::evaluation_suite();
  const auto& row = suite[1];  // livejournal stand-in
  std::cout << "graph: " << row.name << ", " << row.edges.num_edge_slots()
            << " slots\n\n";

  const double exact_ms = bench::cpu_baseline_ms(row.edges);
  const auto exact = static_cast<double>(cpu::count_forward(row.edges));

  core::GpuForwardCounter gtx(
      bench::bench_device(simt::DeviceConfig::gtx_980(), row),
      bench::bench_options());
  const auto gpu = gtx.count(row.edges);

  util::Table table({"method", "estimate", "error %", "time [ms]", "exact?"});
  table.row()
      .cell("CPU forward")
      .cell(static_cast<std::uint64_t>(exact))
      .cell("0.00")
      .cell(exact_ms, 1)
      .cell("yes");
  table.row()
      .cell("GPU pipeline (modeled)")
      .cell(static_cast<std::uint64_t>(gpu.triangles))
      .cell("0.00")
      .cell(gpu.phases.total_ms(), 1)
      .cell("yes");

  auto err_pct = [&](double estimate) {
    std::ostringstream out;
    out.precision(2);
    out.setf(std::ios::fixed);
    out << 100.0 * (estimate - exact) / exact;
    return out.str();
  };

  for (double p : {0.5, 0.25, 0.1}) {
    util::Timer timer;
    const auto r = cpu::count_doulion(row.edges, p, 17);
    const double ms = timer.elapsed_ms();
    std::ostringstream name;
    name << "DOULION p=" << p;
    table.row()
        .cell(name.str())
        .cell(static_cast<std::uint64_t>(r.estimate))
        .cell(err_pct(r.estimate))
        .cell(ms, 1)
        .cell("no");
  }
  for (std::uint64_t samples : {20000ull, 200000ull}) {
    util::Timer timer;
    const auto r = cpu::count_wedge_sampling(row.edges, samples, 17);
    const double ms = timer.elapsed_ms();
    std::ostringstream name;
    name << "wedge sampling n=" << samples;
    table.row()
        .cell(name.str())
        .cell(static_cast<std::uint64_t>(r.estimate))
        .cell(err_pct(r.estimate))
        .cell(ms, 1)
        .cell("no");
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: approximations run several times faster "
               "than the exact CPU count at a few percent error; the exact "
               "GPU pipeline beats both on speed while staying exact.\n";
  return 0;
}
