// Experiment E13 — §V multicore-CPU comparison.
//
// The paper cites a 7x speedup for a parallel counting algorithm on a
// 6-core/12-thread CPU and argues a large multiprocessor could approach GPU
// performance at a higher price. This bench measures our multicore forward
// (counting phase parallelized over oriented edges on the prim thread pool)
// across thread counts. NOTE: this machine exposes
// std::thread::hardware_concurrency() hardware threads; on a single-core
// host the measured speedup is necessarily ~1x and the bench reports the
// work distribution instead (per-thread share balance), which is the
// machine-independent half of the claim.

#include <iostream>
#include <thread>

#include "cpu/counting.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

int main() {
  std::cout << "=== SV: multicore CPU forward ===\n";
  std::cout << "hardware threads on this machine: "
            << std::thread::hardware_concurrency() << "\n\n";

  auto suite = bench::evaluation_suite();
  const auto& row = suite[1];  // livejournal stand-in
  std::cout << "graph: " << row.name << ", " << row.edges.num_edge_slots()
            << " slots\n\n";

  const double sequential_ms = bench::cpu_baseline_ms(row.edges);
  const TriangleCount expected = cpu::count_forward(row.edges);

  util::Table table({"threads", "time [ms]", "speedup vs sequential"});
  table.row().cell("1 (sequential)").cell(sequential_ms, 1).cell(1.0, 2);

  for (std::size_t threads : {1u, 2u, 4u, 8u, 12u}) {
    prim::ThreadPool pool(threads);
    TriangleCount count = 0;
    std::vector<double> times;
    for (int rep = 0; rep < 3; ++rep) {
      util::Timer timer;
      count = cpu::count_forward_multicore(row.edges, pool);
      times.push_back(timer.elapsed_ms());
    }
    if (count != expected) {
      std::cerr << "MISMATCH at " << threads << " threads\n";
      return 1;
    }
    std::sort(times.begin(), times.end());
    const double ms = times[1];
    table.row()
        .cell(std::to_string(threads) + " (pool)")
        .cell(ms, 1)
        .cell(sequential_ms / ms, 2);
  }

  table.print(std::cout);
  std::cout << "\nPaper reference: ~7x on 6 cores / 12 hyper-threads. On a "
               "machine with fewer hardware threads the pool cannot show "
               "that speedup; correctness and overhead are what this bench "
               "verifies there.\n";
  return 0;
}
