// Experiment E13 — §V multicore-CPU comparison.
//
// The paper cites a 7x speedup for a parallel counting algorithm on a
// 6-core/12-thread CPU and argues a large multiprocessor could approach GPU
// performance at a higher price. This bench measures our multicore forward
// (now parallel end to end: preprocessing AND counting on the prim thread
// pool) across thread counts, and reports the per-phase breakdown so the
// Amdahl serial fraction is visible directly. NOTE: this machine exposes
// std::thread::hardware_concurrency() hardware threads; on a single-core
// host the measured speedup is necessarily ~1x and the bench reports the
// work distribution instead, which is the machine-independent half of the
// claim.
//
// Flags:
//   --graph <name>   bench only the named suite row (default: whole suite)

#include <algorithm>
#include <cstring>
#include <iostream>
#include <thread>

#include "cpu/counting.hpp"
#include "report.hpp"
#include "suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace trico;

int main(int argc, char** argv) {
  std::cout << "=== SV: multicore CPU forward ===\n";
  std::cout << "hardware threads on this machine: "
            << std::thread::hardware_concurrency() << "\n\n";

  std::string only_graph;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--graph") == 0 && i + 1 < argc) {
      only_graph = argv[i + 1];
    }
  }

  auto suite = bench::evaluation_suite();
  bench::Json rows = bench::Json::array();
  bool matched = false;

  for (const auto& row : suite) {
    if (!only_graph.empty() && row.name != only_graph) continue;
    matched = true;
    std::cout << "graph: " << row.name << ", " << row.edges.num_edge_slots()
              << " slots\n";

    const double sequential_ms = bench::cpu_baseline_ms(row.edges);
    const TriangleCount expected = cpu::count_forward(row.edges);

    util::Table table({"threads", "time [ms]", "speedup vs sequential",
                       "preprocess [ms]", "counting [ms]"});
    table.row().cell("1 (sequential)").cell(sequential_ms, 1).cell(1.0, 2)
        .cell("-").cell("-");

    bench::Json scaling = bench::Json::array();
    for (std::size_t threads : {1u, 2u, 4u, 8u, 12u}) {
      prim::ThreadPool pool(threads);
      TriangleCount count = 0;
      cpu::EngineResult breakdown;
      std::vector<double> times;
      for (int rep = 0; rep < 3; ++rep) {
        util::Timer timer;
        count = cpu::count_forward_multicore(row.edges, pool, &breakdown);
        times.push_back(timer.elapsed_ms());
      }
      if (count != expected) {
        std::cerr << "MISMATCH at " << threads << " threads\n";
        return 1;
      }
      std::sort(times.begin(), times.end());
      const double ms = times[1];
      table.row()
          .cell(std::to_string(threads) + " (pool)")
          .cell(ms, 1)
          .cell(sequential_ms / ms, 2)
          .cell(breakdown.preprocess.total_ms(), 1)
          .cell(breakdown.counting.counting_ms, 1);
      scaling.push(bench::Json::object()
                       .set("threads", static_cast<std::uint64_t>(threads))
                       .set("total_ms", ms)
                       .set("speedup", sequential_ms / ms)
                       .set("preprocess_ms", breakdown.preprocess.total_ms())
                       .set("counting_ms", breakdown.counting.counting_ms));
    }

    table.print(std::cout);
    std::cout << "\n";
    rows.push(bench::Json::object()
                  .set("graph", row.name)
                  .set("edge_slots", row.edges.num_edge_slots())
                  .set("sequential_ms", sequential_ms)
                  .set("scaling", std::move(scaling)));
  }

  if (!matched) {
    std::cerr << "no suite row named '" << only_graph << "'\n";
    return 1;
  }

  bench::write_bench_report("multicore_cpu",
                            bench::Json::object()
                                .set("experiment", "multicore_cpu")
                                .set("rows", std::move(rows)));

  std::cout << "Paper reference: ~7x on 6 cores / 12 hyper-threads. On a "
               "machine with fewer hardware threads the pool cannot show "
               "that speedup; correctness and overhead are what this bench "
               "verifies there. Preprocessing is parallel too, so the "
               "per-phase columns expose the remaining Amdahl fraction.\n";
  return 0;
}
