#include "report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

namespace trico::bench {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";  // NaN/inf are not valid JSON
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  out += buf;
}

}  // namespace

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) {
    throw std::logic_error("Json::set on a non-object");
  }
  children_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) {
    throw std::logic_error("Json::push on a non-array");
  }
  children_.emplace_back(std::string{}, std::move(value));
  return *this;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad((depth + 1) * indent, ' ');
  const std::string close_pad(depth * indent, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kUint: out += std::to_string(uint_); break;
    case Kind::kDouble: append_double(out, double_); break;
    case Kind::kString: append_escaped(out, string_); break;
    case Kind::kArray:
    case Kind::kObject: {
      const bool object = kind_ == Kind::kObject;
      out += object ? '{' : '[';
      for (std::size_t i = 0; i < children_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += pad;
        if (object) {
          append_escaped(out, children_[i].first);
          out += ": ";
        }
        children_[i].second.write(out, indent, depth + 1);
      }
      if (!children_.empty()) {
        out += '\n';
        out += close_pad;
      }
      out += object ? '}' : ']';
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  out += '\n';
  return out;
}

std::string write_bench_report(const std::string& name, const Json& payload) {
  const std::string path = "BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write " + path);
  }
  out << payload.dump();
  std::cerr << "[report] wrote " << path << "\n";
  return path;
}

}  // namespace trico::bench
