// Experiment E17 — §V related-work: merge kernel vs binary-search kernel,
// and the clustering-coefficient overhead.
//
// Two comparisons from the paper's related-work section:
//  * Green et al. [15] parallelize the intersection with binary searches;
//    the paper reports "roughly two times lower execution times" for its
//    simple per-edge merge on the two shared datasets (Citeseer, DBLP).
//    This bench runs both intersection strategies on the same simulated
//    GTX 980.
//  * Leist et al. [13] compute the clustering coefficient (triangles + two-
//    edge paths); the paper argues the wedge part gives "at most two times
//    advantage". The analyzer measures the actual overhead.

#include <iostream>
#include <sstream>

#include "core/gpu_clustering.hpp"
#include "suite.hpp"
#include "util/table.hpp"

using namespace trico;

int main() {
  std::cout << "=== SV: intersection-strategy and clustering-overhead "
               "comparison (GTX 980) ===\n\n";

  auto suite = bench::evaluation_suite();

  std::cout << "--- merge (ours) vs binary search ([15]-style) kernels ---\n";
  util::Table kernels({"Graph", "merge [ms]", "binary search [ms]",
                       "merge advantage"});
  for (std::size_t i : {std::size_t{3}, std::size_t{4}, std::size_t{8},
                        std::size_t{12}}) {
    const auto& row = suite[i];
    std::cerr << "[kernelcmp] " << row.name << " ...\n";
    const auto device = bench::bench_device(simt::DeviceConfig::gtx_980(), row);

    core::GpuForwardCounter merge(device, bench::bench_options());
    const auto r_merge = merge.count(row.edges);

    auto search_options = bench::bench_options();
    search_options.strategy = core::IntersectionStrategy::kBinarySearch;
    core::GpuForwardCounter search(device, search_options);
    const auto r_search = search.count(row.edges);

    if (r_merge.triangles != r_search.triangles) {
      std::cerr << "MISMATCH on " << row.name << "\n";
      return 1;
    }
    std::ostringstream advantage;
    advantage.precision(2);
    advantage.setf(std::ios::fixed);
    advantage << r_search.phases.counting_ms / r_merge.phases.counting_ms
              << "x";
    kernels.row()
        .cell(row.name)
        .cell(r_merge.phases.counting_ms, 2)
        .cell(r_search.phases.counting_ms, 2)
        .cell(advantage.str());
  }
  kernels.print(std::cout);
  std::cout << "(paper: ~2x lower execution time than [15] on Citeseer and "
               "DBLP)\n\n";

  std::cout << "--- clustering-coefficient overhead ([13]'s problem) ---\n";
  util::Table clustering({"Graph", "triangles [ms]", "wedges [ms]",
                          "total [ms]", "overhead", "transitivity"});
  for (std::size_t i : {std::size_t{1}, std::size_t{8}, std::size_t{12}}) {
    const auto& row = suite[i];
    std::cerr << "[clustering] " << row.name << " ...\n";
    core::GpuClusteringAnalyzer analyzer(
        bench::bench_device(simt::DeviceConfig::gtx_980(), row),
        bench::bench_options());
    const auto r = analyzer.analyze(row.edges);
    std::ostringstream overhead;
    overhead.precision(1);
    overhead.setf(std::ios::fixed);
    overhead << 100.0 * r.wedge_ms / r.triangle_ms << "%";
    clustering.row()
        .cell(row.name)
        .cell(r.triangle_ms, 2)
        .cell(r.wedge_ms, 3)
        .cell(r.total_ms(), 2)
        .cell(overhead.str())
        .cell(r.transitivity(), 4);
  }
  clustering.print(std::cout);
  std::cout << "(paper's bound: wedge counting costs at most as much as "
               "triangle counting — in practice far less)\n";
  return 0;
}
