#include "core/gpu_clustering.hpp"

#include <utility>
#include <vector>

#include "core/per_vertex_kernel.hpp"
#include "core/preprocess.hpp"
#include "simt/cost_model.hpp"

namespace trico::core {

double GpuLocalClusteringResult::global_coefficient(
    const std::vector<EdgeIndex>& degree) const {
  double sum = 0.0;
  std::uint64_t eligible = 0;
  for (std::size_t v = 0; v < local_coefficient.size(); ++v) {
    if (degree[v] >= 2) {
      sum += local_coefficient[v];
      ++eligible;
    }
  }
  return eligible > 0 ? sum / static_cast<double>(eligible) : 0.0;
}

GpuClusteringAnalyzer::GpuClusteringAnalyzer(simt::DeviceConfig device,
                                             CountingOptions options)
    : device_config_(std::move(device)), options_(options) {}

GpuClusteringResult GpuClusteringAnalyzer::analyze(const EdgeList& edges) {
  GpuClusteringResult result;

  // Phase 1: the triangle pipeline, unchanged.
  GpuForwardCounter counter(device_config_, options_);
  const GpuCountResult triangles = counter.count(edges);
  result.triangles = triangles.triangles;
  result.triangle_ms = triangles.phases.total_ms();

  // Phase 2: wedges. Degrees come from one host pass (the preprocessing
  // already computed them; we charge one stream pass + the upload).
  const std::vector<EdgeIndex> degrees64 = edges.degrees();
  std::vector<std::uint32_t> degrees(degrees64.begin(), degrees64.end());

  const simt::CostModel cost(device_config_);
  simt::Device device(device_config_);
  const auto degree_span = device.upload<std::uint32_t>(degrees);
  WedgeCountKernel kernel(degree_span);
  const simt::KernelStats stats =
      simt::launch_kernel(device, options_.launch, kernel, options_.sim);
  result.wedges = kernel.total();
  result.wedge_ms = cost.transfer_ms(degrees.size() * 4) + stats.time_ms +
                    cost.result_reduce_ms(
                        options_.launch.total_threads(device_config_));
  return result;
}

GpuLocalClusteringResult GpuClusteringAnalyzer::analyze_local(
    const EdgeList& edges) {
  prim::ThreadPool pool;
  const PreprocessedGraph pre =
      preprocess_for_device(edges, device_config_, options_, pool);

  simt::Device device(device_config_);
  OrientedDeviceGraph graph;
  graph.num_edges = pre.oriented.size();
  if (options_.variant.soa) {
    graph.src = device.upload<VertexId>(pre.soa.src);
    graph.dst = device.upload<VertexId>(pre.soa.dst);
  } else {
    graph.pairs = device.upload<Edge>(pre.oriented);
  }
  graph.node = device.upload<std::uint32_t>(pre.node);

  GpuLocalClusteringResult result;
  result.per_vertex_triangles.assign(pre.num_vertices, 0);
  const std::uint64_t counter_addr =
      device.reserve(static_cast<std::uint64_t>(pre.num_vertices) * 8);
  PerVertexCountKernel kernel(graph, options_.variant,
                              result.per_vertex_triangles.data(),
                              counter_addr);
  const simt::KernelStats stats =
      simt::launch_kernel(device, options_.launch, kernel, options_.sim);
  result.kernel_ms = stats.time_ms;

  const std::vector<EdgeIndex> degree = edges.degrees();
  result.local_coefficient.assign(pre.num_vertices, 0.0);
  for (VertexId v = 0; v < pre.num_vertices; ++v) {
    if (degree[v] >= 2) {
      const auto d = static_cast<double>(degree[v]);
      result.local_coefficient[v] =
          2.0 * static_cast<double>(result.per_vertex_triangles[v]) /
          (d * (d - 1.0));
    }
  }
  return result;
}

}  // namespace trico::core
