// The preprocessing phase (§III-B) as simulated device kernels.
//
// GpuForwardCounter normally charges preprocessing with the analytic
// streaming cost model (simt::CostModel) because these primitives are
// bandwidth-bound and regular. This header provides the faithful
// alternative: every step as a grid-stride kernel on the SIMT simulator,
// including the paper's step-4 construction ("running m-1 threads and
// letting k-th thread examine edges k and k+1 ... It may happen that the
// thread stores this value in more than one cell when there is a vertex
// with an empty adjacency list"). DevicePreprocessor (preprocess_sim.hpp)
// chains them; bench_preprocessing compares the simulated step times
// against the analytic model — a validation experiment for the cost model
// itself.
//
// Writes are charged through the same Sink interface as reads (the memory
// system routes non-read-only accesses around the per-SM cache, which
// matches GPU write-no-allocate behaviour closely enough for traffic
// accounting).

#pragma once

#include <algorithm>
#include <cstdint>

#include "graph/types.hpp"
#include "simt/device.hpp"
#include "simt/runner.hpp"

namespace trico::core {

/// Step 2: vertex count via max-reduce over the edge pairs.
class MaxVertexKernel {
 public:
  explicit MaxVertexKernel(simt::DeviceSpan<Edge> pairs) : pairs_(pairs) {}

  struct State {
    std::uint64_t i = 0;
    std::uint64_t stride = 0;
    VertexId best = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.i = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.i >= pairs_.size()) return false;
    const Edge& e = pairs_[state.i];
    sink.read(pairs_.addr(state.i), 8, true);
    state.best = std::max({state.best, e.u, e.v});
    state.i += state.stride;
    return true;
  }

  void retire(const State& state) {
    if (state.best + 1 > num_vertices_) num_vertices_ = state.best + 1;
  }
  /// max id + 1 over all retired threads (0 for an empty edge array).
  [[nodiscard]] VertexId num_vertices() const {
    return pairs_.empty() ? 0 : num_vertices_;
  }

 private:
  simt::DeviceSpan<Edge> pairs_;
  VertexId num_vertices_ = 0;
};

/// Step 4/8: node-array construction over the *sorted* pair array. Thread k
/// compares the first vertices of slots k and k+1 and backfills every node
/// cell in (src[k], src[k+1]] with k+1 — multiple cells when vertices have
/// empty adjacency lists, exactly as the paper describes. Boundary cells
/// (up to src[0], and after src[m-1]) are handled by the caller.
class NodeArrayKernel {
 public:
  NodeArrayKernel(simt::DeviceSpan<Edge> sorted_pairs,
                  std::uint32_t* node_out, std::uint64_t node_base_addr)
      : pairs_(sorted_pairs), node_(node_out), node_addr_(node_base_addr) {}

  struct State {
    std::uint64_t k = 0;
    std::uint64_t stride = 0;
    VertexId write_v = 0;
    VertexId write_end = 0;  ///< inclusive
    std::uint32_t value = 0;
    std::uint8_t phase = 0;  ///< 0 = compare, 1 = backfill
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.k = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.phase == 0) {
      if (state.k + 1 >= pairs_.size()) return false;
      const VertexId a = pairs_[state.k].u;
      const VertexId b = pairs_[state.k + 1].u;
      sink.read(pairs_.addr(state.k), 4, true);
      sink.read(pairs_.addr(state.k + 1), 4, true);
      if (a == b) {
        state.k += state.stride;
        return true;
      }
      state.write_v = a + 1;
      state.write_end = b;
      state.value = static_cast<std::uint32_t>(state.k + 1);
      state.phase = 1;
      return true;
    }
    // Backfill one cell per step (divergent for gappy vertex ranges, like
    // the real kernel).
    node_[state.write_v] = state.value;
    sink.read(node_addr_ + state.write_v * 4, 4, false);
    if (state.write_v == state.write_end) {
      state.phase = 0;
      state.k += state.stride;
      return true;
    }
    ++state.write_v;
    return true;
  }

  void retire(const State&) {}

 private:
  simt::DeviceSpan<Edge> pairs_;
  std::uint32_t* node_;
  std::uint64_t node_addr_;
};

/// Step 5: mark backward slots. Degrees are read off the node array
/// (deg(v) = node[v+1] - node[v]); ties break toward the larger id.
class MarkBackwardKernel {
 public:
  MarkBackwardKernel(simt::DeviceSpan<Edge> pairs,
                     simt::DeviceSpan<std::uint32_t> node,
                     std::uint8_t* flags_out, std::uint64_t flags_base_addr)
      : pairs_(pairs), node_(node), flags_(flags_out),
        flags_addr_(flags_base_addr) {}

  struct State {
    std::uint64_t i = 0;
    std::uint64_t stride = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.i = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.i >= pairs_.size()) return false;
    const Edge& e = pairs_[state.i];
    sink.read(pairs_.addr(state.i), 8, true);
    const std::uint32_t deg_u = node_[e.u + 1] - node_[e.u];
    const std::uint32_t deg_v = node_[e.v + 1] - node_[e.v];
    sink.read(node_.addr(e.u), 8, true);      // node[u], node[u+1] pair
    sink.read(node_.addr(e.v), 8, true);
    flags_[state.i] =
        deg_u != deg_v ? (deg_u > deg_v ? 1 : 0) : (e.u > e.v ? 1 : 0);
    sink.read(flags_addr_ + state.i, 1, false);
    state.i += state.stride;
    return true;
  }

  void retire(const State&) {}

 private:
  simt::DeviceSpan<Edge> pairs_;
  simt::DeviceSpan<std::uint32_t> node_;
  std::uint8_t* flags_;
  std::uint64_t flags_addr_;
};

/// Step 6 scatter half: given precomputed output positions (the scan is a
/// separate streaming pass), copy unflagged slots to their compacted
/// position. Mirrors thrust::remove_if's gather pass.
class CompactKernel {
 public:
  CompactKernel(simt::DeviceSpan<Edge> pairs,
                simt::DeviceSpan<std::uint8_t> flags,
                simt::DeviceSpan<std::uint32_t> positions, Edge* out,
                std::uint64_t out_base_addr)
      : pairs_(pairs), flags_(flags), positions_(positions), out_(out),
        out_addr_(out_base_addr) {}

  struct State {
    std::uint64_t i = 0;
    std::uint64_t stride = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.i = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.i >= pairs_.size()) return false;
    sink.read(flags_.addr(state.i), 1, true);
    if (!flags_[state.i]) {
      const std::uint32_t pos = positions_[state.i];
      sink.read(positions_.addr(state.i), 4, true);
      out_[pos] = pairs_[state.i];
      sink.read(pairs_.addr(state.i), 8, true);
      sink.read(out_addr_ + pos * sizeof(Edge), 8, false);
    }
    state.i += state.stride;
    return true;
  }

  void retire(const State&) {}

 private:
  simt::DeviceSpan<Edge> pairs_;
  simt::DeviceSpan<std::uint8_t> flags_;
  simt::DeviceSpan<std::uint32_t> positions_;
  Edge* out_;
  std::uint64_t out_addr_;
};

/// Step 7: AoS -> SoA unzip.
class UnzipKernel {
 public:
  UnzipKernel(simt::DeviceSpan<Edge> pairs, VertexId* src_out,
              VertexId* dst_out, std::uint64_t src_base_addr,
              std::uint64_t dst_base_addr)
      : pairs_(pairs), src_(src_out), dst_(dst_out), src_addr_(src_base_addr),
        dst_addr_(dst_base_addr) {}

  struct State {
    std::uint64_t i = 0;
    std::uint64_t stride = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.i = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.i >= pairs_.size()) return false;
    const Edge& e = pairs_[state.i];
    sink.read(pairs_.addr(state.i), 8, true);
    src_[state.i] = e.u;
    dst_[state.i] = e.v;
    sink.read(src_addr_ + state.i * 4, 4, false);
    sink.read(dst_addr_ + state.i * 4, 4, false);
    state.i += state.stride;
    return true;
  }

  void retire(const State&) {}

 private:
  simt::DeviceSpan<Edge> pairs_;
  VertexId* src_;
  VertexId* dst_;
  std::uint64_t src_addr_;
  std::uint64_t dst_addr_;
};

/// One LSD radix-sort pass (step 3): read the key at i, write it to its
/// precomputed destination (the per-digit offsets come from a histogram
/// pass the orchestrator charges separately). The scattered writes are what
/// makes sort the most expensive preprocessing step.
class RadixScatterKernel {
 public:
  RadixScatterKernel(simt::DeviceSpan<std::uint64_t> keys,
                     simt::DeviceSpan<std::uint32_t> destinations,
                     std::uint64_t* out, std::uint64_t out_base_addr)
      : keys_(keys), destinations_(destinations), out_(out),
        out_addr_(out_base_addr) {}

  struct State {
    std::uint64_t i = 0;
    std::uint64_t stride = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.i = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.i >= keys_.size()) return false;
    sink.read(keys_.addr(state.i), 8, true);
    const std::uint32_t dest = destinations_[state.i];
    sink.read(destinations_.addr(state.i), 4, true);
    out_[dest] = keys_[state.i];
    sink.read(out_addr_ + dest * 8, 8, false);
    state.i += state.stride;
    return true;
  }

  void retire(const State&) {}

 private:
  simt::DeviceSpan<std::uint64_t> keys_;
  simt::DeviceSpan<std::uint32_t> destinations_;
  std::uint64_t* out_;
  std::uint64_t out_addr_;
};

}  // namespace trico::core
