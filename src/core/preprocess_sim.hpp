// Fully-simulated preprocessing (§III-B steps 1-8 as device kernels).
//
// The default pipeline charges preprocessing with the analytic streaming
// model; this orchestrator instead *runs* every step as a kernel on the
// SIMT simulator (see preprocess_kernels.hpp) and reports per-step
// simulated times. Results are bit-identical to the host path — the tests
// assert it — and bench_preprocessing uses the two paths to validate the
// analytic cost model against the simulation.

#pragma once

#include "core/preprocess.hpp"
#include "simt/launch.hpp"

namespace trico::core {

/// Per-step simulated kernel statistics.
struct SimulatedPreprocessing {
  PreprocessedGraph graph;     ///< same contract as preprocess_for_device
  simt::KernelStats vertex_count;
  simt::KernelStats sort_scatter;  ///< summed over radix passes
  std::uint32_t sort_passes = 0;
  simt::KernelStats node_array;
  simt::KernelStats mark_backward;
  simt::KernelStats compact;
  simt::KernelStats unzip;
  simt::KernelStats node_array2;
};

/// Runs the preprocessing phase on the simulator. Does not implement the
/// §III-D6 CPU fallback (callers wanting it use the analytic path).
[[nodiscard]] SimulatedPreprocessing simulate_preprocessing(
    const EdgeList& edges, const simt::DeviceConfig& device,
    const CountingOptions& options);

}  // namespace trico::core
