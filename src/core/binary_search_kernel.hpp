// Binary-search intersection kernel — the strategy of Green et al. [15]
// ("Fast triangle counting on the GPU", IA3'14), which the paper compares
// against in §V: "The most recent work ... proposes much more elaborate
// algorithm ... Despite this, our algorithm achieves roughly two times
// lower execution times".
//
// One thread per oriented edge (same decomposition as CountTriangles), but
// the intersection searches each element of the *shorter* endpoint list in
// the longer one by binary search: O(len_short * log(len_long)) with a
// scattered access pattern, instead of the merge's O(len_short + len_long)
// with two sequential streams. On skewed graphs the binary search does less
// arithmetic but its irregular probes waste cache lines — which is exactly
// why the paper's simple merge wins end to end.

#pragma once

#include <cstdint>

#include "core/count_kernels.hpp"

namespace trico::core {

/// Per-edge binary-search triangle counting over the oriented device graph.
/// Ignores the merge-loop variant flags (only soa / readonly_qualifier
/// apply); does not support the color filter.
class BinarySearchKernel {
 public:
  BinarySearchKernel(const OrientedDeviceGraph& graph, KernelVariant variant)
      : graph_(&graph), variant_(variant) {}

  struct State {
    std::uint64_t edge = 0;
    std::uint64_t stride = 0;
    VertexId u = 0, v = 0;
    std::uint32_t short_it = 0, short_end = 0;  ///< cursor in shorter list
    std::uint32_t long_begin = 0, long_end = 0; ///< bounds of longer list
    std::uint32_t lo = 0, hi = 0;               ///< current bisection window
    VertexId needle = 0;
    std::uint64_t count = 0;
    std::uint8_t phase = 0;  ///< 0=edge, 1=nodes, 2=next needle, 3=bisect
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.edge = graph_->first_edge + tid * graph_->edge_step;
    state.stride = total * graph_->edge_step;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    const bool ro = variant_.readonly_qualifier;
    switch (state.phase) {
      case 0: {
        if (state.edge >= graph_->num_edges) return false;
        if (variant_.soa) {
          state.u = graph_->src[state.edge];
          state.v = graph_->dst[state.edge];
          sink.read(graph_->src.addr(state.edge), 4, ro);
          sink.read(graph_->dst.addr(state.edge), 4, ro);
        } else {
          const Edge& e = graph_->pairs[state.edge];
          state.u = e.u;
          state.v = e.v;
          sink.read(graph_->pairs.addr(state.edge), 8, ro);
        }
        state.phase = 1;
        return true;
      }
      case 1: {
        const std::uint32_t ub = graph_->node[state.u];
        const std::uint32_t ue = graph_->node[state.u + 1];
        const std::uint32_t vb = graph_->node[state.v];
        const std::uint32_t ve = graph_->node[state.v + 1];
        sink.read(graph_->node.addr(state.u), 4, ro);
        sink.read(graph_->node.addr(state.u + 1), 4, ro);
        sink.read(graph_->node.addr(state.v), 4, ro);
        sink.read(graph_->node.addr(state.v + 1), 4, ro);
        if (ue - ub <= ve - vb) {
          state.short_it = ub;
          state.short_end = ue;
          state.long_begin = vb;
          state.long_end = ve;
        } else {
          state.short_it = vb;
          state.short_end = ve;
          state.long_begin = ub;
          state.long_end = ue;
        }
        state.phase = 2;
        return true;
      }
      case 2: {  // fetch the next needle from the shorter list
        if (state.short_it >= state.short_end ||
            state.long_begin >= state.long_end) {
          return next_edge(state);
        }
        state.needle = adjacency(state.short_it, sink, ro);
        ++state.short_it;
        state.lo = state.long_begin;
        state.hi = state.long_end;
        state.phase = 3;
        return true;
      }
      default: {  // one bisection probe per step
        if (state.lo >= state.hi) {
          state.phase = 2;
          return true;
        }
        const std::uint32_t mid = state.lo + (state.hi - state.lo) / 2;
        const VertexId probe = adjacency(mid, sink, ro);
        if (probe == state.needle) {
          ++state.count;
          state.phase = 2;
        } else if (probe < state.needle) {
          state.lo = mid + 1;
        } else {
          state.hi = mid;
        }
        return true;
      }
    }
  }

  void retire(const State& state) { total_ += state.count; }
  [[nodiscard]] TriangleCount total() const { return total_; }

 private:
  template <typename Sink>
  VertexId adjacency(std::uint32_t it, Sink& sink, bool ro) const {
    if (variant_.soa) {
      sink.read(graph_->dst.addr(it), 4, ro);
      return graph_->dst[it];
    }
    sink.read(graph_->pairs.addr(it) + 4, 4, ro);
    return graph_->pairs[it].v;
  }

  static bool next_edge(State& state) {
    state.edge += state.stride;
    state.phase = 0;
    return true;
  }

  const OrientedDeviceGraph* graph_;
  KernelVariant variant_;
  TriangleCount total_ = 0;
};

}  // namespace trico::core
