// GPU clustering-coefficient / transitivity computation — the problem
// solved by Leist et al. [13], the paper's §V comparison point:
//
//   "the paper solves a slightly different problem, which is computing the
//    clustering coefficient. It requires computing the number of triangles
//    but also the number of two-edge paths in the input graph. Fortunately,
//    the latter part is not harder than the former, so we can assume this
//    gives our algorithm at most two times advantage."
//
// GpuClusteringAnalyzer runs the full triangle pipeline plus a wedge-count
// kernel (one thread per vertex, sum of C(deg(v), 2) over a device-resident
// degree array) and reports the transitivity ratio 3T / W. The bench checks
// the paper's bound: the extra wedge phase costs far less than the triangle
// count itself.

#pragma once

#include "core/gpu_forward.hpp"
#include "simt/device.hpp"
#include "simt/runner.hpp"

namespace trico::core {

/// Grid-stride per-vertex wedge counter: W = sum_v deg(v) * (deg(v)-1) / 2.
class WedgeCountKernel {
 public:
  explicit WedgeCountKernel(simt::DeviceSpan<std::uint32_t> degree)
      : degree_(degree) {}

  struct State {
    std::uint64_t index = 0;
    std::uint64_t stride = 0;
    std::uint64_t wedges = 0;
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.index = tid;
    state.stride = total;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    if (state.index >= degree_.size()) return false;
    const std::uint64_t d = degree_[state.index];
    sink.read(degree_.addr(state.index), 4, true);
    state.wedges += d * (d - 1) / 2;
    state.index += state.stride;
    return true;
  }

  void retire(const State& state) { total_ += state.wedges; }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  simt::DeviceSpan<std::uint32_t> degree_;
  std::uint64_t total_ = 0;
};

/// Result of a clustering-coefficient run.
struct GpuClusteringResult {
  TriangleCount triangles = 0;
  std::uint64_t wedges = 0;
  double triangle_ms = 0;  ///< full triangle pipeline (modeled)
  double wedge_ms = 0;     ///< wedge kernel + degree upload (modeled)

  [[nodiscard]] double total_ms() const { return triangle_ms + wedge_ms; }
  /// Transitivity ratio 3T / W (0 when the graph has no wedges).
  [[nodiscard]] double transitivity() const {
    return wedges > 0
               ? 3.0 * static_cast<double>(triangles) / static_cast<double>(wedges)
               : 0.0;
  }
};

/// Per-vertex (local) clustering result.
struct GpuLocalClusteringResult {
  std::vector<TriangleCount> per_vertex_triangles;
  std::vector<double> local_coefficient;  ///< c(v), 0 when deg(v) < 2
  double kernel_ms = 0;                   ///< per-vertex counting kernel

  /// Watts-Strogatz global coefficient: mean of c(v) over deg >= 2.
  [[nodiscard]] double global_coefficient(
      const std::vector<EdgeIndex>& degree) const;
};

/// Runs triangles + wedges on one simulated device.
class GpuClusteringAnalyzer {
 public:
  explicit GpuClusteringAnalyzer(simt::DeviceConfig device,
                                 CountingOptions options = {});

  [[nodiscard]] GpuClusteringResult analyze(const EdgeList& edges);

  /// Per-vertex triangle counts + local coefficients via the atomic-add
  /// kernel (PerVertexCountKernel).
  [[nodiscard]] GpuLocalClusteringResult analyze_local(const EdgeList& edges);

 private:
  simt::DeviceConfig device_config_;
  CountingOptions options_;
};

}  // namespace trico::core
