// The CountTriangles device kernels (§III-C), as trico::simt state machines.
//
// Each thread owns the edges whose index is congruent to its id modulo the
// total thread count (grid-stride), and intersects the oriented adjacency
// lists of each edge's endpoints with a sequential two-pointer merge. The
// kernel variants correspond to the paper's ablations:
//
//  * final vs preliminary merge loop (§III-D3): the final loop buffers the
//    frontier values in registers and reads only the list(s) it advanced —
//    one read per iteration unless a triangle was found — while the
//    preliminary loop re-reads both frontiers every iteration.
//  * SoA vs AoS edge array (§III-D1): in SoA layout the adjacency stream is
//    a dense plane of 4-byte neighbour ids; in AoS each neighbour id sits
//    inside an 8-byte (u, v) pair, so the same list touches twice the lines.
//  * read-only qualifier (§III-D4): when set, loads are marked eligible for
//    the per-SM read-only/texture cache (automatic on Fermi-class devices,
//    where L1 caches all global loads regardless).

#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "simt/device.hpp"
#include "simt/runner.hpp"

namespace trico::core {

/// Which kernel code path to model (the §III-D toggles).
struct KernelVariant {
  bool final_loop = true;        ///< §III-D3 register-buffered merge
  bool soa = true;               ///< §III-D1 structure-of-arrays edge array
  bool readonly_qualifier = true;///< §III-D4 const __restrict__ on arrays
};

/// Device-resident arrays of the oriented graph, in both layouts (only the
/// one selected by KernelVariant::soa is read by the kernel).
struct OrientedDeviceGraph {
  // SoA: src[i], dst[i] are the endpoints of oriented edge i; dst doubles as
  // the concatenated adjacency array (the "edge array" after unzipping).
  simt::DeviceSpan<VertexId> src;
  simt::DeviceSpan<VertexId> dst;
  // AoS: pairs[i] = (u, v); adjacency neighbour of slot j is pairs[j].v.
  simt::DeviceSpan<Edge> pairs;
  // Node array: node[u] .. node[u+1] bracket u's oriented list; n+1 entries.
  simt::DeviceSpan<std::uint32_t> node;

  std::uint64_t num_edges = 0;  ///< oriented edge count (m)

  // Multi-GPU edge partition (§III-E): this device iterates edges
  // first_edge, first_edge + edge_step, ... < num_edges. The single-GPU
  // case is (0, 1).
  std::uint64_t first_edge = 0;
  std::uint64_t edge_step = 1;

  // Out-of-core color filter (§VI future work / outofcore module): when
  // enabled, a closed triangle (u, v, w) is counted only if the sorted
  // triple of the vertices' colors equals color_triple. Colors live in
  // device memory like any other array, so the filter's extra loads are
  // part of the simulation.
  simt::DeviceSpan<std::uint32_t> vertex_color;
  bool color_filtered = false;
  std::uint32_t color_triple[3] = {0, 0, 0};
};

/// CountTriangles as a per-thread state machine for the SIMT runner.
class CountTrianglesKernel {
 public:
  CountTrianglesKernel(const OrientedDeviceGraph& graph, KernelVariant variant)
      : graph_(&graph), variant_(variant) {}

  struct State {
    std::uint64_t edge = 0;    ///< current edge index
    std::uint64_t stride = 0;  ///< total threads
    VertexId u = 0, v = 0;
    std::uint32_t u_it = 0, u_end = 0, v_it = 0, v_end = 0;
    VertexId a = 0, b = 0;     ///< register-buffered frontier values
    std::uint32_t cu = 0, cv = 0;  ///< endpoint colors (color filter only)
    std::uint64_t count = 0;
    std::uint8_t phase = 0;    ///< 0=load edge, 1=load node, 2=first reads, 3=merge
  };

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    // Grid-stride over this device's partition of the edge array.
    state.edge = graph_->first_edge + tid * graph_->edge_step;
    state.stride = total * graph_->edge_step;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    const bool ro = variant_.readonly_qualifier;
    switch (state.phase) {
      case 0: {  // load edge endpoints
        if (state.edge >= graph_->num_edges) return false;
        if (variant_.soa) {
          state.u = graph_->src[state.edge];
          state.v = graph_->dst[state.edge];
          sink.read(graph_->src.addr(state.edge), 4, ro);
          sink.read(graph_->dst.addr(state.edge), 4, ro);
        } else {
          const Edge& e = graph_->pairs[state.edge];
          state.u = e.u;
          state.v = e.v;
          sink.read(graph_->pairs.addr(state.edge), 8, ro);
        }
        state.phase = 1;
        return true;
      }
      case 1: {  // load node-array brackets (+ endpoint colors if filtering)
        state.u_it = graph_->node[state.u];
        state.u_end = graph_->node[state.u + 1];
        state.v_it = graph_->node[state.v];
        state.v_end = graph_->node[state.v + 1];
        sink.read(graph_->node.addr(state.u), 4, ro);
        sink.read(graph_->node.addr(state.u + 1), 4, ro);
        sink.read(graph_->node.addr(state.v), 4, ro);
        sink.read(graph_->node.addr(state.v + 1), 4, ro);
        if (graph_->color_filtered) {
          state.cu = graph_->vertex_color[state.u];
          state.cv = graph_->vertex_color[state.v];
          sink.read(graph_->vertex_color.addr(state.u), 4, ro);
          sink.read(graph_->vertex_color.addr(state.v), 4, ro);
        }
        state.phase = 2;
        return true;
      }
      case 2: {  // initial frontier reads (final loop) / merge entry
        if (state.u_it >= state.u_end || state.v_it >= state.v_end) {
          return next_edge(state);
        }
        if (variant_.final_loop) {
          state.a = adjacency(state.u_it, sink, ro);
          state.b = adjacency(state.v_it, sink, ro);
        }
        state.phase = 3;
        return true;
      }
      default: {  // merge loop, one iteration per step
        if (variant_.final_loop) {
          return merge_step_final(state, sink, ro);
        }
        return merge_step_preliminary(state, sink, ro);
      }
    }
  }

  void retire(const State& state) { total_ += state.count; }

  [[nodiscard]] TriangleCount total() const { return total_; }
  void reset() { total_ = 0; }

 private:
  /// Reads adjacency slot `it` (the oriented neighbour id) in the layout the
  /// variant selects, reporting the access.
  template <typename Sink>
  VertexId adjacency(std::uint32_t it, Sink& sink, bool ro) const {
    if (variant_.soa) {
      sink.read(graph_->dst.addr(it), 4, ro);
      return graph_->dst[it];
    }
    // AoS: the neighbour id is the .v field of the pair — a 4-byte read at
    // stride 8, which is what wastes cache in this layout.
    sink.read(graph_->pairs.addr(it) + 4, 4, ro);
    return graph_->pairs[it].v;
  }

  /// Counts a closed wedge (u, v, w), applying the out-of-core color filter
  /// when enabled (reading w's color from device memory like the real
  /// kernel would).
  template <typename Sink>
  void record_match(State& state, VertexId w, Sink& sink, bool ro) const {
    if (!graph_->color_filtered) {
      ++state.count;
      return;
    }
    const std::uint32_t cw = graph_->vertex_color[w];
    sink.read(graph_->vertex_color.addr(w), 4, ro);
    std::uint32_t x = state.cu, y = state.cv, z = cw;
    if (x > y) std::swap(x, y);
    if (y > z) std::swap(y, z);
    if (x > y) std::swap(x, y);
    if (x == graph_->color_triple[0] && y == graph_->color_triple[1] &&
        z == graph_->color_triple[2]) {
      ++state.count;
    }
  }

  template <typename Sink>
  bool merge_step_final(State& state, Sink& sink, bool ro) const {
    // while (u_it < u_end && v_it < v_end) with register-buffered a, b.
    const std::int64_t d = static_cast<std::int64_t>(state.a) -
                           static_cast<std::int64_t>(state.b);
    if (d == 0) record_match(state, state.a, sink, ro);
    if (d <= 0) {
      ++state.u_it;
      if (state.u_it < state.u_end) state.a = adjacency(state.u_it, sink, ro);
    }
    if (d >= 0) {
      ++state.v_it;
      if (state.v_it < state.v_end) state.b = adjacency(state.v_it, sink, ro);
    }
    if (state.u_it >= state.u_end || state.v_it >= state.v_end) {
      return next_edge(state);
    }
    return true;
  }

  template <typename Sink>
  bool merge_step_preliminary(State& state, Sink& sink, bool ro) const {
    // Preliminary loop: re-reads both frontiers every iteration (§III-D3).
    const VertexId a = adjacency(state.u_it, sink, ro);
    const VertexId b = adjacency(state.v_it, sink, ro);
    const std::int64_t d =
        static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b);
    if (d == 0) record_match(state, a, sink, ro);
    if (d <= 0) ++state.u_it;
    if (d >= 0) ++state.v_it;
    if (state.u_it >= state.u_end || state.v_it >= state.v_end) {
      return next_edge(state);
    }
    return true;
  }

  /// Advances to the thread's next grid-stride edge; returns false when the
  /// thread has no more edges (lane retires).
  static bool next_edge(State& state) {
    state.edge += state.stride;
    state.phase = 0;
    return true;  // phase 0 detects exhaustion next step
  }

  const OrientedDeviceGraph* graph_;
  KernelVariant variant_;
  TriangleCount total_ = 0;
};

}  // namespace trico::core
