#include "core/preprocess_sim.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "core/preprocess_kernels.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/runner.hpp"

namespace trico::core {

namespace {

/// Stable counting-sort destinations for one 8-bit digit pass.
std::vector<std::uint32_t> scatter_destinations(
    const std::vector<std::uint64_t>& keys, unsigned shift) {
  std::array<std::uint32_t, 256> counts{};
  for (std::uint64_t k : keys) ++counts[(k >> shift) & 0xff];
  std::array<std::uint32_t, 256> offsets{};
  std::uint32_t running = 0;
  for (std::size_t d = 0; d < 256; ++d) {
    offsets[d] = running;
    running += counts[d];
  }
  std::vector<std::uint32_t> destinations(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    destinations[i] = offsets[(keys[i] >> shift) & 0xff]++;
  }
  return destinations;
}

}  // namespace

SimulatedPreprocessing simulate_preprocessing(const EdgeList& edges,
                                              const simt::DeviceConfig& config,
                                              const CountingOptions& options) {
  const simt::CostModel cost(config);
  SimulatedPreprocessing out;
  PreprocessedGraph& pre = out.graph;
  pre.input_slots = edges.num_edge_slots();

  std::vector<Edge> work(edges.edges().begin(), edges.edges().end());

  // Step 1: host -> device copy (PCIe model, as in the analytic path).
  pre.phases.h2d_ms = cost.transfer_ms(work.size() * sizeof(Edge));

  // Step 2: vertex count by max-reduce kernel.
  {
    simt::Device device(config);
    const auto pairs = device.upload<Edge>(work);
    MaxVertexKernel kernel(pairs);
    out.vertex_count =
        simt::launch_kernel(device, options.launch, kernel, options.sim);
    pre.num_vertices = kernel.num_vertices();
    pre.phases.vertex_count_ms = out.vertex_count.time_ms;
  }
  const VertexId n = pre.num_vertices;

  // Step 3: LSD radix sort over packed u64 keys, one scatter kernel per
  // significant byte (the histogram/scan halves are charged as streaming
  // passes — they move 256 counters plus one read of the keys).
  {
    std::vector<std::uint64_t> keys(work.size());
    for (std::size_t i = 0; i < work.size(); ++i) keys[i] = pack_edge(work[i]);
    std::uint32_t sig_bytes = 1;
    if (n > 0) {
      const std::uint64_t max_key = pack_edge(Edge{n - 1, n - 1});
      for (std::uint64_t k = max_key; k > 0xff; k >>= 8) ++sig_bytes;
    }
    out.sort_passes = sig_bytes;
    for (unsigned pass = 0; pass < sig_bytes; ++pass) {
      const auto destinations = scatter_destinations(keys, pass * 8);
      simt::Device device(config);
      const auto key_span = device.upload<std::uint64_t>(keys);
      const auto dest_span = device.upload<std::uint32_t>(destinations);
      std::vector<std::uint64_t> sorted(keys.size());
      const std::uint64_t out_addr = device.reserve(sorted.size() * 8);
      RadixScatterKernel kernel(key_span, dest_span, sorted.data(), out_addr);
      const simt::KernelStats stats =
          simt::launch_kernel(device, options.launch, kernel, options.sim);
      out.sort_scatter.time_ms += stats.time_ms;
      out.sort_scatter.cycles += stats.cycles;
      out.sort_scatter.lane_loads += stats.lane_loads;
      // Histogram + scan streaming charge.
      out.sort_scatter.time_ms += cost.stream_pass_ms(keys.size() * 8);
      keys = std::move(sorted);
    }
    pre.phases.sort_ms = out.sort_scatter.time_ms;
    for (std::size_t i = 0; i < keys.size(); ++i) work[i] = unpack_edge(keys[i]);
  }

  // Shared helper: run the node-array kernel over the current sorted slots.
  auto build_node = [&](simt::KernelStats& stats) {
    std::vector<std::uint32_t> node(static_cast<std::size_t>(n) + 1, 0);
    if (!work.empty()) {
      simt::Device device(config);
      const auto pairs = device.upload<Edge>(work);
      const std::uint64_t node_addr = device.reserve(node.size() * 4);
      NodeArrayKernel kernel(pairs, node.data(), node_addr);
      stats = simt::launch_kernel(device, options.launch, kernel, options.sim);
      // Boundary cells the m-1 threads cannot see: before the first slot's
      // vertex (0) and after the last slot's vertex (slot count).
      for (VertexId v = 0; v <= work.front().u; ++v) node[v] = 0;
      for (VertexId v = work.back().u + 1; v <= n; ++v) {
        node[v] = static_cast<std::uint32_t>(work.size());
      }
    }
    return node;
  };

  // Step 4.
  std::vector<std::uint32_t> node = build_node(out.node_array);
  pre.phases.node_array_ms = out.node_array.time_ms;

  // Step 5: mark backward edges.
  std::vector<std::uint8_t> flags(work.size(), 0);
  {
    simt::Device device(config);
    const auto pairs = device.upload<Edge>(work);
    const auto node_span = device.upload<std::uint32_t>(node);
    const std::uint64_t flags_addr = device.reserve(flags.size());
    MarkBackwardKernel kernel(pairs, node_span, flags.data(), flags_addr);
    out.mark_backward =
        simt::launch_kernel(device, options.launch, kernel, options.sim);
    pre.phases.mark_backward_ms = out.mark_backward.time_ms;
  }

  // Step 6: remove_if = exclusive scan of keep-flags (streaming charge) +
  // compaction kernel.
  {
    std::vector<std::uint32_t> positions(work.size());
    std::uint32_t kept = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      positions[i] = kept;
      kept += flags[i] ? 0 : 1;
    }
    std::vector<Edge> compacted(kept);
    simt::Device device(config);
    const auto pairs = device.upload<Edge>(work);
    const auto flag_span = device.upload<std::uint8_t>(flags);
    const auto pos_span = device.upload<std::uint32_t>(positions);
    const std::uint64_t out_addr = device.reserve(compacted.size() * sizeof(Edge));
    CompactKernel kernel(pairs, flag_span, pos_span, compacted.data(), out_addr);
    out.compact =
        simt::launch_kernel(device, options.launch, kernel, options.sim);
    pre.phases.remove_ms =
        out.compact.time_ms + cost.stream_pass_ms(work.size());
    work = std::move(compacted);
  }

  // Step 7: unzip.
  if (options.variant.soa) {
    pre.soa.src.assign(work.size(), 0);
    pre.soa.dst.assign(work.size(), 0);
    simt::Device device(config);
    const auto pairs = device.upload<Edge>(work);
    const std::uint64_t src_addr = device.reserve(work.size() * 4);
    const std::uint64_t dst_addr = device.reserve(work.size() * 4);
    UnzipKernel kernel(pairs, pre.soa.src.data(), pre.soa.dst.data(), src_addr,
                       dst_addr);
    out.unzip = simt::launch_kernel(device, options.launch, kernel, options.sim);
    pre.phases.unzip_ms = out.unzip.time_ms;
  }

  // Step 8: rebuild the node array over the oriented slots.
  node = build_node(out.node_array2);
  pre.phases.node_array2_ms = out.node_array2.time_ms;

  pre.node = std::move(node);
  pre.oriented = std::move(work);
  return out;
}

}  // namespace trico::core
