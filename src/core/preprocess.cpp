#include "core/preprocess.hpp"

#include <algorithm>
#include <limits>

#include "cpu/hybrid_engine.hpp"
#include "graph/orientation.hpp"
#include "prim/algorithms.hpp"
#include "prim/radix_sort.hpp"
#include "simt/cost_model.hpp"

namespace trico::core {

namespace {

/// Node-array construction (steps 4/8): node[u] = first slot with first
/// vertex u; node[n] = slot count. Vertices with empty adjacency lists get
/// the following list's start, exactly like the paper's backfill kernel.
std::vector<std::uint32_t> build_node_array(std::span<const VertexId> src,
                                            VertexId num_vertices) {
  std::vector<std::uint64_t> counts(num_vertices, 0);
  for (VertexId u : src) ++counts[u];
  std::vector<std::uint32_t> node(static_cast<std::size_t>(num_vertices) + 1, 0);
  std::uint64_t running = 0;
  for (VertexId u = 0; u < num_vertices; ++u) {
    node[u] = static_cast<std::uint32_t>(running);
    running += counts[u];
  }
  node[num_vertices] = static_cast<std::uint32_t>(running);
  return node;
}

}  // namespace

PreprocessedGraph preprocess_for_device(const EdgeList& edges,
                                        const simt::DeviceConfig& device,
                                        const CountingOptions& options,
                                        prim::ThreadPool& pool,
                                        unsigned device_index) {
  if (options.fault_plan != nullptr) {
    if (const auto kind =
            options.fault_plan->probe(simt::FaultSite::kPreprocess,
                                      device_index)) {
      throw simt::DeviceFault(
          *kind, simt::FaultSite::kPreprocess, device_index,
          std::string("injected ") + simt::to_string(*kind) +
              " during preprocessing on device " +
              std::to_string(device_index));
    }
  }

  const simt::CostModel cost(device);
  PreprocessedGraph out;
  out.input_slots = edges.num_edge_slots();

  const EdgeIndex slots = edges.num_edge_slots();
  // The node array stores uint32 slot offsets (§III-B step 4); more slots
  // than that is unrepresentable, not merely slow.
  if (slots > std::numeric_limits<std::uint32_t>::max()) {
    throw PreprocessError("edge array has " + std::to_string(slots) +
                          " slots; uint32 node-array offsets cap the "
                          "pipeline at 4294967295");
  }
  std::vector<Edge> work(edges.edges().begin(), edges.edges().end());

  // Vertex-id sanity: a single corrupt id like 4294967295 would wrap the
  // vertex count (max id + 1 overflows VertexId) or allocate a ~16 GB node
  // array. Reject ids that are reserved or wildly beyond the slot count.
  const VertexId max_id = prim::transform_reduce<VertexId>(
      pool, work.size(), 0,
      [&](std::size_t i) { return std::max(work[i].u, work[i].v); },
      [](VertexId a, VertexId b) { return std::max(a, b); });
  if (!work.empty()) {
    if (max_id == kInvalidVertex) {
      throw PreprocessError(
          "vertex id 4294967295 is reserved (kInvalidVertex); input is "
          "likely corrupt");
    }
    const std::uint64_t id_cap = 64 * slots + 65536;
    const std::uint64_t derived_vertices =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(max_id) + 1,
                                edges.num_vertices());
    if (derived_vertices > id_cap) {
      throw PreprocessError(
          "vertex id " + std::to_string(derived_vertices - 1) +
          " exceeds the sanity cap " + std::to_string(id_cap - 1) + " for " +
          std::to_string(slots) + " edge slots; input is likely corrupt");
    }
  }

  const std::uint64_t memory_budget =
      options.memory_budget_bytes > 0
          ? std::min(options.memory_budget_bytes, device.memory_bytes)
          : device.memory_bytes;
  const bool needs_fallback =
      options.force_cpu_preprocess ||
      (options.allow_cpu_preprocess &&
       GpuForwardCounter::device_preprocess_bytes(slots, edges.num_vertices()) >
           memory_budget);
  out.used_cpu_preprocessing = needs_fallback;

  if (!needs_fallback && options.fault_plan != nullptr) {
    // The all-GPU path's first device allocations: the sort keys and their
    // radix double-buffer.
    if (const auto kind =
            options.fault_plan->probe(simt::FaultSite::kAlloc, device_index)) {
      throw simt::DeviceFault(
          *kind, simt::FaultSite::kAlloc, device_index,
          std::string("injected ") + simt::to_string(*kind) +
              " allocating preprocessing buffers on device " +
              std::to_string(device_index));
    }
  }

  if (needs_fallback) {
    // §III-D6: degrees + backward-edge removal on the CPU; halves the input
    // before the device sees it. Runs on the pool (parallel degrees +
    // flag/compact, same stages the hybrid engine uses) so the fallback rung
    // of the degradation ladder is no longer serial; the *modeled* time
    // stays the host streaming formula.
    constexpr double kHostStreamGbps = 5.0;
    out.num_vertices = edges.num_vertices();
    const std::vector<EdgeIndex> degree =
        cpu::parallel_degrees(edges.edges(), out.num_vertices, pool);
    std::vector<std::uint8_t> backward(work.size());
    prim::parallel_for(pool, 0, work.size(), [&](std::size_t i) {
      backward[i] = is_backward_edge(degree, work[i].u, work[i].v);
    });
    work = prim::remove_if_flagged<Edge>(pool, work, backward);
    out.phases.cpu_preprocess_ms =
        static_cast<double>(slots * 8 * 2 + work.size() * 8) /
        (kHostStreamGbps * 1e6);
    out.phases.h2d_ms = cost.transfer_ms(work.size() * sizeof(Edge));
    out.phases.vertex_count_ms = cost.reduce_ms(work.size(), 8);
  } else {
    // Step 1: copy the edge array to the device.
    out.phases.h2d_ms = cost.transfer_ms(slots * sizeof(Edge));
    // Step 2: vertex count via max-reduce (computed by the sanity scan
    // above; the modeled device still pays for its own reduce pass).
    out.num_vertices = work.empty() ? 0 : max_id + 1;
    out.phases.vertex_count_ms = cost.reduce_ms(slots, 8);
  }

  // Step 3: sort slots by (u, v).
  if (options.sort_as_u64) {
    prim::sort_edges_as_u64(pool, work);
    std::uint32_t sig_bytes = 1;
    if (out.num_vertices > 0) {
      const std::uint64_t max_key =
          pack_edge(Edge{out.num_vertices - 1, out.num_vertices - 1});
      for (std::uint64_t k = max_key; k > 0xff; k >>= 8) ++sig_bytes;
    }
    out.phases.sort_ms = cost.radix_sort_ms(work.size(), 8, sig_bytes);
  } else {
    prim::sort_edges_as_pairs(pool, work);
    out.phases.sort_ms = cost.merge_sort_ms(work.size(), 8);
  }

  std::vector<VertexId> src(work.size());
  prim::parallel_for(pool, 0, work.size(),
                     [&](std::size_t i) { src[i] = work[i].u; });

  // Step 4: node array over the (possibly still bidirectional) slots.
  std::vector<std::uint32_t> node = build_node_array(src, out.num_vertices);
  out.phases.node_array_ms = cost.node_array_ms(work.size(), out.num_vertices);

  if (!needs_fallback) {
    // Step 5: mark backward slots (degrees read off the node array; the
    // id-order ablation ignores degrees entirely).
    std::vector<std::uint8_t> backward(work.size());
    prim::parallel_for(pool, 0, work.size(), [&](std::size_t i) {
      const VertexId u = work[i].u, v = work[i].v;
      if (!options.orient_by_degree) {
        backward[i] = u > v;
        return;
      }
      const std::uint32_t deg_u = node[u + 1] - node[u];
      const std::uint32_t deg_v = node[v + 1] - node[v];
      backward[i] = degree_order_less(deg_v, deg_u, v, u);
    });
    out.phases.mark_backward_ms = cost.mark_backward_ms(work.size());

    // Step 6: compact with remove_if.
    work = prim::remove_if_flagged<Edge>(pool, work, backward);
    out.phases.remove_ms = cost.remove_if_ms(slots);
  }

  // Step 7: unzip AoS -> SoA when the kernel reads SoA.
  if (options.variant.soa) {
    out.soa.src.resize(work.size());
    out.soa.dst.resize(work.size());
    prim::parallel_for(pool, 0, work.size(), [&](std::size_t i) {
      out.soa.src[i] = work[i].u;
      out.soa.dst[i] = work[i].v;
    });
    out.phases.unzip_ms = cost.unzip_ms(work.size());
  }

  // Step 8: recalculate the node array over the oriented slots.
  src.resize(work.size());
  prim::parallel_for(pool, 0, work.size(),
                     [&](std::size_t i) { src[i] = work[i].u; });
  out.node = build_node_array(src, out.num_vertices);
  out.phases.node_array2_ms = cost.node_array_ms(work.size(), out.num_vertices);

  out.oriented = std::move(work);
  return out;
}

}  // namespace trico::core
