// Per-vertex triangle counting kernel.
//
// The local clustering coefficient (§I's motivating metric) needs
// delta(v) — the number of triangles through each vertex — not just the
// global total. The CUDA idiom is the same per-edge merge with three
// atomicAdds per closed wedge; here each atomic is modeled as a
// read-modify-write access to the per-vertex counter array (non-read-only,
// so it bypasses the texture path, like real atomics).

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/count_kernels.hpp"

namespace trico::core {

/// Per-edge merge that attributes every triangle to its three corners via
/// (modeled) atomic adds. Always uses the final (register-buffered) loop.
class PerVertexCountKernel {
 public:
  /// `per_vertex` must have one zero-initialized slot per vertex;
  /// `counter_base_addr` is its simulated device address.
  PerVertexCountKernel(const OrientedDeviceGraph& graph,
                       KernelVariant variant,
                       std::uint64_t* per_vertex,
                       std::uint64_t counter_base_addr)
      : graph_(&graph), variant_(variant), per_vertex_(per_vertex),
        counter_addr_(counter_base_addr) {}

  using State = CountTrianglesKernel::State;

  void start(State& state, std::uint64_t tid, std::uint64_t total) const {
    state = State{};
    state.edge = graph_->first_edge + tid * graph_->edge_step;
    state.stride = total * graph_->edge_step;
  }

  template <typename Sink>
  bool step(State& state, Sink& sink) const {
    const bool ro = variant_.readonly_qualifier;
    switch (state.phase) {
      case 0: {
        if (state.edge >= graph_->num_edges) return false;
        if (variant_.soa) {
          state.u = graph_->src[state.edge];
          state.v = graph_->dst[state.edge];
          sink.read(graph_->src.addr(state.edge), 4, ro);
          sink.read(graph_->dst.addr(state.edge), 4, ro);
        } else {
          const Edge& e = graph_->pairs[state.edge];
          state.u = e.u;
          state.v = e.v;
          sink.read(graph_->pairs.addr(state.edge), 8, ro);
        }
        state.phase = 1;
        return true;
      }
      case 1: {
        state.u_it = graph_->node[state.u];
        state.u_end = graph_->node[state.u + 1];
        state.v_it = graph_->node[state.v];
        state.v_end = graph_->node[state.v + 1];
        sink.read(graph_->node.addr(state.u), 8, ro);
        sink.read(graph_->node.addr(state.v), 8, ro);
        state.phase = 2;
        return true;
      }
      case 2: {
        if (state.u_it >= state.u_end || state.v_it >= state.v_end) {
          return next_edge(state);
        }
        state.a = adjacency(state.u_it, sink, ro);
        state.b = adjacency(state.v_it, sink, ro);
        state.phase = 3;
        return true;
      }
      default: {
        const std::int64_t d = static_cast<std::int64_t>(state.a) -
                               static_cast<std::int64_t>(state.b);
        if (d == 0) {
          // Three atomicAdds: u, v, and the common neighbour w. The adds
          // are real atomics because SMs may run on concurrent host threads
          // and distinct SMs can hit the same corner; relaxed commutative
          // increments stay deterministic for any interleaving.
          const VertexId w = state.a;
          for (VertexId corner : {state.u, state.v, w}) {
            std::atomic_ref<std::uint64_t>(per_vertex_[corner])
                .fetch_add(1, std::memory_order_relaxed);
            sink.read(counter_addr_ + corner * 8, 8, false);
          }
          ++state.count;
        }
        if (d <= 0) {
          ++state.u_it;
          if (state.u_it < state.u_end) {
            state.a = adjacency(state.u_it, sink, ro);
          }
        }
        if (d >= 0) {
          ++state.v_it;
          if (state.v_it < state.v_end) {
            state.b = adjacency(state.v_it, sink, ro);
          }
        }
        if (state.u_it >= state.u_end || state.v_it >= state.v_end) {
          return next_edge(state);
        }
        return true;
      }
    }
  }

  void retire(const State& state) { total_ += state.count; }
  [[nodiscard]] TriangleCount total() const { return total_; }

 private:
  template <typename Sink>
  VertexId adjacency(std::uint32_t it, Sink& sink, bool ro) const {
    if (variant_.soa) {
      sink.read(graph_->dst.addr(it), 4, ro);
      return graph_->dst[it];
    }
    sink.read(graph_->pairs.addr(it) + 4, 4, ro);
    return graph_->pairs[it].v;
  }

  static bool next_edge(State& state) {
    state.edge += state.stride;
    state.phase = 0;
    return true;
  }

  const OrientedDeviceGraph* graph_;
  KernelVariant variant_;
  std::uint64_t* per_vertex_;
  std::uint64_t counter_addr_;
  TriangleCount total_ = 0;
};

}  // namespace trico::core
