#include "core/gpu_forward.hpp"

#include <algorithm>
#include <initializer_list>
#include <string>
#include <utility>

#include "core/binary_search_kernel.hpp"
#include "core/preprocess.hpp"
#include "outofcore/counter.hpp"
#include "simt/cost_model.hpp"

namespace trico::core {

GpuForwardCounter::GpuForwardCounter(simt::DeviceConfig device,
                                     CountingOptions options)
    : device_config_(std::move(device)),
      options_(options),
      pool_(options.host_threads) {}

std::uint64_t GpuForwardCounter::device_preprocess_bytes(EdgeIndex slots,
                                                         VertexId vertices) {
  // Sort keys (u64) + radix double-buffer + removal flags + node array.
  return slots * 8 * 2 + slots * 1 +
         (static_cast<std::uint64_t>(vertices) + 1) * 4;
}

GpuCountResult GpuForwardCounter::count(const EdgeList& edges) {
  const simt::CostModel cost(device_config_);
  PreprocessedGraph pre =
      preprocess_for_device(edges, device_config_, options_, pool_);

  GpuCountResult result;
  result.phases = pre.phases;
  result.used_cpu_preprocessing = pre.used_cpu_preprocessing;
  result.num_vertices = pre.num_vertices;
  result.input_slots = pre.input_slots;
  result.oriented_edges = pre.oriented.size();
  if (pre.used_cpu_preprocessing) {
    result.robustness.degradation_rung = simt::DegradationRung::kCpuPreprocess;
  }

  simt::FaultPlan* plan = options_.fault_plan;
  if (plan != nullptr) {
    // The counting-phase uploads are the pipeline's second allocation batch
    // (after the preprocessing sort buffers).
    if (const auto kind = plan->probe(simt::FaultSite::kAlloc, 0)) {
      throw simt::DeviceFault(*kind, simt::FaultSite::kAlloc, 0,
                              std::string("injected ") + simt::to_string(*kind) +
                                  " uploading the counting-phase arrays");
    }
  }

  // Step 9: the counting kernel on the simulated device.
  simt::Device device(device_config_);
  OrientedDeviceGraph graph;
  graph.num_edges = pre.oriented.size();
  if (options_.variant.soa) {
    graph.src = device.upload<VertexId>(pre.soa.src);
    graph.dst = device.upload<VertexId>(pre.soa.dst);
  } else {
    graph.pairs = device.upload<Edge>(pre.oriented);
  }
  graph.node = device.upload<std::uint32_t>(pre.node);
  if (options_.vertex_colors != nullptr) {
    graph.vertex_color = device.upload<std::uint32_t>(*options_.vertex_colors);
    graph.color_filtered = true;
    graph.color_triple[0] = options_.color_triple[0];
    graph.color_triple[1] = options_.color_triple[1];
    graph.color_triple[2] = options_.color_triple[2];
  }
  result.device_peak_bytes = device.peak_footprint_bytes();

  // Transient kernel aborts retry on the same device within the budget;
  // anything else at the kernel site is fatal to this (single-device) run
  // and escalates to the caller's recovery layer.
  for (unsigned attempt = 1;; ++attempt) {
    if (plan != nullptr) {
      if (const auto kind = plan->probe(simt::FaultSite::kKernel, 0)) {
        if (*kind == simt::FaultKind::kKernelAbort &&
            attempt < options_.retry.max_attempts) {
          const double backoff = options_.retry.backoff_ms(attempt - 1);
          result.robustness.events.push_back(
              {*kind, simt::FaultSite::kKernel, 0, attempt, true, true});
          ++result.robustness.kernel_retries;
          result.robustness.retry_backoff_ms += backoff;
          result.phases.counting_ms += backoff;
          continue;
        }
        throw simt::DeviceFault(
            *kind, simt::FaultSite::kKernel, 0,
            std::string("injected ") + simt::to_string(*kind) +
                " during the counting kernel (attempt " +
                std::to_string(attempt) + ")");
      }
    }
    if (options_.strategy == IntersectionStrategy::kBinarySearch) {
      BinarySearchKernel kernel(graph, options_.variant);
      result.kernel =
          simt::launch_kernel(device, options_.launch, kernel, options_.sim);
      result.triangles = kernel.total();
    } else {
      CountTrianglesKernel kernel(graph, options_.variant);
      result.kernel =
          simt::launch_kernel(device, options_.launch, kernel, options_.sim);
      result.triangles = kernel.total();
    }
    break;
  }
  result.phases.counting_ms += result.kernel.time_ms;

  // Step 10: reduce per-thread counters, copy the result back.
  result.phases.reduce_ms =
      cost.result_reduce_ms(options_.launch.total_threads(device_config_));
  result.phases.d2h_ms = cost.transfer_ms(sizeof(TriangleCount));
  return result;
}

namespace {

/// Maps one out-of-core run into the pipeline's result shape (rung 2 of the
/// ladder): partitioning is host-side preprocessing, task time is counting.
GpuCountResult outofcore_as_gpu_result(const outofcore::OutOfCoreResult& r,
                                       const EdgeList& edges) {
  GpuCountResult result;
  result.triangles = r.triangles;
  result.phases.cpu_preprocess_ms = r.partition_ms;
  result.phases.counting_ms = r.device_ms;
  result.used_cpu_preprocessing = true;
  result.num_vertices = edges.num_vertices();
  result.input_slots = edges.num_edge_slots();
  result.oriented_edges = edges.num_edges();
  result.device_peak_bytes = r.max_task_bytes;
  return result;
}

}  // namespace

GpuCountResult count_triangles_gpu(const EdgeList& edges,
                                   const simt::DeviceConfig& device,
                                   CountingOptions options) {
  // The effective memory budget caps the device: the §III-D6 gate, every
  // simulated allocation and the out-of-core task-fit check all see it.
  simt::DeviceConfig budgeted = device;
  if (options.memory_budget_bytes > 0 &&
      options.memory_budget_bytes < budgeted.memory_bytes) {
    budgeted.memory_bytes = options.memory_budget_bytes;
  }

  simt::RobustnessReport ladder;
  const unsigned first_rung = options.force_cpu_preprocess ? 1 : 0;

  // Rung 0: full-GPU pipeline; rung 1: forced §III-D6 CPU preprocessing.
  for (unsigned rung = first_rung; rung <= 1; ++rung) {
    options.force_cpu_preprocess = rung == 1;
    try {
      GpuForwardCounter counter(budgeted, options);
      GpuCountResult result = counter.count(edges);
      ladder.merge(result.robustness);
      result.robustness = ladder;
      return result;
    } catch (const simt::DeviceFault& fault) {
      // Fault feedback: absorb the failure, account it, step down a rung.
      ladder.events.push_back({fault.kind(), fault.site(), fault.device(),
                               rung - first_rung + 1, true, fault.injected()});
      if (fault.kind() == simt::FaultKind::kAllocFailure) {
        ++ladder.alloc_failures;
      }
      ladder.retry_backoff_ms += options.retry.backoff_ms(rung - first_rung);
    }
  }

  // Rung 2: out-of-core color-triple partitioned counting. Pick the
  // smallest color count whose estimated per-task working set fits the
  // budget (expected task share of the edges is ~9/k^2; factor 2 covers
  // skew), falling through to larger k when a task still overflows.
  options.force_cpu_preprocess = false;
  const EdgeIndex slots = edges.num_edge_slots();
  for (std::uint32_t k : {4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    const std::uint64_t est_task_slots = std::max<std::uint64_t>(
        slots * 18 / (static_cast<std::uint64_t>(k) * k), 1024);
    if (GpuForwardCounter::device_preprocess_bytes(
            est_task_slots, edges.num_vertices()) > budgeted.memory_bytes &&
        k != 32u) {
      continue;
    }
    try {
      outofcore::OutOfCoreCounter counter(budgeted, k, 1, options);
      const outofcore::OutOfCoreResult ooc = counter.count(edges);
      GpuCountResult result = outofcore_as_gpu_result(ooc, edges);
      ladder.merge(ooc.robustness);
      result.robustness = ladder;
      result.robustness.degradation_rung = simt::DegradationRung::kOutOfCore;
      return result;
    } catch (const simt::DeviceFault& fault) {
      ladder.events.push_back({fault.kind(), fault.site(), fault.device(), 1,
                               true, fault.injected()});
      if (fault.kind() == simt::FaultKind::kAllocFailure) {
        ++ladder.alloc_failures;
      }
    }
  }
  throw simt::DeviceFault(
      simt::FaultKind::kAllocFailure, simt::FaultSite::kAlloc, 0,
      "degradation ladder exhausted: no rung fits a budget of " +
          std::to_string(budgeted.memory_bytes) + " bytes on " + device.name,
      /*injected=*/false);
}

}  // namespace trico::core
