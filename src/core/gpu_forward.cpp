#include "core/gpu_forward.hpp"

#include <utility>

#include "core/binary_search_kernel.hpp"
#include "core/preprocess.hpp"
#include "simt/cost_model.hpp"

namespace trico::core {

GpuForwardCounter::GpuForwardCounter(simt::DeviceConfig device,
                                     CountingOptions options)
    : device_config_(std::move(device)), options_(options), pool_() {}

std::uint64_t GpuForwardCounter::device_preprocess_bytes(EdgeIndex slots,
                                                         VertexId vertices) {
  // Sort keys (u64) + radix double-buffer + removal flags + node array.
  return slots * 8 * 2 + slots * 1 +
         (static_cast<std::uint64_t>(vertices) + 1) * 4;
}

GpuCountResult GpuForwardCounter::count(const EdgeList& edges) {
  const simt::CostModel cost(device_config_);
  PreprocessedGraph pre =
      preprocess_for_device(edges, device_config_, options_, pool_);

  GpuCountResult result;
  result.phases = pre.phases;
  result.used_cpu_preprocessing = pre.used_cpu_preprocessing;
  result.num_vertices = pre.num_vertices;
  result.input_slots = pre.input_slots;
  result.oriented_edges = pre.oriented.size();

  // Step 9: the counting kernel on the simulated device.
  simt::Device device(device_config_);
  OrientedDeviceGraph graph;
  graph.num_edges = pre.oriented.size();
  if (options_.variant.soa) {
    graph.src = device.upload<VertexId>(pre.soa.src);
    graph.dst = device.upload<VertexId>(pre.soa.dst);
  } else {
    graph.pairs = device.upload<Edge>(pre.oriented);
  }
  graph.node = device.upload<std::uint32_t>(pre.node);
  if (options_.vertex_colors != nullptr) {
    graph.vertex_color = device.upload<std::uint32_t>(*options_.vertex_colors);
    graph.color_filtered = true;
    graph.color_triple[0] = options_.color_triple[0];
    graph.color_triple[1] = options_.color_triple[1];
    graph.color_triple[2] = options_.color_triple[2];
  }
  result.device_peak_bytes = device.peak_footprint_bytes();

  if (options_.strategy == IntersectionStrategy::kBinarySearch) {
    BinarySearchKernel kernel(graph, options_.variant);
    result.kernel =
        simt::launch_kernel(device, options_.launch, kernel, options_.sim);
    result.triangles = kernel.total();
  } else {
    CountTrianglesKernel kernel(graph, options_.variant);
    result.kernel =
        simt::launch_kernel(device, options_.launch, kernel, options_.sim);
    result.triangles = kernel.total();
  }
  result.phases.counting_ms = result.kernel.time_ms;

  // Step 10: reduce per-thread counters, copy the result back.
  result.phases.reduce_ms =
      cost.result_reduce_ms(options_.launch.total_threads(device_config_));
  result.phases.d2h_ms = cost.transfer_ms(sizeof(TriangleCount));
  return result;
}

GpuCountResult count_triangles_gpu(const EdgeList& edges,
                                   const simt::DeviceConfig& device,
                                   CountingOptions options) {
  GpuForwardCounter counter(device, options);
  return counter.count(edges);
}

}  // namespace trico::core
