// GpuForwardCounter: the paper's end-to-end GPU triangle-counting pipeline
// on a simulated device.
//
// Pipeline (§III-B, §III-C):
//   1. copy edge array host -> device          (timed: PCIe model)
//   2. vertex count via max-reduce             (timed: stream model)
//   3. sort edges (radix on packed u64 keys,   (timed: sort model;
//      or comparison sort of pairs)             §III-D2 toggle)
//   4. build node array
//   5. mark backward edges (degree orientation)
//   6. remove_if compaction
//   7. unzip AoS -> SoA                        (§III-D1 toggle)
//   8. rebuild node array
//   9. CountTriangles kernel                   (timed: warp-level simulation)
//  10. reduce per-thread counters, copy result back
//
// The data transformations execute for real on the host (trico::prim), so
// every intermediate array is exact; the *times* come from the device models
// (DESIGN.md §6). When the device working set would not fit device memory,
// the §III-D6 fallback computes degrees and drops backward edges on the CPU
// first, halving the device footprint (the dagger rows of Table I).

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/count_kernels.hpp"
#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"
#include "simt/cost_model.hpp"
#include "simt/device.hpp"
#include "simt/fault.hpp"
#include "simt/launch.hpp"

namespace trico::core {

/// Which per-edge intersection kernel the counting phase runs.
enum class IntersectionStrategy {
  kMerge,         ///< the paper's two-pointer merge (CountTrianglesKernel)
  kBinarySearch,  ///< Green et al. [15]-style search (BinarySearchKernel)
};

/// All tunables of the pipeline; defaults are the paper's final
/// configuration (64 threads/block x 8 blocks/SM, SoA, final loop,
/// read-only qualifier, 64-bit radix sort).
struct CountingOptions {
  simt::LaunchConfig launch{64, 8, 32};
  KernelVariant variant{};
  IntersectionStrategy strategy = IntersectionStrategy::kMerge;
  bool sort_as_u64 = true;            ///< §III-D2: radix on packed keys
  /// Orientation ablation: true = the forward algorithm's degree order
  /// (lists bounded by sqrt(2m)); false = naive id order (correct count,
  /// but hub vertices keep huge forward lists — §II-B's robustness claim).
  bool orient_by_degree = true;
  bool allow_cpu_preprocess = true;   ///< §III-D6 fallback when too large
  bool force_cpu_preprocess = false;  ///< for the ablation bench
  simt::SimOptions sim{};             ///< SM sampling for big runs

  /// Host threads for the counters' internal thread pools (functional
  /// preprocessing, task extraction): 0 = hardware concurrency. The service
  /// layer sets this to 1 so concurrent requests on separate scheduler
  /// workers do not oversubscribe the host.
  std::size_t host_threads = 0;

  /// Out-of-core color filter (outofcore module): when `vertex_colors` is
  /// non-null, only triangles whose sorted vertex-color triple equals
  /// `color_triple` are counted. The color array is uploaded to the device
  /// alongside the graph.
  const std::vector<std::uint32_t>* vertex_colors = nullptr;
  std::array<std::uint32_t, 3> color_triple{0, 0, 0};

  /// Fault injection (non-owning; the plan's occurrence counters are
  /// consumed by the run). nullptr = no injected faults.
  simt::FaultPlan* fault_plan = nullptr;
  /// Retry budget and modeled backoff for every recovery loop.
  simt::RetryPolicy retry{};
  /// Memory budget for the degradation ladder of count_triangles_gpu, in
  /// bytes; 0 means the device's full memory. The effective budget is
  /// min(budget, device memory) and drives both the §III-D6 gate and the
  /// full-GPU -> CPU-preprocess -> out-of-core rung choice.
  std::uint64_t memory_budget_bytes = 0;
};

/// Wall-clock breakdown in modeled milliseconds, one field per pipeline
/// step (§IV: timing starts at the host->device copy and ends when the
/// result is back on the host).
struct PhaseBreakdown {
  double h2d_ms = 0;
  double cpu_preprocess_ms = 0;  ///< §III-D6 path only
  double vertex_count_ms = 0;
  double sort_ms = 0;
  double node_array_ms = 0;
  double mark_backward_ms = 0;
  double remove_ms = 0;
  double unzip_ms = 0;
  double node_array2_ms = 0;
  double counting_ms = 0;
  double reduce_ms = 0;
  double d2h_ms = 0;

  [[nodiscard]] double preprocessing_ms() const {
    return h2d_ms + cpu_preprocess_ms + vertex_count_ms + sort_ms +
           node_array_ms + mark_backward_ms + remove_ms + unzip_ms +
           node_array2_ms;
  }
  [[nodiscard]] double total_ms() const {
    return preprocessing_ms() + counting_ms + reduce_ms + d2h_ms;
  }
  /// The Amdahl fraction of §III-E (preprocessing share of total time).
  [[nodiscard]] double preprocessing_fraction() const {
    const double total = total_ms();
    return total > 0 ? preprocessing_ms() / total : 0.0;
  }
};

/// Result of one pipeline run.
struct GpuCountResult {
  TriangleCount triangles = 0;
  PhaseBreakdown phases;
  simt::KernelStats kernel;     ///< counting-kernel statistics (Table II)
  bool used_cpu_preprocessing = false;
  VertexId num_vertices = 0;
  EdgeIndex input_slots = 0;    ///< 2m directed slots in
  EdgeIndex oriented_edges = 0; ///< m oriented edges counted
  std::uint64_t device_peak_bytes = 0;
  /// Injected/organic faults that struck, recovery actions taken, and the
  /// degradation-ladder rung the run ended on.
  simt::RobustnessReport robustness;
};

/// Host-side state shared between runs (thread pool for the functional
/// preprocessing). One counter per device model.
class GpuForwardCounter {
 public:
  explicit GpuForwardCounter(simt::DeviceConfig device,
                             CountingOptions options = {});

  /// Runs the full pipeline on a canonical undirected edge array.
  [[nodiscard]] GpuCountResult count(const EdgeList& edges);

  [[nodiscard]] const simt::DeviceConfig& device_config() const {
    return device_config_;
  }
  [[nodiscard]] const CountingOptions& options() const { return options_; }
  CountingOptions& mutable_options() { return options_; }

  /// Device bytes the standard (all-GPU) preprocessing needs for `slots`
  /// directed slots; the §III-D6 gate compares this against device memory.
  [[nodiscard]] static std::uint64_t device_preprocess_bytes(EdgeIndex slots,
                                                             VertexId vertices);

 private:
  simt::DeviceConfig device_config_;
  CountingOptions options_;
  prim::ThreadPool pool_;
};

/// One-shot counting with an explicit graceful-degradation ladder:
///
///   rung 0  full-GPU pipeline (§III-B)
///   rung 1  §III-D6 CPU-preprocessing fallback (forced)
///   rung 2  out-of-core color-triple partitioned counting
///
/// The ladder is driven by the memory budget (options.memory_budget_bytes,
/// capped at device memory) and by fault feedback: a DeviceFault thrown on
/// one rung — injected via options.fault_plan or an organic device OOM —
/// steps down to the next rung instead of failing the call. The chosen
/// rung, retry counts and fault events are reported in
/// GpuCountResult::robustness. Throws DeviceFault only when even the
/// bottom rung cannot complete.
[[nodiscard]] GpuCountResult count_triangles_gpu(const EdgeList& edges,
                                                 const simt::DeviceConfig& device,
                                                 CountingOptions options = {});

}  // namespace trico::core
