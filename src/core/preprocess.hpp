// The preprocessing phase (§III-B steps 1-8) as a reusable host-side
// function, shared by the single-GPU pipeline and the multi-GPU counter
// (which preprocesses once on device 0 and broadcasts, §III-E).

#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/gpu_forward.hpp"
#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"
#include "simt/device_config.hpp"

namespace trico::core {

/// Typed rejection of inputs the pipeline's 32-bit layouts cannot represent
/// (slot counts beyond the uint32 node-array offsets, corrupt vertex ids) —
/// thrown instead of silently overflowing or allocating absurd arrays.
class PreprocessError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Output of the preprocessing phase: the oriented, sorted edge array in
/// both layouts plus the node array, with modeled per-step times filled into
/// `phases` (counting fields left zero).
struct PreprocessedGraph {
  std::vector<Edge> oriented;      ///< sorted by (u, v), forward slots only
  EdgeListSoA soa;                 ///< filled when options.variant.soa
  std::vector<std::uint32_t> node; ///< n+1 entries
  VertexId num_vertices = 0;
  EdgeIndex input_slots = 0;
  PhaseBreakdown phases;
  bool used_cpu_preprocessing = false;

  /// Device bytes the counting phase's resident arrays occupy (what must be
  /// broadcast to the other devices in the multi-GPU scheme).
  [[nodiscard]] std::uint64_t resident_bytes(bool soa_layout) const {
    const std::uint64_t edges_bytes =
        soa_layout ? oriented.size() * 8 : oriented.size() * sizeof(Edge);
    return edges_bytes + node.size() * sizeof(std::uint32_t);
  }
};

/// Runs steps 1-8 for `device`, charging modeled times, including the
/// §III-D6 CPU fallback when the working set exceeds device memory (or the
/// tighter options.memory_budget_bytes, if set).
///
/// `device_index` identifies the device for fault injection: the multi-GPU
/// counter preprocesses on device 0 and retries on the next device when a
/// planned fault strikes (probe sites kPreprocess at entry, kAlloc before
/// the device-side sort buffers). Throws simt::DeviceFault when a planned
/// fault fires and core::PreprocessError on inputs that would overflow the
/// uint32 node-array offsets or carry corrupt vertex ids.
[[nodiscard]] PreprocessedGraph preprocess_for_device(
    const EdgeList& edges, const simt::DeviceConfig& device,
    const CountingOptions& options, prim::ThreadPool& pool,
    unsigned device_index = 0);

}  // namespace trico::core
