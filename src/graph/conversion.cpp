#include "graph/conversion.hpp"

namespace trico {

EdgeList adjacency_to_edge_array(const Csr& adjacency) {
  return adjacency.to_edge_list();
}

Csr edge_array_to_adjacency(const EdgeList& edges) {
  return Csr::from_edge_list(edges);
}

}  // namespace trico
