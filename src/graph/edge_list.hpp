// EdgeList: the paper's input representation (§III-A).
//
// An EdgeList stores an array of directed edge slots. For an *undirected*
// graph in canonical form every edge {u, v} appears exactly twice — once as
// (u, v) and once as (v, u) — with no self-loops and no duplicates. Nothing
// about the order of slots is assumed; the preprocessing phase sorts them.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace trico {

/// Structure-of-arrays view of an edge array: the layout produced by the
/// "unzipping" preprocessing step (§III-D1). `src[i]` / `dst[i]` are the two
/// endpoints of slot i.
struct EdgeListSoA {
  std::vector<VertexId> src;
  std::vector<VertexId> dst;

  [[nodiscard]] EdgeIndex size() const { return src.size(); }
  [[nodiscard]] bool empty() const { return src.empty(); }
};

/// Result of EdgeList::validate().
struct ValidationReport {
  bool ok = false;
  std::uint64_t self_loops = 0;       ///< slots with u == v
  std::uint64_t duplicate_slots = 0;  ///< repeated (u, v) slots
  std::uint64_t asymmetric = 0;       ///< (u, v) present without (v, u)
  std::string message;                ///< human-readable summary
};

/// An edge array with a cached vertex count.
///
/// Invariants maintained by the mutating members (and checked by validate()):
/// vertex ids are dense in [0, num_vertices()), and in canonical undirected
/// form the slot multiset is symmetric, loop-free and duplicate-free.
class EdgeList {
 public:
  EdgeList() = default;

  /// Takes ownership of raw slots. The vertex count is (max id + 1), computed
  /// the same way preprocessing step 2 does, or 0 for an empty list.
  explicit EdgeList(std::vector<Edge> edges);

  /// Constructs with an explicit vertex count (allows isolated trailing
  /// vertices, which max-id inference cannot represent).
  EdgeList(std::vector<Edge> edges, VertexId num_vertices);

  /// Builds a canonical undirected edge array from a list of *unique
  /// undirected* pairs: each {u, v} with u != v is emitted in both
  /// directions. Duplicate pairs and self-loops in the input are dropped.
  static EdgeList from_undirected_pairs(std::span<const Edge> pairs,
                                        VertexId num_vertices = 0);

  [[nodiscard]] EdgeIndex num_edge_slots() const { return edges_.size(); }
  /// Number of *undirected* edges (slots / 2) in canonical form.
  [[nodiscard]] EdgeIndex num_edges() const { return edges_.size() / 2; }
  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] bool empty() const { return edges_.empty(); }

  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }
  [[nodiscard]] std::span<Edge> mutable_edges() { return edges_; }
  [[nodiscard]] const Edge& edge(EdgeIndex i) const { return edges_[i]; }

  /// Steals the slot vector (leaves this list empty).
  [[nodiscard]] std::vector<Edge> take_edges();

  /// Re-derives the vertex count as max id + 1 (preprocessing step 2).
  void recompute_num_vertices();

  /// Converts to structure-of-arrays layout (the §III-D1 "unzip").
  [[nodiscard]] EdgeListSoA to_soa() const;

  /// Rebuilds from structure-of-arrays layout.
  static EdgeList from_soa(const EdgeListSoA& soa, VertexId num_vertices = 0);

  /// Checks the canonical undirected-form invariants.
  [[nodiscard]] ValidationReport validate() const;

  /// Sorts slots by (u, v) in place. After this the array is a concatenation
  /// of sorted adjacency lists (preprocessing step 3).
  void sort_slots();

  /// Removes self-loops and duplicate slots and adds missing reverse slots,
  /// returning a canonical undirected edge array over the same vertex set.
  [[nodiscard]] EdgeList canonicalized() const;

  /// Per-vertex degree (out-degree over slots; equals undirected degree in
  /// canonical form).
  [[nodiscard]] std::vector<EdgeIndex> degrees() const;

  friend bool operator==(const EdgeList&, const EdgeList&) = default;

 private:
  std::vector<Edge> edges_;
  VertexId num_vertices_ = 0;
};

}  // namespace trico
