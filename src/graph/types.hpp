// Core graph value types shared by every trico subsystem.
//
// The paper's input format is an *edge array*: an array of (u, v) pairs in
// which every undirected edge appears exactly twice, once per direction, with
// no self-loops and no duplicate edges and no prescribed order (§III-A).
// These types encode that contract.

#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace trico {

/// Vertex identifier. The paper's kernels index vertices with 32-bit ints;
/// we keep the same width so the packed 64-bit edge representation used by
/// the sort optimization (§III-D2) works identically.
using VertexId = std::uint32_t;

/// Index into an edge array. 64-bit: the paper's largest graph has 364M
/// directed edge slots, beyond a 32-bit count only barely, but intersections
/// and prefix sums overflow 32 bits easily.
using EdgeIndex = std::uint64_t;

/// Triangle counts routinely exceed 2^32 (the paper reports 8.8e9 triangles
/// for Kronecker 21), so counts are always 64-bit.
using TriangleCount = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// One directed edge slot in an edge array (array-of-structures layout).
struct Edge {
  VertexId u = 0;  ///< source endpoint
  VertexId v = 0;  ///< destination endpoint

  friend constexpr bool operator==(const Edge&, const Edge&) = default;

  /// Lexicographic order (first by u then by v) — the order produced by
  /// preprocessing step 3 when sorting pairs directly.
  friend constexpr bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

/// Packs an edge into one 64-bit integer with the *first* vertex in the high
/// half, so that sorting the packed keys sorts edges by (u, v).
///
/// Note: the paper's §III-D2 optimization memcpy's the (u, v) pair as stored
/// in memory, which on a little-endian machine puts the *second* vertex in
/// the high half and therefore sorts by (v, u). Both orders are valid inputs
/// to the rest of the pipeline; see prim::sort_edges_as_u64 for the faithful
/// little-endian variant.
constexpr std::uint64_t pack_edge(Edge e) {
  return (static_cast<std::uint64_t>(e.u) << 32) | e.v;
}

/// Inverse of pack_edge.
constexpr Edge unpack_edge(std::uint64_t key) {
  return Edge{static_cast<VertexId>(key >> 32),
              static_cast<VertexId>(key & 0xffffffffu)};
}

/// Little-endian memcpy-style packing (second vertex in the high half), the
/// layout the paper's 64-bit sort optimization actually produces (§III-D2).
constexpr std::uint64_t pack_edge_le(Edge e) {
  return (static_cast<std::uint64_t>(e.v) << 32) | e.u;
}

/// Inverse of pack_edge_le.
constexpr Edge unpack_edge_le(std::uint64_t key) {
  return Edge{static_cast<VertexId>(key & 0xffffffffu),
              static_cast<VertexId>(key >> 32)};
}

}  // namespace trico

template <>
struct std::hash<trico::Edge> {
  std::size_t operator()(const trico::Edge& e) const noexcept {
    // SplitMix64 finalizer over the packed key: cheap and well distributed.
    std::uint64_t x = trico::pack_edge(e);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};
