// Representation conversions for the §III-A input-format study.
//
// The paper argues for edge-array input because adjacency-list -> edge-array
// conversion is a cheap single pass, while the reverse requires a sort. These
// functions are the two directions, written to be individually timeable by
// bench_input_format.

#pragma once

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace trico {

/// Adjacency list -> edge array: the "fast and simple single-pass algorithm"
/// of §III-A. O(m) with sequential writes only.
[[nodiscard]] EdgeList adjacency_to_edge_array(const Csr& adjacency);

/// Edge array -> adjacency list: requires sorting the slots (§III-A). This is
/// the expensive direction the paper measures at ~7 s for LiveJournal.
[[nodiscard]] Csr edge_array_to_adjacency(const EdgeList& edges);

}  // namespace trico
