#include "graph/io.hpp"
#include <algorithm>

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "util/io.hpp"

namespace trico::io {

namespace {

constexpr std::array<char, 8> kMagic = {'T', 'R', 'I', 'C', 'O', 'B', 'I', 'N'};
constexpr std::uint32_t kVersion = 1;

[[noreturn]] void fail(const std::string& what) { throw IoError(what); }

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) fail("unexpected end of binary graph stream");
  return value;
}

}  // namespace

EdgeList read_text(std::istream& in, ParseMode mode,
                   std::size_t* skipped_lines) {
  std::vector<Edge> pairs;
  std::string line;
  std::size_t lineno = 0;
  std::size_t skipped = 0;
  const auto malformed = [&](const std::string& what) {
    if (mode == ParseMode::strict) {
      fail("line " + std::to_string(lineno) + ": " + what);
    }
    ++skipped;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    unsigned long long u = 0, v = 0;
    if (!(fields >> u)) {
      // Blank / comment-only lines are fine in either mode; lines with
      // non-numeric leading tokens are malformed.
      if (line.find_first_not_of(" \t\r") != std::string::npos) {
        malformed("expected two vertex ids");
      }
      continue;
    }
    if (!(fields >> v)) {
      malformed("expected two vertex ids");
      continue;
    }
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      malformed("vertex id out of range");
      continue;
    }
    std::string extra;
    if (fields >> extra) {
      malformed("trailing tokens");
      continue;
    }
    pairs.push_back(Edge{static_cast<VertexId>(u), static_cast<VertexId>(v)});
  }
  if (skipped_lines != nullptr) *skipped_lines = skipped;
  return EdgeList::from_undirected_pairs(pairs);
}

EdgeList read_text_file(const std::string& path, ParseMode mode,
                        std::size_t* skipped_lines) {
  std::ifstream in(path);
  if (!in) fail("cannot open graph file: " + path);
  return read_text(in, mode, skipped_lines);
}

void write_text(std::ostream& out, const EdgeList& edges) {
  out << "# trico edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    if (e.u < e.v) out << e.u << ' ' << e.v << '\n';
  }
}

void write_text_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) fail("cannot open output file: " + path);
  write_text(out, edges);
}

namespace {

/// Reads the next non-comment, non-empty METIS line; false on EOF.
bool next_metis_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    return true;
  }
  return false;
}

}  // namespace

EdgeList read_metis(std::istream& in) {
  std::string line;
  if (!next_metis_line(in, line)) fail("metis: missing header line");
  std::istringstream header(line);
  std::uint64_t n = 0, m = 0;
  if (!(header >> n >> m)) fail("metis: malformed header");
  std::uint64_t fmt = 0;
  if (header >> fmt && fmt != 0) {
    fail("metis: weighted formats are not supported (fmt=" +
         std::to_string(fmt) + ")");
  }
  std::vector<Edge> pairs;
  pairs.reserve(m);
  for (std::uint64_t u = 1; u <= n; ++u) {
    if (!next_metis_line(in, line)) {
      fail("metis: expected " + std::to_string(n) + " adjacency lines, got " +
           std::to_string(u - 1));
    }
    std::istringstream fields(line);
    std::uint64_t v = 0;
    while (fields >> v) {
      if (v < 1 || v > n) {
        fail("metis: neighbour " + std::to_string(v) + " out of range on line " +
             std::to_string(u));
      }
      if (u < v) {
        pairs.push_back(Edge{static_cast<VertexId>(u - 1),
                             static_cast<VertexId>(v - 1)});
      }
    }
  }
  EdgeList edges =
      EdgeList::from_undirected_pairs(pairs, static_cast<VertexId>(n));
  if (edges.num_edges() != m) {
    fail("metis: header claims " + std::to_string(m) + " edges, found " +
         std::to_string(edges.num_edges()));
  }
  return edges;
}

EdgeList read_metis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open graph file: " + path);
  return read_metis(in);
}

void write_metis(std::ostream& out, const EdgeList& edges) {
  out << edges.num_vertices() << ' ' << edges.num_edges() << '\n';
  // Group neighbours per vertex (1-indexed) from the sorted slot array.
  std::vector<Edge> slots(edges.edges().begin(), edges.edges().end());
  std::sort(slots.begin(), slots.end());
  std::size_t cursor = 0;
  for (VertexId u = 0; u < edges.num_vertices(); ++u) {
    bool first = true;
    while (cursor < slots.size() && slots[cursor].u == u) {
      out << (first ? "" : " ") << slots[cursor].v + 1;
      first = false;
      ++cursor;
    }
    out << '\n';
  }
}

void write_metis_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) fail("cannot open output file: " + path);
  write_metis(out, edges);
}

BinaryHeader parse_binary_header(const void* bytes, std::size_t num_bytes,
                                 std::int64_t file_size) {
  if (num_bytes < kBinaryHeaderBytes) {
    fail("binary graph file shorter than its header (" +
         std::to_string(num_bytes) + " bytes)");
  }
  const char* p = static_cast<const char*>(bytes);
  if (std::memcmp(p, kMagic.data(), kMagic.size()) != 0) {
    fail("bad magic in binary graph stream");
  }
  std::uint32_t version = 0;
  std::memcpy(&version, p + 8, sizeof(version));
  if (version != kVersion) {
    fail("unsupported binary graph version " + std::to_string(version));
  }
  BinaryHeader header;
  std::memcpy(&header.num_vertices, p + 12, sizeof(header.num_vertices));
  std::memcpy(&header.num_slots, p + 16, sizeof(header.num_slots));
  if (header.num_slots >
      std::numeric_limits<std::uint64_t>::max() / sizeof(Edge)) {
    fail("binary graph header declares an impossible slot count " +
         std::to_string(header.num_slots));
  }
  if (file_size >= 0) {
    const std::uint64_t expected =
        kBinaryHeaderBytes + header.num_slots * sizeof(Edge);
    if (static_cast<std::uint64_t>(file_size) < expected) {
      fail("binary graph stream truncated: header declares " +
           std::to_string(header.num_slots) + " slots but the file holds " +
           std::to_string(file_size) + " bytes");
    }
    if (static_cast<std::uint64_t>(file_size) > expected) {
      fail("binary graph stream oversized: " +
           std::to_string(static_cast<std::uint64_t>(file_size) - expected) +
           " trailing bytes after the declared " +
           std::to_string(header.num_slots) + " slots");
    }
  }
  return header;
}

void write_binary(std::ostream& out, const EdgeList& edges) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  write_pod(out, edges.num_vertices());
  write_pod(out, static_cast<std::uint64_t>(edges.num_edge_slots()));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(edges.num_edge_slots() * sizeof(Edge)));
  if (!out) fail("write failure in binary graph stream");
}

void write_binary_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open output file: " + path);
  write_binary(out, edges);
}

EdgeList read_binary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) fail("bad magic in binary graph stream");
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    fail("unsupported binary graph version " + std::to_string(version));
  }
  const auto n = read_pod<VertexId>(in);
  const auto slots = read_pod<std::uint64_t>(in);
  if (slots > std::numeric_limits<std::uint64_t>::max() / sizeof(Edge)) {
    fail("binary graph header declares an impossible slot count " +
         std::to_string(slots));
  }
  const std::uint64_t payload_bytes = slots * sizeof(Edge);

  // Cross-check the declared slot count against the remaining stream size
  // *before* allocating, so a corrupted header can neither truncate the
  // edge array silently nor provoke a huge bogus allocation. Falls back to
  // read-and-verify when the stream is not seekable.
  const std::streampos here = in.tellg();
  if (here != std::streampos(-1)) {
    in.seekg(0, std::ios::end);
    const std::streampos end = in.tellg();
    in.seekg(here);
    if (end != std::streampos(-1)) {
      const auto remaining =
          static_cast<std::uint64_t>(end - here);
      if (remaining < payload_bytes) {
        fail("binary graph stream truncated: header declares " +
             std::to_string(slots) + " slots (" +
             std::to_string(payload_bytes) + " bytes) but only " +
             std::to_string(remaining) + " bytes remain");
      }
      if (remaining > payload_bytes) {
        fail("binary graph stream oversized: " +
             std::to_string(remaining - payload_bytes) +
             " trailing bytes after the declared " + std::to_string(slots) +
             " slots");
      }
    }
  }

  std::vector<Edge> edges(slots);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(payload_bytes));
  if (!in || static_cast<std::uint64_t>(in.gcount()) != payload_bytes) {
    fail("truncated binary graph stream");
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    fail("binary graph stream oversized: trailing bytes after the declared " +
         std::to_string(slots) + " slots");
  }
  return EdgeList(std::move(edges), n);
}

EdgeList read_binary_file(const std::string& path) {
  // The binary loader goes through the EINTR-safe fd helpers instead of an
  // ifstream: a service worker loading a multi-GB `.trico` file must not
  // fail on a signal landing mid-read (SIGCHLD from the supervisor, the
  // drain SIGTERM) or on a short read from a network filesystem.
  const int fd = util::io::open_retry(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot open graph file: " + path);
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0 || ::lseek(fd, 0, SEEK_SET) < 0) {
    util::io::close_quiet(fd);
    fail("cannot determine size of graph file: " + path);
  }
  std::string bytes(static_cast<std::size_t>(size), '\0');
  const util::io::IoResult r =
      util::io::read_full(fd, bytes.data(), bytes.size());
  util::io::close_quiet(fd);
  if (r.status != util::io::IoStatus::kOk) {
    fail("read failure on graph file " + path + ": " +
         (r.status == util::io::IoStatus::kEof
              ? "file shrank mid-read"
              : std::string(std::strerror(r.error))));
  }
  std::istringstream in(std::move(bytes), std::ios::binary);
  return read_binary(in);
}

}  // namespace trico::io
