#include "graph/orientation.hpp"

#include <algorithm>

namespace trico {

EdgeList orient_forward(const EdgeList& edges) {
  const std::vector<EdgeIndex> degree = edges.degrees();
  std::vector<Edge> kept;
  kept.reserve(edges.num_edge_slots() / 2);
  for (const Edge& e : edges.edges()) {
    if (!is_backward_edge(degree, e.u, e.v)) kept.push_back(e);
  }
  return EdgeList(std::move(kept), edges.num_vertices());
}

Csr oriented_csr(const EdgeList& edges) {
  return Csr::from_edge_list(orient_forward(edges));
}

EdgeList orient_by_id(const EdgeList& edges) {
  std::vector<Edge> kept;
  kept.reserve(edges.num_edge_slots() / 2);
  for (const Edge& e : edges.edges()) {
    if (e.u < e.v) kept.push_back(e);
  }
  return EdgeList(std::move(kept), edges.num_vertices());
}

EdgeIndex max_oriented_degree(const Csr& oriented) {
  return oriented.max_degree();
}

}  // namespace trico
