#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace trico {

Csr::Csr(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  if (offsets_.empty()) {
    if (!neighbors_.empty()) {
      throw std::invalid_argument("Csr: neighbors without offsets");
    }
    return;
  }
  if (offsets_.front() != 0 || offsets_.back() != neighbors_.size()) {
    throw std::invalid_argument("Csr: offsets do not bracket neighbor array");
  }
  if (!std::is_sorted(offsets_.begin(), offsets_.end())) {
    throw std::invalid_argument("Csr: offsets not monotone");
  }
}

Csr Csr::from_edge_list(const EdgeList& edges) {
  std::vector<Edge> slots(edges.edges().begin(), edges.edges().end());
  std::sort(slots.begin(), slots.end());
  const VertexId n = edges.num_vertices();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<VertexId> neighbors;
  neighbors.reserve(slots.size());
  for (const Edge& e : slots) {
    ++offsets[e.u + 1];
    neighbors.push_back(e.v);
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  return Csr(std::move(offsets), std::move(neighbors));
}

Csr Csr::from_sorted_soa(const EdgeListSoA& soa, VertexId num_vertices) {
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (VertexId u : soa.src) {
    assert(u < num_vertices);
    ++offsets[u + 1];
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];
  return Csr(std::move(offsets), soa.dst);
}

bool Csr::lists_strictly_sorted() const {
  for (VertexId u = 0; u < num_vertices(); ++u) {
    const auto adj = neighbors(u);
    for (std::size_t i = 1; i < adj.size(); ++i) {
      if (adj[i - 1] >= adj[i]) return false;
    }
  }
  return true;
}

EdgeIndex Csr::max_degree() const {
  EdgeIndex best = 0;
  for (VertexId u = 0; u < num_vertices(); ++u) best = std::max(best, degree(u));
  return best;
}

EdgeList Csr::to_edge_list() const {
  std::vector<Edge> slots;
  slots.reserve(neighbors_.size());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : neighbors(u)) slots.push_back(Edge{u, v});
  }
  return EdgeList(std::move(slots), num_vertices());
}

}  // namespace trico
