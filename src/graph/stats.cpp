#include "graph/stats.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

namespace trico {

GraphStats compute_stats(const EdgeList& edges) {
  GraphStats stats;
  stats.num_vertices = edges.num_vertices();
  stats.num_edges = edges.num_edges();
  const std::vector<EdgeIndex> deg = edges.degrees();
  if (deg.empty()) return stats;
  double sum = 0.0, sum_sq = 0.0;
  for (EdgeIndex d : deg) {
    stats.max_degree = std::max(stats.max_degree, d);
    if (d == 0) ++stats.isolated_vertices;
    const auto x = static_cast<double>(d);
    sum += x;
    sum_sq += x * x;
  }
  const auto n = static_cast<double>(deg.size());
  stats.avg_degree = sum / n;
  const double variance = std::max(0.0, sum_sq / n - stats.avg_degree * stats.avg_degree);
  stats.degree_stddev = std::sqrt(variance);
  return stats;
}

std::vector<std::uint64_t> degree_histogram(const EdgeList& edges) {
  const std::vector<EdgeIndex> deg = edges.degrees();
  EdgeIndex max_degree = 0;
  for (EdgeIndex d : deg) max_degree = std::max(max_degree, d);
  std::vector<std::uint64_t> histogram(max_degree + 1, 0);
  for (EdgeIndex d : deg) ++histogram[d];
  return histogram;
}

std::string to_string(const GraphStats& stats) {
  std::ostringstream out;
  out << "n=" << stats.num_vertices << " m=" << stats.num_edges
      << " degmax=" << stats.max_degree << " degavg=" << stats.avg_degree
      << " degsd=" << stats.degree_stddev;
  return out.str();
}

std::ostream& operator<<(std::ostream& out, const GraphStats& stats) {
  return out << to_string(stats);
}

}  // namespace trico
