// Degree orientation — the heart of the forward algorithm's preprocessing.
//
// The forward algorithm fixes a total order `≺` on vertices consistent with
// degree: deg(u) < deg(v) implies u ≺ v, ties broken by vertex id (§II-B,
// §III-B step 5). Every undirected edge is kept only in its "forward"
// direction, from the ≺-smaller endpoint to the ≺-larger one. The oriented
// adjacency lists are then sorted by neighbor id. A classic argument shows
// every oriented list has length at most sqrt(2m), which bounds the
// per-edge intersection work.

#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace trico {

/// The paper's vertex order on explicit degree values: deg_u < deg_v, ties
/// broken by id. This is THE orientation predicate — every layer (CPU
/// counting, device preprocessing kernels, §III-D6 fallback, the hybrid
/// engine) must call this one helper so tie-breaking can never drift.
template <typename Degree>
constexpr bool degree_order_less(Degree deg_u, Degree deg_v, VertexId u,
                                 VertexId v) {
  return deg_u != deg_v ? deg_u < deg_v : u < v;
}

/// The paper's vertex order: by degree, ties by id. Returns true iff u ≺ v.
inline bool degree_less(std::span<const EdgeIndex> degree, VertexId u,
                        VertexId v) {
  return degree_order_less(degree[u], degree[v], u, v);
}

/// True iff slot (u, v) goes "backwards" (from the ≺-larger endpoint) and is
/// removed by preprocessing steps 5-6.
inline bool is_backward_edge(std::span<const EdgeIndex> degree, VertexId u,
                             VertexId v) {
  return degree_less(degree, v, u);
}

/// Orients a canonical undirected edge array: keeps only forward slots.
/// The result has exactly num_edges() slots (one per undirected edge).
[[nodiscard]] EdgeList orient_forward(const EdgeList& edges);

/// Orients and builds the oriented CSR in one step (the state the counting
/// phase consumes: oriented, per-list sorted by id).
[[nodiscard]] Csr oriented_csr(const EdgeList& edges);

/// A trivial alternative orientation that ignores degrees and keeps (u, v)
/// iff u < v. Correct for counting but loses the sqrt(m) list-length bound —
/// used by the orientation ablation.
[[nodiscard]] EdgeList orient_by_id(const EdgeList& edges);

/// Longest oriented adjacency list; the theory bounds this by sqrt(2m) for
/// the degree orientation.
[[nodiscard]] EdgeIndex max_oriented_degree(const Csr& oriented);

}  // namespace trico
