#include "graph/edge_list.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace trico {

namespace {

VertexId max_vertex_plus_one(std::span<const Edge> edges) {
  VertexId max_id = 0;
  bool any = false;
  for (const Edge& e : edges) {
    max_id = std::max({max_id, e.u, e.v});
    any = true;
  }
  return any ? max_id + 1 : 0;
}

}  // namespace

EdgeList::EdgeList(std::vector<Edge> edges) : edges_(std::move(edges)) {
  num_vertices_ = max_vertex_plus_one(edges_);
}

EdgeList::EdgeList(std::vector<Edge> edges, VertexId num_vertices)
    : edges_(std::move(edges)), num_vertices_(num_vertices) {
  num_vertices_ = std::max(num_vertices_, max_vertex_plus_one(edges_));
}

EdgeList EdgeList::from_undirected_pairs(std::span<const Edge> pairs,
                                         VertexId num_vertices) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(pairs.size() * 2);
  std::vector<Edge> slots;
  slots.reserve(pairs.size() * 2);
  for (const Edge& e : pairs) {
    if (e.u == e.v) continue;
    const Edge lo{std::min(e.u, e.v), std::max(e.u, e.v)};
    if (!seen.insert(pack_edge(lo)).second) continue;
    slots.push_back(Edge{lo.u, lo.v});
    slots.push_back(Edge{lo.v, lo.u});
  }
  return EdgeList(std::move(slots), num_vertices);
}

std::vector<Edge> EdgeList::take_edges() {
  num_vertices_ = 0;
  return std::exchange(edges_, {});
}

void EdgeList::recompute_num_vertices() {
  num_vertices_ = max_vertex_plus_one(edges_);
}

EdgeListSoA EdgeList::to_soa() const {
  EdgeListSoA soa;
  soa.src.reserve(edges_.size());
  soa.dst.reserve(edges_.size());
  for (const Edge& e : edges_) {
    soa.src.push_back(e.u);
    soa.dst.push_back(e.v);
  }
  return soa;
}

EdgeList EdgeList::from_soa(const EdgeListSoA& soa, VertexId num_vertices) {
  std::vector<Edge> edges;
  edges.reserve(soa.size());
  for (EdgeIndex i = 0; i < soa.size(); ++i) {
    edges.push_back(Edge{soa.src[i], soa.dst[i]});
  }
  return EdgeList(std::move(edges), num_vertices);
}

ValidationReport EdgeList::validate() const {
  ValidationReport report;
  std::unordered_set<std::uint64_t> slots;
  slots.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    if (e.u == e.v) ++report.self_loops;
    if (!slots.insert(pack_edge(e)).second) ++report.duplicate_slots;
  }
  for (const Edge& e : edges_) {
    if (e.u != e.v && !slots.contains(pack_edge(Edge{e.v, e.u}))) {
      ++report.asymmetric;
    }
  }
  report.ok = report.self_loops == 0 && report.duplicate_slots == 0 &&
              report.asymmetric == 0;
  std::ostringstream msg;
  if (report.ok) {
    msg << "canonical undirected edge array: " << num_edges() << " edges, "
        << num_vertices_ << " vertices";
  } else {
    msg << "invalid edge array: " << report.self_loops << " self-loops, "
        << report.duplicate_slots << " duplicate slots, " << report.asymmetric
        << " asymmetric slots";
  }
  report.message = msg.str();
  return report;
}

void EdgeList::sort_slots() { std::sort(edges_.begin(), edges_.end()); }

EdgeList EdgeList::canonicalized() const {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges_.size() * 2);
  std::vector<Edge> pairs;
  for (const Edge& e : edges_) {
    if (e.u == e.v) continue;
    const Edge lo{std::min(e.u, e.v), std::max(e.u, e.v)};
    if (seen.insert(pack_edge(lo)).second) pairs.push_back(lo);
  }
  return from_undirected_pairs(pairs, num_vertices_);
}

std::vector<EdgeIndex> EdgeList::degrees() const {
  std::vector<EdgeIndex> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.u];
  return deg;
}

}  // namespace trico
