// Graph input/output.
//
// Two interchange formats:
//  * Text: one "u v" pair per line, '#' comments — the SNAP edge-list format
//    used by the paper's real-world datasets.
//  * Binary: a little-endian header (magic, version, n, slot count) followed
//    by raw Edge slots — the zero-parse format the benchmarks load.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/edge_list.hpp"

namespace trico::io {

/// Error carrying the offending file/stream context.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses SNAP-style text ("u v" per line, '#' comments, blank lines
/// allowed). Pairs are treated as undirected and canonicalized: self-loops
/// and duplicates are dropped and both directions are emitted.
/// Throws IoError on malformed lines.
[[nodiscard]] EdgeList read_text(std::istream& in);
[[nodiscard]] EdgeList read_text_file(const std::string& path);

/// Writes one canonical pair per line (u < v only, so the file has
/// num_edges() lines).
void write_text(std::ostream& out, const EdgeList& edges);
void write_text_file(const std::string& path, const EdgeList& edges);

/// Parses the METIS / DIMACS-10 adjacency format — the format of the
/// paper's Citeseer, DBLP and Kronecker datasets. First non-comment line:
/// "<n> <m> [fmt]"; then n lines, line i holding the 1-indexed neighbours
/// of vertex i; '%' starts a comment. Only unweighted graphs (fmt 0 or
/// absent) are supported. Throws IoError on malformed input or if the
/// header's edge count disagrees with the adjacency lines.
[[nodiscard]] EdgeList read_metis(std::istream& in);
[[nodiscard]] EdgeList read_metis_file(const std::string& path);

/// Writes the METIS adjacency format (unweighted).
void write_metis(std::ostream& out, const EdgeList& edges);
void write_metis_file(const std::string& path, const EdgeList& edges);

/// Binary round-trip. The writer stores slots verbatim; the reader restores
/// them verbatim (no canonicalization), so oriented arrays survive too.
void write_binary(std::ostream& out, const EdgeList& edges);
void write_binary_file(const std::string& path, const EdgeList& edges);
[[nodiscard]] EdgeList read_binary(std::istream& in);
[[nodiscard]] EdgeList read_binary_file(const std::string& path);

}  // namespace trico::io
