// Graph input/output.
//
// Two interchange formats:
//  * Text: one "u v" pair per line, '#' comments — the SNAP edge-list format
//    used by the paper's real-world datasets.
//  * Binary: a little-endian header (magic, version, n, slot count) followed
//    by raw Edge slots — the zero-parse format the benchmarks load.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "graph/edge_list.hpp"

namespace trico::io {

/// Error carrying the offending file/stream context.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed-line policy for read_text.
enum class ParseMode {
  strict,   ///< throw IoError on the first malformed line
  lenient,  ///< skip malformed lines, reporting how many via `skipped_lines`
};

/// Parses SNAP-style text ("u v" per line, '#' comments, blank lines
/// allowed). Pairs are treated as undirected and canonicalized: self-loops
/// and duplicates are dropped and both directions are emitted.
/// In strict mode throws IoError on malformed lines; in lenient mode skips
/// them and, when `skipped_lines` is non-null, stores the skip count there
/// (always written, including 0).
[[nodiscard]] EdgeList read_text(std::istream& in,
                                 ParseMode mode = ParseMode::strict,
                                 std::size_t* skipped_lines = nullptr);
[[nodiscard]] EdgeList read_text_file(const std::string& path,
                                      ParseMode mode = ParseMode::strict,
                                      std::size_t* skipped_lines = nullptr);

/// Writes one canonical pair per line (u < v only, so the file has
/// num_edges() lines).
void write_text(std::ostream& out, const EdgeList& edges);
void write_text_file(const std::string& path, const EdgeList& edges);

/// Parses the METIS / DIMACS-10 adjacency format — the format of the
/// paper's Citeseer, DBLP and Kronecker datasets. First non-comment line:
/// "<n> <m> [fmt]"; then n lines, line i holding the 1-indexed neighbours
/// of vertex i; '%' starts a comment. Only unweighted graphs (fmt 0 or
/// absent) are supported. Throws IoError on malformed input or if the
/// header's edge count disagrees with the adjacency lines.
[[nodiscard]] EdgeList read_metis(std::istream& in);
[[nodiscard]] EdgeList read_metis_file(const std::string& path);

/// Writes the METIS adjacency format (unweighted).
void write_metis(std::ostream& out, const EdgeList& edges);
void write_metis_file(const std::string& path, const EdgeList& edges);

/// The fixed-size prefix of a binary `.trico` file: 8-byte magic, u32
/// version, u32 vertex count, u64 slot count — then raw Edge slots.
inline constexpr std::size_t kBinaryHeaderBytes = 24;

/// Parsed `.trico` binary header.
struct BinaryHeader {
  VertexId num_vertices = 0;
  std::uint64_t num_slots = 0;
};

/// Parses and validates the first kBinaryHeaderBytes of a `.trico` file —
/// shared by the serial reader and the parallel chunked ingest in
/// src/store/. Throws IoError on short input, bad magic, or an unsupported
/// version. When `file_size` is non-negative it is cross-checked against the
/// declared slot count (exact-size match, as read_binary enforces).
[[nodiscard]] BinaryHeader parse_binary_header(const void* bytes,
                                               std::size_t num_bytes,
                                               std::int64_t file_size = -1);

/// Binary round-trip. The writer stores slots verbatim; the reader restores
/// them verbatim (no canonicalization), so oriented arrays survive too.
/// The reader validates magic and version and cross-checks the header's
/// declared slot count against the remaining stream size, rejecting
/// truncated or oversized files with IoError before allocating anything.
void write_binary(std::ostream& out, const EdgeList& edges);
void write_binary_file(const std::string& path, const EdgeList& edges);
[[nodiscard]] EdgeList read_binary(std::istream& in);
[[nodiscard]] EdgeList read_binary_file(const std::string& path);

}  // namespace trico::io
