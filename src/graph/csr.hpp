// Compressed sparse row (CSR) adjacency structure.
//
// In the paper this is the pair (edge array sorted by first endpoint, node
// array): `node[u]` points at the first slot of u's adjacency list and
// `node[u + 1]` one past its last (preprocessing steps 3-4). We expose the
// same two arrays.

#pragma once

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace trico {

/// CSR adjacency: `offsets` has num_vertices()+1 entries; the neighbors of u
/// are `neighbors[offsets[u] .. offsets[u+1])`, sorted ascending.
class Csr {
 public:
  Csr() = default;
  Csr(std::vector<EdgeIndex> offsets, std::vector<VertexId> neighbors);

  /// Builds CSR from an edge array: sorts a copy of the slots by (u, v) and
  /// scans out the node array. This is exactly preprocessing steps 3-4 run on
  /// the host.
  static Csr from_edge_list(const EdgeList& edges);

  /// Builds CSR directly from already-sorted structure-of-arrays slots.
  static Csr from_sorted_soa(const EdgeListSoA& soa, VertexId num_vertices);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edge_slots() const { return neighbors_.size(); }

  [[nodiscard]] EdgeIndex degree(VertexId u) const {
    return offsets_[u + 1] - offsets_[u];
  }
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId u) const {
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] std::span<const EdgeIndex> offsets() const { return offsets_; }
  [[nodiscard]] std::span<const VertexId> neighbor_array() const {
    return neighbors_;
  }

  /// True iff every adjacency list is sorted strictly ascending (no
  /// duplicate neighbors).
  [[nodiscard]] bool lists_strictly_sorted() const;

  /// Maximum degree over all vertices (0 for an empty graph).
  [[nodiscard]] EdgeIndex max_degree() const;

  /// Round-trips back to an edge array (inverse of from_edge_list up to slot
  /// order; used by the §III-A conversion benchmarks).
  [[nodiscard]] EdgeList to_edge_list() const;

 private:
  std::vector<EdgeIndex> offsets_;  ///< the paper's "node array", n+1 entries
  std::vector<VertexId> neighbors_;
};

}  // namespace trico
