// Descriptive graph statistics used by the experiment harness to report the
// Table I graph-property columns and to check generator output against the
// paper's dataset shapes.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"

namespace trico {

/// Summary statistics of a canonical undirected edge array.
struct GraphStats {
  VertexId num_vertices = 0;
  EdgeIndex num_edges = 0;     ///< undirected edges
  EdgeIndex max_degree = 0;
  double avg_degree = 0.0;
  double degree_stddev = 0.0;  ///< degree-distribution skew indicator (§II-A)
  VertexId isolated_vertices = 0;
};

/// Computes GraphStats in one pass over degrees.
[[nodiscard]] GraphStats compute_stats(const EdgeList& edges);

/// Degree histogram: result[d] = number of vertices of degree d.
[[nodiscard]] std::vector<std::uint64_t> degree_histogram(const EdgeList& edges);

/// Human-readable one-liner, e.g. "n=1000 m=4985 degmax=42 degavg=9.97".
[[nodiscard]] std::string to_string(const GraphStats& stats);

std::ostream& operator<<(std::ostream& out, const GraphStats& stats);

}  // namespace trico
