#include "transport/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/io.hpp"

namespace trico::transport {

namespace {

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

/// Reads the worker's stdout pipe until a "LISTENING <port>" line (workers
/// print exactly one such line once bound), bounded by timeout_ms.
std::uint16_t await_listening(int fd, int timeout_ms) {
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  char chunk[256];
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                               deadline - std::chrono::steady_clock::now())
                               .count();
    if (remaining <= 0) {
      throw TransportError(TransportFault::kConnect,
                           "worker did not report LISTENING within " +
                               std::to_string(timeout_ms) + " ms");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = util::io::poll_retry(&pfd, 1, static_cast<int>(remaining));
    if (rc <= 0) continue;
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      throw TransportError(TransportFault::kConnect,
                           "worker exited before reporting LISTENING");
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    std::size_t nl;
    while ((nl = buffer.find('\n', pos)) != std::string::npos) {
      const std::string line = buffer.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.rfind("LISTENING ", 0) == 0) {
        const long port = std::strtol(line.c_str() + 10, nullptr, 10);
        if (port > 0 && port < 65536) return static_cast<std::uint16_t>(port);
      }
    }
    buffer.erase(0, pos);
  }
}

}  // namespace

WorkerSupervisor::WorkerSupervisor(SupervisorOptions options)
    : options_(std::move(options)) {}

WorkerSupervisor::~WorkerSupervisor() { stop(); }

void WorkerSupervisor::spawn_locked(Worker& worker) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    throw TransportError(TransportFault::kConnect,
                         std::string("pipe: ") + std::strerror(errno));
  }

  std::vector<std::string> argv_store;
  argv_store.push_back(options_.cli_path);
  argv_store.push_back("serve");
  argv_store.push_back("--port");
  argv_store.push_back("0");
  for (const std::string& arg : options_.worker_args) {
    argv_store.push_back(arg);
  }
  std::vector<char*> argv;
  argv.reserve(argv_store.size() + 1);
  for (std::string& s : argv_store) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    util::io::close_quiet(pipe_fds[0]);
    util::io::close_quiet(pipe_fds[1]);
    throw TransportError(TransportFault::kConnect,
                         std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec — the
    // parent is multithreaded, so any lock taken here could be held by a
    // thread that no longer exists.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    ::execv(argv[0], argv.data());
    ::_exit(127);
  }

  ::close(pipe_fds[1]);
  std::uint16_t port = 0;
  try {
    port = await_listening(pipe_fds[0], options_.spawn_timeout_ms);
  } catch (...) {
    util::io::close_quiet(pipe_fds[0]);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw;
  }
  util::io::close_quiet(pipe_fds[0]);

  worker.pid = pid;
  worker.port = port;
  worker.alive = true;
  worker.breaker = service::BreakerState::kClosed;
  worker.consecutive_faults = 0;
  worker.open_backoff_ms = 0;

  ClientOptions copts = options_.client;
  copts.host = "127.0.0.1";
  copts.port = port;
  copts.client_id = 0;  // fresh unique id per worker connection
  copts.endpoints.clear();  // one pinned worker per client: no failover set
  if (copts.seed != 0) {
    // Seeded runs stay deterministic *and* de-synchronized: each worker
    // slot gets its own jitter stream instead of N clients sharing one.
    copts.seed += static_cast<std::uint64_t>(&worker - workers_.data());
  }
  worker.client = std::make_unique<Client>(copts);
}

void WorkerSupervisor::start() {
  std::lock_guard lock(mutex_);
  workers_.resize(static_cast<std::size_t>(options_.num_workers));
  for (Worker& worker : workers_) {
    spawn_locked(worker);
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

void WorkerSupervisor::monitor_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard lock(mutex_);
      for (Worker& worker : workers_) {
        // The per-worker traffic lock owns the Client's lifetime: never
        // reset or replace worker.client without it. try_lock keeps the
        // monitor from stalling behind a request in flight — a worker we
        // skip this tick is checked again next tick.
        if (!worker.lock->try_lock()) continue;
        std::lock_guard wl(*worker.lock, std::adopt_lock);
        // Crash detection: a worker that exited (chaos kill, OOM, bug)
        // shows up in waitpid long before a heartbeat times out.
        if (worker.alive && worker.pid > 0) {
          int status = 0;
          const pid_t r = ::waitpid(worker.pid, &status, WNOHANG);
          if (r == worker.pid) {
            worker.alive = false;
            worker.client.reset();
            worker.restart_backoff =
                worker.restart_backoff <= 0
                    ? options_.restart_backoff_ms
                    : std::min(worker.restart_backoff * 2,
                               options_.restart_backoff_max_ms);
            worker.respawn_at =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        worker.restart_backoff));
          }
        }
        if (!worker.alive &&
            std::chrono::steady_clock::now() >= worker.respawn_at) {
          try {
            spawn_locked(worker);
            ++worker.restarts;
            ++stats_.restarts;
          } catch (const std::exception&) {
            // Spawn failed (e.g. binary briefly unavailable): back off more.
            worker.restart_backoff =
                std::min(std::max(worker.restart_backoff * 2,
                                  options_.restart_backoff_ms),
                         options_.restart_backoff_max_ms);
            worker.respawn_at =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        worker.restart_backoff));
          }
          continue;
        }
        // Heartbeat: a hung or drain-stuck worker trips the breaker even
        // though its process is technically alive.
        if (worker.alive && worker.client != nullptr) {
          try {
            (void)worker.client->heartbeat();
            record_success_locked(worker);
            worker.restart_backoff = 0;
          } catch (const std::exception&) {
            ++stats_.heartbeat_faults;
            record_fault_locked(worker);
          }
        }
      }
    }
    sleep_ms(options_.monitor_period_ms);
  }
}

bool WorkerSupervisor::admit_locked(Worker& worker) {
  if (!worker.alive || worker.client == nullptr) return false;
  if (worker.breaker != service::BreakerState::kOpen) return true;
  if (std::chrono::steady_clock::now() < worker.reopen_at) return false;
  worker.breaker = service::BreakerState::kHalfOpen;  // one probe allowed
  return true;
}

void WorkerSupervisor::record_fault_locked(Worker& worker) {
  ++worker.consecutive_faults;
  const bool trip =
      worker.breaker == service::BreakerState::kHalfOpen ||
      worker.consecutive_faults >= options_.breaker.failure_threshold;
  if (!trip) return;
  worker.breaker = service::BreakerState::kOpen;
  worker.open_backoff_ms =
      worker.open_backoff_ms <= 0
          ? options_.breaker.open_backoff_ms
          : std::min(worker.open_backoff_ms * options_.breaker.backoff_multiplier,
                     options_.breaker.max_backoff_ms);
  worker.reopen_at =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(worker.open_backoff_ms));
}

void WorkerSupervisor::record_success_locked(Worker& worker) {
  worker.consecutive_faults = 0;
  worker.breaker = service::BreakerState::kClosed;
  worker.open_backoff_ms = 0;
}

service::Response WorkerSupervisor::execute(const service::Request& request) {
  const std::size_t n = [&] {
    std::lock_guard lock(mutex_);
    return workers_.size();
  }();
  if (n == 0) {
    throw TransportError(TransportFault::kExhausted, "no workers");
  }

  std::string last_error = "no admissible worker";
  // Up to two passes over the pool: a worker that crashes mid-request gets
  // respawned by the monitor while we try its siblings.
  const std::size_t attempts = n * 2;
  bool rerouted = false;
  for (std::size_t i = 0; i < attempts; ++i) {
    const std::size_t index =
        next_worker_.fetch_add(1, std::memory_order_relaxed) % n;
    std::mutex* worker_lock = nullptr;
    {
      std::lock_guard lock(mutex_);
      // The Worker slots and their lock objects are stable after start();
      // only the Client inside is replaced (under the worker lock).
      worker_lock = workers_[index].lock.get();
    }
    // Traffic lock first, then re-check admission: the monitor only swaps
    // worker.client while holding this lock, so the pointer stays valid
    // for the whole request.
    std::unique_lock traffic(*worker_lock);
    Client* client = nullptr;
    {
      std::lock_guard lock(mutex_);
      Worker& worker = workers_[index];
      if (!admit_locked(worker)) continue;
      client = worker.client.get();
    }
    try {
      service::Response response = client->execute(request);
      std::lock_guard lock(mutex_);
      record_success_locked(workers_[index]);
      if (rerouted) ++stats_.reroutes;
      return response;
    } catch (const TransportError& error) {
      if (error.fault() == TransportFault::kProtocol) throw;
      last_error = error.what();
      rerouted = true;
      std::lock_guard lock(mutex_);
      record_fault_locked(workers_[index]);
    }
    if (i + 1 == n) {
      // First full pass failed everywhere: give the monitor a beat to
      // respawn before the second pass.
      sleep_ms(options_.monitor_period_ms * 2);
    }
  }
  throw TransportError(TransportFault::kExhausted,
                       "all workers failed; last: " + last_error);
}

service::Response WorkerSupervisor::execute_on(std::size_t index,
                                               const service::Request& request) {
  std::mutex* worker_lock = nullptr;
  {
    std::lock_guard lock(mutex_);
    if (index >= workers_.size()) {
      throw TransportError(TransportFault::kConnect,
                           "no worker slot " + std::to_string(index));
    }
    worker_lock = workers_[index].lock.get();
  }
  std::unique_lock traffic(*worker_lock);
  Client* client = nullptr;
  {
    std::lock_guard lock(mutex_);
    Worker& worker = workers_[index];
    if (!admit_locked(worker)) {
      throw TransportError(TransportFault::kConnect,
                           "worker " + std::to_string(index) +
                               " not admissible (down or breaker open)");
    }
    client = worker.client.get();
  }
  try {
    service::Response response = client->execute(request);
    std::lock_guard lock(mutex_);
    record_success_locked(workers_[index]);
    return response;
  } catch (const TransportError& error) {
    if (error.fault() != TransportFault::kProtocol) {
      std::lock_guard lock(mutex_);
      record_fault_locked(workers_[index]);
    }
    throw;
  }
}

std::vector<std::size_t> WorkerSupervisor::healthy_workers() const {
  std::vector<std::size_t> healthy;
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& worker = workers_[i];
    if (!worker.alive || worker.client == nullptr) continue;
    if (worker.breaker == service::BreakerState::kOpen &&
        now < worker.reopen_at) {
      continue;
    }
    healthy.push_back(i);
  }
  return healthy;
}

std::size_t WorkerSupervisor::size() const {
  std::lock_guard lock(mutex_);
  return workers_.size();
}

void WorkerSupervisor::kill_worker(std::size_t index) {
  std::lock_guard lock(mutex_);
  if (index >= workers_.size()) return;
  Worker& worker = workers_[index];
  if (worker.alive && worker.pid > 0) {
    ::kill(worker.pid, SIGKILL);
  }
}

void WorkerSupervisor::stop() {
  if (stopping_.exchange(true)) return;
  if (monitor_.joinable()) monitor_.join();
  std::lock_guard lock(mutex_);
  for (Worker& worker : workers_) {
    if (!worker.alive || worker.pid <= 0) continue;
    ::kill(worker.pid, SIGTERM);
  }
  const auto grace_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (Worker& worker : workers_) {
    if (!worker.alive || worker.pid <= 0) continue;
    int status = 0;
    for (;;) {
      const pid_t r = ::waitpid(worker.pid, &status, WNOHANG);
      if (r == worker.pid || r < 0) break;
      if (std::chrono::steady_clock::now() >= grace_deadline) {
        ::kill(worker.pid, SIGKILL);
        ::waitpid(worker.pid, &status, 0);
        break;
      }
      sleep_ms(10);
    }
    worker.alive = false;
    worker.client.reset();
  }
  workers_.clear();
}

std::vector<WorkerStatus> WorkerSupervisor::workers() const {
  std::lock_guard lock(mutex_);
  std::vector<WorkerStatus> out;
  out.reserve(workers_.size());
  for (const Worker& worker : workers_) {
    WorkerStatus status;
    status.pid = worker.pid;
    status.port = worker.port;
    status.alive = worker.alive;
    status.breaker = worker.breaker;
    status.restarts = worker.restarts;
    out.push_back(status);
  }
  return out;
}

SupervisorStats WorkerSupervisor::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace trico::transport
