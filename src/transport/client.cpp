#include "transport/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/io.hpp"

namespace trico::transport {

const char* to_string(TransportFault fault) {
  switch (fault) {
    case TransportFault::kConnect: return "connect failed";
    case TransportFault::kTimeout: return "timed out";
    case TransportFault::kExhausted: return "retries exhausted";
    case TransportFault::kProtocol: return "protocol error";
    case TransportFault::kDraining: return "server draining";
    case TransportFault::kNotLeader: return "not the leader";
  }
  return "?";
}

Client::Client(ClientOptions options) : options_(std::move(options)) {
  std::signal(SIGPIPE, SIG_IGN);
  endpoints_ = options_.endpoints;
  if (endpoints_.empty()) {
    endpoints_.push_back(Endpoint{options_.host, options_.port});
  }
  std::uint64_t seed = options_.seed;
  if (seed == 0) {
    seed = static_cast<std::uint64_t>(
               std::chrono::steady_clock::now().time_since_epoch().count()) ^
           (static_cast<std::uint64_t>(::getpid()) << 32);
    seed |= 1;
  }
  rng_.seed(seed);
  if (options_.client_id == 0) {
    options_.client_id =
        (static_cast<std::uint64_t>(::getpid()) << 32) | (rng_() & 0xffffffffu);
  }
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    util::io::close_quiet(fd_);
    fd_ = -1;
  }
}

void Client::set_receive_timeout(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

Endpoint Client::current_endpoint() const {
  return have_hint_ ? hint_ : endpoints_[endpoint_index_];
}

void Client::advance_endpoint() {
  have_hint_ = false;
  endpoint_index_ = (endpoint_index_ + 1) % endpoints_.size();
}

void Client::ensure_connected() {
  if (fd_ >= 0) return;
  const Endpoint target = current_endpoint();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError(TransportFault::kConnect,
                         std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target.port);
  if (::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) != 1) {
    util::io::close_quiet(fd);
    throw TransportError(TransportFault::kConnect,
                         "bad host: " + target.host);
  }

  // Bounded connect: non-blocking connect + poll, then back to blocking.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = util::io::poll_retry(&pfd, 1, options_.connect_timeout_ms);
    if (rc <= 0) {
      util::io::close_quiet(fd);
      throw TransportError(TransportFault::kConnect,
                           "connect to " + target.host + ":" +
                               std::to_string(target.port) +
                               (rc == 0 ? " timed out" : " failed"));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      util::io::close_quiet(fd);
      throw TransportError(TransportFault::kConnect,
                           "connect to " + target.host + ":" +
                               std::to_string(target.port) + ": " +
                               std::strerror(err));
    }
  } else if (rc < 0) {
    const int err = errno;
    util::io::close_quiet(fd);
    throw TransportError(TransportFault::kConnect,
                         "connect to " + target.host + ":" +
                             std::to_string(target.port) + ": " +
                             std::strerror(err));
  }
  ::fcntl(fd, F_SETFL, flags);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  fd_ = fd;
  try {
    // Handshake: announce the client id the server dedupes under.
    PayloadWriter hello;
    hello.u64(options_.client_id);
    set_receive_timeout(options_.connect_timeout_ms);
    send_frame(fd_, FrameType::kHello, 0, hello.data());
    Frame frame;
    if (!recv_frame(fd_, frame) ||
        frame.header.type != FrameType::kHelloAck) {
      throw WireError(WireFault::kProtocol, "handshake rejected");
    }
  } catch (...) {
    disconnect();
    throw;
  }
}

double Client::next_backoff_ms(int attempt) {
  double backoff = options_.backoff_initial_ms;
  for (int i = 0; i < attempt; ++i) {
    backoff = std::min(backoff * options_.backoff_multiplier,
                       options_.backoff_max_ms);
  }
  std::uniform_real_distribution<double> scale(1.0 - options_.jitter,
                                               1.0 + options_.jitter);
  return std::max(0.0, backoff * scale(rng_));
}

service::Response Client::attempt(const std::vector<std::uint8_t>& payload,
                                  std::uint64_t request_id, int timeout_ms) {
  ensure_connected();
  set_receive_timeout(timeout_ms);
  send_frame(fd_, FrameType::kRequest, request_id, payload);

  Frame frame;
  for (;;) {
    try {
      if (!recv_frame(fd_, frame)) {
        throw WireError(WireFault::kClosed,
                        "server closed before responding");
      }
    } catch (const WireError& error) {
      // SO_RCVTIMEO expiry surfaces as EAGAIN from read(2): that is a
      // deadline, not a wire fault — the request may still be executing
      // server-side, so the caller decides whether to retry (same id).
      const std::string what = error.what();
      if (error.fault() == WireFault::kSyscall &&
          (what.find(std::strerror(EAGAIN)) != std::string::npos ||
           what.find(std::strerror(EWOULDBLOCK)) != std::string::npos)) {
        throw TransportError(TransportFault::kTimeout,
                             "no response within " +
                                 std::to_string(timeout_ms) + " ms");
      }
      throw;
    }
    switch (frame.header.type) {
      case FrameType::kResponse:
        if (frame.header.request_id != request_id) continue;  // stale
        return decode_response(frame.payload);
      case FrameType::kError: {
        PayloadReader r(frame.payload);
        const std::string message = r.str();
        if ((frame.header.flags & kFlagRetryable) != 0) {
          // A draining server refusing admission: retryable, but not here —
          // surface the typed fault at once so the caller fails over.
          throw TransportError(TransportFault::kDraining, message);
        }
        throw TransportError(TransportFault::kProtocol, message);
      }
      case FrameType::kDrainNotice:
        throw TransportError(TransportFault::kDraining, "drain notice");
      case FrameType::kNotLeader: {
        const LeaderHint hint = decode_leader_hint(frame.payload);
        throw NotLeaderError(hint.epoch, hint.host, hint.port);
      }
      default:
        continue;  // unsolicited frame (late metrics chunk etc.)
    }
  }
}

service::Response Client::execute(const service::Request& request) {
  return execute_with_id(request, next_request_id_++);
}

service::Response Client::execute_with_id(const service::Request& request,
                                          std::uint64_t request_id) {
  int timeout_ms = options_.request_timeout_ms;
  if (request.deadline_ms > 0) {
    timeout_ms = std::min(
        timeout_ms,
        static_cast<int>(request.deadline_ms + options_.deadline_slack_ms));
  }
  const std::vector<std::uint8_t> payload = encode_request(request);

  std::string last_error;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          next_backoff_ms(attempt - 1)));
    }
    // Endpoint hops within one attempt. kDraining / connect-refused /
    // kNotLeader mean "this endpoint cannot serve, another might": a
    // multi-endpoint client rotates (or follows the leader hint) without
    // consuming the retry budget. The hop count is bounded by the endpoint
    // set (+1 so a leader hint beyond the configured set gets its try);
    // a full lap of refusals degrades into one consumed attempt.
    std::size_t hops_left = endpoints_.size() + 1;
    for (;;) {
      try {
        return this->attempt(payload, request_id, timeout_ms);
      } catch (const WireError& error) {
        if (error.fault() == WireFault::kProtocol) {
          // A peer this client cannot speak to (bad magic, mismatched wire
          // version, malformed payload): terminal — retrying cannot fix a
          // protocol gap, and must not hot-loop against a broken peer.
          disconnect();
          throw TransportError(TransportFault::kProtocol, error.what());
        }
        // Transient: reconnect and resend the same id (dedup makes it
        // safe).
        last_error = error.what();
        disconnect();
        break;
      } catch (const NotLeaderError& error) {
        disconnect();
        if (endpoints_.size() <= 1 && !error.has_hint()) {
          // Nowhere to hop: surface the typed fault to the caller.
          throw;
        }
        if (hops_left == 0) {
          last_error = error.what();
          break;
        }
        --hops_left;
        if (error.has_hint()) {
          have_hint_ = true;
          hint_ = Endpoint{error.leader_host(), error.leader_port()};
        } else {
          advance_endpoint();
        }
      } catch (const TransportError& error) {
        if (error.fault() == TransportFault::kProtocol) throw;
        if (error.fault() == TransportFault::kDraining) {
          disconnect();
          if (endpoints_.size() <= 1) {
            // Single endpoint: rethrow without consuming the retry budget —
            // this id is safe to resend against another worker, a decision
            // only the caller (supervisor/coordinator) can make.
            throw;
          }
          if (hops_left == 0) {
            last_error = error.what();
            break;
          }
          --hops_left;
          advance_endpoint();
          continue;
        }
        if (error.fault() == TransportFault::kConnect &&
            endpoints_.size() > 1 && hops_left > 0) {
          disconnect();
          --hops_left;
          advance_endpoint();
          continue;
        }
        last_error = error.what();
        disconnect();
        break;
      }
    }
  }
  throw TransportError(TransportFault::kExhausted,
                       std::to_string(options_.max_attempts) +
                           " attempts failed; last: " + last_error);
}

bool Client::heartbeat() {
  ensure_connected();
  set_receive_timeout(options_.heartbeat_timeout_ms);
  try {
    send_frame(fd_, FrameType::kHeartbeat, 0, {});
    Frame frame;
    for (;;) {
      if (!recv_frame(fd_, frame)) {
        throw WireError(WireFault::kClosed, "closed during heartbeat");
      }
      if (frame.header.type == FrameType::kHeartbeatAck) {
        PayloadReader r(frame.payload);
        return r.u8() != 0;  // draining flag
      }
      if (frame.header.type == FrameType::kDrainNotice) return true;
    }
  } catch (...) {
    disconnect();
    throw;
  }
}

std::string Client::fetch_metrics() {
  ensure_connected();
  set_receive_timeout(options_.request_timeout_ms);
  try {
    send_frame(fd_, FrameType::kMetricsRequest, 0, {});
    std::string out;
    Frame frame;
    for (;;) {
      if (!recv_frame(fd_, frame)) {
        throw WireError(WireFault::kClosed, "closed during metrics stream");
      }
      if (frame.header.type == FrameType::kMetricsChunk) {
        PayloadReader r(frame.payload);
        const std::size_t n = r.remaining();
        const std::size_t old = out.size();
        out.resize(old + n);
        r.bytes(out.data() + old, n);
      } else if (frame.header.type == FrameType::kMetricsEnd) {
        return out;
      }
    }
  } catch (...) {
    disconnect();
    throw;
  }
}

}  // namespace trico::transport
