// transport::Client — a retrying, deadline-aware client for transport::Server.
//
// The retry contract: every request gets a client-assigned id, and a retry
// is a resend of the *same* id after reconnecting. Because the server
// dedupes by (client_id, request_id) and records completed responses, a
// retry of a request whose response frame tore on the wire replays the
// recorded result instead of executing twice — so the client can retry
// aggressively without at-least-once side effects.
//
// What retries: torn frames, checksum failures, connection resets, clean
// server closes, and failed connects. What does not: protocol violations
// (kError without the retryable flag, bad magic/version) — those surface
// immediately as TransportError so a broken peer cannot put the client into
// a hot loop — and drain notices (kDrainNotice, or a retryable kError from
// a draining server), which surface immediately as TransportFault::kDraining
// because a draining server never un-drains: the retry belongs on a
// *different* worker, a decision only the caller (supervisor/coordinator)
// can make.
//
// Backoff between attempts is exponential with multiplicative jitter
// (backoff_initial_ms * multiplier^k, capped, scaled by a uniform draw in
// [1-jitter, 1+jitter]) so a fleet of clients re-trying a restarted worker
// does not stampede it.
//
// Deadline awareness: an attempt waits at most request_timeout_ms; when the
// request carries a deadline, the wait is min(that, deadline + slack) —
// there is no point waiting longer than the server would let the request
// live. A Client is not thread-safe; give each thread its own (each gets
// its own client_id, so ids never collide server-side).

#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/request.hpp"
#include "transport/wire.hpp"

namespace trico::transport {

/// Why the client gave up (after exhausting its retry budget where one
/// applies).
enum class TransportFault : std::uint8_t {
  kConnect,    ///< could not establish a connection
  kTimeout,    ///< no response within the attempt's deadline
  kExhausted,  ///< every retry attempt failed (last cause in the message)
  kProtocol,   ///< the server rejected the request as malformed (no retry)
  kDraining,   ///< the server is draining: retryable *elsewhere*, surfaced
               ///< immediately so a router can fail over to another worker
               ///< instead of burning the backoff budget on a peer that
               ///< will never un-drain
  kNotLeader,  ///< the server is a standby coordinator: retry at the
               ///< leader (the reject carries a hint when the standby
               ///< knows one); a multi-endpoint client follows the hint
               ///< or hops endpoints without burning its retry budget
};

[[nodiscard]] const char* to_string(TransportFault fault);

class TransportError : public std::runtime_error {
 public:
  TransportError(TransportFault fault, const std::string& what)
      : std::runtime_error(std::string(to_string(fault)) + ": " + what),
        fault_(fault) {}

  [[nodiscard]] TransportFault fault() const { return fault_; }

 private:
  TransportFault fault_;
};

/// kNotLeader as a typed error, carrying the refusing standby's leader
/// hint. has_hint() is false when the standby does not know a leader yet.
class NotLeaderError : public TransportError {
 public:
  NotLeaderError(std::uint64_t epoch, std::string host, std::uint16_t port)
      : TransportError(TransportFault::kNotLeader,
                       port != 0 ? "leader at " + host + ":" +
                                       std::to_string(port) + " (epoch " +
                                       std::to_string(epoch) + ")"
                                 : "no leader known (epoch " +
                                       std::to_string(epoch) + ")"),
        epoch_(epoch),
        host_(std::move(host)),
        port_(port) {}

  [[nodiscard]] bool has_hint() const { return port_ != 0; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const std::string& leader_host() const { return host_; }
  [[nodiscard]] std::uint16_t leader_port() const { return port_; }

 private:
  std::uint64_t epoch_;
  std::string host_;
  std::uint16_t port_;
};

/// One server address a Client may talk to.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Coordinator endpoint set. When non-empty it supersedes host/port: the
  /// client starts at the first entry and *hops* to the next on kDraining,
  /// connect failure or a kNotLeader reject (following the leader hint when
  /// one is carried). Hops do not consume the retry budget — max_attempts
  /// governs how many times one endpoint may fail the request, not how many
  /// endpoints get tried — and (client_id, request_id) stay stable across
  /// endpoints so the server-side dedup/journal holds wherever the retry
  /// lands. With zero or one endpoint the single-endpoint semantics are
  /// unchanged (kDraining still surfaces immediately to the caller: the
  /// supervisor/coordinator failover logic depends on it).
  std::vector<Endpoint> endpoints;
  /// 0 = derive a unique id (pid + random); set explicitly in tests to
  /// prove cross-connection dedup.
  std::uint64_t client_id = 0;
  int connect_timeout_ms = 1000;
  /// Upper bound one attempt waits for a response. When the request carries
  /// a deadline the effective wait is min(this, deadline + deadline_slack).
  int request_timeout_ms = 30000;
  double deadline_slack_ms = 250;
  int heartbeat_timeout_ms = 500;
  /// Total attempts per request (first try + retries).
  int max_attempts = 5;
  double backoff_initial_ms = 10;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 500;
  /// Multiplicative jitter: each backoff is scaled by a uniform draw in
  /// [1-jitter, 1+jitter].
  double jitter = 0.25;
  /// Seed for the jitter rng; 0 = nondeterministic.
  std::uint64_t seed = 0;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Executes a request with a fresh id: connect (or reuse the connection),
  /// send, await the response, and on any transient wire fault reconnect
  /// and resend the *same* id with jittered exponential backoff. Throws
  /// TransportError when the retry budget is exhausted.
  [[nodiscard]] service::Response execute(const service::Request& request);

  /// Same, with a caller-chosen request id. Sending two calls with the same
  /// id is the idempotency test hook: the second returns the recorded
  /// response of the first without re-executing.
  [[nodiscard]] service::Response execute_with_id(
      const service::Request& request, std::uint64_t request_id);

  /// Liveness probe. Returns the server's draining flag; throws
  /// TransportError/WireError when the server cannot be reached (the
  /// supervisor's health-check signal). Does not retry.
  [[nodiscard]] bool heartbeat();

  /// Streams the server's MetricsSnapshot (reassembled from chunks).
  [[nodiscard]] std::string fetch_metrics();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t client_id() const { return options_.client_id; }

  /// Drops the connection (the next call reconnects). Used by tests to
  /// force the reconnect path.
  void disconnect();

  /// The endpoint the next connect targets (the leader hint when one is
  /// pending, else the current entry of the endpoint set).
  [[nodiscard]] Endpoint current_endpoint() const;

 private:
  void ensure_connected();
  void set_receive_timeout(int timeout_ms);
  /// One attempt: send the request frame and await its response. Throws
  /// WireError on transient faults and TransportError{kProtocol/kTimeout}
  /// on terminal ones.
  service::Response attempt(const std::vector<std::uint8_t>& payload,
                            std::uint64_t request_id, int timeout_ms);
  double next_backoff_ms(int attempt);
  /// Rotates to the next endpoint (dropping any pending leader hint).
  void advance_endpoint();

  ClientOptions options_;
  std::vector<Endpoint> endpoints_;  ///< resolved set (>= 1 entry)
  std::size_t endpoint_index_ = 0;
  bool have_hint_ = false;
  Endpoint hint_{};
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::mt19937_64 rng_;
};

}  // namespace trico::transport
