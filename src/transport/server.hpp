// transport::Server — serves a TriangleService over a localhost TCP socket.
//
// Layering: one accept thread hands every connection to a per-connection
// *reader* thread that decodes frames and feeds requests straight into the
// existing RequestScheduler (service.submit — admission, fairness,
// deadlines and cancellation all apply unchanged), plus a per-connection
// *responder* thread that waits tickets in arrival order and flushes the
// encoded responses. Heartbeats and metrics streams are answered on the
// reader thread, so a connection stays probe-able while a long request is
// executing on the scheduler.
//
// Fault discipline (the reason this file exists):
//  * Idempotency. Every request carries a client-assigned id; the server
//    dedupes by (client_id, request_id). A retry of an in-flight request
//    waits for the original execution; a retry of a completed one replays
//    the recorded response. A request is therefore *executed at most once*
//    per server process no matter how many times the client resends it.
//  * Graceful drain. drain() (the SIGTERM path) stops accepting, answers
//    new requests with a retryable "draining" error, lets every in-flight
//    request finish and flush, then closes. No admitted request is dropped.
//  * Chaos. With ServiceOptions-style wiring (ServerOptions::chaos,
//    non-owning) the server probes the wire ChaosSites: torn response
//    frames, connection resets, delayed acks, and abrupt worker death
//    (kWireWorkerKill exits the process with status 137, modeling kill -9).
//    The chaos tests drive these to prove the client/supervisor recovery
//    story end to end.
//
// The server ignores SIGPIPE process-wide on start() (standard daemon
// hygiene: a peer that disappears mid-write must surface as EPIPE, not
// kill the process).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/chaos.hpp"
#include "service/service.hpp"
#include "transport/wire.hpp"

namespace trico::transport {

/// What the server fronts: anything that can accept a Request (returning
/// the scheduler-style async Ticket) and render a metrics snapshot.
/// TriangleService is the single-process implementation; the cluster
/// Coordinator implements the same interface over a whole worker pool, so
/// one Server — and therefore one wire protocol and one Client — serves
/// either a process or a cluster unchanged.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual service::Ticket submit(service::Request request) = 0;
  virtual std::string metrics_text() = 0;
};

/// Durable (client_id, request_id) -> encoded-response store. When a
/// server is given one, *completed* responses are recorded there instead of
/// the in-memory dedup map, so a retry that lands on a different process of
/// the same logical service (the promoted coordinator after the active
/// died) still replays the recorded result — exactly-once across process
/// death, not just connection death. cluster::ha::Journal is the
/// implementation; the interface lives here so transport does not depend on
/// cluster.
class ResponseJournal {
 public:
  virtual ~ResponseJournal() = default;
  /// Records one completed response. Must be durable when it returns (the
  /// server calls it before the first send attempt). Throws on failure.
  virtual void record(std::uint64_t client_id, std::uint64_t request_id,
                      const std::vector<std::uint8_t>& payload) = 0;
  /// Fetches the recorded response of a completed request into `out`.
  /// Returns false when the pair is unknown.
  virtual bool lookup(std::uint64_t client_id, std::uint64_t request_id,
                      std::vector<std::uint8_t>& out) = 0;
};

/// A server's view of coordinator leadership, polled per request when
/// ServerOptions::leadership is set. Not leading => the request is refused
/// with kNotLeader carrying the hint fields.
struct LeaderView {
  bool leading = true;
  std::uint64_t epoch = 0;
  std::string leader_host;
  std::uint16_t leader_port = 0;  ///< 0 = no hint known
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; read the bound port back via port().
  std::uint16_t port = 0;
  int listen_backlog = 64;
  /// Completed responses retained for duplicate-retry replay (LRU evicted
  /// by entry count and by dedup_byte_budget; in-flight entries are never
  /// evicted).
  std::size_t dedup_capacity = 4096;
  /// Byte budget of the in-memory dedup cache (encoded response payloads);
  /// the LRU evicts past either bound. 0 = entry bound only.
  std::size_t dedup_byte_budget = std::size_t{64} << 20;
  /// Durable replay journal (non-owning; nullptr = in-memory dedup only).
  /// When set, completed responses move to the journal instead of the
  /// in-memory cache: retries replay from it even across a process
  /// boundary. Must outlive the server.
  ResponseJournal* journal = nullptr;
  /// Leadership gate (coordinator HA). When set and not leading, requests
  /// are refused with a kNotLeader reject carrying the view's hint. Called
  /// per request; must be thread-safe.
  std::function<LeaderView()> leadership;
  /// Fencing floor (worker-side HA). When set, a request stamped with
  /// lease_epoch > 0 is refused (non-retryable) when its epoch is below
  /// max(fence_epoch(), highest stamped epoch seen) — a deposed
  /// coordinator's scatter frames cannot land. Must be thread-safe.
  std::function<std::uint64_t()> fence_epoch;
  /// Wire-site fault injection (non-owning; nullptr = no chaos). Must
  /// outlive the server.
  service::ChaosPlan* chaos = nullptr;
  /// Poll period of drain() while waiting out in-flight requests.
  double drain_poll_ms = 20;
};

/// Monotonic serving counters (all observable while running).
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;           ///< kRequest frames accepted (executed)
  std::uint64_t duplicates = 0;         ///< kRequest frames served by dedup
  std::uint64_t heartbeats = 0;
  std::uint64_t metrics_streams = 0;
  std::uint64_t protocol_errors = 0;    ///< malformed frames from clients
  std::uint64_t chaos_faults = 0;       ///< wire faults injected by the plan
  std::uint64_t drained_rejects = 0;    ///< requests refused while draining
  std::uint64_t dedup_evictions = 0;    ///< completed entries LRU-evicted
  std::size_t dedup_entries = 0;        ///< gauge: completed entries held
  std::size_t dedup_bytes = 0;          ///< gauge: bytes of held payloads
  std::uint64_t journal_replays = 0;    ///< duplicates served from the journal
  std::uint64_t not_leader_rejects = 0; ///< requests refused while standby
  std::uint64_t fenced_rejects = 0;     ///< stale-epoch requests refused
};

class Server {
 public:
  /// Serve a single-process TriangleService (owns a thin adapter).
  explicit Server(service::TriangleService& service, ServerOptions options = {});
  /// Serve any RequestSink (e.g. a cluster Coordinator). `sink` must
  /// outlive the server.
  explicit Server(RequestSink& sink, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop. Throws WireError{kSyscall}
  /// when the socket cannot be set up.
  void start();

  /// The bound port (after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Graceful drain: stop accepting, refuse new requests with a retryable
  /// error, finish and flush every in-flight request, close connections.
  /// Idempotent; blocks until the server is quiescent.
  void drain();

  /// drain() + join every thread. Called by the destructor.
  void stop();

  [[nodiscard]] ServerStats stats() const;

 private:
  /// One queued response-to-be: either a live ticket or a dedup replay.
  struct Pending {
    std::uint64_t request_id = 0;
    service::Ticket ticket;                       ///< valid for fresh requests
    std::shared_ptr<struct DedupEntry> dedup;     ///< set for fresh + in-flight dup
    std::vector<std::uint8_t> replay;             ///< set for completed dup
    bool is_replay = false;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t client_id = 0;
    std::thread reader;
    std::thread responder;
    std::mutex write_mutex;               ///< one frame at a time on the wire
    std::mutex outbox_mutex;
    std::condition_variable outbox_cv;
    std::deque<Pending> outbox;
    bool closing = false;                 ///< responder should exit when empty
    std::atomic<bool> finished{false};    ///< both loops exited; reapable
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  void responder_loop(Connection& conn);
  void handle_request(Connection& conn, Frame& frame);
  void send_response_frame(Connection& conn, std::uint64_t request_id,
                           std::vector<std::uint8_t> payload);
  void stream_metrics(Connection& conn, std::uint64_t request_id);
  void close_connection(Connection& conn, bool reset);
  void reap_finished_locked();

  std::unique_ptr<RequestSink> owned_sink_;  ///< the TriangleService adapter
  RequestSink* sink_;
  ServerOptions options_;
  std::uint16_t port_ = 0;
  // Atomic: accept_loop() reads it concurrently with stop() writing -1.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> in_flight_{0};

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  // Dedup table: (client_id, request_id) -> entry. Completed entries are
  // LRU-evicted beyond dedup_capacity entries or dedup_byte_budget bytes
  // (a duplicate hit refreshes recency); in-flight entries are pinned.
  // When a journal is configured, completed entries move there instead and
  // the in-memory table only holds in-flight executions.
  mutable std::mutex dedup_mutex_;
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t,
                                        std::shared_ptr<struct DedupEntry>>>
      dedup_;
  std::list<std::pair<std::uint64_t, std::uint64_t>> dedup_order_;
  std::size_t dedup_completed_ = 0;
  std::size_t dedup_bytes_ = 0;
  /// Highest Request::lease_epoch observed on any stamped request — the
  /// monotonic half of the fencing floor (the lease file, via fence_epoch,
  /// is the other half).
  std::atomic<std::uint64_t> max_epoch_seen_{0};

  mutable std::mutex stats_mutex_;
  ServerStats stats_{};
};

/// Shared record of one executed request: the responder marks it done and
/// stores the encoded response; duplicate retries wait on it and replay.
struct DedupEntry {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::vector<std::uint8_t> payload;  ///< encoded Response
  /// LRU bookkeeping (guarded by the server's dedup_mutex_, not mutex).
  std::list<std::pair<std::uint64_t, std::uint64_t>>::iterator order_it{};
  bool in_order = false;
};

}  // namespace trico::transport
