// The trico wire protocol: length-prefixed binary framing of the service's
// Request/Response vocabulary.
//
// Every frame is a fixed 24-byte header followed by `payload_size` bytes:
//
//   offset  size  field
//        0     4  magic        0x54524957 ("TRIW", little-endian on the wire)
//        4     2  version      kWireVersion (mismatch = reject connection)
//        6     1  type         FrameType
//        7     1  flags        FrameFlags bitmask
//        8     8  request_id   client-assigned; echoes back on the response
//       16     4  payload_size bytes following the header (<= kMaxPayload)
//       20     4  checksum     FNV-1a 64 of the payload, folded to 32 bits
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern in a uint64. Strings are a uint32 length + raw bytes. The graph
// inside a kRequest is the edge-slot array verbatim (u, v per slot), the
// same layout `io::write_binary` persists.
//
// The checksum is the torn-frame detector: a frame whose payload was cut
// short by a dying worker fails read_full with kEof, and one whose bytes
// were damaged in flight fails the checksum — both surface as a typed
// WireError, never as a wrong count. The request_id is the idempotency
// key: a client retries with the *same* id, and the server dedupes by
// (client_id, request_id), so a retry of an already-executed request
// returns the recorded response instead of executing twice.
//
// MetricsSnapshot streams: the server answers kMetricsRequest with a
// sequence of kMetricsChunk frames (bounded chunks of the rendered
// snapshot) terminated by kMetricsEnd, so an arbitrarily large multi-tenant
// snapshot never needs a single huge frame.

#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/request.hpp"

namespace trico::transport {

inline constexpr std::uint32_t kWireMagic = 0x54524957u;  // "TRIW"
/// v2 added the shard fields (request shard_index/shard_count before the
/// graph bytes; response shard echo after execute_ms) for the coordinator's
/// scatter/gather plans. v3 added the request lease_epoch (the coordinator
/// HA fencing token) and the kNotLeader reject carrying a leader hint.
/// Version mismatches are rejected at the frame header — the server answers
/// with a typed kError before closing — so a mismatched peer gets a typed
/// refusal, not a misparse or a hang.
inline constexpr std::uint16_t kWireVersion = 3;
/// Frames larger than this are rejected before allocation — a corrupt
/// header must not provoke a huge bogus buffer (same guard as read_binary).
inline constexpr std::uint32_t kMaxPayload = 1u << 30;
/// Payload bytes per kMetricsChunk frame.
inline constexpr std::size_t kMetricsChunkBytes = 16 * 1024;

/// Frame kinds. Client-originated frames carry the client's request_id;
/// server frames echo the id they answer (0 for unsolicited notices).
enum class FrameType : std::uint8_t {
  kHello = 1,        ///< client -> server: client_id handshake
  kHelloAck,         ///< server -> client: handshake accepted
  kRequest,          ///< client -> server: one service::Request
  kResponse,         ///< server -> client: the service::Response
  kHeartbeat,        ///< client -> server: liveness probe
  kHeartbeatAck,     ///< server -> client: liveness answer
  kMetricsRequest,   ///< client -> server: stream the MetricsSnapshot
  kMetricsChunk,     ///< server -> client: one chunk of the snapshot
  kMetricsEnd,       ///< server -> client: snapshot complete
  kDrainNotice,      ///< server -> client: draining, no new requests
  kError,            ///< server -> client: typed failure (payload = message)
  kNotLeader,        ///< server -> client: standby refusal + leader hint
};

[[nodiscard]] const char* to_string(FrameType type);

/// FrameFlags bits.
inline constexpr std::uint8_t kFlagRetryable = 0x1;  ///< kError the client may retry

inline constexpr std::size_t kHeaderBytes = 24;

struct FrameHeader {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::kError;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_size = 0;
  std::uint32_t checksum = 0;
};

/// One decoded frame.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Why a wire operation failed. The client's retry loop treats every kind
/// except kProtocol as transient (reconnect + idempotent resend).
enum class WireFault : std::uint8_t {
  kClosed,    ///< peer closed cleanly (EOF between frames)
  kTorn,      ///< EOF *inside* a frame: the peer died mid-send
  kChecksum,  ///< payload checksum mismatch (bytes damaged in flight)
  kProtocol,  ///< bad magic/version/size or malformed payload
  kSyscall,   ///< read/write/connect failed (errno in the message)
};

[[nodiscard]] const char* to_string(WireFault fault);

class WireError : public std::runtime_error {
 public:
  WireError(WireFault fault, const std::string& what)
      : std::runtime_error(std::string(to_string(fault)) + ": " + what),
        fault_(fault) {}

  [[nodiscard]] WireFault fault() const { return fault_; }

 private:
  WireFault fault_;
};

// -- Payload encoding ------------------------------------------------------

/// Appends little-endian primitives to a byte vector.
class PayloadWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void str(const std::string& v);
  void bytes(const void* data, std::size_t n);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

/// Reads little-endian primitives from a payload; any overrun throws
/// WireError{kProtocol} so a truncated payload can never read stale memory.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  void bytes(void* dest, std::size_t n);
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64 over `data`, folded to 32 bits (the frame checksum).
[[nodiscard]] std::uint32_t frame_checksum(std::span<const std::uint8_t> data);

// -- Request / Response payloads ------------------------------------------

/// Serializes everything a Request carries — op, backend, objective,
/// priority, deadline, tenant id, and the graph's edge slots — so the
/// service semantics survive the process boundary intact.
[[nodiscard]] std::vector<std::uint8_t> encode_request(
    const service::Request& request);
[[nodiscard]] service::Request decode_request(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const service::Response& response);
[[nodiscard]] service::Response decode_response(
    std::span<const std::uint8_t> payload);

/// Payload of a kNotLeader reject: the refusing server's view of the
/// current lease — epoch plus where the leader (if any) is serving. A
/// port of 0 means "no hint": the standby has not observed a leader yet
/// and the client should try its other endpoints.
struct LeaderHint {
  std::uint64_t epoch = 0;
  std::string host;
  std::uint16_t port = 0;
};

[[nodiscard]] std::vector<std::uint8_t> encode_leader_hint(
    const LeaderHint& hint);
[[nodiscard]] LeaderHint decode_leader_hint(
    std::span<const std::uint8_t> payload);

// -- Frame io --------------------------------------------------------------

/// Serializes a complete frame (header + payload) into one buffer so the
/// send is a single write_full — no interleaving with other frames.
[[nodiscard]] std::vector<std::uint8_t> build_frame(
    FrameType type, std::uint64_t request_id,
    std::span<const std::uint8_t> payload, std::uint8_t flags = 0);

/// Sends one frame. Throws WireError{kSyscall} on failure.
void send_frame(int fd, FrameType type, std::uint64_t request_id,
                std::span<const std::uint8_t> payload, std::uint8_t flags = 0);

/// Receives one frame. Returns false on a clean close *between* frames;
/// throws WireError (kTorn / kChecksum / kProtocol / kSyscall) on anything
/// torn or damaged.
[[nodiscard]] bool recv_frame(int fd, Frame& out);

}  // namespace trico::transport
