#include "transport/wire.hpp"

#include <cerrno>
#include <cstring>

#include "util/io.hpp"

namespace trico::transport {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello-ack";
    case FrameType::kRequest: return "request";
    case FrameType::kResponse: return "response";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kHeartbeatAck: return "heartbeat-ack";
    case FrameType::kMetricsRequest: return "metrics-request";
    case FrameType::kMetricsChunk: return "metrics-chunk";
    case FrameType::kMetricsEnd: return "metrics-end";
    case FrameType::kDrainNotice: return "drain-notice";
    case FrameType::kError: return "error";
    case FrameType::kNotLeader: return "not-leader";
  }
  return "?";
}

const char* to_string(WireFault fault) {
  switch (fault) {
    case WireFault::kClosed: return "connection closed";
    case WireFault::kTorn: return "torn frame";
    case WireFault::kChecksum: return "frame checksum mismatch";
    case WireFault::kProtocol: return "protocol violation";
    case WireFault::kSyscall: return "socket failure";
  }
  return "?";
}

// -- PayloadWriter / PayloadReader -----------------------------------------

void PayloadWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void PayloadWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void PayloadWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void PayloadWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void PayloadWriter::str(const std::string& v) {
  u32(static_cast<std::uint32_t>(v.size()));
  bytes(v.data(), v.size());
}

void PayloadWriter::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), p, p + n);
}

void PayloadReader::need(std::size_t n) {
  if (pos_ + n > data_.size()) {
    throw WireError(WireFault::kProtocol,
                    "payload overrun: need " + std::to_string(n) +
                        " bytes at offset " + std::to_string(pos_) + " of " +
                        std::to_string(data_.size()));
  }
}

std::uint8_t PayloadReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t PayloadReader::u16() {
  const auto lo = u8();
  return static_cast<std::uint16_t>(lo | (u8() << 8));
}

std::uint32_t PayloadReader::u32() {
  const auto lo = u16();
  return static_cast<std::uint32_t>(lo) | (static_cast<std::uint32_t>(u16()) << 16);
}

std::uint64_t PayloadReader::u64() {
  const auto lo = u32();
  return static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(u32()) << 32);
}

double PayloadReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string PayloadReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void PayloadReader::bytes(void* dest, std::size_t n) {
  need(n);
  std::memcpy(dest, data_.data() + pos_, n);
  pos_ += n;
}

std::uint32_t frame_checksum(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t byte : data) {
    h ^= byte;
    h *= 0x100000001b3ull;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

// -- Request / Response payloads ------------------------------------------

std::vector<std::uint8_t> encode_request(const service::Request& request) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(request.op));
  w.u8(static_cast<std::uint8_t>(request.backend));
  w.u8(static_cast<std::uint8_t>(request.objective));
  w.u8(static_cast<std::uint8_t>(static_cast<std::int8_t>(request.priority)));
  w.f64(request.deadline_ms);
  w.str(request.tenant_id);
  w.u32(request.shard_index);
  w.u32(request.shard_count);
  w.u64(request.lease_epoch);
  if (request.graph == nullptr) {
    w.u32(0);
    w.u64(0);
  } else {
    w.u32(request.graph->num_vertices());
    const auto slots = request.graph->edges();
    w.u64(slots.size());
    w.bytes(slots.data(), slots.size() * sizeof(Edge));
  }
  return w.take();
}

service::Request decode_request(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  service::Request request;
  request.op = static_cast<service::Operation>(r.u8());
  request.backend = static_cast<service::Backend>(r.u8());
  request.objective = static_cast<service::RouteObjective>(r.u8());
  request.priority =
      static_cast<service::Priority>(static_cast<std::int8_t>(r.u8()));
  request.deadline_ms = r.f64();
  request.tenant_id = r.str();
  request.shard_index = r.u32();
  request.shard_count = r.u32();
  request.lease_epoch = r.u64();
  const VertexId num_vertices = r.u32();
  const std::uint64_t slots = r.u64();
  if (slots * sizeof(Edge) != r.remaining()) {
    throw WireError(WireFault::kProtocol,
                    "request graph declares " + std::to_string(slots) +
                        " slots but carries " + std::to_string(r.remaining()) +
                        " payload bytes");
  }
  std::vector<Edge> edges(slots);
  r.bytes(edges.data(), slots * sizeof(Edge));
  request.graph =
      std::make_shared<const EdgeList>(std::move(edges), num_vertices);
  return request;
}

namespace {
constexpr std::uint8_t kRespCatalogHit = 0x1;
constexpr std::uint8_t kRespDegraded = 0x2;
}  // namespace

std::vector<std::uint8_t> encode_response(const service::Response& response) {
  PayloadWriter w;
  w.u8(static_cast<std::uint8_t>(response.status));
  w.str(response.reason);
  w.u64(response.triangles);
  w.f64(response.clustering);
  w.f64(response.transitivity);
  w.u32(response.max_trussness);
  w.u8(static_cast<std::uint8_t>(response.backend));
  w.u8(static_cast<std::uint8_t>((response.catalog_hit ? kRespCatalogHit : 0) |
                                 (response.degraded ? kRespDegraded : 0)));
  w.f64(response.modeled_device_ms);
  w.f64(response.queue_ms);
  w.f64(response.execute_ms);
  w.u32(response.shard_index);
  w.u32(response.shard_count);
  w.u64(response.shard_row_begin);
  w.u64(response.shard_row_end);
  w.u64(response.shard_edges);
  w.u64(response.shard_checksum);
  w.u64(response.graph_fingerprint);
  return w.take();
}

service::Response decode_response(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  service::Response response;
  response.status = static_cast<service::Status>(r.u8());
  response.reason = r.str();
  response.triangles = r.u64();
  response.clustering = r.f64();
  response.transitivity = r.f64();
  response.max_trussness = r.u32();
  response.backend = static_cast<service::Backend>(r.u8());
  const std::uint8_t flags = r.u8();
  response.catalog_hit = (flags & kRespCatalogHit) != 0;
  response.degraded = (flags & kRespDegraded) != 0;
  response.modeled_device_ms = r.f64();
  response.queue_ms = r.f64();
  response.execute_ms = r.f64();
  response.shard_index = r.u32();
  response.shard_count = r.u32();
  response.shard_row_begin = r.u64();
  response.shard_row_end = r.u64();
  response.shard_edges = r.u64();
  response.shard_checksum = r.u64();
  response.graph_fingerprint = r.u64();
  return response;
}

std::vector<std::uint8_t> encode_leader_hint(const LeaderHint& hint) {
  PayloadWriter w;
  w.u64(hint.epoch);
  w.str(hint.host);
  w.u16(hint.port);
  return w.take();
}

LeaderHint decode_leader_hint(std::span<const std::uint8_t> payload) {
  PayloadReader r(payload);
  LeaderHint hint;
  hint.epoch = r.u64();
  hint.host = r.str();
  hint.port = r.u16();
  return hint;
}

// -- Frame io --------------------------------------------------------------

std::vector<std::uint8_t> build_frame(FrameType type, std::uint64_t request_id,
                                      std::span<const std::uint8_t> payload,
                                      std::uint8_t flags) {
  PayloadWriter w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(flags);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(frame_checksum(payload));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

void send_frame(int fd, FrameType type, std::uint64_t request_id,
                std::span<const std::uint8_t> payload, std::uint8_t flags) {
  const std::vector<std::uint8_t> frame =
      build_frame(type, request_id, payload, flags);
  const util::io::IoResult r =
      util::io::write_full(fd, frame.data(), frame.size());
  if (r.status != util::io::IoStatus::kOk) {
    throw WireError(WireFault::kSyscall,
                    std::string("send failed: ") + std::strerror(r.error));
  }
}

bool recv_frame(int fd, Frame& out) {
  std::uint8_t raw[kHeaderBytes];
  const util::io::IoResult head = util::io::read_full(fd, raw, sizeof(raw));
  if (head.status == util::io::IoStatus::kEof) {
    if (head.bytes == 0) return false;  // clean close between frames
    throw WireError(WireFault::kTorn, "connection closed inside a header (" +
                                          std::to_string(head.bytes) + "/" +
                                          std::to_string(kHeaderBytes) +
                                          " bytes)");
  }
  if (head.status == util::io::IoStatus::kError) {
    throw WireError(WireFault::kSyscall,
                    std::string("header read failed: ") +
                        std::strerror(head.error));
  }

  PayloadReader r(std::span<const std::uint8_t>(raw, sizeof(raw)));
  FrameHeader& h = out.header;
  h.magic = r.u32();
  h.version = r.u16();
  h.type = static_cast<FrameType>(r.u8());
  h.flags = r.u8();
  h.request_id = r.u64();
  h.payload_size = r.u32();
  h.checksum = r.u32();

  if (h.magic != kWireMagic) {
    throw WireError(WireFault::kProtocol, "bad magic");
  }
  if (h.version != kWireVersion) {
    throw WireError(WireFault::kProtocol,
                    "unsupported wire version " + std::to_string(h.version));
  }
  if (h.payload_size > kMaxPayload) {
    throw WireError(WireFault::kProtocol,
                    "frame declares an impossible payload of " +
                        std::to_string(h.payload_size) + " bytes");
  }

  out.payload.resize(h.payload_size);
  if (h.payload_size > 0) {
    const util::io::IoResult body =
        util::io::read_full(fd, out.payload.data(), out.payload.size());
    if (body.status == util::io::IoStatus::kEof) {
      throw WireError(WireFault::kTorn,
                      "connection closed inside a payload (" +
                          std::to_string(body.bytes) + "/" +
                          std::to_string(h.payload_size) + " bytes)");
    }
    if (body.status == util::io::IoStatus::kError) {
      throw WireError(WireFault::kSyscall,
                      std::string("payload read failed: ") +
                          std::strerror(body.error));
    }
  }
  if (frame_checksum(out.payload) != h.checksum) {
    throw WireError(WireFault::kChecksum,
                    "payload of " + std::to_string(h.payload_size) +
                        " bytes does not match its checksum");
  }
  return true;
}

}  // namespace trico::transport
