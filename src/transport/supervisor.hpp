// transport::WorkerSupervisor — supervised pool of trico_cli serve workers.
//
// The supervisor fork/execs N worker processes (`<cli> serve --port 0 ...`),
// learns each worker's ephemeral port from the "LISTENING <port>" line the
// worker prints on stdout, and health-checks every worker with wire
// heartbeats from a monitor thread. A worker that exits (crash, kill -9,
// chaos kWireWorkerKill) is detected by waitpid and restarted with
// exponential backoff; a worker that stops answering heartbeats trips a
// per-worker circuit breaker (the same BreakerOptions vocabulary the
// BackendRouter uses for backend tiers) and requests route around it until
// a half-open probe succeeds.
//
// execute() routes round-robin across healthy workers. A request that
// fails on one worker transparently moves to the next — each worker keeps
// its own dedup table, and a request re-routed to a *different* worker is
// by definition one whose original never returned a response, so cross-
// worker retry preserves effective at-most-once delivery of results.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/types.h>

#include "service/request.hpp"
#include "service/router.hpp"
#include "transport/client.hpp"

namespace trico::transport {

struct SupervisorOptions {
  /// Path to the trico_cli binary (workers run `<cli> serve`). Use
  /// /proc/self/exe when the supervisor runs inside trico_cli itself.
  std::string cli_path;
  int num_workers = 2;
  /// Extra argv passed to every worker after "serve" (e.g. chaos flags).
  std::vector<std::string> worker_args;
  /// How long to wait for a freshly spawned worker's LISTENING line.
  int spawn_timeout_ms = 10000;
  /// Monitor thread period (waitpid + heartbeat round).
  double monitor_period_ms = 100;
  /// Heartbeat-failure breaker per worker (same semantics as the backend
  /// router's: trip after failure_threshold consecutive faults, half-open
  /// probe after exponential backoff).
  service::BreakerOptions breaker{};
  /// Restart backoff for crashed workers (doubles per consecutive crash).
  double restart_backoff_ms = 50;
  double restart_backoff_max_ms = 2000;
  /// Per-worker client tuning (host/port/client_id are overwritten).
  ClientOptions client{};
};

struct WorkerStatus {
  pid_t pid = -1;
  std::uint16_t port = 0;
  bool alive = false;
  service::BreakerState breaker = service::BreakerState::kClosed;
  std::uint64_t restarts = 0;
};

struct SupervisorStats {
  std::uint64_t restarts = 0;        ///< worker processes respawned
  std::uint64_t heartbeat_faults = 0;
  std::uint64_t reroutes = 0;        ///< requests moved to another worker
};

class WorkerSupervisor {
 public:
  explicit WorkerSupervisor(SupervisorOptions options);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Spawns every worker and starts the monitor thread. Throws
  /// TransportError{kConnect} when a worker fails to come up.
  void start();

  /// SIGTERM every worker (graceful drain), escalate to SIGKILL after a
  /// grace period, reap, and stop the monitor.
  void stop();

  /// Routes one request to a healthy worker; retries the *same* request id
  /// on the next worker when one fails mid-request. Thread-safe.
  [[nodiscard]] service::Response execute(const service::Request& request);

  /// Executes on worker `index` specifically — no rerouting. The
  /// coordinator's placement primitive: HRW affinity and shard fan-out pick
  /// the worker themselves and own the failover decision. Throws
  /// TransportError{kConnect} when the worker is not admissible (breaker
  /// open, respawning), and rethrows the client's fault (recording it
  /// against the worker's breaker) when the attempt fails. Thread-safe.
  [[nodiscard]] service::Response execute_on(std::size_t index,
                                             const service::Request& request);

  /// Indices of workers currently eligible for traffic: alive with a
  /// breaker that is closed, half-open, or due its half-open probe. A pure
  /// query — unlike admission it does not consume the probe slot.
  [[nodiscard]] std::vector<std::size_t> healthy_workers() const;

  /// Number of worker slots (fixed after start()).
  [[nodiscard]] std::size_t size() const;

  /// Kills worker `index` with SIGKILL (chaos-test hook: the monitor must
  /// notice and respawn it).
  void kill_worker(std::size_t index);

  [[nodiscard]] std::vector<WorkerStatus> workers() const;
  [[nodiscard]] SupervisorStats stats() const;

 private:
  struct Worker {
    pid_t pid = -1;
    std::uint16_t port = 0;
    bool alive = false;
    std::uint64_t restarts = 0;
    /// Breaker over heartbeat/request outcomes.
    service::BreakerState breaker = service::BreakerState::kClosed;
    unsigned consecutive_faults = 0;
    double open_backoff_ms = 0;
    std::chrono::steady_clock::time_point reopen_at{};
    /// Restart pacing.
    double restart_backoff = 0;
    std::chrono::steady_clock::time_point respawn_at{};
    /// Serializes request traffic to this worker (Client is not
    /// thread-safe).
    std::unique_ptr<std::mutex> lock = std::make_unique<std::mutex>();
    std::unique_ptr<Client> client;
  };

  void spawn_locked(Worker& worker);
  void monitor_loop();
  /// True when the worker may take traffic (alive, breaker not open or due
  /// for a half-open probe).
  bool admit_locked(Worker& worker);
  void record_fault_locked(Worker& worker);
  void record_success_locked(Worker& worker);

  SupervisorOptions options_;
  mutable std::mutex mutex_;
  std::vector<Worker> workers_;
  std::atomic<std::size_t> next_worker_{0};
  std::thread monitor_;
  std::atomic<bool> stopping_{false};
  SupervisorStats stats_{};
};

}  // namespace trico::transport
