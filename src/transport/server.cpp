#include "transport/server.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/io.hpp"

namespace trico::transport {

namespace {

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

namespace {

/// Adapts the single-process TriangleService to the RequestSink interface.
class ServiceSink : public RequestSink {
 public:
  explicit ServiceSink(service::TriangleService& service)
      : service_(service) {}
  service::Ticket submit(service::Request request) override {
    return service_.submit(std::move(request));
  }
  std::string metrics_text() override {
    return service_.metrics().to_string();
  }

 private:
  service::TriangleService& service_;
};

}  // namespace

Server::Server(service::TriangleService& service, ServerOptions options)
    : owned_sink_(std::make_unique<ServiceSink>(service)),
      sink_(owned_sink_.get()),
      options_(std::move(options)) {}

Server::Server(RequestSink& sink, ServerOptions options)
    : sink_(&sink), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  // A peer that disappears mid-write must surface as EPIPE from write(2),
  // not kill the process.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw WireError(WireFault::kSyscall,
                    std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    throw WireError(WireFault::kSyscall, "bad host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw WireError(WireFault::kSyscall,
                    "bind " + options_.host + ":" +
                        std::to_string(options_.port) + ": " +
                        std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    throw WireError(WireFault::kSyscall,
                    std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw WireError(WireFault::kSyscall,
                    std::string("getsockname: ") + std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = util::io::accept_retry(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listen socket closed: drain/stop
    if (draining_.load(std::memory_order_relaxed)) {
      util::io::close_quiet(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard lock(connections_mutex_);
    reap_finished_locked();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection& ref = *conn;
    connections_.push_back(std::move(conn));
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    ref.responder = std::thread([this, &ref] { responder_loop(ref); });
    {
      std::lock_guard slock(stats_mutex_);
      ++stats_.connections;
    }
  }
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& conn = **it;
    if (conn.finished.load(std::memory_order_acquire)) {
      if (conn.reader.joinable()) conn.reader.join();
      if (conn.responder.joinable()) conn.responder.join();
      if (conn.fd >= 0) util::io::close_quiet(conn.fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::reader_loop(Connection& conn) {
  try {
    Frame frame;
    while (recv_frame(conn.fd, frame)) {
      switch (frame.header.type) {
        case FrameType::kHello: {
          PayloadReader r(frame.payload);
          conn.client_id = r.u64();
          PayloadWriter w;
          w.u16(kWireVersion);
          std::lock_guard wlock(conn.write_mutex);
          send_frame(conn.fd, FrameType::kHelloAck, frame.header.request_id,
                     w.data());
          break;
        }
        case FrameType::kHeartbeat: {
          {
            std::lock_guard slock(stats_mutex_);
            ++stats_.heartbeats;
          }
          PayloadWriter w;
          w.u8(draining_.load(std::memory_order_relaxed) ? 1 : 0);
          std::lock_guard wlock(conn.write_mutex);
          send_frame(conn.fd, FrameType::kHeartbeatAck,
                     frame.header.request_id, w.data());
          break;
        }
        case FrameType::kMetricsRequest:
          stream_metrics(conn, frame.header.request_id);
          break;
        case FrameType::kRequest:
          handle_request(conn, frame);
          break;
        default: {
          std::lock_guard slock(stats_mutex_);
          ++stats_.protocol_errors;
          PayloadWriter w;
          w.str(std::string("unexpected frame type: ") +
                to_string(frame.header.type));
          std::lock_guard wlock(conn.write_mutex);
          send_frame(conn.fd, FrameType::kError, frame.header.request_id,
                     w.data());
          break;
        }
      }
    }
  } catch (const WireError& error) {
    // Torn/corrupt inbound frame or a dead peer: this connection is done.
    // In-flight requests still finish and land in the dedup table, so a
    // reconnecting client replays them instead of re-executing.
    if (error.fault() == WireFault::kProtocol) {
      // A peer speaking a different dialect (bad magic, mismatched wire
      // version): best-effort typed reject before closing, so a
      // version-skewed client gets a diagnosis instead of silence.
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.protocol_errors;
      }
      try {
        PayloadWriter w;
        w.str(error.what());
        std::lock_guard wlock(conn.write_mutex);
        send_frame(conn.fd, FrameType::kError, 0, w.data());
      } catch (const WireError&) {
      }
    }
  }
  {
    std::lock_guard lock(conn.outbox_mutex);
    conn.closing = true;
  }
  conn.outbox_cv.notify_all();
  // The responder is the slower of the two loops (it drains the outbox);
  // it marks the connection reapable.
}

void Server::handle_request(Connection& conn, Frame& frame) {
  service::ChaosPlan* chaos = options_.chaos;
  if (chaos != nullptr &&
      chaos->should_fault(service::ChaosSite::kWireWorkerKill)) {
    // kill -9 semantics: no flush, no farewell, no destructors — the
    // supervisor's waitpid and the client's torn read are the only signals.
    std::_Exit(137);
  }

  if (draining_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard slock(stats_mutex_);
      ++stats_.drained_rejects;
    }
    PayloadWriter w;
    w.str("server draining");
    std::lock_guard wlock(conn.write_mutex);
    send_frame(conn.fd, FrameType::kError, frame.header.request_id, w.data(),
               kFlagRetryable);
    return;
  }

  if (options_.leadership) {
    const LeaderView view = options_.leadership();
    if (!view.leading) {
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.not_leader_rejects;
      }
      LeaderHint hint;
      hint.epoch = view.epoch;
      hint.host = view.leader_host;
      hint.port = view.leader_port;
      const std::vector<std::uint8_t> payload = encode_leader_hint(hint);
      std::lock_guard wlock(conn.write_mutex);
      send_frame(conn.fd, FrameType::kNotLeader, frame.header.request_id,
                 payload);
      return;
    }
  }

  service::Request request;
  try {
    request = decode_request(frame.payload);
  } catch (const WireError& error) {
    {
      std::lock_guard slock(stats_mutex_);
      ++stats_.protocol_errors;
    }
    PayloadWriter w;
    w.str(std::string("malformed request: ") + error.what());
    std::lock_guard wlock(conn.write_mutex);
    send_frame(conn.fd, FrameType::kError, frame.header.request_id, w.data());
    return;
  }

  if (request.lease_epoch > 0) {
    // Fencing: a stamped request must carry the newest lease epoch this
    // worker can observe. The floor is the max of the shared lease file's
    // epoch (fence_epoch) and the highest stamp ever seen — monotonic, so
    // a deposed coordinator resumed from a pause cannot slip a stale
    // scatter frame in even between lease-file polls.
    std::uint64_t floor = options_.fence_epoch ? options_.fence_epoch() : 0;
    std::uint64_t seen = max_epoch_seen_.load(std::memory_order_relaxed);
    if (seen > floor) floor = seen;
    if (request.lease_epoch < floor) {
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.fenced_rejects;
      }
      PayloadWriter w;
      w.str("fenced: stale lease epoch " +
            std::to_string(request.lease_epoch) + " < " +
            std::to_string(floor));
      std::lock_guard wlock(conn.write_mutex);
      send_frame(conn.fd, FrameType::kError, frame.header.request_id,
                 w.data());
      return;
    }
    while (seen < request.lease_epoch &&
           !max_epoch_seen_.compare_exchange_weak(
               seen, request.lease_epoch, std::memory_order_relaxed)) {
    }
  }

  Pending pending;
  pending.request_id = frame.header.request_id;

  {
    std::lock_guard dlock(dedup_mutex_);
    auto& per_client = dedup_[conn.client_id];
    const auto it = per_client.find(frame.header.request_id);
    std::vector<std::uint8_t> journaled;
    if (it != per_client.end()) {
      // A retry of a request this process has already seen: never execute
      // again. Replay the recorded response, or queue a wait on the
      // original execution if it is still in flight.
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.duplicates;
      }
      std::lock_guard elock(it->second->mutex);
      if (it->second->done) {
        pending.is_replay = true;
        pending.replay = it->second->payload;
        if (it->second->in_order) {
          // LRU refresh: a retried entry is the one most likely to be
          // retried again.
          dedup_order_.splice(dedup_order_.end(), dedup_order_,
                              it->second->order_it);
        }
      } else {
        pending.dedup = it->second;
      }
    } else if (options_.journal != nullptr &&
               options_.journal->lookup(conn.client_id,
                                        frame.header.request_id, journaled)) {
      // Completed before — possibly by a *different* process of this
      // logical service (the dead active coordinator): replay the durable
      // record, never recount.
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.duplicates;
        ++stats_.journal_replays;
      }
      pending.is_replay = true;
      pending.replay = std::move(journaled);
    } else {
      auto entry = std::make_shared<DedupEntry>();
      per_client.emplace(frame.header.request_id, entry);
      pending.dedup = std::move(entry);
      pending.ticket = sink_->submit(std::move(request));
      in_flight_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.requests;
      }
    }
  }

  {
    std::lock_guard lock(conn.outbox_mutex);
    conn.outbox.push_back(std::move(pending));
  }
  conn.outbox_cv.notify_one();
}

void Server::responder_loop(Connection& conn) {
  for (;;) {
    Pending pending;
    {
      std::unique_lock lock(conn.outbox_mutex);
      conn.outbox_cv.wait(lock,
                          [&] { return !conn.outbox.empty() || conn.closing; });
      if (conn.outbox.empty()) break;  // closing and fully flushed
      pending = std::move(conn.outbox.front());
      conn.outbox.pop_front();
    }

    std::vector<std::uint8_t> payload;
    if (pending.is_replay) {
      payload = std::move(pending.replay);
    } else if (pending.ticket.valid()) {
      const service::Response response = pending.ticket.wait();
      payload = encode_response(response);
      // Record the outcome *before* any send attempt: even if the frame
      // tears on the wire (organically or by chaos), the retry replays this
      // exact response instead of executing twice. With a journal the
      // record is durable before the first byte leaves — the replay
      // survives this process.
      bool journaled = false;
      if (options_.journal != nullptr) {
        try {
          options_.journal->record(conn.client_id, pending.request_id,
                                   payload);
          journaled = true;
        } catch (const std::exception&) {
          // Journal write failed (disk full, sealed by a new leader):
          // keep the in-memory record so connection-level retries still
          // replay; cross-process exactly-once degrades for this entry.
        }
      }
      {
        std::lock_guard elock(pending.dedup->mutex);
        pending.dedup->done = true;
        pending.dedup->payload = payload;
      }
      pending.dedup->cv.notify_all();
      {
        std::lock_guard dlock(dedup_mutex_);
        if (journaled) {
          // The durable record supersedes the in-memory entry; duplicates
          // still in flight hold their own shared_ptr and replay from it.
          const auto cit = dedup_.find(conn.client_id);
          if (cit != dedup_.end()) {
            cit->second.erase(pending.request_id);
            if (cit->second.empty()) dedup_.erase(cit);
          }
        } else {
          pending.dedup->order_it = dedup_order_.emplace(
              dedup_order_.end(), conn.client_id, pending.request_id);
          pending.dedup->in_order = true;
          ++dedup_completed_;
          dedup_bytes_ += payload.size();
          std::uint64_t evicted = 0;
          while ((dedup_completed_ > options_.dedup_capacity ||
                  (options_.dedup_byte_budget > 0 &&
                   dedup_bytes_ > options_.dedup_byte_budget)) &&
                 !dedup_order_.empty()) {
            const auto [cid, rid] = dedup_order_.front();
            dedup_order_.pop_front();
            --dedup_completed_;
            ++evicted;
            const auto cit = dedup_.find(cid);
            if (cit != dedup_.end()) {
              const auto eit = cit->second.find(rid);
              if (eit != cit->second.end()) {
                dedup_bytes_ -= std::min(dedup_bytes_,
                                         eit->second->payload.size());
                eit->second->in_order = false;
                cit->second.erase(eit);
              }
              if (cit->second.empty()) dedup_.erase(cit);
            }
          }
          if (evicted > 0) {
            std::lock_guard slock(stats_mutex_);
            stats_.dedup_evictions += evicted;
          }
        }
      }
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      // Duplicate of an execution still in flight: wait for the original.
      std::unique_lock elock(pending.dedup->mutex);
      pending.dedup->cv.wait(elock, [&] { return pending.dedup->done; });
      payload = pending.dedup->payload;
    }

    try {
      send_response_frame(conn, pending.request_id, std::move(payload));
    } catch (const WireError&) {
      // The peer is gone; the dedup record already holds the response for
      // its retry on a fresh connection. Keep flushing the rest.
    }
  }
  // Both loops are done with the socket: send the FIN now so the peer sees
  // EOF immediately (a version-skewed client must observe "typed reject,
  // then close", not a connection that lingers until the next reap).
  ::shutdown(conn.fd, SHUT_RDWR);
  conn.finished.store(true, std::memory_order_release);
}

void Server::send_response_frame(Connection& conn, std::uint64_t request_id,
                                 std::vector<std::uint8_t> payload) {
  service::ChaosPlan* chaos = options_.chaos;
  if (chaos != nullptr) {
    const double delay = chaos->wire_delay_ms();
    if (delay > 0) {
      std::lock_guard slock(stats_mutex_);
      ++stats_.chaos_faults;
      sleep_ms(delay);
    }
    if (chaos->should_fault(service::ChaosSite::kWireConnReset)) {
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.chaos_faults;
      }
      close_connection(conn, /*reset=*/true);
      return;
    }
    if (chaos->should_fault(service::ChaosSite::kWireTornFrame)) {
      {
        std::lock_guard slock(stats_mutex_);
        ++stats_.chaos_faults;
      }
      const std::vector<std::uint8_t> frame =
          build_frame(FrameType::kResponse, request_id, payload);
      {
        std::lock_guard wlock(conn.write_mutex);
        (void)util::io::write_full(conn.fd, frame.data(), frame.size() / 2);
      }
      close_connection(conn, /*reset=*/false);
      return;
    }
  }
  std::lock_guard wlock(conn.write_mutex);
  send_frame(conn.fd, FrameType::kResponse, request_id, payload);
}

void Server::stream_metrics(Connection& conn, std::uint64_t request_id) {
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.metrics_streams;
  }
  std::string rendered = sink_->metrics_text();
  {
    // Append the server's own wire-level counters so one metrics fetch
    // shows the full serving picture (the CI chaos stages grep this line).
    const ServerStats s = stats();
    rendered += "transport: requests=" + std::to_string(s.requests) +
                " duplicates=" + std::to_string(s.duplicates) +
                " dedup_entries=" + std::to_string(s.dedup_entries) +
                " dedup_bytes=" + std::to_string(s.dedup_bytes) +
                " dedup_evictions=" + std::to_string(s.dedup_evictions) +
                " journal_replays=" + std::to_string(s.journal_replays) +
                " not_leader_rejects=" + std::to_string(s.not_leader_rejects) +
                " fenced_rejects=" + std::to_string(s.fenced_rejects) + "\n";
  }
  for (std::size_t off = 0; off < rendered.size();
       off += kMetricsChunkBytes) {
    const std::size_t n = std::min(kMetricsChunkBytes, rendered.size() - off);
    PayloadWriter w;
    w.bytes(rendered.data() + off, n);
    std::lock_guard wlock(conn.write_mutex);
    send_frame(conn.fd, FrameType::kMetricsChunk, request_id, w.data());
  }
  std::lock_guard wlock(conn.write_mutex);
  send_frame(conn.fd, FrameType::kMetricsEnd, request_id, {});
}

void Server::close_connection(Connection& conn, bool reset) {
  if (reset) {
    // Arrange an RST rather than an orderly FIN: the client must treat it
    // exactly like a worker that vanished.
    const linger hard{1, 0};
    ::setsockopt(conn.fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  ::shutdown(conn.fd, SHUT_RDWR);
  {
    std::lock_guard lock(conn.outbox_mutex);
    conn.closing = true;
  }
  conn.outbox_cv.notify_all();
}

void Server::drain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) {
    // Another drainer won; wait alongside it.
  }
  const int listen_fd = listen_fd_.load();
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
  }
  // Finish in-flight, flush outboxes.
  for (;;) {
    bool quiescent = in_flight_.load(std::memory_order_relaxed) == 0;
    if (quiescent) {
      std::lock_guard lock(connections_mutex_);
      for (const auto& conn : connections_) {
        std::lock_guard olock(conn->outbox_mutex);
        if (!conn->outbox.empty()) {
          quiescent = false;
          break;
        }
      }
    }
    if (quiescent) break;
    sleep_ms(options_.drain_poll_ms);
  }
  // Notify and close every connection.
  std::lock_guard lock(connections_mutex_);
  for (const auto& conn : connections_) {
    {
      std::lock_guard wlock(conn->write_mutex);
      try {
        send_frame(conn->fd, FrameType::kDrainNotice, 0, {});
      } catch (const WireError&) {
      }
    }
    close_connection(*conn, /*reset=*/false);
  }
}

void Server::stop() {
  if (stopping_.exchange(true)) return;
  drain();
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    util::io::close_quiet(listen_fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard lock(connections_mutex_);
  for (const auto& conn : connections_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->responder.joinable()) conn->responder.join();
    if (conn->fd >= 0) {
      util::io::close_quiet(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    std::lock_guard lock(stats_mutex_);
    out = stats_;
  }
  std::lock_guard dlock(dedup_mutex_);
  out.dedup_entries = dedup_completed_;
  out.dedup_bytes = dedup_bytes_;
  return out;
}

}  // namespace trico::transport
