// Set-associative LRU cache model.
//
// Accuracy goal: reproduce the *relative* behaviour the paper's optimizations
// depend on (working-set vs capacity, line-granularity spatial locality),
// not a cycle-accurate replica of any particular silicon.

#pragma once

#include <cstdint>
#include <vector>

#include "simt/device_config.hpp"

namespace trico::simt {

/// A set-associative cache with true-LRU replacement and line granularity.
/// Addresses are byte addresses in the simulated device address space.
class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geometry);

  /// Looks up the line containing `addr`; on miss, fills it (evicting LRU).
  /// Returns true on hit.
  bool access(std::uint64_t addr);

  /// Drops all lines (between kernels / experiments).
  void flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const { return hits_ + misses_; }
  [[nodiscard]] double hit_rate() const {
    return accesses() ? static_cast<double>(hits_) / static_cast<double>(accesses()) : 0.0;
  }
  void reset_counters() { hits_ = misses_ = 0; }

  [[nodiscard]] const CacheGeometry& geometry() const { return geometry_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  CacheGeometry geometry_;
  std::uint64_t num_sets_;
  std::uint32_t line_shift_;
  std::vector<Way> ways_;  ///< num_sets_ x geometry_.ways, row-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace trico::simt
