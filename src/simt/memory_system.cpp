#include "simt/memory_system.hpp"

#include <algorithm>

namespace trico::simt {

namespace {

CacheGeometry scaled(CacheGeometry geometry, double scale) {
  if (scale >= 1.0) return geometry;
  const std::uint64_t min_size =
      static_cast<std::uint64_t>(geometry.line_bytes) * geometry.ways;
  geometry.size_bytes = std::max(
      min_size, static_cast<std::uint64_t>(static_cast<double>(geometry.size_bytes) * scale) /
                    min_size * min_size);
  return geometry;
}

}  // namespace

MemorySystem::MemorySystem(const DeviceConfig& config,
                           std::uint32_t simulated_sms, double l2_scale)
    : config_(config), l2_(scaled(config.l2, l2_scale)) {
  sm_caches_.reserve(simulated_sms);
  for (std::uint32_t i = 0; i < simulated_sms; ++i) {
    sm_caches_.emplace_back(config.sm_cache);
  }
}

TransactionResult MemorySystem::access(std::uint32_t sm, std::uint64_t addr,
                                       bool cacheable_in_sm) {
  ++counters_.transactions;
  TransactionResult result;
  if (cacheable_in_sm) {
    ++counters_.sm_cache_accesses;
    if (sm_caches_[sm].access(addr)) {
      ++counters_.sm_cache_hits;
      result.latency_cycles = config_.sm_cache_latency_cycles;
      return result;
    }
  }
  ++counters_.l2_accesses;
  result.l2_trip = true;
  if (l2_.access(addr)) {
    ++counters_.l2_hits;
    result.latency_cycles = config_.l2_latency_cycles;
    return result;
  }
  result.latency_cycles = config_.dram_latency_cycles;
  result.dram = true;
  ++counters_.dram_lines;
  counters_.dram_bytes += l2_.geometry().line_bytes;
  return result;
}

void MemorySystem::flush() {
  for (SetAssocCache& cache : sm_caches_) cache.flush();
  l2_.flush();
}

}  // namespace trico::simt
