#include "simt/memory_system.hpp"

#include <algorithm>
#include <utility>

namespace trico::simt {

namespace {

CacheGeometry scaled(CacheGeometry geometry, double scale) {
  if (scale >= 1.0) return geometry;
  const std::uint64_t min_size =
      static_cast<std::uint64_t>(geometry.line_bytes) * geometry.ways;
  geometry.size_bytes = std::max(
      min_size, static_cast<std::uint64_t>(static_cast<double>(geometry.size_bytes) * scale) /
                    min_size * min_size);
  return geometry;
}

}  // namespace

MemorySystem::MemorySystem(DeviceConfig config, std::uint32_t simulated_sms,
                           double l2_scale, L2Topology topology)
    : config_(std::move(config)), topology_(topology) {
  sm_caches_.reserve(simulated_sms);
  counters_.resize(simulated_sms);
  for (std::uint32_t i = 0; i < simulated_sms; ++i) {
    sm_caches_.emplace_back(config_.sm_cache);
  }
  if (topology_ == L2Topology::kSharded) {
    // Each SM's private slice is its proportional share of the (scaled) L2.
    const CacheGeometry slice = scaled(
        config_.l2, l2_scale / std::max<std::uint32_t>(simulated_sms, 1));
    l2_slices_.reserve(simulated_sms);
    for (std::uint32_t i = 0; i < simulated_sms; ++i) {
      l2_slices_.emplace_back(slice);
    }
  } else {
    shared_l2_.emplace_back(scaled(config_.l2, l2_scale));
  }
}

TransactionResult MemorySystem::access(std::uint32_t sm, std::uint64_t addr,
                                       bool cacheable_in_sm) {
  MemoryCounters& counters = counters_[sm];
  ++counters.transactions;
  TransactionResult result;
  if (cacheable_in_sm) {
    ++counters.sm_cache_accesses;
    if (sm_caches_[sm].access(addr)) {
      ++counters.sm_cache_hits;
      result.latency_cycles = config_.sm_cache_latency_cycles;
      return result;
    }
  }
  ++counters.l2_accesses;
  result.l2_trip = true;
  SetAssocCache& l2 =
      topology_ == L2Topology::kSharded ? l2_slices_[sm] : shared_l2_.front();
  if (l2.access(addr)) {
    ++counters.l2_hits;
    result.latency_cycles = config_.l2_latency_cycles;
    return result;
  }
  result.latency_cycles = config_.dram_latency_cycles;
  result.dram = true;
  ++counters.dram_lines;
  counters.dram_bytes += l2.geometry().line_bytes;
  return result;
}

MemoryCounters MemorySystem::counters() const {
  MemoryCounters merged;
  for (const MemoryCounters& block : counters_) merged.merge(block);
  return merged;
}

void MemorySystem::reset_counters() {
  for (MemoryCounters& block : counters_) block = MemoryCounters{};
}

void MemorySystem::flush() {
  for (SetAssocCache& cache : sm_caches_) cache.flush();
  for (SetAssocCache& cache : l2_slices_) cache.flush();
  for (SetAssocCache& cache : shared_l2_) cache.flush();
}

}  // namespace trico::simt
