#include "simt/cache.hpp"

#include <bit>
#include <stdexcept>

namespace trico::simt {

SetAssocCache::SetAssocCache(const CacheGeometry& geometry)
    : geometry_(geometry), num_sets_(geometry.num_sets()) {
  if (geometry_.line_bytes == 0 || !std::has_single_bit(geometry_.line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (num_sets_ == 0) {
    throw std::invalid_argument("cache must have at least one set");
  }
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(geometry_.line_bytes));
  ways_.assign(num_sets_ * geometry_.ways, Way{});
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  // Hashed set index (GPU L2s hash physical addresses): folding the upper
  // bits in prevents pathological power-of-two stride aliasing.
  std::uint64_t set = line % num_sets_;
  if (geometry_.hash_sets) {
    set = (line ^ (((line / num_sets_) * 0x9e3779b97f4a7c15ull) >> 17)) %
          num_sets_;
  }
  Way* const begin = ways_.data() + set * geometry_.ways;
  Way* const end = begin + geometry_.ways;
  ++clock_;
  Way* victim = nullptr;
  for (Way* way = begin; way != end; ++way) {
    if (way->valid && way->tag == line) {
      way->last_use = clock_;
      ++hits_;
      return true;
    }
    if (!way->valid) {
      if (victim == nullptr || victim->valid) victim = way;
    } else if (geometry_.replacement == Replacement::kLru &&
               (victim == nullptr ||
                (victim->valid && way->last_use < victim->last_use))) {
      victim = way;
    }
  }
  if (victim == nullptr) {
    // Pseudo-random replacement: a SplitMix-style hash of the access clock
    // and line keeps runs deterministic while avoiding LRU's streaming cliff.
    std::uint64_t x = clock_ ^ (line * 0x9e3779b97f4a7c15ull);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    victim = begin + (x % geometry_.ways);
  }
  victim->tag = line;
  victim->valid = true;
  victim->last_use = clock_;
  ++misses_;
  return false;
}

void SetAssocCache::flush() {
  for (Way& way : ways_) way = Way{};
  clock_ = 0;
}

}  // namespace trico::simt
