#include "simt/device_config.hpp"

#include <algorithm>

namespace trico::simt {

namespace {

CacheGeometry shrink(CacheGeometry geometry, double factor) {
  const std::uint64_t min_size =
      static_cast<std::uint64_t>(geometry.line_bytes) * geometry.ways;
  const auto scaled = static_cast<std::uint64_t>(
      static_cast<double>(geometry.size_bytes) / factor);
  geometry.size_bytes = std::max(min_size, scaled / min_size * min_size);
  return geometry;
}

}  // namespace

DeviceConfig DeviceConfig::scaled_memory(double factor) const {
  DeviceConfig scaled = *this;
  if (factor <= 1.0) return scaled;
  // Only capacity-proportional structures shrink. The per-SM cache serves
  // the *frontier* working set, which scales with resident thread count —
  // identical between the paper's runs and ours — not with graph size.
  scaled.l2 = shrink(l2, factor);
  scaled.memory_bytes = static_cast<std::uint64_t>(
      static_cast<double>(memory_bytes) / factor);
  return scaled;
}

DeviceConfig DeviceConfig::tesla_c2050() {
  DeviceConfig config;
  config.name = "Tesla C2050";
  config.num_sms = 14;
  config.warp_size = 32;
  config.max_threads_per_sm = 1536;
  config.max_blocks_per_sm = 8;
  config.clock_ghz = 1.15;
  config.dram_bandwidth_gbps = 144.0;
  config.dram_latency_cycles = 520;
  config.l2 = CacheGeometry{768u << 10, 128, 16};
  config.l2_latency_cycles = 260;
  config.sm_cache = CacheGeometry{48u << 10, 128, 8};  // Fermi 48 KB L1
  config.sm_cache_latency_cycles = 60;
  config.l1_caches_all_global_loads = true;
  config.pcie_bandwidth_gbps = 5.0;
  // 3 GB card, but ECC (on by default on Tesla parts) reserves 12.5%,
  // leaving ~2.625 GB usable — this is what makes Orkut and Kronecker 21
  // overflow the C2050 in the paper (the dagger rows) while Kronecker 20
  // still fits.
  config.memory_bytes = (3ull << 30) / 8 * 7;
  // Fermi issues at a lower effective rate per warp than Maxwell (no
  // quad-scheduler, higher-latency pipelines).
  config.issue_cycles_per_step = 12.0;
  config.issue_cycles_per_line = 3.5;
  return config;
}

DeviceConfig DeviceConfig::gtx_980() {
  DeviceConfig config;
  config.name = "GTX 980";
  config.num_sms = 16;
  config.warp_size = 32;
  config.max_threads_per_sm = 2048;
  config.max_blocks_per_sm = 32;
  config.clock_ghz = 1.126;
  config.dram_bandwidth_gbps = 224.0;
  config.dram_latency_cycles = 400;
  config.l2 = CacheGeometry{2u << 20, 128, 16};
  config.l2_latency_cycles = 210;
  config.sm_cache = CacheGeometry{24u << 10, 128, 8};  // read-only tex cache
  config.sm_cache_latency_cycles = 80;
  config.l1_caches_all_global_loads = false;  // Maxwell: RO path is opt-in
  config.pcie_bandwidth_gbps = 6.0;
  config.memory_bytes = 4ull << 30;
  return config;
}

DeviceConfig DeviceConfig::nvs_5200m() {
  DeviceConfig config;
  config.name = "NVS 5200M";
  config.num_sms = 2;
  config.warp_size = 32;
  config.max_threads_per_sm = 1536;
  config.max_blocks_per_sm = 8;
  config.clock_ghz = 0.625;
  config.dram_bandwidth_gbps = 14.4;
  config.dram_latency_cycles = 600;
  config.l2 = CacheGeometry{256u << 10, 128, 16};
  config.l2_latency_cycles = 300;
  config.sm_cache = CacheGeometry{48u << 10, 128, 8};
  config.sm_cache_latency_cycles = 60;
  config.l1_caches_all_global_loads = true;
  config.pcie_bandwidth_gbps = 3.0;
  config.memory_bytes = 1ull << 30;
  config.issue_cycles_per_step = 9.0;
  config.issue_cycles_per_line = 3.0;
  return config;
}

}  // namespace trico::simt
