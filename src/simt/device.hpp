// Simulated device memory: typed buffers living in a flat simulated address
// space.
//
// A DeviceBuffer mirrors cudaMalloc + cudaMemcpy: it owns a host-side copy of
// the data (so kernels compute real values) plus a base address in the
// simulated address space (so the cache model sees realistic line reuse and
// conflict behaviour). Allocations are 256-byte aligned like the CUDA
// allocator.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "simt/device_config.hpp"
#include "simt/fault.hpp"

namespace trico::simt {

/// A read-only typed view of device memory: host pointer + simulated address.
template <typename T>
class DeviceSpan {
 public:
  DeviceSpan() = default;
  DeviceSpan(const T* data, std::uint64_t base_addr, std::size_t size)
      : data_(data), base_addr_(base_addr), size_(size) {}

  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Simulated byte address of element i.
  [[nodiscard]] std::uint64_t addr(std::size_t i) const {
    return base_addr_ + i * sizeof(T);
  }

 private:
  const T* data_ = nullptr;
  std::uint64_t base_addr_ = 0;
  std::size_t size_ = 0;
};

/// A device with an allocator over the simulated address space. Tracks the
/// high-water footprint so the §III-D6 capacity gate can be enforced.
class Device {
 public:
  explicit Device(DeviceConfig config) : config_(std::move(config)) {}

  [[nodiscard]] const DeviceConfig& config() const { return config_; }

  /// Copies `host` into device-resident storage and returns a typed span.
  template <typename T>
  DeviceSpan<T> upload(std::span<const T> host) {
    const std::uint64_t bytes = host.size() * sizeof(T);
    const std::uint64_t base = allocate(bytes);
    auto& storage = buffers_.emplace_back();
    storage.resize(bytes);
    if (bytes > 0) std::memcpy(storage.data(), host.data(), bytes);
    return DeviceSpan<T>(reinterpret_cast<const T*>(storage.data()), base,
                         host.size());
  }

  /// Reserves address space without backing data (for footprint accounting
  /// of scratch allocations, e.g. sort double-buffers).
  std::uint64_t reserve(std::uint64_t bytes) { return allocate(bytes); }

  /// Releases everything (a new experiment's cudaFree).
  void free_all() {
    buffers_.clear();
    next_addr_ = kBaseAddress;
    footprint_ = 0;
  }

  [[nodiscard]] std::uint64_t footprint_bytes() const { return footprint_; }
  [[nodiscard]] std::uint64_t peak_footprint_bytes() const { return peak_footprint_; }

  /// True if an allocation plan of `bytes` total fits device memory.
  [[nodiscard]] bool fits(std::uint64_t bytes) const {
    return bytes <= config_.memory_bytes;
  }

 private:
  static constexpr std::uint64_t kBaseAddress = 0x7f0000000000ull;

  std::uint64_t allocate(std::uint64_t bytes) {
    constexpr std::uint64_t kAlign = 256;
    const std::uint64_t base = next_addr_;
    next_addr_ += (bytes + kAlign - 1) / kAlign * kAlign;
    footprint_ += bytes;
    peak_footprint_ = std::max(peak_footprint_, footprint_);
    if (footprint_ > config_.memory_bytes) {
      // Typed (organic, not injected) fault so the recovery layers can
      // catch OOM and step down the degradation ladder.
      throw DeviceFault(FaultKind::kAllocFailure, FaultSite::kAlloc, 0,
                        "simulated device out of memory: " +
                            std::to_string(footprint_) + " bytes on " +
                            config_.name,
                        /*injected=*/false);
    }
    return base;
  }

  DeviceConfig config_;
  std::vector<std::vector<std::byte>> buffers_;
  std::uint64_t next_addr_ = kBaseAddress;
  std::uint64_t footprint_ = 0;
  std::uint64_t peak_footprint_ = 0;
};

}  // namespace trico::simt
