// The simulated device memory hierarchy.
//
// Per-warp memory requests arrive as coalesced *line transactions* (the
// runner groups the 32 lanes' addresses into unique cache lines first, as
// the hardware's coalescer does). Each transaction probes the per-SM cache
// (if eligible), then the device-wide L2, then DRAM. The system keeps the
// counters Table II is built from: per-level hits and the DRAM byte traffic.

#pragma once

#include <cstdint>
#include <vector>

#include "simt/cache.hpp"
#include "simt/device_config.hpp"

namespace trico::simt {

/// Outcome of one line transaction.
struct TransactionResult {
  std::uint32_t latency_cycles = 0;
  bool l2_trip = false;  ///< missed the per-SM cache (or bypassed it)
  bool dram = false;     ///< missed all cache levels
};

/// Aggregated memory-system counters for a kernel run.
struct MemoryCounters {
  std::uint64_t transactions = 0;   ///< coalesced line transactions
  std::uint64_t sm_cache_accesses = 0;
  std::uint64_t sm_cache_hits = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t dram_lines = 0;
  std::uint64_t dram_bytes = 0;

  /// The "cache hit rate" the paper profiles (Table II): the fraction of
  /// transactions served by *any* cache level (1 - DRAM lines /
  /// transactions), matching a profiler's kernel-wide hit rate.
  [[nodiscard]] double combined_hit_rate() const {
    return transactions > 0
               ? 1.0 - static_cast<double>(dram_lines) /
                           static_cast<double>(transactions)
               : 0.0;
  }

  /// Hit rate of the first cache level the loads target — the per-SM
  /// read-only cache when in use, else L2.
  [[nodiscard]] double top_level_hit_rate() const {
    if (sm_cache_accesses > 0) {
      return static_cast<double>(sm_cache_hits) /
             static_cast<double>(sm_cache_accesses);
    }
    if (l2_accesses > 0) {
      return static_cast<double>(l2_hits) / static_cast<double>(l2_accesses);
    }
    return 0.0;
  }
};

/// Memory hierarchy of one device: N per-SM caches over a shared L2.
class MemorySystem {
 public:
  /// `l2_scale` shrinks the L2 proportionally when only a subset of SMs is
  /// simulated (sampled runs), so the per-SM share of L2 stays faithful.
  MemorySystem(const DeviceConfig& config, std::uint32_t simulated_sms,
               double l2_scale = 1.0);

  /// One coalesced line transaction from warp hardware on `sm`.
  /// `cacheable_in_sm` reflects the §III-D4 qualifier rules: true when the
  /// load may use the per-SM read-only path on this architecture.
  TransactionResult access(std::uint32_t sm, std::uint64_t addr,
                           bool cacheable_in_sm);

  [[nodiscard]] const MemoryCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = MemoryCounters{}; }
  void flush();

 private:
  const DeviceConfig& config_;
  std::vector<SetAssocCache> sm_caches_;  ///< one per simulated SM
  SetAssocCache l2_;
  MemoryCounters counters_;
};

}  // namespace trico::simt
