// The simulated device memory hierarchy.
//
// Per-warp memory requests arrive as coalesced *line transactions* (the
// runner groups the 32 lanes' addresses into unique cache lines first, as
// the hardware's coalescer does). Each transaction probes the per-SM cache
// (if eligible), then the L2, then DRAM. The system keeps the counters
// Table II is built from: per-level hits and the DRAM byte traffic.
//
// L2 topology. The real device has one L2 shared by every SM. Simulating it
// that way serializes the whole device behind one mutable cache, so the
// default model is *sharded*: each SM owns a private slice of capacity
// L2/num_sms — the same proportional-share argument the SM-sampling path has
// always used to shrink the L2 by k/N (SimOptions::sample_sms). With shards,
// an SM's hit rates and latencies depend only on its own access stream, which
// is what lets the runner simulate SMs on concurrent host threads with
// bit-identical results for any thread count. The legacy shared topology is
// kept for validation (bench_l2_sharding measures the hit-rate delta) and
// forces sequential execution.

#pragma once

#include <cstdint>
#include <vector>

#include "simt/cache.hpp"
#include "simt/device_config.hpp"

namespace trico::simt {

/// How the device-wide L2 capacity is presented to the SMs.
enum class L2Topology : std::uint8_t {
  kSharded,  ///< per-SM private slice of capacity L2/num_sms (parallel-safe)
  kShared,   ///< one device-wide cache (legacy; single host thread only)
};

/// Outcome of one line transaction.
struct TransactionResult {
  std::uint32_t latency_cycles = 0;
  bool l2_trip = false;  ///< missed the per-SM cache (or bypassed it)
  bool dram = false;     ///< missed all cache levels
};

/// Aggregated memory-system counters for a kernel run.
struct MemoryCounters {
  std::uint64_t transactions = 0;   ///< coalesced line transactions
  std::uint64_t sm_cache_accesses = 0;
  std::uint64_t sm_cache_hits = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t dram_lines = 0;
  std::uint64_t dram_bytes = 0;

  /// Accumulates `other` into this block (per-SM blocks are summed in SM
  /// order when a run finishes; integer sums make the merge order-free).
  void merge(const MemoryCounters& other) {
    transactions += other.transactions;
    sm_cache_accesses += other.sm_cache_accesses;
    sm_cache_hits += other.sm_cache_hits;
    l2_accesses += other.l2_accesses;
    l2_hits += other.l2_hits;
    dram_lines += other.dram_lines;
    dram_bytes += other.dram_bytes;
  }

  /// The "cache hit rate" the paper profiles (Table II): the fraction of
  /// transactions served by *any* cache level (1 - DRAM lines /
  /// transactions), matching a profiler's kernel-wide hit rate.
  [[nodiscard]] double combined_hit_rate() const {
    return transactions > 0
               ? 1.0 - static_cast<double>(dram_lines) /
                           static_cast<double>(transactions)
               : 0.0;
  }

  /// Hit rate of the first cache level the loads target — the per-SM
  /// read-only cache when in use, else L2.
  [[nodiscard]] double top_level_hit_rate() const {
    if (sm_cache_accesses > 0) {
      return static_cast<double>(sm_cache_hits) /
             static_cast<double>(sm_cache_accesses);
    }
    if (l2_accesses > 0) {
      return static_cast<double>(l2_hits) / static_cast<double>(l2_accesses);
    }
    return 0.0;
  }
};

/// Memory hierarchy of one device: N per-SM caches over the L2 capacity
/// (sharded per SM by default, or one shared cache in legacy mode).
///
/// Thread safety: in the sharded topology, access() for distinct `sm`
/// values touches disjoint state, so one host thread per SM is safe. The
/// shared topology must be driven by a single thread.
class MemorySystem {
 public:
  /// `l2_scale` shrinks the modeled L2 capacity proportionally when only a
  /// subset of SMs is simulated (sampled runs), so the per-SM share of L2
  /// stays faithful. With the sharded topology each of the `simulated_sms`
  /// slices gets `l2 * l2_scale / simulated_sms` — i.e. exactly L2/num_sms
  /// when the caller passes l2_scale = simulated_sms/num_sms.
  MemorySystem(DeviceConfig config, std::uint32_t simulated_sms,
               double l2_scale = 1.0,
               L2Topology topology = L2Topology::kSharded);

  /// One coalesced line transaction from warp hardware on `sm`.
  /// `cacheable_in_sm` reflects the §III-D4 qualifier rules: true when the
  /// load may use the per-SM read-only path on this architecture.
  TransactionResult access(std::uint32_t sm, std::uint64_t addr,
                           bool cacheable_in_sm);

  /// Counters summed over every simulated SM.
  [[nodiscard]] MemoryCounters counters() const;
  /// Counters of one simulated SM (its private accumulation block).
  [[nodiscard]] const MemoryCounters& sm_counters(std::uint32_t sm) const {
    return counters_[sm];
  }
  [[nodiscard]] L2Topology topology() const { return topology_; }

  void reset_counters();
  void flush();

 private:
  DeviceConfig config_;  ///< by value: a temporary argument must not dangle
  L2Topology topology_;
  std::vector<SetAssocCache> sm_caches_;  ///< one per simulated SM
  std::vector<SetAssocCache> l2_slices_;  ///< sharded: one per simulated SM
  std::vector<SetAssocCache> shared_l2_;  ///< shared: exactly one
  std::vector<MemoryCounters> counters_;  ///< one block per simulated SM
};

}  // namespace trico::simt
