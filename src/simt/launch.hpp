// Kernel launch configuration and per-launch statistics.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "simt/device_config.hpp"
#include "simt/memory_system.hpp"
#include "util/cancel.hpp"

namespace trico::simt {

/// Grid shape in the paper's launch idiom: the kernel is launched with
/// (blocks_per_sm * num_sms) blocks and a grid-stride loop covers the input
/// (§III-C). The tuned optimum is 64 threads/block x 8 blocks/SM.
struct LaunchConfig {
  std::uint32_t threads_per_block = 64;
  std::uint32_t blocks_per_sm = 8;

  /// Effective warp width; values below the hardware warp size model the
  /// §III-D5 "reducing warp size" trick (extra lanes idle).
  std::uint32_t effective_warp_size = 32;

  [[nodiscard]] std::uint32_t threads_per_sm() const {
    return threads_per_block * blocks_per_sm;
  }
  [[nodiscard]] std::uint64_t total_threads(const DeviceConfig& config) const {
    return static_cast<std::uint64_t>(threads_per_sm()) * config.num_sms;
  }

  void validate(const DeviceConfig& config) const {
    if (threads_per_block == 0 || blocks_per_sm == 0) {
      throw std::invalid_argument("launch config: zero-sized grid");
    }
    if (threads_per_block > config.max_threads_per_block) {
      throw std::invalid_argument("launch config: threads per block over limit");
    }
    if (threads_per_sm() > config.max_threads_per_sm) {
      throw std::invalid_argument("launch config: SM thread occupancy over limit");
    }
    if (blocks_per_sm > config.max_blocks_per_sm) {
      throw std::invalid_argument("launch config: blocks per SM over limit");
    }
    if (effective_warp_size == 0 || effective_warp_size > config.warp_size) {
      throw std::invalid_argument("launch config: bad effective warp size");
    }
  }
};

/// Simulation controls: SM sampling, host-thread parallelism and L2
/// topology. The modeled L2 capacity is scaled proportionally when only a
/// subset of SMs is simulated, so per-SM cache pressure stays faithful.
struct SimOptions {
  /// 0 = simulate every SM. k > 0 = simulate min(k, num_sms) SMs and scale
  /// times/counters by num_sms / k.
  std::uint32_t sample_sms = 0;

  /// Host threads executing simulated SMs in parallel: 1 = sequential
  /// (default), 0 = std::thread::hardware_concurrency(). Per-SM state is
  /// independent under the sharded L2, so KernelStats are bit-identical for
  /// every value; with L2Topology::kShared the run is forced sequential.
  std::uint32_t threads = 1;

  /// L2 model: per-SM sharded slices (default, parallel-safe) or the legacy
  /// device-wide shared cache (validation only).
  L2Topology l2_topology = L2Topology::kSharded;

  /// Cooperative cancellation (non-owning; nullptr = never cancelled). The
  /// runner polls it once per scheduling round and unwinds the launch with
  /// util::OperationCancelled from the calling thread — this is how the
  /// service stops a simulated kernel whose request was cancelled or blew
  /// its deadline mid-flight.
  const util::CancelToken* cancel = nullptr;
};

/// Everything the harness reports about one kernel launch.
struct KernelStats {
  std::uint64_t threads = 0;
  std::uint64_t warps = 0;
  std::uint64_t warp_steps = 0;       ///< lockstep steps summed over warps
  std::uint64_t lane_loads = 0;       ///< scalar loads issued by lanes
  MemoryCounters memory;

  double issue_cycles = 0;            ///< throughput-bound SM cycles (max SM)
  double latency_cycles = 0;          ///< critical-path bound (max warp)
  double bandwidth_cycles = 0;        ///< DRAM-bound cycles (max SM)
  double cycles = 0;                  ///< max of the three bounds
  double time_ms = 0;                 ///< cycles / clock

  double sample_scale = 1.0;          ///< num_sms / simulated_sms

  /// Achieved DRAM bandwidth in GB/s over the kernel's execution (Table II).
  [[nodiscard]] double achieved_bandwidth_gbps() const {
    return time_ms > 0 ? static_cast<double>(memory.dram_bytes) *
                             sample_scale / 1e6 / time_ms
                       : 0.0;
  }
  /// Profiler-style cache hit rate (Table II): served by any cache level.
  [[nodiscard]] double cache_hit_rate() const {
    return memory.combined_hit_rate();
  }
};

}  // namespace trico::simt
