// Warp-lockstep kernel execution engine.
//
// A trico device kernel is a per-thread state machine: `State` is the
// thread's register file, `start` initializes it from the grid-stride thread
// id, and `step` advances the thread by one loop iteration, reporting its
// memory reads to a Sink. The runner executes warps in lockstep — every
// scheduling round, each live warp steps all of its lanes once — which is
// exactly the execution the paper's kernel experiences: a lane that misses
// the cache stalls its whole warp (the §III-D5 observation), and the lanes'
// per-step addresses are coalesced into line transactions before touching
// the memory hierarchy.
//
// Timing model (see DESIGN.md §6): per SM the runner tracks three bounds —
// issue throughput (sum of per-warp-step issue cycles), latency critical
// path (slowest single warp, since one warp's chain of stalls cannot be
// compressed), and DRAM bandwidth (bytes over the SM's bandwidth share) —
// and charges the max. Device time is the max over SMs. Warps on one SM
// interleave round-robin so the caches see a realistic access mix.
//
// Parallel execution: per-SM work is independent — each SM owns its warps,
// its cache slice of the (sharded) L2 and its counter block — so SMs are
// dealt to a prim::ThreadPool as tasks (SimOptions::threads) and their
// results merged in SM order afterwards. Every merge is over commutative
// integer sums or max(), so KernelStats are bit-identical for any thread
// count or interleaving. The only cross-SM state is the kernel object
// itself: start()/step() are const, and retire() calls are serialized under
// a mutex (every in-tree retire is a commutative integer fold, so order
// does not affect the result).
//
// Sampling: for large grids, SimOptions::sample_sms simulates only the first
// k SMs through the memory hierarchy (with the L2 capacity shrunk to its k/N
// share) and runs the remaining SMs' threads functionally so results stay
// exact; times and counters are scaled by N/k.

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "prim/thread_pool.hpp"
#include "simt/device.hpp"
#include "simt/launch.hpp"
#include "simt/memory_system.hpp"

namespace trico::simt {

/// Records the memory reads and extra ALU work of one lane step.
class TimedSink {
 public:
  static constexpr std::size_t kMaxAccesses = 8;

  struct Access {
    std::uint64_t addr;
    std::uint32_t bytes;
    bool readonly;
  };

  void read(std::uint64_t addr, std::uint32_t bytes, bool readonly) {
    if (count_ < kMaxAccesses) accesses_[count_++] = Access{addr, bytes, readonly};
  }
  void alu(std::uint32_t ops) { alu_ += ops; }

  void clear() {
    count_ = 0;
    alu_ = 0;
  }
  [[nodiscard]] std::span<const Access> accesses() const {
    return {accesses_.data(), count_};
  }
  [[nodiscard]] std::uint32_t alu_ops() const { return alu_; }

 private:
  std::array<Access, kMaxAccesses> accesses_{};
  std::size_t count_ = 0;
  std::uint32_t alu_ = 0;
};

/// Sink for functional-only execution (sampled-out SMs): all reporting is a
/// no-op the optimizer deletes.
struct NullSink {
  static void read(std::uint64_t, std::uint32_t, bool) {}
  static void alu(std::uint32_t) {}
};

/// Executes `kernel` on `device` and returns launch statistics. The kernel
/// object accumulates its own results via retire(state).
template <typename Kernel>
KernelStats launch_kernel(const Device& device, const LaunchConfig& launch,
                          Kernel& kernel, const SimOptions& options = {}) {
  const DeviceConfig& config = device.config();
  launch.validate(config);

  const std::uint32_t num_sms = config.num_sms;
  const std::uint32_t simulated_sms =
      options.sample_sms == 0 ? num_sms
                              : std::min(options.sample_sms, num_sms);
  const double sample_scale =
      static_cast<double>(num_sms) / static_cast<double>(simulated_sms);

  const std::uint32_t eff_warp = launch.effective_warp_size;
  const std::uint32_t threads_per_block = launch.threads_per_block;
  const std::uint32_t blocks = launch.blocks_per_sm * num_sms;
  const std::uint64_t total_threads =
      static_cast<std::uint64_t>(blocks) * threads_per_block;

  MemorySystem memory(config, simulated_sms,
                      static_cast<double>(simulated_sms) / num_sms,
                      options.l2_topology);

  using State = typename Kernel::State;

  struct Warp {
    std::vector<State> lanes;
    std::vector<std::uint8_t> live;
    std::uint32_t live_count = 0;
    double serial_cycles = 0;
  };

  /// Everything one SM's simulation produces; merged in SM order below.
  struct SmOutcome {
    std::uint64_t warps = 0;
    std::uint64_t warp_steps = 0;
    std::uint64_t lane_loads = 0;
    double issue_cycles = 0;
    double max_warp_cycles = 0;
    double bandwidth_cycles = 0;
  };
  std::vector<SmOutcome> outcomes(num_sms);

  const std::uint32_t line_bytes = config.l2.line_bytes;

  // retire() folds a thread's result into the kernel object — the one piece
  // of cross-SM mutable state. All in-tree retires are commutative integer
  // folds, so serializing them keeps results exact and order-independent.
  std::mutex retire_mutex;

  // Simulates one SM start-to-finish. Touches only outcomes[sm], the memory
  // system's sm-indexed state, and (under the mutex) the kernel object.
  auto simulate_sm = [&](std::uint32_t sm) {
    const bool timed = sm < simulated_sms;
    SmOutcome& out_sm = outcomes[sm];

    // Materialize this SM's warps. Blocks are assigned to SMs round-robin
    // (block b runs on SM b % num_sms), so a sampled SM sees a uniform
    // slice of the grid-stride work.
    std::vector<Warp> warps;
    for (std::uint32_t block = sm; block < blocks; block += num_sms) {
      const std::uint64_t block_base =
          static_cast<std::uint64_t>(block) * threads_per_block;
      for (std::uint32_t lane0 = 0; lane0 < threads_per_block;
           lane0 += eff_warp) {
        Warp warp;
        const std::uint32_t lanes =
            std::min(eff_warp, threads_per_block - lane0);
        warp.lanes.resize(lanes);
        warp.live.assign(lanes, 1);
        warp.live_count = lanes;
        for (std::uint32_t l = 0; l < lanes; ++l) {
          kernel.start(warp.lanes[l], block_base + lane0 + l, total_threads);
        }
        warps.push_back(std::move(warp));
      }
    }
    if (timed) {
      out_sm.warps = warps.size();
    }

    if (!timed) {
      // Functional-only execution: results must be exact even for SMs that
      // are not simulated through the memory hierarchy.
      NullSink sink;
      for (Warp& warp : warps) {
        // Cancellation poll per warp: cheap next to the lanes' work, and a
        // cancelled launch throws before its results are consumed anyway.
        if (options.cancel != nullptr && options.cancel->cancelled()) return;
        for (std::uint32_t l = 0; l < warp.lanes.size(); ++l) {
          while (kernel.step(warp.lanes[l], sink)) {
          }
          std::lock_guard lock(retire_mutex);
          kernel.retire(warp.lanes[l]);
        }
      }
      return;
    }

    // Round-robin scheduling: one lockstep step per live warp per round.
    std::vector<std::uint32_t> live_warps(warps.size());
    for (std::uint32_t w = 0; w < warps.size(); ++w) live_warps[w] = w;
    TimedSink sink;
    // Worst regular case: every lane reports kMaxAccesses accesses, each
    // straddling a line boundary. Wider accesses grow the buffer (no access
    // is ever dropped; the old fixed-size buffer silently discarded the
    // overflow for large effective warp sizes).
    std::vector<std::uint64_t> line_buf;
    line_buf.reserve(static_cast<std::size_t>(eff_warp) *
                     TimedSink::kMaxAccesses * 2);

    while (!live_warps.empty()) {
      // One cancellation poll per scheduling round; each SM task bails on
      // its own thread and the launch throws afterwards from the caller.
      if (options.cancel != nullptr && options.cancel->cancelled()) return;
      std::size_t out = 0;
      for (std::size_t idx = 0; idx < live_warps.size(); ++idx) {
        Warp& warp = warps[live_warps[idx]];
        line_buf.clear();
        std::uint32_t alu_extra = 0;
        for (std::uint32_t l = 0; l < warp.lanes.size(); ++l) {
          if (!warp.live[l]) continue;
          sink.clear();
          const bool running = kernel.step(warp.lanes[l], sink);
          out_sm.lane_loads += sink.accesses().size();
          alu_extra = std::max(alu_extra, sink.alu_ops());
          for (const TimedSink::Access& access : sink.accesses()) {
            // A scalar access produces one transaction per touched line
            // (an unaligned 8-byte AoS read can straddle two lines).
            const std::uint64_t first = access.addr / line_bytes;
            const std::uint64_t last =
                (access.addr + access.bytes - 1) / line_bytes;
            for (std::uint64_t line = first; line <= last; ++line) {
              // Tag bit 0 with read-only eligibility to keep distinct
              // paths distinct during dedup.
              line_buf.push_back((line << 1) | (access.readonly ? 1u : 0u));
            }
          }
          if (!running) {
            warp.live[l] = 0;
            --warp.live_count;
            std::lock_guard lock(retire_mutex);
            kernel.retire(warp.lanes[l]);
          }
        }
        ++out_sm.warp_steps;

        // Coalesce: unique lines only, like the hardware's per-warp coalescer.
        std::sort(line_buf.begin(), line_buf.end());
        line_buf.erase(std::unique(line_buf.begin(), line_buf.end()),
                       line_buf.end());
        const auto unique_lines = static_cast<std::uint32_t>(line_buf.size());

        std::uint32_t max_latency = 0;
        std::uint32_t l2_trips = 0;
        for (const std::uint64_t tagged : line_buf) {
          const bool readonly = (tagged & 1u) != 0;
          const std::uint64_t addr = (tagged >> 1) * line_bytes;
          const bool cacheable =
              readonly || config.l1_caches_all_global_loads;
          const TransactionResult result = memory.access(sm, addr, cacheable);
          max_latency = std::max(max_latency, result.latency_cycles);
          l2_trips += result.l2_trip ? 1 : 0;
        }

        const double issue = config.issue_cycles_per_step + alu_extra +
                             config.issue_cycles_per_line * unique_lines +
                             config.issue_cycles_per_l2_trip * l2_trips;
        out_sm.issue_cycles += issue;
        // Memory-level parallelism inside one warp step: the lanes' loads
        // overlap, so the warp stalls for the slowest transaction only.
        warp.serial_cycles += issue + max_latency;

        if (warp.live_count > 0) live_warps[out++] = live_warps[idx];
      }
      live_warps.resize(out);
    }

    for (const Warp& warp : warps) {
      out_sm.max_warp_cycles = std::max(out_sm.max_warp_cycles, warp.serial_cycles);
    }
    out_sm.bandwidth_cycles =
        static_cast<double>(memory.sm_counters(sm).dram_bytes) /
        config.dram_bytes_per_cycle_per_sm();
  };

  // The shared-L2 topology serializes every SM behind one cache, so it runs
  // on one host thread regardless of the requested count.
  std::uint32_t host_threads =
      options.threads == 0
          ? std::max<std::uint32_t>(1, std::thread::hardware_concurrency())
          : options.threads;
  if (options.l2_topology == L2Topology::kShared) host_threads = 1;
  host_threads = std::min(host_threads, num_sms);

  if (host_threads <= 1) {
    for (std::uint32_t sm = 0; sm < num_sms; ++sm) simulate_sm(sm);
  } else {
    prim::ThreadPool pool(host_threads);
    pool.parallel_ranges(0, num_sms, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t sm = lo; sm < hi; ++sm) {
        simulate_sm(static_cast<std::uint32_t>(sm));
      }
    });
  }

  // A cancelled launch unwinds here, on the calling thread, after every SM
  // task has drained — no exception ever crosses the pool boundary, and the
  // partially-retired kernel object is discarded with the throw.
  if (options.cancel != nullptr) options.cancel->throw_if_cancelled();

  // Deterministic merge in SM order: integer sums and max() commute, so the
  // totals cannot depend on which host thread simulated which SM.
  KernelStats stats;
  stats.threads = total_threads;
  stats.sample_scale = sample_scale;
  double max_sm_cycles = 0;
  for (const SmOutcome& out_sm : outcomes) {
    stats.warps += out_sm.warps;
    stats.warp_steps += out_sm.warp_steps;
    stats.lane_loads += out_sm.lane_loads;
    stats.issue_cycles = std::max(stats.issue_cycles, out_sm.issue_cycles);
    stats.latency_cycles = std::max(stats.latency_cycles, out_sm.max_warp_cycles);
    stats.bandwidth_cycles =
        std::max(stats.bandwidth_cycles, out_sm.bandwidth_cycles);
    max_sm_cycles = std::max(
        max_sm_cycles, std::max({out_sm.issue_cycles, out_sm.max_warp_cycles,
                                 out_sm.bandwidth_cycles}));
  }

  stats.memory = memory.counters();
  stats.cycles = max_sm_cycles;
  stats.time_ms =
      max_sm_cycles / (config.clock_ghz * 1e6) + config.kernel_launch_overhead_ms;
  stats.warps = static_cast<std::uint64_t>(
      static_cast<double>(stats.warps) * sample_scale);
  return stats;
}

}  // namespace trico::simt
