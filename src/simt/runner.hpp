// Warp-lockstep kernel execution engine.
//
// A trico device kernel is a per-thread state machine: `State` is the
// thread's register file, `start` initializes it from the grid-stride thread
// id, and `step` advances the thread by one loop iteration, reporting its
// memory reads to a Sink. The runner executes warps in lockstep — every
// scheduling round, each live warp steps all of its lanes once — which is
// exactly the execution the paper's kernel experiences: a lane that misses
// the cache stalls its whole warp (the §III-D5 observation), and the lanes'
// per-step addresses are coalesced into line transactions before touching
// the memory hierarchy.
//
// Timing model (see DESIGN.md §6): per SM the runner tracks three bounds —
// issue throughput (sum of per-warp-step issue cycles), latency critical
// path (slowest single warp, since one warp's chain of stalls cannot be
// compressed), and DRAM bandwidth (bytes over the SM's bandwidth share) —
// and charges the max. Device time is the max over SMs. Warps on one SM
// interleave round-robin so the shared caches see a realistic access mix.
//
// Sampling: for large grids, SimOptions::sample_sms simulates only the first
// k SMs through the memory hierarchy (with the shared L2 shrunk to its k/N
// share) and runs the remaining SMs' threads functionally so results stay
// exact; times and counters are scaled by N/k.

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "simt/device.hpp"
#include "simt/launch.hpp"
#include "simt/memory_system.hpp"

namespace trico::simt {

/// Records the memory reads and extra ALU work of one lane step.
class TimedSink {
 public:
  static constexpr std::size_t kMaxAccesses = 8;

  struct Access {
    std::uint64_t addr;
    std::uint32_t bytes;
    bool readonly;
  };

  void read(std::uint64_t addr, std::uint32_t bytes, bool readonly) {
    if (count_ < kMaxAccesses) accesses_[count_++] = Access{addr, bytes, readonly};
  }
  void alu(std::uint32_t ops) { alu_ += ops; }

  void clear() {
    count_ = 0;
    alu_ = 0;
  }
  [[nodiscard]] std::span<const Access> accesses() const {
    return {accesses_.data(), count_};
  }
  [[nodiscard]] std::uint32_t alu_ops() const { return alu_; }

 private:
  std::array<Access, kMaxAccesses> accesses_{};
  std::size_t count_ = 0;
  std::uint32_t alu_ = 0;
};

/// Sink for functional-only execution (sampled-out SMs): all reporting is a
/// no-op the optimizer deletes.
struct NullSink {
  static void read(std::uint64_t, std::uint32_t, bool) {}
  static void alu(std::uint32_t) {}
};

/// Executes `kernel` on `device` and returns launch statistics. The kernel
/// object accumulates its own results via retire(state).
template <typename Kernel>
KernelStats launch_kernel(const Device& device, const LaunchConfig& launch,
                          Kernel& kernel, const SimOptions& options = {}) {
  const DeviceConfig& config = device.config();
  launch.validate(config);

  const std::uint32_t num_sms = config.num_sms;
  const std::uint32_t simulated_sms =
      options.sample_sms == 0 ? num_sms
                              : std::min(options.sample_sms, num_sms);
  const double sample_scale =
      static_cast<double>(num_sms) / static_cast<double>(simulated_sms);

  const std::uint32_t eff_warp = launch.effective_warp_size;
  const std::uint32_t threads_per_block = launch.threads_per_block;
  const std::uint32_t blocks = launch.blocks_per_sm * num_sms;
  const std::uint64_t total_threads =
      static_cast<std::uint64_t>(blocks) * threads_per_block;

  MemorySystem memory(config, simulated_sms,
                      static_cast<double>(simulated_sms) / num_sms);

  KernelStats stats;
  stats.threads = total_threads;
  stats.sample_scale = sample_scale;

  using State = typename Kernel::State;

  struct Warp {
    std::vector<State> lanes;
    std::vector<std::uint8_t> live;
    std::uint32_t live_count = 0;
    double serial_cycles = 0;
  };

  double max_sm_cycles = 0;
  const std::uint32_t line_bytes = config.l2.line_bytes;

  // Blocks are assigned to SMs round-robin (block b runs on SM b % num_sms),
  // so a sampled SM sees a uniform slice of the grid-stride work.
  for (std::uint32_t sm = 0; sm < num_sms; ++sm) {
    const bool timed = sm < simulated_sms;

    // Materialize this SM's warps.
    std::vector<Warp> warps;
    for (std::uint32_t block = sm; block < blocks; block += num_sms) {
      const std::uint64_t block_base =
          static_cast<std::uint64_t>(block) * threads_per_block;
      for (std::uint32_t lane0 = 0; lane0 < threads_per_block;
           lane0 += eff_warp) {
        Warp warp;
        const std::uint32_t lanes =
            std::min(eff_warp, threads_per_block - lane0);
        warp.lanes.resize(lanes);
        warp.live.assign(lanes, 1);
        warp.live_count = lanes;
        for (std::uint32_t l = 0; l < lanes; ++l) {
          kernel.start(warp.lanes[l], block_base + lane0 + l, total_threads);
        }
        warps.push_back(std::move(warp));
      }
    }
    if (timed) {
      stats.warps += warps.size();
    }

    if (!timed) {
      // Functional-only execution: results must be exact even for SMs that
      // are not simulated through the memory hierarchy.
      NullSink sink;
      for (Warp& warp : warps) {
        for (std::uint32_t l = 0; l < warp.lanes.size(); ++l) {
          while (kernel.step(warp.lanes[l], sink)) {
          }
          kernel.retire(warp.lanes[l]);
        }
      }
      continue;
    }

    double sm_issue_cycles = 0;
    double sm_max_warp_cycles = 0;
    const std::uint64_t dram_bytes_before = memory.counters().dram_bytes;

    // Round-robin scheduling: one lockstep step per live warp per round.
    std::vector<std::uint32_t> live_warps(warps.size());
    for (std::uint32_t w = 0; w < warps.size(); ++w) live_warps[w] = w;
    TimedSink sink;
    std::array<std::uint64_t, 2 * TimedSink::kMaxAccesses * 64> line_buf;

    while (!live_warps.empty()) {
      std::size_t out = 0;
      for (std::size_t idx = 0; idx < live_warps.size(); ++idx) {
        Warp& warp = warps[live_warps[idx]];
        std::size_t num_lines = 0;
        std::uint32_t alu_extra = 0;
        for (std::uint32_t l = 0; l < warp.lanes.size(); ++l) {
          if (!warp.live[l]) continue;
          sink.clear();
          const bool running = kernel.step(warp.lanes[l], sink);
          stats.lane_loads += sink.accesses().size();
          alu_extra = std::max(alu_extra, sink.alu_ops());
          for (const TimedSink::Access& access : sink.accesses()) {
            // A scalar access produces one transaction per touched line
            // (an unaligned 8-byte AoS read can straddle two lines).
            const std::uint64_t first = access.addr / line_bytes;
            const std::uint64_t last =
                (access.addr + access.bytes - 1) / line_bytes;
            for (std::uint64_t line = first; line <= last; ++line) {
              if (num_lines < line_buf.size()) {
                // Tag bit 0 with read-only eligibility to keep distinct
                // paths distinct during dedup.
                line_buf[num_lines++] =
                    (line << 1) | (access.readonly ? 1u : 0u);
              }
            }
          }
          if (!running) {
            warp.live[l] = 0;
            --warp.live_count;
            kernel.retire(warp.lanes[l]);
          }
        }
        ++stats.warp_steps;

        // Coalesce: unique lines only, like the hardware's per-warp coalescer.
        std::sort(line_buf.begin(), line_buf.begin() + num_lines);
        const auto end_it =
            std::unique(line_buf.begin(), line_buf.begin() + num_lines);
        const auto unique_lines =
            static_cast<std::uint32_t>(end_it - line_buf.begin());

        std::uint32_t max_latency = 0;
        std::uint32_t l2_trips = 0;
        for (std::uint32_t t = 0; t < unique_lines; ++t) {
          const std::uint64_t tagged = line_buf[t];
          const bool readonly = (tagged & 1u) != 0;
          const std::uint64_t addr = (tagged >> 1) * line_bytes;
          const bool cacheable =
              readonly || config.l1_caches_all_global_loads;
          const TransactionResult result = memory.access(sm, addr, cacheable);
          max_latency = std::max(max_latency, result.latency_cycles);
          l2_trips += result.l2_trip ? 1 : 0;
        }

        const double issue = config.issue_cycles_per_step + alu_extra +
                             config.issue_cycles_per_line * unique_lines +
                             config.issue_cycles_per_l2_trip * l2_trips;
        sm_issue_cycles += issue;
        // Memory-level parallelism inside one warp step: the lanes' loads
        // overlap, so the warp stalls for the slowest transaction only.
        warp.serial_cycles += issue + max_latency;

        if (warp.live_count > 0) live_warps[out++] = live_warps[idx];
      }
      live_warps.resize(out);
    }

    for (const Warp& warp : warps) {
      sm_max_warp_cycles = std::max(sm_max_warp_cycles, warp.serial_cycles);
    }
    const std::uint64_t sm_dram_bytes =
        memory.counters().dram_bytes - dram_bytes_before;
    const double sm_bw_cycles = static_cast<double>(sm_dram_bytes) /
                                config.dram_bytes_per_cycle_per_sm();

    stats.issue_cycles = std::max(stats.issue_cycles, sm_issue_cycles);
    stats.latency_cycles = std::max(stats.latency_cycles, sm_max_warp_cycles);
    stats.bandwidth_cycles = std::max(stats.bandwidth_cycles, sm_bw_cycles);
    max_sm_cycles = std::max(
        max_sm_cycles,
        std::max({sm_issue_cycles, sm_max_warp_cycles, sm_bw_cycles}));
  }

  stats.memory = memory.counters();
  stats.cycles = max_sm_cycles;
  stats.time_ms =
      max_sm_cycles / (config.clock_ghz * 1e6) + config.kernel_launch_overhead_ms;
  stats.warps = static_cast<std::uint64_t>(
      static_cast<double>(stats.warps) * sample_scale);
  return stats;
}

}  // namespace trico::simt
