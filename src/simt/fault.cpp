#include "simt/fault.hpp"

#include <algorithm>

namespace trico::simt {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceLost: return "device-lost";
    case FaultKind::kAllocFailure: return "alloc-failure";
    case FaultKind::kTransferCorruption: return "transfer-corruption";
    case FaultKind::kKernelAbort: return "kernel-abort";
  }
  return "unknown";
}

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kPreprocess: return "preprocess";
    case FaultSite::kAlloc: return "alloc";
    case FaultSite::kBroadcast: return "broadcast";
    case FaultSite::kKernel: return "kernel";
  }
  return "unknown";
}

const char* to_string(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kFullGpu: return "full-gpu";
    case DegradationRung::kCpuPreprocess: return "cpu-preprocess";
    case DegradationRung::kOutOfCore: return "out-of-core";
  }
  return "unknown";
}

DeviceFault::DeviceFault(FaultKind kind, FaultSite site, unsigned device,
                         const std::string& what, bool injected)
    : std::runtime_error(what),
      kind_(kind),
      site_(site),
      device_(device),
      injected_(injected) {}

FaultPlan& FaultPlan::inject(FaultSpec spec) {
  if (spec.occurrence == 0) spec.occurrence = 1;
  if (spec.repeats == 0) spec.repeats = 1;
  armed_.push_back(Armed{spec, 0});
  return *this;
}

std::optional<FaultKind> FaultPlan::probe(FaultSite site, unsigned device) {
  auto it = std::find_if(probes_.begin(), probes_.end(),
                         [&](const ProbeCount& p) {
                           return p.site == site && p.device == device;
                         });
  if (it == probes_.end()) {
    probes_.push_back(ProbeCount{site, device, 0});
    it = probes_.end() - 1;
  }
  const unsigned n = ++it->count;

  for (Armed& armed : armed_) {
    const FaultSpec& spec = armed.spec;
    if (spec.site != site || spec.device != device) continue;
    if (armed.fired >= spec.repeats) continue;
    if (n >= spec.occurrence && n < spec.occurrence + spec.repeats) {
      ++armed.fired;
      ++fired_;
      return spec.kind;
    }
  }
  return std::nullopt;
}

void FaultPlan::corrupt(std::span<std::byte> data) {
  if (data.empty()) return;
  const std::uint64_t pos = next_random() % data.size();
  // Flip at least one bit even if the random mask is zero.
  const auto mask =
      static_cast<std::byte>((next_random() & 0xff) | 0x01);
  data[pos] ^= mask;
}

unsigned FaultPlan::planned() const {
  unsigned total = 0;
  for (const Armed& armed : armed_) total += armed.spec.repeats;
  return total;
}

std::uint64_t FaultPlan::next_random() {
  // SplitMix64: deterministic for a given seed, no global state.
  std::uint64_t x = (rng_state_ += 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t RobustnessReport::injected_faults() const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [](const FaultEvent& e) { return e.injected; }));
}

std::size_t RobustnessReport::recovered_faults() const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [](const FaultEvent& e) { return e.recovered; }));
}

void RobustnessReport::merge(const RobustnessReport& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  devices_lost += other.devices_lost;
  preprocess_retries += other.preprocess_retries;
  broadcast_retries += other.broadcast_retries;
  kernel_retries += other.kernel_retries;
  alloc_failures += other.alloc_failures;
  slices_repartitioned += other.slices_repartitioned;
  retry_backoff_ms += other.retry_backoff_ms;
  degradation_rung = std::max(degradation_rung, other.degradation_rung);
}

std::uint64_t checksum_bytes(const void* data, std::size_t size,
                             std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;  // FNV-1a 64 prime
  }
  return hash;
}

}  // namespace trico::simt
