// Analytic cost model for the data-parallel preprocessing primitives and
// host<->device transfers.
//
// The paper's preprocessing phase (§III-B) is built from streaming Thrust
// primitives — radix sort, reduce, remove_if, gather — whose GPU execution
// time is bandwidth-bound: each primitive makes a small fixed number of
// sequential passes over its input. We therefore model each primitive as
// (passes x bytes) / (efficiency x peak bandwidth) + launch overhead, and
// run the actual computation on the host with trico::prim so the data is
// real. Kernel-level simulation is reserved for the counting phase, whose
// irregular accesses are the paper's actual subject.

#pragma once

#include <cstdint>
#include <utility>

#include "simt/device_config.hpp"

namespace trico::simt {

/// Streaming-primitive efficiency: fraction of peak DRAM bandwidth that
/// well-tuned streaming kernels sustain.
inline constexpr double kStreamEfficiency = 0.75;

/// Radix-sort working efficiency (scatter passes are not fully coalesced).
inline constexpr double kSortEfficiency = 0.5;

/// Cost model for one device. All results are milliseconds. Holds its own
/// copy of the config so a model may outlive the config it was built from
/// (a temporary argument must not dangle).
class CostModel {
 public:
  explicit CostModel(DeviceConfig config) : config_(std::move(config)) {}

  /// Host -> device (or device -> host) copy over PCIe.
  [[nodiscard]] double transfer_ms(std::uint64_t bytes) const {
    return config_.pcie_latency_ms +
           static_cast<double>(bytes) / (config_.pcie_bandwidth_gbps * 1e6);
  }

  /// Device -> device copy (multi-GPU broadcast); PCIe peer transfer.
  [[nodiscard]] double peer_transfer_ms(std::uint64_t bytes) const {
    return transfer_ms(bytes);
  }

  /// One streaming pass reading and/or writing `bytes` in total.
  [[nodiscard]] double stream_pass_ms(std::uint64_t bytes) const {
    return config_.kernel_launch_overhead_ms +
           static_cast<double>(bytes) /
               (kStreamEfficiency * config_.dram_bandwidth_gbps * 1e6);
  }

  /// thrust::reduce over `count` elements of `elem_bytes` (step 2).
  [[nodiscard]] double reduce_ms(std::uint64_t count, std::uint32_t elem_bytes) const {
    return stream_pass_ms(count * elem_bytes);
  }

  /// LSD radix sort of `count` keys of `key_bytes`, `significant_bytes`
  /// 8-bit digit passes, each reading + scattering the key array (step 3,
  /// the 64-bit-keys fast path of §III-D2).
  [[nodiscard]] double radix_sort_ms(std::uint64_t count, std::uint32_t key_bytes,
                                     std::uint32_t significant_bytes) const {
    const double bytes_per_pass = 2.0 * static_cast<double>(count) * key_bytes;
    return significant_bytes *
           (config_.kernel_launch_overhead_ms +
            bytes_per_pass / (kSortEfficiency * config_.dram_bandwidth_gbps * 1e6));
  }

  /// Comparison merge sort of `count` elements of `elem_bytes`: log2(count)
  /// read+write passes (the slow pair-sort baseline of §III-D2).
  [[nodiscard]] double merge_sort_ms(std::uint64_t count,
                                     std::uint32_t elem_bytes) const {
    double passes = 1.0;
    for (std::uint64_t c = count; c > 1; c >>= 1) ++passes;
    const double bytes_per_pass = 2.0 * static_cast<double>(count) * elem_bytes;
    return passes *
           (config_.kernel_launch_overhead_ms +
            bytes_per_pass / (kSortEfficiency * config_.dram_bandwidth_gbps * 1e6));
  }

  /// Node-array construction (step 4): read edges once, scattered writes to
  /// the node array.
  [[nodiscard]] double node_array_ms(std::uint64_t num_slots,
                                     std::uint64_t num_vertices) const {
    return stream_pass_ms(num_slots * 8 + num_vertices * 4);
  }

  /// Backward-edge marking (step 5): read slots, two degree lookups each,
  /// write one flag each.
  [[nodiscard]] double mark_backward_ms(std::uint64_t num_slots) const {
    return stream_pass_ms(num_slots * (8 + 8 + 1));
  }

  /// thrust::remove_if compaction (step 6): flag scan + gather.
  [[nodiscard]] double remove_if_ms(std::uint64_t num_slots) const {
    return stream_pass_ms(num_slots * (8 + 1)) + stream_pass_ms(num_slots * 8);
  }

  /// AoS -> SoA unzip (step 7): read pairs, write two planes (§III-D1: <30ms
  /// even for 200M-edge graphs).
  [[nodiscard]] double unzip_ms(std::uint64_t num_slots) const {
    return stream_pass_ms(num_slots * 16);
  }

  /// Final thrust::reduce over per-thread counters.
  [[nodiscard]] double result_reduce_ms(std::uint64_t num_threads) const {
    return stream_pass_ms(num_threads * 8);
  }

 private:
  DeviceConfig config_;
};

}  // namespace trico::simt
