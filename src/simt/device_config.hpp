// Simulated GPU device descriptions.
//
// The paper evaluates on three CUDA devices (Nvidia Tesla C2050, GeForce
// GTX 980, NVS 5200M). No GPU is available in this environment, so trico
// executes kernels on a software SIMT simulator (see DESIGN.md §2). A
// DeviceConfig captures the architectural parameters that the paper's
// optimizations interact with: SM count and clock (speedup scale), cache
// geometry (Table II hit rates, §III-D4 read-only-cache ablation), DRAM
// bandwidth and latency (Table II bandwidth, §III-D5 warp-stall argument),
// PCIe bandwidth (timing starts at the host-to-device copy), and memory
// capacity (§III-D6 CPU-preprocessing fallback for the † rows of Table I).
//
// Model-constant calibration: the per-step issue costs were fixed once so
// that the GTX 980 / CPU-baseline speedup lands in the paper's 15-35x band
// on the evaluation graphs, then held constant for every experiment.

#pragma once

#include <cstdint>
#include <string>

namespace trico::simt {

/// Replacement policy of a simulated cache. GPU caches are not true-LRU;
/// pseudo-random replacement avoids the LRU streaming cliff (a working set
/// slightly over capacity hitting ~0%) and matches the graceful degradation
/// profilers observe.
enum class Replacement : std::uint8_t { kLru, kRandom };

/// Geometry of one set-associative cache.
struct CacheGeometry {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 128;
  std::uint32_t ways = 8;
  Replacement replacement = Replacement::kRandom;
  /// Hash the set index (as real GPU L2s do) to avoid power-of-two stride
  /// aliasing; disable for tests that need a predictable line->set map.
  bool hash_sets = true;

  [[nodiscard]] std::uint64_t num_lines() const {
    return line_bytes ? size_bytes / line_bytes : 0;
  }
  [[nodiscard]] std::uint64_t num_sets() const {
    return ways ? num_lines() / ways : 0;
  }
};

/// Architectural description of a simulated device.
struct DeviceConfig {
  std::string name;

  // Execution resources.
  std::uint32_t num_sms = 16;
  std::uint32_t warp_size = 32;
  std::uint32_t max_threads_per_sm = 2048;
  std::uint32_t max_blocks_per_sm = 16;
  std::uint32_t max_threads_per_block = 1024;
  double clock_ghz = 1.0;

  // Memory system.
  double dram_bandwidth_gbps = 224.0;   ///< peak, GB/s
  std::uint32_t dram_latency_cycles = 440;
  CacheGeometry l2{2u << 20, 128, 16};  ///< device-wide L2
  std::uint32_t l2_latency_cycles = 220;
  /// Per-SM read-only / texture path. On Fermi the L1 caches *all* global
  /// loads; on Kepler/Maxwell only loads the compiler can prove read-only
  /// (const __restrict__) use this cache — which is the §III-D4 ablation.
  CacheGeometry sm_cache{24u << 10, 128, 8};
  std::uint32_t sm_cache_latency_cycles = 80;
  bool l1_caches_all_global_loads = false;  ///< true on Fermi-class devices

  // Host link and capacity.
  double pcie_bandwidth_gbps = 6.0;  ///< effective host<->device GB/s
  double pcie_latency_ms = 0.01;
  std::uint64_t memory_bytes = 4ull << 30;

  // Timing-model constants (per warp-step costs, in SM cycles).
  double issue_cycles_per_step = 5.0;     ///< ALU/control work per merge step
  double issue_cycles_per_line = 2.0;     ///< LSU cost per memory transaction
  /// Extra SM-side throughput cost of a transaction that has to travel to
  /// the (shared, lower-throughput) L2 — what the per-SM read-only cache
  /// saves (§III-D4).
  double issue_cycles_per_l2_trip = 2.0;
  double kernel_launch_overhead_ms = 0.004;

  /// Per-SM share of peak DRAM bandwidth, in bytes per SM cycle.
  [[nodiscard]] double dram_bytes_per_cycle_per_sm() const {
    return dram_bandwidth_gbps / clock_ghz / num_sms;
  }

  /// Matched-scale simulation: when an experiment replays a paper workload
  /// at 1/factor of its original size, the memory hierarchy must shrink by
  /// the same factor or cache hit rates are unrealistically inflated (a
  /// 2 MB L2 holds most of a 1M-edge stand-in for a 234M-edge graph).
  /// Returns a copy with cache capacities and device memory divided by
  /// `factor` (>= 1), clamped so every cache keeps at least one set.
  [[nodiscard]] DeviceConfig scaled_memory(double factor) const;

  // ---- Presets matching the paper's three devices ----

  /// Tesla C2050: Fermi, 14 SMs @ 1.15 GHz, 144 GB/s, 768 KB L2, 48 KB L1
  /// (caches all global loads), 3 GB.
  static DeviceConfig tesla_c2050();

  /// GeForce GTX 980: Maxwell, 16 SMs @ 1.126 GHz, 224 GB/s, 2 MB L2,
  /// 24 KB read-only tex cache per SM, 4 GB.
  static DeviceConfig gtx_980();

  /// NVS 5200M: Fermi mobile, 2 SMs @ 0.625 GHz, 14.4 GB/s, 256 KB L2, 1 GB.
  static DeviceConfig nvs_5200m();
};

}  // namespace trico::simt
