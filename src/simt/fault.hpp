// Fault injection and recovery accounting for the simulated GPU stack.
//
// A production triangle-counting service dies in exactly the places the
// happy-path simulator never exercises: a device drops mid-kernel, an
// allocation exceeds device memory, a §III-E broadcast arrives corrupted.
// A FaultPlan is a deterministic, seeded script of such faults. Code under
// test probes the plan at well-defined sites (preprocessing entry, device
// allocation, broadcast reception, kernel launch); when a planned fault
// matches the probe it fires exactly once per planned occurrence, and the
// recovery layer (multigpu repartitioning, the core degradation ladder)
// must restore an exact triangle count — which the tests cross-check
// against the CPU baseline.
//
// Every recovery action is accounted in a RobustnessReport carried on the
// result types, so tests can assert not just "the count is right" but
// "the count is right *because* the lost slice was repartitioned".

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace trico::simt {

/// What kind of failure strikes.
enum class FaultKind : std::uint8_t {
  kDeviceLost,          ///< device drops and stays gone (ECC shutdown, bus reset)
  kAllocFailure,        ///< a device allocation fails (OOM)
  kTransferCorruption,  ///< transferred bytes arrive corrupted
  kKernelAbort,         ///< transient kernel abort; the device survives
};

/// Where in the pipeline a fault can strike.
enum class FaultSite : std::uint8_t {
  kPreprocess,  ///< start of the preprocessing phase on a device
  kAlloc,       ///< a device-memory allocation (sort buffers, graph upload)
  kBroadcast,   ///< reception of the §III-E broadcast on a device
  kKernel,      ///< launch of the counting kernel
};

[[nodiscard]] const char* to_string(FaultKind kind);
[[nodiscard]] const char* to_string(FaultSite site);

/// Typed device failure. Thrown by fault probes and by the simulated
/// allocator; recovery layers catch it by type and consult kind()/site().
class DeviceFault : public std::runtime_error {
 public:
  DeviceFault(FaultKind kind, FaultSite site, unsigned device,
              const std::string& what, bool injected = true);

  [[nodiscard]] FaultKind kind() const { return kind_; }
  [[nodiscard]] FaultSite site() const { return site_; }
  [[nodiscard]] unsigned device() const { return device_; }
  /// True when the fault came from a FaultPlan, false when it is organic
  /// (e.g. a real simulated-device OOM).
  [[nodiscard]] bool injected() const { return injected_; }

 private:
  FaultKind kind_;
  FaultSite site_;
  unsigned device_;
  bool injected_;
};

/// One planned fault: fires when the `occurrence`-th probe of (site, device)
/// happens, and on the `repeats - 1` probes after it (repeats > 1 models a
/// persistent failure that defeats a bounded retry budget).
struct FaultSpec {
  FaultKind kind = FaultKind::kDeviceLost;
  FaultSite site = FaultSite::kKernel;
  unsigned device = 0;
  unsigned occurrence = 1;  ///< 1-based probe index at which the fault fires
  unsigned repeats = 1;     ///< consecutive probes that keep firing
};

/// A deterministic, seeded script of faults. Probing consumes occurrences,
/// so a plan instance describes exactly one run.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : rng_state_(seed ? seed : 1) {}

  /// Adds a planned fault; returns *this for chaining.
  FaultPlan& inject(FaultSpec spec);

  /// Called by instrumented code at each fault site. Counts the probe and
  /// returns the kind of the planned fault firing at it, if any.
  [[nodiscard]] std::optional<FaultKind> probe(FaultSite site, unsigned device);

  /// Flips one pseudo-random (seed-deterministic) byte of `data` — the
  /// injected transfer corruption the broadcast checksum must catch.
  void corrupt(std::span<std::byte> data);

  /// Total planned firings (sum of repeats) and how many have fired.
  [[nodiscard]] unsigned planned() const;
  [[nodiscard]] unsigned fired() const { return fired_; }
  /// True once every planned firing has been consumed.
  [[nodiscard]] bool exhausted() const { return fired() == planned(); }

 private:
  struct Armed {
    FaultSpec spec;
    unsigned fired = 0;
  };
  struct ProbeCount {
    FaultSite site;
    unsigned device;
    unsigned count;
  };

  std::uint64_t next_random();

  std::vector<Armed> armed_;
  std::vector<ProbeCount> probes_;
  unsigned fired_ = 0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
};

/// Bounded-retry policy with exponential backoff, accounted in modeled ms
/// (a real service sleeps between retries; the simulator charges that sleep
/// to the run's wall-clock model).
struct RetryPolicy {
  unsigned max_attempts = 3;     ///< total tries per operation (1 = no retry)
  double backoff_base_ms = 0.5;  ///< first retry waits this long, then doubles

  [[nodiscard]] double backoff_ms(unsigned retry_index) const {
    return backoff_base_ms *
           static_cast<double>(1ull << (retry_index < 20 ? retry_index : 20));
  }
};

/// One fault that actually struck during a run.
struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceLost;
  FaultSite site = FaultSite::kKernel;
  unsigned device = 0;
  unsigned attempt = 1;    ///< which attempt of the operation it struck
  bool recovered = false;  ///< the run compensated (retry / failover / ladder)
  bool injected = true;    ///< planned (FaultPlan) vs organic (real OOM)
};

/// Rung of the core degradation ladder a run ended on.
enum class DegradationRung : std::uint8_t {
  kFullGpu = 0,        ///< standard all-GPU pipeline (§III-B)
  kCpuPreprocess = 1,  ///< §III-D6 CPU-preprocessing fallback
  kOutOfCore = 2,      ///< color-triple partitioned counting (outofcore)
};

[[nodiscard]] const char* to_string(DegradationRung rung);

/// Recovery accounting carried on GpuCountResult / MultiGpuResult.
struct RobustnessReport {
  std::vector<FaultEvent> events;  ///< faults that struck, in firing order

  unsigned devices_lost = 0;       ///< devices permanently dropped
  unsigned preprocess_retries = 0; ///< preprocessing moved to another device
  unsigned broadcast_retries = 0;  ///< checksum-failed broadcasts re-sent
  unsigned kernel_retries = 0;     ///< transient kernel aborts retried
  unsigned alloc_failures = 0;     ///< allocation failures absorbed
  unsigned slices_repartitioned = 0;  ///< lost edge slices re-dealt to survivors
  double retry_backoff_ms = 0;     ///< modeled backoff wait, summed
  DegradationRung degradation_rung = DegradationRung::kFullGpu;

  [[nodiscard]] std::size_t injected_faults() const;
  [[nodiscard]] std::size_t recovered_faults() const;
  /// Every fault that struck was compensated.
  [[nodiscard]] bool fully_recovered() const {
    return recovered_faults() == events.size();
  }
  /// Folds `other`'s events and counters into this report (ladder rungs and
  /// nested counters merge their sub-reports upward).
  void merge(const RobustnessReport& other);
};

/// FNV-1a 64-bit checksum; `seed` chains checksums across several arrays
/// (pass the previous checksum as the next call's seed).
inline constexpr std::uint64_t kChecksumSeed = 0xcbf29ce484222325ull;
[[nodiscard]] std::uint64_t checksum_bytes(const void* data, std::size_t size,
                                           std::uint64_t seed = kChecksumSeed);

template <typename T>
[[nodiscard]] std::uint64_t checksum_span(std::span<const T> data,
                                          std::uint64_t seed = kChecksumSeed) {
  return checksum_bytes(data.data(), data.size() * sizeof(T), seed);
}

}  // namespace trico::simt
