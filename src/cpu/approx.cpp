#include "cpu/approx.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "cpu/counting.hpp"
#include "gen/rng.hpp"
#include "graph/csr.hpp"

namespace trico::cpu {

ApproxResult count_doulion(const EdgeList& edges, double p,
                           std::uint64_t seed) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("count_doulion: p must be in (0, 1]");
  }
  gen::Rng rng(gen::splitmix64(seed ^ 0xD0071101ull));
  std::vector<Edge> kept_pairs;
  for (const Edge& e : edges.edges()) {
    if (e.u < e.v && rng.bernoulli(p)) kept_pairs.push_back(e);
  }
  const EdgeList sample =
      EdgeList::from_undirected_pairs(kept_pairs, edges.num_vertices());
  ApproxResult result;
  result.work_items = sample.num_edges();
  result.estimate =
      static_cast<double>(count_forward(sample)) / (p * p * p);
  return result;
}

ApproxResult count_wedge_sampling(const EdgeList& edges,
                                  std::uint64_t samples, std::uint64_t seed) {
  const Csr adjacency = Csr::from_edge_list(edges);
  const VertexId n = adjacency.num_vertices();

  // Cumulative wedge weights: vertex v centers C(deg(v), 2) wedges.
  std::vector<double> cumulative(n + 1, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const auto d = static_cast<double>(adjacency.degree(v));
    cumulative[v + 1] = cumulative[v] + d * (d - 1.0) / 2.0;
  }
  const double total_wedges = cumulative[n];
  ApproxResult result;
  result.work_items = samples;
  if (total_wedges == 0.0 || samples == 0) return result;

  gen::Rng rng(gen::splitmix64(seed ^ 0x3ED6Eull));
  std::uint64_t closed = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    // Pick the wedge center proportionally to its wedge count.
    const double target = rng.next_double() * total_wedges;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), target);
    const VertexId center =
        static_cast<VertexId>(std::distance(cumulative.begin(), it) - 1);
    const auto nbrs = adjacency.neighbors(center);
    // Pick two distinct neighbours.
    const std::uint64_t i = rng.next_below(nbrs.size());
    std::uint64_t j = rng.next_below(nbrs.size() - 1);
    if (j >= i) ++j;
    const VertexId a = nbrs[i], b = nbrs[j];
    const auto adj_a = adjacency.neighbors(a);
    if (std::binary_search(adj_a.begin(), adj_a.end(), b)) ++closed;
  }
  const double closure =
      static_cast<double>(closed) / static_cast<double>(samples);
  result.estimate = closure * total_wedges / 3.0;
  return result;
}

}  // namespace trico::cpu
