// Sequential (and multicore) CPU triangle-counting algorithms.
//
// `count_forward` is the paper's CPU baseline (§IV): the forward algorithm of
// Schank & Wagner as simplified by Latapy — degree-orient the edges, sort the
// oriented adjacency lists, and intersect the endpoint lists of every
// oriented edge with a two-pointer merge. The other algorithms are the
// comparison points of §II-A (node-iterator, edge-iterator, compact-forward)
// plus hashed and binary-search intersection variants used by the ablation
// benches, and a multicore forward used by the §V related-work comparison.
//
// Every function returns the exact number of triangles (3-cycles) in the
// input undirected graph and requires a canonical edge array (see EdgeList).

#pragma once

#include <vector>

#include "cpu/hybrid_engine.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"

namespace trico::cpu {

/// node-iterator (§II-A): for every vertex, test every neighbour pair for
/// adjacency. O(sum_v deg(v)^2) — the classic baseline that degrades badly
/// on skewed degree distributions.
[[nodiscard]] TriangleCount count_node_iterator(const EdgeList& edges);

/// edge-iterator (Schank-Wagner, §II-A): for every undirected edge,
/// intersect the full (unoriented) neighbour lists. O(m * degmax).
[[nodiscard]] TriangleCount count_edge_iterator(const EdgeList& edges);

/// forward (the paper's baseline): degree orientation + per-edge two-pointer
/// merge over oriented lists. O(m * sqrt(m)).
[[nodiscard]] TriangleCount count_forward(const EdgeList& edges);

/// Counting phase of forward only, given an already-oriented CSR whose lists
/// are sorted ascending. Exposed so the GPU pipeline tests can compare
/// phase-for-phase.
[[nodiscard]] TriangleCount count_forward_counting_phase(const Csr& oriented);

/// compact-forward (Latapy 2008): renumber vertices by decreasing degree and
/// intersect rank-truncated lists. Same asymptotics as forward with lower
/// constants and memory.
[[nodiscard]] TriangleCount count_compact_forward(const EdgeList& edges);

/// forward with a stamp-array ("hashed") intersection instead of the merge:
/// for each source vertex mark its oriented neighbourhood once, then probe.
[[nodiscard]] TriangleCount count_forward_hashed(const EdgeList& edges);

/// forward with binary-search intersection (searches the shorter list's
/// elements in the longer list) — the strategy of Green et al. [15], used by
/// the intersection-strategy ablation.
[[nodiscard]] TriangleCount count_forward_binary_search(const EdgeList& edges);

/// Multicore forward (§V): the full pipeline on a thread pool, parallel end
/// to end — preprocessing (degrees, orientation filter, relabeling, sort,
/// CSR build) runs on the deterministic prim primitives and the counting
/// phase uses the adaptive hybrid intersection engine with chunked dynamic
/// scheduling (see cpu/hybrid_engine.hpp). Pass `breakdown` to receive the
/// per-stage PreprocessTimings and counting stats the §IV Amdahl-fraction
/// analysis needs.
[[nodiscard]] TriangleCount count_forward_multicore(const EdgeList& edges,
                                                    prim::ThreadPool& pool,
                                                    EngineResult* breakdown = nullptr);

/// §III-A input-format study: a solver whose input is *already* an adjacency
/// structure (sorted CSR), letting it skip the edge sort. Pair it with
/// count_forward (edge-array input) to reproduce the ~2 s gap the paper
/// reports for LiveJournal.
[[nodiscard]] TriangleCount count_forward_from_adjacency(const Csr& adjacency);

/// Per-vertex triangle counts (delta(v) in the clustering-coefficient
/// definition): result[v] = number of triangles containing v. Sum equals
/// 3 * count_forward(edges).
[[nodiscard]] std::vector<TriangleCount> per_vertex_triangles(const EdgeList& edges);

}  // namespace trico::cpu
