#include "cpu/hybrid.hpp"

#include <bit>
#include <cstdint>
#include <vector>

#include "cpu/hybrid_engine.hpp"
#include "graph/csr.hpp"
#include "graph/orientation.hpp"
#include "prim/algorithms.hpp"

namespace trico::cpu {

namespace {

/// Row-major adjacency bitset over a compact vertex set.
class BitMatrix {
 public:
  explicit BitMatrix(std::size_t n)
      : n_(n), words_((n + 63) / 64), bits_(n * words_, 0) {}

  void set(std::size_t r, std::size_t c) {
    bits_[r * words_ + c / 64] |= std::uint64_t{1} << (c % 64);
  }

  /// popcount(row(a) & row(b) & { columns > c_min }).
  [[nodiscard]] std::uint64_t and_popcount_above(std::size_t a, std::size_t b,
                                                 std::size_t c_min) const {
    const std::uint64_t* ra = bits_.data() + a * words_;
    const std::uint64_t* rb = bits_.data() + b * words_;
    std::uint64_t count = 0;
    const std::size_t first_word = (c_min + 1) / 64;
    for (std::size_t w = first_word; w < words_; ++w) {
      std::uint64_t word = ra[w] & rb[w];
      if (w == first_word) {
        const std::size_t low_bit = (c_min + 1) % 64;
        if (low_bit) word &= ~std::uint64_t{0} << low_bit;
      }
      count += static_cast<std::uint64_t>(std::popcount(word));
    }
    return count;
  }

 private:
  std::size_t n_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

TriangleCount dense_count(const std::vector<Edge>& pairs, std::size_t n,
                          prim::ThreadPool* pool = nullptr) {
  // pairs hold compact ids with u < v.
  BitMatrix adjacency(n);
  for (const Edge& e : pairs) {
    adjacency.set(e.u, e.v);
    adjacency.set(e.v, e.u);
  }
  // Common neighbours w with w > v close triangle u < v < w exactly once.
  if (pool == nullptr) {
    TriangleCount total = 0;
    for (const Edge& e : pairs) {
      total += adjacency.and_popcount_above(e.u, e.v, e.v);
    }
    return total;
  }
  return prim::transform_reduce_dynamic<TriangleCount>(
      *pool, pairs.size(), 0, TriangleCount{0}, [&](std::size_t i) {
        const Edge& e = pairs[i];
        return adjacency.and_popcount_above(e.u, e.v, e.v);
      });
}

}  // namespace

TriangleCount count_dense_bitset(const EdgeList& edges) {
  std::vector<Edge> pairs;
  pairs.reserve(edges.num_edges());
  for (const Edge& e : edges.edges()) {
    if (e.u < e.v) pairs.push_back(e);
  }
  return dense_count(pairs, edges.num_vertices());
}

TriangleCount count_hybrid(const EdgeList& edges, EdgeIndex degree_threshold) {
  const std::vector<EdgeIndex> degree = edges.degrees();
  const VertexId n = edges.num_vertices();

  const auto is_high = [&](VertexId v) { return degree[v] > degree_threshold; };

  // Part 1: triangles whose ≺-smallest corner has low degree — the forward
  // merge restricted to oriented edges with a low-degree source. (In the
  // degree order, the ≺-smallest corner of any triangle is its minimum-
  // degree vertex, so a triangle is handled here iff that corner is low.)
  const Csr oriented = oriented_csr(edges);
  TriangleCount total = 0;
  for (VertexId u = 0; u < n; ++u) {
    if (is_high(u)) continue;
    const auto adj_u = oriented.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = oriented.neighbors(v);
      std::size_t i = 0, j = 0;
      while (i < adj_u.size() && j < adj_v.size()) {
        if (adj_u[i] < adj_v[j]) {
          ++i;
        } else if (adj_u[i] > adj_v[j]) {
          ++j;
        } else {
          ++total;
          ++i;
          ++j;
        }
      }
    }
  }

  // Part 2: triangles entirely inside the high-degree core, counted with
  // dense bitset rows over the compacted induced subgraph.
  std::vector<VertexId> compact_id(n, kInvalidVertex);
  VertexId core_size = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (is_high(v)) compact_id[v] = core_size++;
  }
  if (core_size >= 3) {
    std::vector<Edge> core_pairs;
    for (const Edge& e : edges.edges()) {
      if (e.u < e.v && is_high(e.u) && is_high(e.v)) {
        core_pairs.push_back(Edge{compact_id[e.u], compact_id[e.v]});
      }
    }
    total += dense_count(core_pairs, core_size);
  }
  return total;
}

TriangleCount count_hybrid(const EdgeList& edges, EdgeIndex degree_threshold,
                           prim::ThreadPool& pool) {
  const VertexId n = edges.num_vertices();
  const std::vector<EdgeIndex> degree =
      parallel_degrees(edges.edges(), n, pool);
  const auto is_high = [&](VertexId v) { return degree[v] > degree_threshold; };

  // The engine's parallel preprocessing with relabeling off reproduces
  // oriented_csr(edges) bit for bit, so part 1 can keep indexing by the
  // original vertex ids.
  EngineOptions options;
  options.relabel_by_degree = false;
  options.bitmap_threshold = 0;  // part 1 is merge-only; skip bitmap packing
  const PreparedGraph prepared = prepare(edges, pool, options);
  const Csr& oriented = prepared.oriented;

  // Part 1: triangles rooted at low-degree vertices, dynamically chunked so
  // the skewed per-vertex work rebalances across workers.
  TriangleCount total = prim::transform_reduce_dynamic<TriangleCount>(
      pool, n, 0, TriangleCount{0}, [&](std::size_t ui) {
        const VertexId u = static_cast<VertexId>(ui);
        if (is_high(u)) return TriangleCount{0};
        TriangleCount acc = 0;
        const auto adj_u = oriented.neighbors(u);
        for (VertexId v : adj_u) {
          const auto adj_v = oriented.neighbors(v);
          std::size_t i = 0, j = 0;
          while (i < adj_u.size() && j < adj_v.size()) {
            if (adj_u[i] < adj_v[j]) {
              ++i;
            } else if (adj_u[i] > adj_v[j]) {
              ++j;
            } else {
              ++acc;
              ++i;
              ++j;
            }
          }
        }
        return acc;
      });

  // Part 2: the high-degree core, densely. The induced core is small by
  // construction, so only the probe loop is worth parallelizing.
  std::vector<VertexId> compact_id(n, kInvalidVertex);
  VertexId core_size = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (is_high(v)) compact_id[v] = core_size++;
  }
  if (core_size >= 3) {
    std::vector<Edge> core_pairs;
    for (const Edge& e : edges.edges()) {
      if (e.u < e.v && is_high(e.u) && is_high(e.v)) {
        core_pairs.push_back(Edge{compact_id[e.u], compact_id[e.v]});
      }
    }
    total += dense_count(core_pairs, core_size, &pool);
  }
  return total;
}

}  // namespace trico::cpu
