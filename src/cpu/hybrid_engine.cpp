#include "cpu/hybrid_engine.hpp"

#include <algorithm>
#include <atomic>

#include "cpu/simd/intersect.hpp"
#include "graph/orientation.hpp"
#include "prim/algorithms.hpp"
#include "prim/radix_sort.hpp"
#include "util/timer.hpp"

// The intersection inner loops live in src/cpu/simd/ behind a runtime
// dispatch table (scalar / SSE4.2 / AVX2, selected once per counting run).
// Everything in this file — per-edge strategy choice included — is
// ISA-independent, which is what keeps triangle counts AND CountingStats
// bit-identical across tiers.

namespace trico::cpu {

std::vector<EdgeIndex> parallel_degrees(std::span<const Edge> slots,
                                        VertexId num_vertices,
                                        prim::ThreadPool& pool) {
  const std::size_t n = num_vertices;
  const std::size_t nw = pool.num_threads();
  std::vector<std::vector<EdgeIndex>> local(nw);
  const std::size_t chunk = (slots.size() + nw - 1) / nw;
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    auto& bins = local[w];
    bins.assign(n, 0);
    const std::size_t lo = std::min(slots.size(), w * chunk);
    const std::size_t hi = std::min(slots.size(), lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) ++bins[slots[i].u];
  });
  std::vector<EdgeIndex> degree(n, 0);
  prim::parallel_for(pool, 0, n, [&](std::size_t v) {
    EdgeIndex d = 0;
    for (const auto& bins : local) d += bins[v];
    degree[v] = d;
  });
  return degree;
}

PreparedGraph prepare(const EdgeList& edges, prim::ThreadPool& pool,
                      const EngineOptions& options) {
  PreparedGraph out;
  out.options = options;
  const VertexId n = edges.num_vertices();
  util::Timer timer;

  // Stage 1: per-vertex degrees (parallel histogram).
  const std::vector<EdgeIndex> degree =
      parallel_degrees(edges.edges(), n, pool);
  out.timings.degrees_ms = timer.elapsed_ms();

  // Stage 2: orientation filter — flag backward slots against the shared
  // predicate, then stable-compact. Stability makes the kept order (and
  // therefore everything downstream) independent of the thread count.
  timer.reset();
  const auto slots = edges.edges();
  std::vector<std::uint8_t> backward(slots.size());
  prim::parallel_for(pool, 0, slots.size(), [&](std::size_t i) {
    backward[i] = is_backward_edge(degree, slots[i].u, slots[i].v);
  });
  std::vector<Edge> kept = prim::remove_if_flagged<Edge>(pool, slots, backward);
  out.timings.orient_ms = timer.elapsed_ms();

  // Stage 3: degree-descending relabeling. Key = (~degree, ~id) packed into
  // 64 bits; the ascending radix sort then yields rank 0 = highest degree,
  // ties by id DESCENDING. That is exactly the reverse of the orientation
  // order ≺ (degree ascending, ties by id ascending), so u ≺ v iff
  // rank(u) > rank(v): in the new id space every oriented edge points from a
  // larger id to a smaller one and adjacency lists cover the compact prefix
  // [0, u) — including tie-broken edges between equal-degree vertices.
  timer.reset();
  if (options.relabel_by_degree && n > 0) {
    std::vector<std::uint64_t> keys(n);
    prim::parallel_for(pool, 0, n, [&](std::size_t v) {
      const std::uint64_t inv =
          0xffffffffull - static_cast<std::uint32_t>(degree[v]);
      keys[v] = (inv << 32) | (0xffffffffull - v);
    });
    prim::radix_sort_u64(pool, keys);
    out.new_to_old.resize(n);
    std::vector<VertexId> rank(n);
    prim::parallel_for(pool, 0, n, [&](std::size_t r) {
      const VertexId old_id =
          static_cast<VertexId>(0xffffffffu - (keys[r] & 0xffffffffu));
      out.new_to_old[r] = old_id;
      rank[old_id] = static_cast<VertexId>(r);
    });
    prim::parallel_for(pool, 0, kept.size(), [&](std::size_t i) {
      kept[i] = Edge{rank[kept[i].u], rank[kept[i].v]};
    });
  }
  out.timings.relabel_ms = timer.elapsed_ms();

  // Stage 4: sort oriented slots by (u, v) — parallel radix on packed keys.
  timer.reset();
  prim::sort_edges_as_u64(pool, kept);
  out.timings.sort_ms = timer.elapsed_ms();

  // Stage 5: CSR build — histogram + exclusive scan for the offsets, direct
  // placement for the (already sorted) neighbor array.
  timer.reset();
  std::vector<VertexId> src(kept.size());
  std::vector<VertexId> dst(kept.size());
  prim::parallel_for(pool, 0, kept.size(), [&](std::size_t i) {
    src[i] = kept[i].u;
    dst[i] = kept[i].v;
  });
  const std::vector<std::uint64_t> counts = prim::histogram(pool, src, n);
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  prim::exclusive_scan<EdgeIndex>(pool, counts,
                                  std::span<EdgeIndex>(offsets.data(), n));
  offsets[n] = kept.size();
  out.oriented = Csr(std::move(offsets), std::move(dst));
  out.timings.csr_ms = timer.elapsed_ms();

  // Stage 6: bitmap rows for hot vertices. Row domains are truncated at the
  // owning vertex when relabeling is on (all neighbors have smaller ids), so
  // the hottest vertices get the shortest rows. Rows are granted in id order
  // until the word budget runs out — deterministic regardless of threads.
  timer.reset();
  if (options.strategy == IntersectStrategy::kAdaptive &&
      options.bitmap_threshold > 0 && n > 0) {
    auto& bm = out.bitmaps;
    bm.rows.assign(n, BitmapIndex::kNoRow);
    bm.offsets.push_back(0);
    std::vector<VertexId> row_vertex;
    std::uint64_t used = 0;
    for (VertexId u = 0; u < n; ++u) {
      if (out.oriented.degree(u) <= options.bitmap_threshold) continue;
      const std::uint64_t domain =
          options.relabel_by_degree ? u : static_cast<std::uint64_t>(n);
      const std::uint64_t words = (domain + 63) / 64;
      if (words == 0 || used + words > options.bitmap_word_budget) continue;
      used += words;
      bm.rows[u] = static_cast<std::uint32_t>(row_vertex.size());
      row_vertex.push_back(u);
      bm.offsets.push_back(used);
    }
    bm.words.assign(used, 0);
    prim::parallel_for_dynamic(pool, 0, row_vertex.size(), 1, [&](std::size_t r) {
      const VertexId u = row_vertex[r];
      const std::uint64_t base = bm.offsets[r];
      for (VertexId w : out.oriented.neighbors(u)) {
        bm.words[base + (w >> 6)] |= std::uint64_t{1} << (w & 63);
      }
    });
  }
  out.timings.bitmap_ms = timer.elapsed_ms();
  return out;
}

std::uint64_t PreparedGraph::byte_size() const {
  return oriented.offsets().size() * sizeof(EdgeIndex) +
         oriented.neighbor_array().size() * sizeof(VertexId) +
         new_to_old.size() * sizeof(VertexId) +
         bitmaps.rows.size() * sizeof(std::uint32_t) +
         bitmaps.offsets.size() * sizeof(std::uint64_t) +
         bitmaps.words.size() * sizeof(std::uint64_t);
}

PreparedGraphView PreparedGraph::view() const {
  PreparedGraphView v;
  v.offsets = oriented.offsets();
  v.neighbors = oriented.neighbor_array();
  v.new_to_old = new_to_old;
  v.bitmap_rows = bitmaps.rows;
  v.bitmap_offsets = bitmaps.offsets;
  v.bitmap_words = bitmaps.words;
  v.options = options;
  return v;
}

TriangleCount count_prepared(const PreparedGraph& graph,
                             prim::ThreadPool& pool, CountingStats* stats,
                             const util::CancelToken* cancel) {
  return count_prepared(graph.view(), pool, stats, cancel);
}

TriangleCount count_prepared(const PreparedGraphView& graph,
                             prim::ThreadPool& pool, CountingStats* stats,
                             const util::CancelToken* cancel) {
  return count_prepared_range(graph, pool, 0, graph.num_vertices(), stats,
                              cancel);
}

ShardRange shard_rows(const PreparedGraphView& graph, std::uint32_t index,
                      std::uint32_t count) {
  ShardRange range;
  if (count == 0 || index >= count) return range;
  const VertexId n = graph.num_vertices();
  const EdgeIndex m = graph.num_edges();
  if (n == 0) return range;
  // Ideal edge boundaries m*i/count and m*(i+1)/count, snapped to the first
  // row whose offset reaches them. lower_bound over the monotone offsets
  // array keeps the tiling property: shard i's row_end is shard i+1's
  // row_begin by construction, shard 0 starts at row 0, shard count-1 ends
  // at row n.
  const auto snap = [&](std::uint64_t target_edges) -> VertexId {
    const auto it = std::lower_bound(graph.offsets.begin(),
                                     graph.offsets.end() - 1,
                                     static_cast<EdgeIndex>(target_edges));
    return static_cast<VertexId>(it - graph.offsets.begin());
  };
  const std::uint64_t m64 = m;
  range.row_begin = index == 0 ? 0 : snap(m64 * index / count);
  range.row_end = index + 1 == count ? n : snap(m64 * (index + 1) / count);
  range.edge_begin = graph.offsets[range.row_begin];
  range.edge_end = graph.offsets[range.row_end];
  return range;
}

TriangleCount count_prepared_range(const PreparedGraphView& graph,
                                   prim::ThreadPool& pool, VertexId row_begin,
                                   VertexId row_end, CountingStats* stats,
                                   const util::CancelToken* cancel) {
  const EngineOptions& options = graph.options;
  const VertexId n = graph.num_vertices();
  const std::size_t nw = pool.num_threads();
  row_end = std::min(row_end, n);
  row_begin = std::min(row_begin, row_end);
  // Resolve the kernel table once per run: env override, then the requested
  // tier clamped down to what the host supports. Hot loops call through
  // plain function pointers — selection never sits on the per-edge path.
  const simd::IntersectKernels& kern = simd::select_kernels(options.isa);
  util::Timer timer;

  struct alignas(64) WorkerAcc {
    TriangleCount triangles = 0;
    CountingStats stats;
    /// Scratch bitmap row over [0, n): marked with adj(u) for hot sources
    /// whose precomputed row fell past the word budget, cleared after each
    /// source. n/8 bytes per worker.
    std::vector<std::uint64_t> scratch;
  };
  std::vector<WorkerAcc> acc(nw);

  const std::size_t chunk =
      options.counting_chunk > 0
          ? options.counting_chunk
          : prim::dynamic_chunk(row_end - row_begin, nw);
  prim::parallel_chunks_dynamic(
      pool, row_begin, row_end, chunk,
      [&](std::size_t w, std::size_t lo, std::size_t hi) {
        // Cancellation poll at chunk granularity: remaining chunks drain as
        // no-ops and the throw happens below on the calling thread.
        if (cancel != nullptr && cancel->cancelled()) return;
        WorkerAcc& a = acc[w];
        for (VertexId u = static_cast<VertexId>(lo); u < hi; ++u) {
          const auto adj_u = graph.neighbors_of(u);
          if (adj_u.empty()) continue;
          // Hoist u's bitmap row once per source. Probes of adj(v) against
          // it never need a bounds check: with relabeling on, every probed
          // id is < v < u (inside the row's truncated domain); with it off
          // the domain is all of [0, n).
          const std::uint64_t* row_u = nullptr;
          std::uint64_t row_u_words = 0;
          bool scratch_row = false;
          if (options.strategy == IntersectStrategy::kAdaptive) {
            const std::uint32_t r = graph.row_of(u);
            if (r != BitmapIndex::kNoRow) {
              row_u = graph.bitmap_words.data() + graph.bitmap_offsets[r];
              row_u_words = graph.bitmap_offsets[r + 1] - graph.bitmap_offsets[r];
            } else if (options.bitmap_threshold > 0 &&
                       adj_u.size() > options.bitmap_threshold) {
              // Hot source past the precomputed-row budget: mark adj(u) in
              // the worker's scratch row (cost 2 writes per edge, amortized)
              // and probe against that instead.
              if (a.scratch.empty()) a.scratch.assign((n + 63) / 64, 0);
              kern.scratch_mark(a.scratch.data(), adj_u);
              row_u = a.scratch.data();
              row_u_words = a.scratch.size();
              scratch_row = true;
            }
          }
          if (row_u != nullptr) {
            // Specialized hot-source loop: no per-edge dispatch, just one
            // skew compare (limit hoisted per source) and the probe loop.
            // The scattered adj(v) fetches are the latency bottleneck, so
            // prefetch the next edge's list (and the offsets two ahead that
            // locate the one after it) while probing the current one.
            const double skew_limit =
                options.skew_threshold * static_cast<double>(adj_u.size());
            const EdgeIndex* offs = graph.offsets.data();
            const VertexId* nbrs = graph.neighbors.data();
            for (std::size_t i = 0; i < adj_u.size(); ++i) {
              if (i + 2 < adj_u.size()) __builtin_prefetch(offs + adj_u[i + 2]);
              if (i + 1 < adj_u.size()) {
                __builtin_prefetch(nbrs + offs[adj_u[i + 1]]);
              }
              const VertexId v = adj_u[i];
              const auto adj_v = graph.neighbors_of(v);
              if (static_cast<double>(adj_v.size()) <= skew_limit) {
                // When v also owns a precomputed row that is denser than its
                // list, intersect the two rows wholesale: AND + popcount over
                // v's words. Exact because v's row domain bounds every common
                // neighbor (all of adj(v) lives below it) and u's row covers
                // at least that domain — with relabeling, v < u implies
                // words_v <= words_u; the gate checks it outright so the
                // claim never rests on configuration. The gate reads only
                // sizes, so the choice is identical at every ISA tier.
                const std::uint32_t rv = graph.row_of(v);
                if (rv != BitmapIndex::kNoRow) {
                  const std::uint64_t words_v =
                      graph.bitmap_offsets[rv + 1] - graph.bitmap_offsets[rv];
                  if (words_v <= adj_v.size() && words_v <= row_u_words) {
                    a.triangles += kern.bitmap_and_popcount(
                        row_u, graph.bitmap_words.data() + graph.bitmap_offsets[rv],
                        words_v);
                  } else {
                    a.triangles += kern.bitmap_probe(row_u, adj_v);
                  }
                } else {
                  a.triangles += kern.bitmap_probe(row_u, adj_v);
                }
                ++a.stats.bitmap_edges;
              } else {
                // v's list dwarfs u's: galloping u's elements into it beats
                // probing every element of the long list.
                a.triangles += kern.gallop(adj_u, adj_v);
                ++a.stats.gallop_edges;
              }
            }
            if (scratch_row) kern.scratch_clear(a.scratch.data(), adj_u);
            continue;
          }
          for (VertexId v : adj_u) {
            const auto adj_v = graph.neighbors_of(v);
            const bool u_longer = adj_u.size() >= adj_v.size();
            const auto shorter = u_longer ? adj_v : adj_u;
            const auto longer = u_longer ? adj_u : adj_v;
            switch (options.strategy) {
              case IntersectStrategy::kMergeOnly:
                a.triangles += kern.merge(adj_u, adj_v);
                ++a.stats.merge_edges;
                break;
              case IntersectStrategy::kGallopOnly:
                a.triangles += kern.gallop(shorter, longer);
                ++a.stats.gallop_edges;
                break;
              case IntersectStrategy::kAdaptive: {
                // u has no row here (hot sources took the specialized loop
                // above); v still might — probing it costs one cheap step
                // per element of adj(u), worth it unless adj(u) is the long
                // side of a heavily skewed pair, where galloping the short
                // side wins.
                const bool skewed =
                    static_cast<double>(longer.size()) >
                    options.skew_threshold *
                        static_cast<double>(shorter.size());
                if (const std::uint32_t rv = graph.row_of(v);
                    rv != BitmapIndex::kNoRow && !(skewed && u_longer)) {
                  a.triangles += kern.bitmap_probe_checked(
                      graph.bitmap_words.data() + graph.bitmap_offsets[rv],
                      graph.bitmap_offsets[rv + 1] - graph.bitmap_offsets[rv], adj_u);
                  ++a.stats.bitmap_edges;
                } else if (skewed) {
                  a.triangles += kern.gallop(shorter, longer);
                  ++a.stats.gallop_edges;
                } else {
                  a.triangles += kern.merge(adj_u, adj_v);
                  ++a.stats.merge_edges;
                }
                break;
              }
            }
          }
        }
      });

  if (cancel != nullptr) cancel->throw_if_cancelled();

  TriangleCount total = 0;
  CountingStats folded;
  for (const WorkerAcc& a : acc) {
    total += a.triangles;
    folded.merge_edges += a.stats.merge_edges;
    folded.gallop_edges += a.stats.gallop_edges;
    folded.bitmap_edges += a.stats.bitmap_edges;
  }
  folded.counting_ms = timer.elapsed_ms();
  folded.isa = kern.level;
  if (stats != nullptr) *stats = folded;
  return total;
}

EngineResult count_engine(const EdgeList& edges, prim::ThreadPool& pool,
                          const EngineOptions& options) {
  EngineResult result;
  const PreparedGraph prepared = prepare(edges, pool, options);
  result.preprocess = prepared.timings;
  result.triangles = count_prepared(prepared, pool, &result.counting);
  return result;
}

}  // namespace trico::cpu
