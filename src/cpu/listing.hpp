// Triangle listing (enumeration).
//
// The algorithms literature the paper builds on (Schank & Wagner: "Finding,
// counting and listing all triangles") treats listing as the companion
// problem to counting: same forward traversal, but each closed wedge is
// reported instead of just counted. The enumeration order is deterministic:
// triangles are emitted as (a, b, c) with a ≺ b ≺ c in the degree order
// used by the orientation, grouped by their ≺-smallest vertex.

#pragma once

#include <functional>
#include <vector>

#include "graph/edge_list.hpp"

namespace trico::cpu {

/// One triangle; vertices ordered by the forward orientation (degree order,
/// ties by id), i.e. corner `a` has the smallest degree.
struct Triangle {
  VertexId a = 0, b = 0, c = 0;
  friend bool operator==(const Triangle&, const Triangle&) = default;
  friend auto operator<=>(const Triangle&, const Triangle&) = default;
};

/// Invokes `visit` once per triangle. Returning false from the callback
/// stops the enumeration early (used for existence queries / top-k).
void for_each_triangle(const EdgeList& edges,
                       const std::function<bool(const Triangle&)>& visit);

/// Materializes every triangle. Memory scales with the triangle count —
/// use for_each_triangle for large outputs.
[[nodiscard]] std::vector<Triangle> list_triangles(const EdgeList& edges);

/// True iff the graph contains at least one triangle (stops at the first).
[[nodiscard]] bool has_triangle(const EdgeList& edges);

}  // namespace trico::cpu
