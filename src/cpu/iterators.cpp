// node-iterator and edge-iterator baselines (§II-A) and compact-forward
// (Latapy 2008).

#include <algorithm>
#include <numeric>

#include "cpu/counting.hpp"

namespace trico::cpu {

TriangleCount count_node_iterator(const EdgeList& edges) {
  const Csr adjacency = Csr::from_edge_list(edges);
  TriangleCount triple_count = 0;
  for (VertexId u = 0; u < adjacency.num_vertices(); ++u) {
    const auto adj_u = adjacency.neighbors(u);
    for (std::size_t i = 0; i < adj_u.size(); ++i) {
      for (std::size_t j = i + 1; j < adj_u.size(); ++j) {
        const VertexId v = adj_u[i], w = adj_u[j];
        const auto adj_v = adjacency.neighbors(v);
        if (std::binary_search(adj_v.begin(), adj_v.end(), w)) ++triple_count;
      }
    }
  }
  // Each triangle is seen once from each of its three corners.
  return triple_count / 3;
}

TriangleCount count_edge_iterator(const EdgeList& edges) {
  const Csr adjacency = Csr::from_edge_list(edges);
  TriangleCount triple_count = 0;
  for (VertexId u = 0; u < adjacency.num_vertices(); ++u) {
    const auto adj_u = adjacency.neighbors(u);
    for (VertexId v : adj_u) {
      if (v <= u) continue;  // each undirected edge once
      const auto adj_v = adjacency.neighbors(v);
      std::size_t i = 0, j = 0;
      while (i < adj_u.size() && j < adj_v.size()) {
        if (adj_u[i] < adj_v[j]) {
          ++i;
        } else if (adj_u[i] > adj_v[j]) {
          ++j;
        } else {
          ++triple_count;
          ++i;
          ++j;
        }
      }
    }
  }
  // Each triangle is seen once from each of its three edges.
  return triple_count / 3;
}

TriangleCount count_compact_forward(const EdgeList& edges) {
  const VertexId n = edges.num_vertices();
  const std::vector<EdgeIndex> degree = edges.degrees();
  // Rank vertices by decreasing degree (ties by id): rank 0 = highest degree.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });
  std::vector<VertexId> rank(n);
  for (VertexId r = 0; r < n; ++r) rank[order[r]] = r;

  // Re-expressed graph: vertices are ranks, adjacency sorted by rank.
  std::vector<Edge> relabeled;
  relabeled.reserve(edges.num_edge_slots());
  for (const Edge& e : edges.edges()) {
    relabeled.push_back(Edge{rank[e.u], rank[e.v]});
  }
  const Csr adjacency = Csr::from_edge_list(EdgeList(std::move(relabeled), n));

  // For every edge (hi, lo) with rank(hi) > rank(lo), intersect the two
  // adjacency prefixes of ranks < lo. Triangle {a < b < c} (by rank) is found
  // exactly once, at edge (c, b), as common neighbour a.
  TriangleCount total = 0;
  for (VertexId hi = 0; hi < n; ++hi) {
    const auto adj_hi = adjacency.neighbors(hi);
    for (VertexId lo : adj_hi) {
      if (lo >= hi) break;  // lists sorted: ranks >= hi all follow
      const auto adj_lo = adjacency.neighbors(lo);
      std::size_t i = 0, j = 0;
      while (i < adj_hi.size() && j < adj_lo.size() && adj_hi[i] < lo &&
             adj_lo[j] < lo) {
        if (adj_hi[i] < adj_lo[j]) {
          ++i;
        } else if (adj_hi[i] > adj_lo[j]) {
          ++j;
        } else {
          ++total;
          ++i;
          ++j;
        }
      }
    }
  }
  return total;
}

}  // namespace trico::cpu
