// The forward algorithm and its intersection-strategy variants.

#include <algorithm>

#include "cpu/counting.hpp"
#include "graph/orientation.hpp"
#include "prim/algorithms.hpp"

namespace trico::cpu {

namespace {

/// Two-pointer merge intersection size of two sorted ascending ranges.
TriangleCount merge_intersect(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  TriangleCount count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

TriangleCount count_forward_counting_phase(const Csr& oriented) {
  TriangleCount total = 0;
  for (VertexId u = 0; u < oriented.num_vertices(); ++u) {
    const auto adj_u = oriented.neighbors(u);
    for (VertexId v : adj_u) {
      total += merge_intersect(adj_u, oriented.neighbors(v));
    }
  }
  return total;
}

TriangleCount count_forward(const EdgeList& edges) {
  return count_forward_counting_phase(oriented_csr(edges));
}

TriangleCount count_forward_from_adjacency(const Csr& adjacency) {
  // The adjacency input is already grouped and sorted per vertex, so the
  // orientation filter is a single sequential pass — no edge sort needed.
  const VertexId n = adjacency.num_vertices();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<VertexId> kept;
  kept.reserve(adjacency.num_edge_slots() / 2);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : adjacency.neighbors(u)) {
      if (degree_order_less(adjacency.degree(u), adjacency.degree(v), u, v)) {
        kept.push_back(v);
      }
    }
    offsets[u + 1] = kept.size();
  }
  const Csr oriented(std::move(offsets), std::move(kept));
  return count_forward_counting_phase(oriented);
}

TriangleCount count_forward_hashed(const EdgeList& edges) {
  const Csr oriented = oriented_csr(edges);
  const VertexId n = oriented.num_vertices();
  // Stamp array: mark[u's neighbourhood] = u's stamp; probing is O(1) and no
  // clearing pass is needed between vertices.
  std::vector<VertexId> stamp(n, kInvalidVertex);
  TriangleCount total = 0;
  for (VertexId u = 0; u < n; ++u) {
    const auto adj_u = oriented.neighbors(u);
    for (VertexId w : adj_u) stamp[w] = u;
    for (VertexId v : adj_u) {
      for (VertexId w : oriented.neighbors(v)) {
        if (stamp[w] == u) ++total;
      }
    }
  }
  return total;
}

TriangleCount count_forward_binary_search(const EdgeList& edges) {
  const Csr oriented = oriented_csr(edges);
  TriangleCount total = 0;
  for (VertexId u = 0; u < oriented.num_vertices(); ++u) {
    const auto adj_u = oriented.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = oriented.neighbors(v);
      // Search the shorter list's elements in the longer one.
      const auto& shorter = adj_u.size() <= adj_v.size() ? adj_u : adj_v;
      const auto& longer = adj_u.size() <= adj_v.size() ? adj_v : adj_u;
      for (VertexId w : shorter) {
        total += std::binary_search(longer.begin(), longer.end(), w) ? 1 : 0;
      }
    }
  }
  return total;
}

TriangleCount count_forward_multicore(const EdgeList& edges,
                                      prim::ThreadPool& pool,
                                      EngineResult* breakdown) {
  const EngineResult result = count_engine(edges, pool);
  if (breakdown != nullptr) *breakdown = result;
  return result.triangles;
}

std::vector<TriangleCount> per_vertex_triangles(const EdgeList& edges) {
  const Csr oriented = oriented_csr(edges);
  std::vector<TriangleCount> per_vertex(oriented.num_vertices(), 0);
  for (VertexId u = 0; u < oriented.num_vertices(); ++u) {
    const auto adj_u = oriented.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = oriented.neighbors(v);
      std::size_t i = 0, j = 0;
      while (i < adj_u.size() && j < adj_v.size()) {
        if (adj_u[i] < adj_v[j]) {
          ++i;
        } else if (adj_u[i] > adj_v[j]) {
          ++j;
        } else {
          ++per_vertex[u];
          ++per_vertex[v];
          ++per_vertex[adj_u[i]];
          ++i;
          ++j;
        }
      }
    }
  }
  return per_vertex;
}

}  // namespace trico::cpu
