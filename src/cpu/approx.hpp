// Approximate triangle counting.
//
// The paper's related work (§V) compares against heuristic approximation
// algorithms: "such algorithms provide good speedups and usually need
// little memory, but ... an approximate triangle count, which can differ
// from the actual count usually by a few percent." These are the two
// classic representatives the paper cites:
//
//  * DOULION (Tsourakakis et al., KDD'09): keep each edge with probability
//    p, count exactly on the sparsified graph, scale by 1/p^3.
//  * Wedge sampling (the core idea behind Jha et al., KDD'13): sample
//    random wedges (two-edge paths) and measure the fraction that close;
//    triangles = closed_fraction * total_wedges / 3.
//
// Both are deterministic in (input, seed).

#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace trico::cpu {

/// Result of an approximate count.
struct ApproxResult {
  double estimate = 0.0;           ///< estimated triangle count
  std::uint64_t work_items = 0;    ///< edges kept / wedges sampled
};

/// DOULION: sparsify with keep-probability `p` in (0, 1], exact-count the
/// sample with forward, scale by p^-3. p = 1 returns the exact count.
[[nodiscard]] ApproxResult count_doulion(const EdgeList& edges, double p,
                                         std::uint64_t seed);

/// Wedge sampling: sample `samples` uniform wedges and test closure.
/// Estimate = closed_fraction * wedge_count / 3.
[[nodiscard]] ApproxResult count_wedge_sampling(const EdgeList& edges,
                                                std::uint64_t samples,
                                                std::uint64_t seed);

}  // namespace trico::cpu
