#include "cpu/listing.hpp"

#include "graph/csr.hpp"
#include "graph/orientation.hpp"

namespace trico::cpu {

void for_each_triangle(const EdgeList& edges,
                       const std::function<bool(const Triangle&)>& visit) {
  const Csr oriented = oriented_csr(edges);
  for (VertexId u = 0; u < oriented.num_vertices(); ++u) {
    const auto adj_u = oriented.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = oriented.neighbors(v);
      std::size_t i = 0, j = 0;
      while (i < adj_u.size() && j < adj_v.size()) {
        if (adj_u[i] < adj_v[j]) {
          ++i;
        } else if (adj_u[i] > adj_v[j]) {
          ++j;
        } else {
          if (!visit(Triangle{u, v, adj_u[i]})) return;
          ++i;
          ++j;
        }
      }
    }
  }
}

std::vector<Triangle> list_triangles(const EdgeList& edges) {
  std::vector<Triangle> triangles;
  for_each_triangle(edges, [&](const Triangle& t) {
    triangles.push_back(t);
    return true;
  });
  return triangles;
}

bool has_triangle(const EdgeList& edges) {
  bool found = false;
  for_each_triangle(edges, [&](const Triangle&) {
    found = true;
    return false;
  });
  return found;
}

}  // namespace trico::cpu
