// The adaptive hybrid intersection engine for the CPU counting tier (§V).
//
// The paper's CPU baseline runs one scalar two-pointer merge per oriented
// edge. Follow-up work (Bader, *Fast Triangle Counting*, 2023; Wang et al.,
// *Comparative Study on Exact Triangle Counting*, 2018) shows the
// intersection strategy — not the outer loop — dominates end-to-end time on
// skewed graphs. This engine picks a strategy *per oriented edge*:
//
//   merge     two-pointer merge — optimal when |adj(u)| ≈ |adj(v)|
//   gallop    exponential (galloping) search of the shorter list's elements
//             in the longer one — O(s · log(l/s)) when the pair is skewed
//   bitmap    probe a packed uint64 bitmap row of the hotter endpoint —
//             O(s) with one L1 access per probe when the row is resident
//
// Bitmap rows exist only for vertices whose *oriented* degree exceeds
// `bitmap_threshold`. Vertices are relabeled by descending total degree
// (rank 0 = hottest) before the CSR is built, so hot rows cover the compact
// id prefix [0, u) and stay cache-resident — the recipe of the
// RapidsAtHKUST triangle-counting code. Precomputed rows are granted in id
// order until `bitmap_word_budget` is spent; hot sources past the budget
// get an L1-resident per-worker *scratch* row (mark adj(u), probe, clear)
// so bitmap coverage does not degrade on large graphs.
//
// Preprocessing is parallel end to end on prim::ThreadPool (degrees,
// orientation filter, relabeling, edge sort, CSR build, bitmap packing) and
// *bit-identical for any thread count*: every stage is built from the
// deterministic prim primitives. The counting phase uses chunked dynamic
// scheduling (an atomic work-stealing cursor) so one hub-heavy chunk cannot
// serialize the loop.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cpu/simd/cpu_features.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"
#include "util/cancel.hpp"

namespace trico::cpu {

/// Per-edge intersection strategy selection.
enum class IntersectStrategy {
  kAdaptive,   ///< bitmap if available, else gallop past the skew threshold,
               ///< else merge (the engine's default)
  kMergeOnly,  ///< always two-pointer merge — the paper's scalar baseline
  kGallopOnly, ///< always galloping search (ablation)
};

/// All engine tunables. The defaults are the tuned values of
/// bench_cpu_engine (docs/cpu_engine.md records the sweep).
struct EngineOptions {
  IntersectStrategy strategy = IntersectStrategy::kAdaptive;

  /// Gallop when |longer| > skew_threshold * |shorter|.
  double skew_threshold = 8.0;

  /// Build a bitmap row for every vertex whose oriented degree exceeds
  /// this. 0 disables bitmaps entirely.
  EdgeIndex bitmap_threshold = 4;

  /// Relabel vertices by descending total degree (ties by id) so hot bitmap
  /// rows cover a compact, cache-resident id prefix. Off = keep original
  /// ids (the prepared CSR is then bit-identical to oriented_csr()).
  bool relabel_by_degree = true;

  /// Hard cap on total bitmap storage (8-byte words) so adversarial degree
  /// distributions cannot blow up memory; rows are granted in id order
  /// until the budget is spent and the rest fall back to gallop/merge.
  std::uint64_t bitmap_word_budget = std::uint64_t{1} << 22;  // 32 MiB

  /// Vertices per dynamically-claimed counting chunk; 0 = auto.
  std::size_t counting_chunk = 0;

  /// Which intersection-kernel ISA tier to use. kAuto probes the host and
  /// picks the best supported level; explicit requests are clamped *down*
  /// to what the host supports, and the TRICO_FORCE_ISA environment
  /// variable overrides either (see cpu/simd/cpu_features.hpp). Every
  /// level is exact: triangle counts and CountingStats dispatch counts are
  /// bit-identical across tiers — only the inner loops change.
  simd::IsaRequest isa = simd::IsaRequest::kAuto;
};

/// Wall-clock breakdown of the parallel preprocessing pipeline, in
/// milliseconds. This is the CPU tier's analogue of core::PhaseBreakdown and
/// feeds the Amdahl-fraction analysis the paper's §IV multi-GPU discussion
/// needs.
struct PreprocessTimings {
  double degrees_ms = 0;   ///< parallel per-vertex degree histogram
  double orient_ms = 0;    ///< backward-edge flagging + stable compaction
  double relabel_ms = 0;   ///< degree-descending rank + edge relabeling
  double sort_ms = 0;      ///< parallel radix sort of oriented slots
  double csr_ms = 0;       ///< offsets scan + neighbor fill
  double bitmap_ms = 0;    ///< hot-row packing

  [[nodiscard]] double total_ms() const {
    return degrees_ms + orient_ms + relabel_ms + sort_ms + csr_ms + bitmap_ms;
  }
};

/// Per-run counting statistics: how many oriented edges each strategy
/// handled, and the counting-phase wall clock.
struct CountingStats {
  std::uint64_t merge_edges = 0;
  std::uint64_t gallop_edges = 0;
  std::uint64_t bitmap_edges = 0;
  double counting_ms = 0;

  /// The ISA tier the run actually executed with (after env override and
  /// feature clamping) — reported by benches, metrics, and the CLI.
  simd::IsaLevel isa = simd::IsaLevel::kScalar;

  [[nodiscard]] std::uint64_t total_edges() const {
    return merge_edges + gallop_edges + bitmap_edges;
  }
};

/// Packed uint64 bitmap rows for the hot (high oriented-degree) vertices.
/// Row r of vertex u covers bit positions [0, 64 * row_words(r)); with
/// relabeling on, every neighbor id is < u, so rows are truncated at u and
/// the hottest vertices (smallest ids) get the shortest, most
/// cache-friendly rows.
struct BitmapIndex {
  static constexpr std::uint32_t kNoRow = 0xffffffffu;

  std::vector<std::uint32_t> rows;      ///< per vertex: row index or kNoRow
  std::vector<std::uint64_t> offsets;   ///< word offset per row, rows+1
  std::vector<std::uint64_t> words;     ///< packed rows, back to back

  [[nodiscard]] bool empty() const { return offsets.size() <= 1; }
  [[nodiscard]] std::uint32_t row_of(VertexId v) const {
    return v < rows.size() ? rows[v] : kNoRow;
  }
  [[nodiscard]] std::uint32_t num_rows() const {
    return offsets.empty() ? 0 : static_cast<std::uint32_t>(offsets.size() - 1);
  }

  /// True iff bit w is set in row r. Bits beyond the row's truncated domain
  /// read as unset.
  [[nodiscard]] bool test(std::uint32_t r, VertexId w) const {
    const std::uint64_t word = offsets[r] + (w >> 6);
    return word < offsets[r + 1] && (words[word] >> (w & 63)) & std::uint64_t{1};
  }
};

/// Non-owning view of everything the counting phase reads: the oriented CSR
/// as raw spans, the bitmap side structure, and the options that built it.
/// The spans can point into a PreparedGraph's owned vectors (via
/// PreparedGraph::view()) or into an mmapped on-disk artifact
/// (store::MappedPreparedGraph) — the arrays are laid out identically either
/// way, so count_prepared is bit-identical over both backings.
struct PreparedGraphView {
  std::span<const EdgeIndex> offsets;      ///< n+1 entries; empty = empty graph
  std::span<const VertexId> neighbors;     ///< oriented adjacency, ascending
  std::span<const VertexId> new_to_old;    ///< empty when relabeling was off
  std::span<const std::uint32_t> bitmap_rows;     ///< per vertex: row or kNoRow
  std::span<const std::uint64_t> bitmap_offsets;  ///< word offset per row, rows+1
  std::span<const std::uint64_t> bitmap_words;    ///< packed rows, back to back
  EngineOptions options;

  [[nodiscard]] VertexId num_vertices() const {
    return offsets.empty() ? 0 : static_cast<VertexId>(offsets.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const { return neighbors.size(); }
  [[nodiscard]] std::span<const VertexId> neighbors_of(VertexId u) const {
    return neighbors.subspan(offsets[u], offsets[u + 1] - offsets[u]);
  }
  [[nodiscard]] std::uint32_t row_of(VertexId v) const {
    return v < bitmap_rows.size() ? bitmap_rows[v] : BitmapIndex::kNoRow;
  }
};

/// The state the counting phase consumes: the oriented (optionally
/// relabeled) CSR, the bitmap side structure, and the preprocessing
/// breakdown. Bit-identical for any thread count of the pool that built it.
struct PreparedGraph {
  Csr oriented;                      ///< in engine id space, lists ascending
  std::vector<VertexId> new_to_old;  ///< empty when relabeling is off
  BitmapIndex bitmaps;
  EngineOptions options;             ///< the options used to build this
  PreprocessTimings timings;

  /// Heap bytes held by the prepared artifacts (CSR + relabel map + bitmap
  /// index) — the quantity the service catalog's byte budget accounts.
  [[nodiscard]] std::uint64_t byte_size() const;

  /// Spans over the owned vectors. Valid while *this is alive and unmoved.
  [[nodiscard]] PreparedGraphView view() const;
};

/// Result of a full engine run.
struct EngineResult {
  TriangleCount triangles = 0;
  PreprocessTimings preprocess;
  CountingStats counting;
};

/// Parallel per-vertex degree computation over raw edge slots (out-degree;
/// equals undirected degree in canonical form). Deterministic per-worker
/// histogram merge — the parallel replacement for EdgeList::degrees().
[[nodiscard]] std::vector<EdgeIndex> parallel_degrees(
    std::span<const Edge> slots, VertexId num_vertices, prim::ThreadPool& pool);

/// Runs the fully parallel preprocessing pipeline: degrees -> orientation
/// filter -> (relabel) -> sort -> CSR -> bitmaps.
[[nodiscard]] PreparedGraph prepare(const EdgeList& edges,
                                    prim::ThreadPool& pool,
                                    const EngineOptions& options = {});

/// Counting phase only, over a prepared graph, with dynamic chunked
/// scheduling. Exact for every strategy; `stats` (optional) receives the
/// per-strategy dispatch counts and the phase wall clock. `cancel`
/// (optional) is polled at chunk granularity: a cancelled run drains its
/// parallel region, then throws util::OperationCancelled from the calling
/// thread instead of returning a partial count.
[[nodiscard]] TriangleCount count_prepared(
    const PreparedGraph& graph, prim::ThreadPool& pool,
    CountingStats* stats = nullptr,
    const util::CancelToken* cancel = nullptr);

/// View-based counting — the real implementation; the PreparedGraph overload
/// delegates here via view(). Works identically over owned vectors and
/// mmapped artifact regions.
[[nodiscard]] TriangleCount count_prepared(
    const PreparedGraphView& graph, prim::ThreadPool& pool,
    CountingStats* stats = nullptr,
    const util::CancelToken* cancel = nullptr);

/// A contiguous slice of the oriented CSR's source rows, the unit of
/// distributed sharding: every oriented edge (u, v) is counted by exactly
/// the shard owning row u, so partial counts over a tiling of [0, n) sum to
/// the exact total (the cross-process analogue of MultiGpuCounter's
/// per-device edge slices).
struct ShardRange {
  VertexId row_begin = 0;
  VertexId row_end = 0;    ///< exclusive
  EdgeIndex edge_begin = 0;
  EdgeIndex edge_end = 0;  ///< exclusive; edge_end - edge_begin oriented edges

  [[nodiscard]] VertexId num_rows() const { return row_end - row_begin; }
  [[nodiscard]] EdgeIndex num_edges() const { return edge_end - edge_begin; }
};

/// Deterministic edge-balanced row partition: shard `index` of `count` owns
/// the rows whose oriented-edge prefix falls in the i-th of `count` equal
/// edge spans (row boundaries snap to vertex granularity via binary search
/// over the offsets array). Depends only on the prepared CSR, so every
/// worker that prepared the same graph with the same options derives the
/// same tiling — a coordinator never needs the graph locally to plan it.
/// Requires index < count; count > 0.
[[nodiscard]] ShardRange shard_rows(const PreparedGraphView& graph,
                                    std::uint32_t index, std::uint32_t count);

/// Partial count over the source rows [row_begin, row_end): exactly the
/// triangles whose oriented pivot edge originates in the range. Summing over
/// a tiling of [0, n) reproduces count_prepared bit-identically (per-shard
/// stats sum likewise). Strategy dispatch per edge is unchanged — scratch
/// bitmap rows still span all of [0, n) since probed neighbors may lie
/// outside the shard.
[[nodiscard]] TriangleCount count_prepared_range(
    const PreparedGraphView& graph, prim::ThreadPool& pool,
    VertexId row_begin, VertexId row_end, CountingStats* stats = nullptr,
    const util::CancelToken* cancel = nullptr);

/// End-to-end adaptive hybrid count: prepare + count.
[[nodiscard]] EngineResult count_engine(const EdgeList& edges,
                                        prim::ThreadPool& pool,
                                        const EngineOptions& options = {});

}  // namespace trico::cpu
