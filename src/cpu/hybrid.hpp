// Hybrid counting: the paper's §VI future-work direction.
//
// "It might be beneficial to use a different counting algorithm for a small
// subset of vertices with largest degrees. A natural candidate ... is
// matrix multiplication [21]."
//
// count_hybrid splits the work by the forward orientation's key property:
// a triangle's ≺-smallest vertex is its lowest-degree corner. Triangles
// whose smallest corner is a *low*-degree vertex are counted by the normal
// per-edge merge, restricted to oriented edges with a low-degree source;
// triangles entirely inside the high-degree set are counted densely with
// bitset "matrix multiplication" over the induced subgraph (which is small
// by construction: at most 2m / threshold vertices exceed degree
// threshold).

#pragma once

#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"

namespace trico::cpu {

/// Exact dense counter over adjacency bitsets: O(n^2 * n/64). Intended for
/// small graphs (n up to a few thousand); used as the high-degree-core
/// counter inside count_hybrid and as an independent test oracle.
[[nodiscard]] TriangleCount count_dense_bitset(const EdgeList& edges);

/// Exact hybrid counter: forward merge for triangles rooted at low-degree
/// vertices + dense bitset counting for the high-degree core. Any
/// `degree_threshold` yields the exact count; the threshold only moves work
/// between the two strategies (threshold 0 = all-dense, huge threshold =
/// plain forward).
[[nodiscard]] TriangleCount count_hybrid(const EdgeList& edges,
                                         EdgeIndex degree_threshold);

/// Multicore count_hybrid: preprocessing runs on the hybrid engine's
/// parallel pipeline (degrees, orientation filter, CSR build — all on the
/// pool) and both the low-degree merge part and the dense-core probe part
/// are parallelized with dynamic chunking. Same exact count as the
/// sequential overload for any threshold and thread count.
[[nodiscard]] TriangleCount count_hybrid(const EdgeList& edges,
                                         EdgeIndex degree_threshold,
                                         prim::ThreadPool& pool);

}  // namespace trico::cpu
