#include "cpu/simd/intersect.hpp"

namespace trico::cpu::simd {

const IntersectKernels& kernels_for(IsaLevel level) {
  switch (level) {
    case IsaLevel::kAvx2:
      return avx2_kernels();
    case IsaLevel::kSse42:
      return sse42_kernels();
    case IsaLevel::kScalar:
      break;
  }
  return scalar_kernels();
}

const IntersectKernels& select_kernels(IsaRequest request) {
  return kernels_for(resolve_isa(request));
}

}  // namespace trico::cpu::simd
