// AVX2 intersection kernels: 8-wide epi32 block compares for merge and the
// gallop finish window, and a vpshufb nibble-LUT vector popcount (the
// libpopcnt/Mula recipe, 4x unrolled) for whole-row bitmap intersections.
// This translation unit is compiled with -mavx2 (src/cpu/CMakeLists.txt);
// its functions run only after the runtime probe admitted the level.

#include "cpu/simd/intersect.hpp"

#if defined(__AVX2__)

#include <bit>
#include <cstdint>
#include <immintrin.h>

#include "cpu/simd/intersect_detail.hpp"

namespace trico::cpu::simd {

namespace {

/// Block merge, 8-wide: see merge_sse42 for the invariant — x lives in
/// [j, j+8) whenever the chunk max is >= x and every earlier chunk max was
/// below it. Scalar two-pointer tail for the final < 8 elements.
TriangleCount merge_avx2(std::span<const VertexId> a,
                         std::span<const VertexId> b) {
  const std::span<const VertexId> s = a.size() <= b.size() ? a : b;
  const std::span<const VertexId> l = a.size() <= b.size() ? b : a;
  // Short-row cutoff: tiny intersections never pay vector setup.
  if (l.size() < detail::kMergeScalarCutoff) {
    return detail::merge_two_pointer(s, l);
  }
  TriangleCount count = 0;
  std::size_t i = 0, j = 0;
  const std::size_t sn = s.size(), ln = l.size();
  while (i < sn && j + 8 <= ln) {
    const VertexId x = s[i];
    if (l[j + 7] < x) {
      j += 8;
      continue;
    }
    const __m256i xv = _mm256_set1_epi32(static_cast<int>(x));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(l.data() + j));
    count += _mm256_movemask_epi8(_mm256_cmpeq_epi32(bv, xv)) != 0;
    ++i;
  }
  while (i < sn && j < ln) {
    if (l[j] < s[i]) {
      ++j;
    } else {
      count += l[j] == s[i];
      ++i;
    }
  }
  return count;
}

/// Galloping search finishing its narrowed window with 8-wide blocks;
/// unsigned order under signed compares via the INT32_MIN bias.
TriangleCount gallop_avx2(std::span<const VertexId> shorter,
                          std::span<const VertexId> longer) {
  TriangleCount count = 0;
  std::size_t j = 0;
  const std::size_t ln = longer.size();
  const __m256i bias = _mm256_set1_epi32(INT32_MIN);
  for (VertexId x : shorter) {
    if (j >= ln) break;
    std::size_t bound = 1;
    while (j + bound < ln && longer[j + bound] < x) bound <<= 1;
    std::size_t k = j + (bound >> 1);
    std::size_t hi = std::min(ln, j + bound + 1);
    // Bisect the bracketed window down to a few blocks before the vector
    // scan (see gallop_sse42).
    while (hi - k > 32) {
      const std::size_t mid = k + (hi - k) / 2;
      if (longer[mid] < x) {
        k = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Splat x lazily: balanced pairs narrow to sub-block windows on almost
    // every element, and must not pay vector setup they never use.
    if (k + 8 <= hi) {
      const __m256i xv =
          _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(x)), bias);
      while (k + 8 <= hi) {
        const __m256i bv = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(longer.data() + k)),
            bias);
        const auto lt = static_cast<unsigned>(
            _mm256_movemask_ps(
                _mm256_castsi256_ps(_mm256_cmpgt_epi32(xv, bv))));
        if (lt != 0xFFu) {
          k += static_cast<std::size_t>(std::popcount(lt));
          break;
        }
        k += 8;
      }
    }
    while (k < hi && longer[k] < x) ++k;
    j = k;
    if (j < ln && longer[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

/// Per-byte population count of one 256-bit lane via two vpshufb nibble
/// lookups, horizontally folded into four u64 lane sums by vpsadbw.
inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

/// Whole-row AND + vector popcount, 4x unrolled (16 words = 128 bytes per
/// iteration). Byte counts top out at 8 and vpsadbw folds each step, so no
/// accumulator can saturate at any row length. Scalar POPCNT tail for the
/// final < 4 words.
TriangleCount and_popcount_avx2(const std::uint64_t* a, const std::uint64_t* b,
                                std::uint64_t num_words) {
  const auto* va = reinterpret_cast<const __m256i*>(a);
  const auto* vb = reinterpret_cast<const __m256i*>(b);
  __m256i acc = _mm256_setzero_si256();
  std::uint64_t i = 0;
  for (; i + 16 <= num_words; i += 16) {
    const std::uint64_t v = i / 4;
    __m256i sum = popcount_bytes(_mm256_and_si256(
        _mm256_loadu_si256(va + v), _mm256_loadu_si256(vb + v)));
    sum = _mm256_add_epi64(sum, popcount_bytes(_mm256_and_si256(
        _mm256_loadu_si256(va + v + 1), _mm256_loadu_si256(vb + v + 1))));
    sum = _mm256_add_epi64(sum, popcount_bytes(_mm256_and_si256(
        _mm256_loadu_si256(va + v + 2), _mm256_loadu_si256(vb + v + 2))));
    sum = _mm256_add_epi64(sum, popcount_bytes(_mm256_and_si256(
        _mm256_loadu_si256(va + v + 3), _mm256_loadu_si256(vb + v + 3))));
    acc = _mm256_add_epi64(acc, sum);
  }
  for (; i + 4 <= num_words; i += 4) {
    acc = _mm256_add_epi64(acc, popcount_bytes(_mm256_and_si256(
        _mm256_loadu_si256(va + i / 4), _mm256_loadu_si256(vb + i / 4))));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  TriangleCount count = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < num_words; ++i) {
    count += static_cast<TriangleCount>(std::popcount(a[i] & b[i]));
  }
  return count;
}

}  // namespace

const IntersectKernels& avx2_kernels() {
  static constexpr IntersectKernels table{
      .level = IsaLevel::kAvx2,
      .merge = merge_avx2,
      .gallop = gallop_avx2,
      .bitmap_probe = detail::probe_unrolled,
      .bitmap_probe_checked = detail::probe_checked,
      .bitmap_and_popcount = and_popcount_avx2,
      .scratch_mark = detail::mark_coalesced,
      .scratch_clear = detail::clear_coalesced,
  };
  return table;
}

}  // namespace trico::cpu::simd

#else  // !__AVX2__ — non-x86 build or flag filtered: alias the SSE table
       // (which itself degrades to scalar when SSE4.2 is unavailable).

namespace trico::cpu::simd {
const IntersectKernels& avx2_kernels() { return sse42_kernels(); }
}  // namespace trico::cpu::simd

#endif
