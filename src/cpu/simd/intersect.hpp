// SIMD-vectorized intersection kernels behind a runtime dispatch table.
//
// Every kernel family exists at three levels (scalar / SSE4.2 / AVX2) with
// *identical semantics* — each level is exact, so any mix of levels yields
// bit-identical triangle counts and CountingStats. The hybrid engine picks
// one table per count_prepared() call via select_kernels(); the strategy
// *choice* per edge stays in hybrid_engine.cpp and never depends on the
// level, only the inner loops change.
//
// Kernel contracts (tail safety — the invariants the differential + ASan
// tests pin, see docs/cpu_engine.md "SIMD dispatch"):
//
//  * merge/gallop operate on sorted ascending duplicate-free spans and
//    never read outside them: vector paths consume whole W-wide blocks
//    (W = 4 for SSE, 8 for AVX2) only while `index + W <= size` and finish
//    the final `< W` elements scalar. Misaligned bases are fine (unaligned
//    loads); no padding or sentinel beyond the span is ever required.
//  * bitmap_probe requires every probe inside the row's domain;
//    bitmap_probe_checked bounds-checks each probe (out-of-domain = unset).
//  * bitmap_and_popcount counts set bits of (a[i] & b[i]) for i < num_words;
//    both arrays must have at least num_words words.
//  * scratch_mark sets the bit of every id; scratch_clear zeroes every word
//    any id falls in (the row is only ever probed through ids that were
//    marked, so whole-word clearing is exact). Both exploit that ids arrive
//    sorted: bits destined for one word coalesce into a single RMW.

#pragma once

#include <cstdint>
#include <span>

#include "cpu/simd/cpu_features.hpp"
#include "graph/types.hpp"

namespace trico::cpu::simd {

/// One resolved set of intersection kernels. Plain function pointers: the
/// table is selected once per counting run, far off the hot path.
struct IntersectKernels {
  IsaLevel level = IsaLevel::kScalar;

  /// Intersection size of two sorted ascending duplicate-free spans.
  TriangleCount (*merge)(std::span<const VertexId> a,
                         std::span<const VertexId> b) = nullptr;

  /// Galloping intersection: locate each element of `shorter` in `longer`.
  TriangleCount (*gallop)(std::span<const VertexId> shorter,
                          std::span<const VertexId> longer) = nullptr;

  /// Probe each id against a packed bitmap row; caller guarantees every
  /// probe is inside the row's domain.
  TriangleCount (*bitmap_probe)(const std::uint64_t* words,
                                std::span<const VertexId> probes) = nullptr;

  /// Same, with a per-probe domain check (out-of-domain probes read unset).
  TriangleCount (*bitmap_probe_checked)(
      const std::uint64_t* words, std::uint64_t num_words,
      std::span<const VertexId> probes) = nullptr;

  /// popcount(a & b) over num_words words — the whole-row intersection for
  /// edges where BOTH endpoints own bitmap rows.
  TriangleCount (*bitmap_and_popcount)(const std::uint64_t* a,
                                       const std::uint64_t* b,
                                       std::uint64_t num_words) = nullptr;

  /// Mark the bit of every (sorted ascending) id in the scratch row.
  void (*scratch_mark)(std::uint64_t* row,
                       std::span<const VertexId> ids) = nullptr;

  /// Zero every word any (sorted ascending) id falls in.
  void (*scratch_clear)(std::uint64_t* row,
                        std::span<const VertexId> ids) = nullptr;
};

/// The table for one concrete level. Calling a level the host does not
/// support is undefined (SIGILL) — go through select_kernels() unless you
/// already clamped via resolve_isa().
[[nodiscard]] const IntersectKernels& kernels_for(IsaLevel level);

/// resolve_isa(request) (env override + feature clamp), then the table.
[[nodiscard]] const IntersectKernels& select_kernels(
    IsaRequest request = IsaRequest::kAuto);

// Per-level tables, defined in their own translation units so each can be
// compiled with exactly its own target flags. Reaching them through
// kernels_for() is equivalent; these names exist for the kernel unit tests.
[[nodiscard]] const IntersectKernels& scalar_kernels();
[[nodiscard]] const IntersectKernels& sse42_kernels();
[[nodiscard]] const IntersectKernels& avx2_kernels();

}  // namespace trico::cpu::simd
