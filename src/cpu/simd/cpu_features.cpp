#include "cpu/simd/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

namespace trico::cpu::simd {

const char* to_string(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kSse42: return "sse4.2";
    case IsaLevel::kAvx2: return "avx2";
  }
  return "?";
}

const char* to_string(IsaRequest request) {
  switch (request) {
    case IsaRequest::kAuto: return "auto";
    case IsaRequest::kScalar: return "scalar";
    case IsaRequest::kSse42: return "sse4.2";
    case IsaRequest::kAvx2: return "avx2";
  }
  return "?";
}

std::string CpuFeatures::to_string() const {
  std::string out;
  if (sse42) out += "sse4.2 ";
  if (popcnt) out += "popcnt ";
  if (avx2) out += "avx2 ";
  if (out.empty()) return "none (portable scalar)";
  out.pop_back();
  return out;
}

const CpuFeatures& detect_cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    // __builtin_cpu_supports runs CPUID once under the hood; it is the
    // compiler-portable probe (GCC and Clang) and needs no target flags.
    f.sse42 = __builtin_cpu_supports("sse4.2");
    f.popcnt = __builtin_cpu_supports("popcnt");
    f.avx2 = __builtin_cpu_supports("avx2");
#endif
    return f;
  }();
  return features;
}

IsaRequest parse_isa_request(const char* text) {
  if (text == nullptr) return IsaRequest::kAuto;
  if (std::strcmp(text, "scalar") == 0) return IsaRequest::kScalar;
  if (std::strcmp(text, "sse4.2") == 0 || std::strcmp(text, "sse42") == 0) {
    return IsaRequest::kSse42;
  }
  if (std::strcmp(text, "avx2") == 0) return IsaRequest::kAvx2;
  return IsaRequest::kAuto;
}

IsaLevel resolve_isa(IsaRequest request) {
  // The environment wins over the programmatic request: it is the ablation
  // and CI lever, and must be able to pin a whole process from outside.
  const IsaRequest forced = parse_isa_request(std::getenv("TRICO_FORCE_ISA"));
  if (forced != IsaRequest::kAuto) request = forced;

  const IsaLevel best = detect_cpu_features().best();
  IsaLevel wanted;
  switch (request) {
    case IsaRequest::kScalar: wanted = IsaLevel::kScalar; break;
    case IsaRequest::kSse42: wanted = IsaLevel::kSse42; break;
    case IsaRequest::kAvx2: wanted = IsaLevel::kAvx2; break;
    case IsaRequest::kAuto:
    default: wanted = best; break;
  }
  return wanted <= best ? wanted : best;
}

}  // namespace trico::cpu::simd
