// Portable scalar intersection kernels — the dispatch table's baseline and
// the fallback on every non-x86 host. These are the exact loops the hybrid
// engine ran before the SIMD layer existed (PR 3), plus the whole-row
// AND-popcount and the word-coalesced scratch mark/clear that the vector
// tables share semantics with.

#include <algorithm>
#include <bit>

#include "cpu/simd/intersect.hpp"

namespace trico::cpu::simd {

namespace {

TriangleCount merge_scalar(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  TriangleCount count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

TriangleCount gallop_scalar(std::span<const VertexId> shorter,
                            std::span<const VertexId> longer) {
  TriangleCount count = 0;
  std::size_t j = 0;
  const std::size_t ln = longer.size();
  for (VertexId x : shorter) {
    if (j >= ln) break;
    std::size_t bound = 1;
    while (j + bound < ln && longer[j + bound] < x) bound <<= 1;
    const auto first = longer.begin() + (j + (bound >> 1));
    const auto last = longer.begin() + std::min(ln, j + bound + 1);
    j = static_cast<std::size_t>(std::lower_bound(first, last, x) -
                                 longer.begin());
    if (j < ln && longer[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

TriangleCount bitmap_probe_scalar(const std::uint64_t* words,
                                  std::span<const VertexId> probes) {
  TriangleCount count = 0;
  for (VertexId w : probes) count += (words[w >> 6] >> (w & 63)) & 1;
  return count;
}

TriangleCount bitmap_probe_checked_scalar(const std::uint64_t* words,
                                          std::uint64_t num_words,
                                          std::span<const VertexId> probes) {
  TriangleCount count = 0;
  for (VertexId w : probes) {
    if ((w >> 6) < num_words) count += (words[w >> 6] >> (w & 63)) & 1;
  }
  return count;
}

TriangleCount bitmap_and_popcount_scalar(const std::uint64_t* a,
                                         const std::uint64_t* b,
                                         std::uint64_t num_words) {
  TriangleCount count = 0;
  for (std::uint64_t i = 0; i < num_words; ++i) {
    count += static_cast<TriangleCount>(std::popcount(a[i] & b[i]));
  }
  return count;
}

// Adjacency lists arrive sorted ascending, so ids landing in the same
// 64-bit word are consecutive: build the word's full mask in a register and
// issue one RMW per *word* instead of one per id.
void scratch_mark_scalar(std::uint64_t* row, std::span<const VertexId> ids) {
  std::size_t i = 0;
  const std::size_t n = ids.size();
  while (i < n) {
    const std::uint64_t word = ids[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= std::uint64_t{1} << (ids[i] & 63);
      ++i;
    } while (i < n && (ids[i] >> 6) == word);
    row[word] |= mask;
  }
}

void scratch_clear_scalar(std::uint64_t* row, std::span<const VertexId> ids) {
  std::size_t i = 0;
  const std::size_t n = ids.size();
  while (i < n) {
    const std::uint64_t word = ids[i] >> 6;
    row[word] = 0;
    do {
      ++i;
    } while (i < n && (ids[i] >> 6) == word);
  }
}

}  // namespace

const IntersectKernels& scalar_kernels() {
  static constexpr IntersectKernels table{
      .level = IsaLevel::kScalar,
      .merge = merge_scalar,
      .gallop = gallop_scalar,
      .bitmap_probe = bitmap_probe_scalar,
      .bitmap_probe_checked = bitmap_probe_checked_scalar,
      .bitmap_and_popcount = bitmap_and_popcount_scalar,
      .scratch_mark = scratch_mark_scalar,
      .scratch_clear = scratch_clear_scalar,
  };
  return table;
}

}  // namespace trico::cpu::simd
