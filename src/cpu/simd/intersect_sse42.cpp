// SSE4.2 intersection kernels: 4-wide epi32 block compares for merge and
// the gallop finish window, hardware POPCNT for the bitmap loops. This
// translation unit is compiled with -msse4.2 (src/cpu/CMakeLists.txt); its
// functions run only after the runtime probe admitted the level.

#include "cpu/simd/intersect.hpp"

#if defined(__SSE4_2__)

#include <bit>
#include <cstdint>
#include <nmmintrin.h>

#include "cpu/simd/intersect_detail.hpp"

namespace trico::cpu::simd {

namespace {

/// Block merge: walk the shorter list's elements against 4-wide chunks of
/// the longer one. A chunk whose maximum is below x is skipped whole; a
/// chunk that brackets x answers membership with one compare + movemask.
/// The final < 4 elements of the longer list run the scalar two-pointer
/// tail — no load ever crosses the span's end.
TriangleCount merge_sse42(std::span<const VertexId> a,
                          std::span<const VertexId> b) {
  const std::span<const VertexId> s = a.size() <= b.size() ? a : b;
  const std::span<const VertexId> l = a.size() <= b.size() ? b : a;
  // Short-row cutoff: tiny intersections never pay vector setup.
  if (l.size() < detail::kMergeScalarCutoff) {
    return detail::merge_two_pointer(s, l);
  }
  TriangleCount count = 0;
  std::size_t i = 0, j = 0;
  const std::size_t sn = s.size(), ln = l.size();
  while (i < sn && j + 4 <= ln) {
    const VertexId x = s[i];
    if (l[j + 3] < x) {
      j += 4;
      continue;
    }
    // x is at or below this chunk's max, and above every skipped chunk: any
    // occurrence lives in [j, j+4).
    const __m128i xv = _mm_set1_epi32(static_cast<int>(x));
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(l.data() + j));
    count += _mm_movemask_epi8(_mm_cmpeq_epi32(bv, xv)) != 0;
    ++i;
  }
  while (i < sn && j < ln) {
    if (l[j] < s[i]) {
      ++j;
    } else {
      count += l[j] == s[i];
      ++i;
    }
  }
  return count;
}

/// Galloping search whose *final narrowed* window is finished by the block
/// kernel instead of running the bisection to single elements: elements
/// below x form a prefix of each sorted chunk, so popcount(movemask) IS the
/// first-geq offset. Unsigned order is preserved under signed compares by
/// biasing both sides with INT32_MIN.
TriangleCount gallop_sse42(std::span<const VertexId> shorter,
                           std::span<const VertexId> longer) {
  TriangleCount count = 0;
  std::size_t j = 0;
  const std::size_t ln = longer.size();
  const __m128i bias = _mm_set1_epi32(INT32_MIN);
  for (VertexId x : shorter) {
    if (j >= ln) break;
    std::size_t bound = 1;
    while (j + bound < ln && longer[j + bound] < x) bound <<= 1;
    std::size_t k = j + (bound >> 1);
    std::size_t hi = std::min(ln, j + bound + 1);
    // Bisect the bracketed window down to a few blocks first — a linear
    // vector scan of the full window would be O(window/4), losing to the
    // scalar O(log window) search it replaces on wide brackets.
    while (hi - k > 32) {
      const std::size_t mid = k + (hi - k) / 2;
      if (longer[mid] < x) {
        k = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Splat x lazily: balanced pairs narrow to sub-block windows on almost
    // every element, and must not pay vector setup they never use.
    if (k + 4 <= hi) {
      const __m128i xv =
          _mm_xor_si128(_mm_set1_epi32(static_cast<int>(x)), bias);
      while (k + 4 <= hi) {
        const __m128i bv = _mm_xor_si128(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(longer.data() + k)),
            bias);
        const auto lt = static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(xv, bv))));
        if (lt != 0xFu) {
          k += static_cast<std::size_t>(std::popcount(lt));
          break;
        }
        k += 4;
      }
    }
    while (k < hi && longer[k] < x) ++k;
    j = k;
    if (j < ln && longer[j] == x) {
      ++count;
      ++j;
    }
  }
  return count;
}

}  // namespace

const IntersectKernels& sse42_kernels() {
  static constexpr IntersectKernels table{
      .level = IsaLevel::kSse42,
      .merge = merge_sse42,
      .gallop = gallop_sse42,
      .bitmap_probe = detail::probe_unrolled,
      .bitmap_probe_checked = detail::probe_checked,
      .bitmap_and_popcount = detail::and_popcount_unrolled,
      .scratch_mark = detail::mark_coalesced,
      .scratch_clear = detail::clear_coalesced,
  };
  return table;
}

}  // namespace trico::cpu::simd

#else  // !__SSE4_2__ — non-x86 build or flag filtered: alias the scalar table

namespace trico::cpu::simd {
const IntersectKernels& sse42_kernels() { return scalar_kernels(); }
}  // namespace trico::cpu::simd

#endif
