// Runtime CPU-feature probe and ISA selection for the SIMD intersection
// kernels (docs/cpu_engine.md "SIMD dispatch").
//
// The build stays portable: the AVX2/SSE4.2 kernel translation units are
// compiled with per-file target flags (src/cpu/CMakeLists.txt), and nothing
// in them executes unless this probe says the host can. Selection order:
//
//   1. TRICO_FORCE_ISA environment variable ("scalar" | "sse4.2" | "avx2" |
//      "auto") — ablations, CI differential legs, and bug bisection;
//   2. EngineOptions::isa — per-run programmatic override for tests;
//   3. best detected level.
//
// A request above what the host supports is clamped *down* to the best
// supported level (never up), so forcing "avx2" on an SSE-only box runs the
// SSE4.2 kernels rather than crashing on an illegal instruction. Every
// level produces bit-identical counts, so clamping is safe by construction.

#pragma once

#include <cstdint>
#include <string>

namespace trico::cpu::simd {

/// Concrete kernel levels, ordered: higher = wider. The dispatch table has
/// one entry per level.
enum class IsaLevel : std::uint8_t {
  kScalar = 0,  ///< portable C++ — the only level off x86-64
  kSse42 = 1,   ///< 4-wide epi32 blocks + hardware popcount
  kAvx2 = 2,    ///< 8-wide epi32 blocks + vpshufb-LUT vector popcount
};

/// What a caller may ask for: a concrete level or "best available".
enum class IsaRequest : std::uint8_t {
  kAuto = 0,
  kScalar = 1,
  kSse42 = 2,
  kAvx2 = 3,
};

[[nodiscard]] const char* to_string(IsaLevel level);
[[nodiscard]] const char* to_string(IsaRequest request);

/// What the running CPU offers (one CPUID probe, cached per process).
struct CpuFeatures {
  bool sse42 = false;
  bool popcnt = false;
  bool avx2 = false;

  /// Best kernel level these features admit.
  [[nodiscard]] IsaLevel best() const {
    if (avx2) return IsaLevel::kAvx2;
    if (sse42 && popcnt) return IsaLevel::kSse42;
    return IsaLevel::kScalar;
  }

  /// "sse4.2 popcnt avx2" / "none (portable scalar)" — for version output
  /// and bench attribution.
  [[nodiscard]] std::string to_string() const;
};

/// Cached per-process feature probe.
[[nodiscard]] const CpuFeatures& detect_cpu_features();

/// Parses "scalar" / "sse4.2" (or "sse42") / "avx2" / "auto"; anything else
/// (including an unset/empty value) returns kAuto.
[[nodiscard]] IsaRequest parse_isa_request(const char* text);

/// Resolves a request to a concrete level: TRICO_FORCE_ISA (re-read on
/// every call so tests can flip it) overrides `request`, and the result is
/// clamped to detect_cpu_features().best().
[[nodiscard]] IsaLevel resolve_isa(IsaRequest request = IsaRequest::kAuto);

}  // namespace trico::cpu::simd
