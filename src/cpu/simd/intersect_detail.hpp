// Shared bodies for the vector kernel translation units. Included by
// intersect_sse42.cpp and intersect_avx2.cpp so each copy is compiled under
// that TU's own target flags (the unrolled popcount loops below compile to
// hardware POPCNT there; the scalar TU deliberately does not use this
// header — it keeps the PR-3 reference loops verbatim).

#pragma once

#include <bit>
#include <cstdint>
#include <span>

#include "graph/types.hpp"

namespace trico::cpu::simd::detail {

/// Rows shorter than this (longer side, in elements) skip the block kernels
/// and run the plain two-pointer merge: a handful of elements cannot
/// amortize the splat/load/movemask setup, and graphs dominated by tiny
/// rows (internet-topology in BENCH_cpu_engine.json) measured the vector
/// merge *below* scalar before this gate. Four vector widths of the wider
/// (AVX2) kernel — past that the block skip wins.
inline constexpr std::size_t kMergeScalarCutoff = 32;

/// The scalar two-pointer merge the short-row cutoff falls back to;
/// identical semantics to the block kernels on any input.
inline TriangleCount merge_two_pointer(std::span<const VertexId> a,
                                       std::span<const VertexId> b) {
  TriangleCount count = 0;
  std::size_t i = 0, j = 0;
  const std::size_t an = a.size(), bn = b.size();
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// Branch-free probe loop, 4x unrolled into independent accumulators so the
/// scattered row loads overlap.
inline TriangleCount probe_unrolled(const std::uint64_t* words,
                                    std::span<const VertexId> probes) {
  TriangleCount c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  const std::size_t n = probes.size();
  for (; i + 4 <= n; i += 4) {
    c0 += (words[probes[i] >> 6] >> (probes[i] & 63)) & 1;
    c1 += (words[probes[i + 1] >> 6] >> (probes[i + 1] & 63)) & 1;
    c2 += (words[probes[i + 2] >> 6] >> (probes[i + 2] & 63)) & 1;
    c3 += (words[probes[i + 3] >> 6] >> (probes[i + 3] & 63)) & 1;
  }
  for (; i < n; ++i) c0 += (words[probes[i] >> 6] >> (probes[i] & 63)) & 1;
  return c0 + c1 + c2 + c3;
}

inline TriangleCount probe_checked(const std::uint64_t* words,
                                   std::uint64_t num_words,
                                   std::span<const VertexId> probes) {
  TriangleCount count = 0;
  for (VertexId w : probes) {
    if ((w >> 6) < num_words) count += (words[w >> 6] >> (w & 63)) & 1;
  }
  return count;
}

/// 4x-unrolled uint64 AND-popcount; compiles to hardware POPCNT in the
/// vector TUs. The AVX2 table overrides this with the vpshufb-LUT version.
inline TriangleCount and_popcount_unrolled(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::uint64_t num_words) {
  TriangleCount c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::uint64_t i = 0;
  for (; i + 4 <= num_words; i += 4) {
    c0 += static_cast<TriangleCount>(std::popcount(a[i] & b[i]));
    c1 += static_cast<TriangleCount>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<TriangleCount>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<TriangleCount>(std::popcount(a[i + 3] & b[i + 3]));
  }
  for (; i < num_words; ++i) {
    c0 += static_cast<TriangleCount>(std::popcount(a[i] & b[i]));
  }
  return c0 + c1 + c2 + c3;
}

/// Word-coalesced mark: ids are sorted ascending, so all bits of one word
/// build in a register and land with a single RMW.
inline void mark_coalesced(std::uint64_t* row, std::span<const VertexId> ids) {
  std::size_t i = 0;
  const std::size_t n = ids.size();
  while (i < n) {
    const std::uint64_t word = ids[i] >> 6;
    std::uint64_t mask = 0;
    do {
      mask |= std::uint64_t{1} << (ids[i] & 63);
      ++i;
    } while (i < n && (ids[i] >> 6) == word);
    row[word] |= mask;
  }
}

inline void clear_coalesced(std::uint64_t* row, std::span<const VertexId> ids) {
  std::size_t i = 0;
  const std::size_t n = ids.size();
  while (i < n) {
    const std::uint64_t word = ids[i] >> 6;
    row[word] = 0;
    do {
      ++i;
    } while (i < n && (ids[i] >> 6) == word);
  }
}

}  // namespace trico::cpu::simd::detail
