// Out-of-core triangle counting on devices too small for the whole graph —
// the paper's §VI future work, built from the outofcore::partition scheme
// and the standard GPU pipeline.
//
// Flow: color the vertices with k colors; for each of the C(k+2,3) color
// triples, extract the induced subgraph (a host-side streaming pass),
// run the full GPU pipeline on it with the color filter enabled, and sum
// the per-task counts. Each task's device footprint is a small fraction of
// the whole graph's, so a device whose memory the §III-D6 fallback cannot
// stretch far enough still processes the graph — at the cost of each edge
// being shipped to ~k tasks.
//
// With multiple devices, tasks are dealt round-robin and run independently
// (no broadcast of the whole graph, unlike §III-E) — the "better multi-GPU
// solution" the paper speculates about.

#pragma once

#include <cstdint>
#include <vector>

#include "core/gpu_forward.hpp"
#include "outofcore/partition.hpp"
#include "prim/thread_pool.hpp"
#include "store/store.hpp"

namespace trico::outofcore {

/// Per-task record.
struct TaskResult {
  std::uint32_t i = 0, j = 0, l = 0;
  std::uint64_t edge_slots = 0;
  TriangleCount triangles = 0;
  double device_ms = 0;           ///< modeled pipeline time for this task
  std::uint64_t device_bytes = 0; ///< peak device footprint
  unsigned device_index = 0;      ///< which device ran it
};

/// Result of an out-of-core run.
struct OutOfCoreResult {
  TriangleCount triangles = 0;
  double partition_ms = 0;   ///< host-side subgraph extraction (modeled)
  double device_ms = 0;      ///< max over devices of their task-time sums
  std::uint64_t max_task_bytes = 0;
  std::uint64_t total_task_slots = 0;  ///< sum of subgraph sizes (≈ k * m)
  std::vector<TaskResult> tasks;
  std::uint64_t spill_hits = 0;    ///< tasks re-served from spilled subgraphs
  std::uint64_t spill_stores = 0;  ///< tasks spilled to the artifact store
  /// Merged fault/recovery accounting of every task pipeline (e.g. kernel
  /// aborts retried inside a task run under fault injection).
  simt::RobustnessReport robustness;

  [[nodiscard]] double total_ms() const { return partition_ms + device_ms; }
};

/// Counts triangles with the color-triple partition scheme.
class OutOfCoreCounter {
 public:
  /// `num_colors` k controls the memory/extra-work trade-off: per-task
  /// footprint shrinks roughly as 3/k of the graph, total shipped edge
  /// volume grows as ~k * m.
  OutOfCoreCounter(simt::DeviceConfig device, std::uint32_t num_colors,
                   unsigned num_devices = 1,
                   core::CountingOptions options = {});

  /// Runs the partitioned computation. Throws if any single task still
  /// exceeds device memory (increase num_colors).
  [[nodiscard]] OutOfCoreResult count(const EdgeList& edges,
                                      std::uint64_t seed = 1);

  [[nodiscard]] std::uint32_t num_colors() const { return num_colors_; }

  /// Attaches the artifact store as a spill tier. Extracted color-triple
  /// subgraphs are published as `.trico` artifacts keyed by
  /// (graph key, seed, num_colors, triple) and re-served on later runs, so a
  /// repeated out-of-core count skips the streaming extraction passes
  /// entirely. The store must outlive the counter; a disabled store (or
  /// nullptr) makes this a no-op.
  void set_spill(store::ArtifactStore* store, std::uint64_t graph_key) {
    spill_store_ = store;
    spill_graph_key_ = graph_key;
  }

 private:
  simt::DeviceConfig device_config_;
  std::uint32_t num_colors_;
  unsigned num_devices_;
  core::CountingOptions options_;
  prim::ThreadPool pool_;  ///< host threads for the parallel task extraction
  store::ArtifactStore* spill_store_ = nullptr;  ///< optional spill tier
  std::uint64_t spill_graph_key_ = 0;            ///< parent graph content key
};

}  // namespace trico::outofcore
