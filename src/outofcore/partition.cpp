#include "outofcore/partition.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "gen/rng.hpp"
#include "graph/orientation.hpp"
#include "prim/algorithms.hpp"

namespace trico::outofcore {

Coloring color_vertices(VertexId num_vertices, std::uint32_t num_colors,
                        std::uint64_t seed) {
  if (num_colors == 0) {
    throw std::invalid_argument("color_vertices: zero colors");
  }
  Coloring coloring;
  coloring.num_colors = num_colors;
  coloring.color.resize(num_vertices);
  for (VertexId v = 0; v < num_vertices; ++v) {
    coloring.color[v] = static_cast<std::uint32_t>(
        gen::splitmix64(seed ^ (0x9e3779b97f4a7c15ull * (v + 1))) % num_colors);
  }
  return coloring;
}

std::uint64_t num_tasks(std::uint32_t k) {
  const std::uint64_t kk = k;
  return (kk * kk * kk + 3 * kk * kk + 2 * kk) / 6;  // C(k+2, 3) over multisets
}

SubgraphTask make_task(const EdgeList& edges, const Coloring& coloring,
                       std::uint32_t i, std::uint32_t j, std::uint32_t l) {
  if (!(i <= j && j <= l) || l >= coloring.num_colors) {
    throw std::invalid_argument("make_task: triple must satisfy i <= j <= l < k");
  }
  SubgraphTask task;
  task.i = i;
  task.j = j;
  task.l = l;
  const auto in_triple = [&](VertexId v) {
    const std::uint32_t c = coloring.of(v);
    return c == i || c == j || c == l;
  };
  std::vector<Edge> kept;
  for (const Edge& e : edges.edges()) {
    if (in_triple(e.u) && in_triple(e.v)) kept.push_back(e);
  }
  task.edges = EdgeList(std::move(kept), edges.num_vertices());
  return task;
}

SubgraphTask make_task(const EdgeList& edges, const Coloring& coloring,
                       std::uint32_t i, std::uint32_t j, std::uint32_t l,
                       prim::ThreadPool& pool,
                       const util::CancelToken* cancel) {
  if (!(i <= j && j <= l) || l >= coloring.num_colors) {
    throw std::invalid_argument("make_task: triple must satisfy i <= j <= l < k");
  }
  SubgraphTask task;
  task.i = i;
  task.j = j;
  task.l = l;
  const auto in_triple = [&](VertexId v) {
    const std::uint32_t c = coloring.of(v);
    return c == i || c == j || c == l;
  };
  const auto slots = edges.edges();
  std::vector<std::uint8_t> drop(slots.size());
  prim::parallel_chunks_dynamic(
      pool, 0, slots.size(), 0,
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        // Cancellation poll at chunk granularity: remaining chunks drain as
        // no-ops and the throw happens below on the calling thread.
        if (cancel != nullptr && cancel->cancelled()) return;
        for (std::size_t s = lo; s < hi; ++s) {
          drop[s] = !(in_triple(slots[s].u) && in_triple(slots[s].v));
        }
      });
  if (cancel != nullptr) cancel->throw_if_cancelled();
  task.edges = EdgeList(prim::remove_if_flagged<Edge>(pool, slots, drop),
                        edges.num_vertices());
  return task;
}

std::vector<SubgraphTask> make_all_tasks(const EdgeList& edges,
                                         const Coloring& coloring) {
  std::vector<SubgraphTask> tasks;
  const std::uint32_t k = coloring.num_colors;
  tasks.reserve(num_tasks(k));
  for (std::uint32_t i = 0; i < k; ++i) {
    for (std::uint32_t j = i; j < k; ++j) {
      for (std::uint32_t l = j; l < k; ++l) {
        tasks.push_back(make_task(edges, coloring, i, j, l));
      }
    }
  }
  return tasks;
}

TriangleCount count_task_cpu(const SubgraphTask& task,
                             const Coloring& coloring) {
  const Csr oriented = oriented_csr(task.edges);
  const std::array<std::uint32_t, 3> want{task.i, task.j, task.l};
  TriangleCount total = 0;
  for (VertexId u = 0; u < oriented.num_vertices(); ++u) {
    const auto adj_u = oriented.neighbors(u);
    for (VertexId v : adj_u) {
      const auto adj_v = oriented.neighbors(v);
      std::size_t a = 0, b = 0;
      while (a < adj_u.size() && b < adj_v.size()) {
        if (adj_u[a] < adj_v[b]) {
          ++a;
        } else if (adj_u[a] > adj_v[b]) {
          ++b;
        } else {
          const VertexId w = adj_u[a];
          std::array<std::uint32_t, 3> got{coloring.of(u), coloring.of(v),
                                           coloring.of(w)};
          std::sort(got.begin(), got.end());
          if (got == want) ++total;
          ++a;
          ++b;
        }
      }
    }
  }
  return total;
}

}  // namespace trico::outofcore
