#include "outofcore/counter.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

namespace trico::outofcore {

namespace {

/// Host partitioning speed for the streaming subgraph-extraction passes,
/// matching the §III-D6 host-preprocessing model.
constexpr double kHostStreamGbps = 5.0;

}  // namespace

OutOfCoreCounter::OutOfCoreCounter(simt::DeviceConfig device,
                                   std::uint32_t num_colors,
                                   unsigned num_devices,
                                   core::CountingOptions options)
    : device_config_(std::move(device)),
      num_colors_(num_colors),
      num_devices_(num_devices),
      options_(options),
      pool_(options.host_threads) {
  if (num_colors_ < 1) {
    throw std::invalid_argument("OutOfCoreCounter: need at least one color");
  }
  if (num_devices_ < 1) {
    throw std::invalid_argument("OutOfCoreCounter: need at least one device");
  }
}

OutOfCoreResult OutOfCoreCounter::count(const EdgeList& edges,
                                        std::uint64_t seed) {
  const Coloring coloring =
      color_vertices(edges.num_vertices(), num_colors_, seed);

  OutOfCoreResult result;
  std::vector<double> device_time(num_devices_, 0.0);

  core::CountingOptions task_options = options_;
  task_options.vertex_colors = &coloring.color;
  // The whole point is fitting small devices: never fall back to §III-D6
  // inside a task (a task exceeding memory means k is too small).
  task_options.allow_cpu_preprocess = false;

  // Cooperative cancellation at task granularity: the C(k+2,3) loop is the
  // longest-running host loop in the repo, and without this poll a
  // cancelled or deadline-expired out-of-core request used to run to
  // completion anyway. The token also reaches into each task's extraction
  // pass (make_task) and simulated pipeline (options.sim.cancel).
  const util::CancelToken* cancel = options_.sim.cancel;

  // Spill-tier task key: mixes the parent graph's content key with every
  // input the extraction depends on, so a different seed or color count
  // never resurrects a stale subgraph.
  const auto task_key = [&](std::uint32_t ti, std::uint32_t tj,
                            std::uint32_t tl) {
    std::uint64_t h = spill_graph_key_ ^ 0x517cc1b727220a95ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(seed);
    mix(num_colors_);
    mix(ti);
    mix(tj);
    mix(tl);
    return h;
  };

  unsigned next_device = 0;
  for (std::uint32_t i = 0; i < num_colors_; ++i) {
    for (std::uint32_t j = i; j < num_colors_; ++j) {
      for (std::uint32_t l = j; l < num_colors_; ++l) {
        if (cancel != nullptr) cancel->throw_if_cancelled();
        EdgeList task_edges;
        std::optional<EdgeList> spilled;
        if (spill_store_ != nullptr) {
          spilled = spill_store_->load_edges(task_key(i, j, l), pool_);
        }
        if (spilled) {
          // Re-served from a prior run's spill: skip the streaming
          // extraction pass entirely.
          ++result.spill_hits;
          task_edges = std::move(*spilled);
        } else {
          SubgraphTask task =
              make_task(edges, coloring, i, j, l, pool_, cancel);
          task_edges = std::move(task.edges);
          if (spill_store_ != nullptr &&
              spill_store_->publish_edges(task_key(i, j, l), task_edges)) {
            ++result.spill_stores;
          }
        }
        result.total_task_slots += task_edges.num_edge_slots();
        if (task_edges.empty()) continue;

        task_options.color_triple = {i, j, l};
        core::GpuForwardCounter counter(device_config_, task_options);
        const core::GpuCountResult r = counter.count(task_edges);
        result.robustness.merge(r.robustness);

        TaskResult record;
        record.i = i;
        record.j = j;
        record.l = l;
        record.edge_slots = task_edges.num_edge_slots();
        record.triangles = r.triangles;
        record.device_ms = r.phases.total_ms();
        record.device_bytes = r.device_peak_bytes;
        record.device_index = next_device;
        result.tasks.push_back(record);

        result.triangles += r.triangles;
        result.max_task_bytes =
            std::max(result.max_task_bytes, r.device_peak_bytes);
        device_time[next_device] += r.phases.total_ms();
        next_device = (next_device + 1) % num_devices_;
      }
    }
  }

  // Host partitioning: one streaming pass per color triple over the full
  // edge array (read) plus the writes of the extracted subgraphs.
  const double read_bytes = static_cast<double>(num_tasks(num_colors_)) *
                            static_cast<double>(edges.num_edge_slots()) * 8.0;
  const double write_bytes =
      static_cast<double>(result.total_task_slots) * 8.0;
  result.partition_ms = (read_bytes + write_bytes) / (kHostStreamGbps * 1e6);

  result.device_ms =
      *std::max_element(device_time.begin(), device_time.end());
  return result;
}

}  // namespace trico::outofcore
