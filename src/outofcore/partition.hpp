// Graph partitioning for out-of-core triangle counting — the paper's first
// future-work direction (§VI):
//
//   "it would be interesting to check if methods from [5], [17] can be
//    applied ... to split the graph into subgraphs which can be processed
//    independently. This could give a better multi-GPU solution, and ...
//    would allow to count triangles in graphs which do not fit into the
//    GPU memory."
//
// This module implements the color-triple scheme of Suri & Vassilvitskii
// (WWW'11) / Chu & Cheng (KDD'11): hash every vertex into one of k colors;
// for every unordered color triple {i <= j <= l} form the subgraph induced
// by vertices colored i, j or l. Every triangle's (sorted) color triple
// identifies exactly one responsible subgraph, so counting *only* the
// triangles whose sorted colors equal the subgraph's triple counts each
// triangle exactly once, with no inclusion-exclusion corrections. Each
// subgraph carries ~(3/k)-ish of the edges, so it fits a device whose
// memory the whole graph exceeds.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"
#include "util/cancel.hpp"

namespace trico::outofcore {

/// A vertex coloring into k parts.
struct Coloring {
  std::uint32_t num_colors = 0;
  std::vector<std::uint32_t> color;  ///< one entry per vertex

  [[nodiscard]] std::uint32_t of(VertexId v) const { return color[v]; }
};

/// Colors vertices by a seeded hash — balanced in expectation, independent
/// of vertex numbering.
[[nodiscard]] Coloring color_vertices(VertexId num_vertices,
                                      std::uint32_t num_colors,
                                      std::uint64_t seed);

/// One work item of the partitioned computation.
struct SubgraphTask {
  std::uint32_t i = 0, j = 0, l = 0;  ///< sorted color triple (i <= j <= l)
  EdgeList edges;                     ///< induced subgraph, original vertex ids
};

/// All unordered color triples {i <= j <= l} for k colors:
/// C(k,3) + 2*C(k,2)*... — i.e. k + k(k-1) + C(k,3) tasks. The number of
/// tasks is (k^3 + 3k^2 + 2k) / 6.
[[nodiscard]] std::uint64_t num_tasks(std::uint32_t num_colors);

/// Materializes the induced subgraph for one color triple: edges whose both
/// endpoints are colored in {i, j, l}.
[[nodiscard]] SubgraphTask make_task(const EdgeList& edges,
                                     const Coloring& coloring,
                                     std::uint32_t i, std::uint32_t j,
                                     std::uint32_t l);

/// Parallel make_task: the extraction (flag + stable compaction) runs on the
/// pool, producing the identical subgraph. This is the host-side streaming
/// pass the out-of-core counter repeats C(k+2,3) times, so it dominates
/// partition wall clock on large graphs. `cancel` is polled at chunk
/// granularity inside the parallel flag pass (same idiom as the cpu-hybrid
/// inner loop): remaining chunks drain as no-ops and CancelledError is
/// thrown on the calling thread.
[[nodiscard]] SubgraphTask make_task(const EdgeList& edges,
                                     const Coloring& coloring,
                                     std::uint32_t i, std::uint32_t j,
                                     std::uint32_t l, prim::ThreadPool& pool,
                                     const util::CancelToken* cancel = nullptr);

/// Enumerates every task for `coloring` (small k only — the count is cubic).
[[nodiscard]] std::vector<SubgraphTask> make_all_tasks(const EdgeList& edges,
                                                       const Coloring& coloring);

/// Counts the triangles of `task.edges` whose sorted vertex-color triple is
/// exactly (task.i, task.j, task.l) — the per-task contribution that makes
/// the partitioned total exact. CPU reference implementation.
[[nodiscard]] TriangleCount count_task_cpu(const SubgraphTask& task,
                                           const Coloring& coloring);

}  // namespace trico::outofcore
