#include "analysis/clustering.hpp"

#include "cpu/counting.hpp"

namespace trico::analysis {

std::vector<double> local_clustering(const EdgeList& edges) {
  const std::vector<TriangleCount> triangles = cpu::per_vertex_triangles(edges);
  const std::vector<EdgeIndex> degree = edges.degrees();
  std::vector<double> coefficient(edges.num_vertices(), 0.0);
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    const auto d = static_cast<double>(degree[v]);
    if (degree[v] >= 2) {
      coefficient[v] =
          2.0 * static_cast<double>(triangles[v]) / (d * (d - 1.0));
    }
  }
  return coefficient;
}

double global_clustering(const EdgeList& edges) {
  const std::vector<double> local = local_clustering(edges);
  const std::vector<EdgeIndex> degree = edges.degrees();
  double sum = 0.0;
  std::uint64_t eligible = 0;
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (degree[v] >= 2) {
      sum += local[v];
      ++eligible;
    }
  }
  return eligible > 0 ? sum / static_cast<double>(eligible) : 0.0;
}

std::uint64_t wedge_count(const EdgeList& edges) {
  const std::vector<EdgeIndex> degree = edges.degrees();
  std::uint64_t wedges = 0;
  for (EdgeIndex d : degree) wedges += d * (d - 1) / 2;
  return wedges;
}

double transitivity(const EdgeList& edges) {
  const std::uint64_t wedges = wedge_count(edges);
  if (wedges == 0) return 0.0;
  const TriangleCount triangles = cpu::count_forward(edges);
  return 3.0 * static_cast<double>(triangles) / static_cast<double>(wedges);
}

}  // namespace trico::analysis
