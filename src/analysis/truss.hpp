// Edge support and k-truss decomposition.
//
// The per-edge intersection sizes the CountTriangles kernel computes are
// exactly the *support* of each edge (the number of triangles containing
// it) — the quantity behind the k-truss, the standard triangle-based
// cohesion decomposition in network analysis. This module exposes both, as
// the downstream application layer over the counting core.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace trico::analysis {

/// Support of every undirected edge: result[i] = number of triangles
/// containing pair i, where pairs are the canonical (u < v) edges in sorted
/// order. Returns the pair list alongside the supports.
struct EdgeSupport {
  std::vector<Edge> pairs;              ///< sorted canonical pairs (u < v)
  std::vector<std::uint32_t> support;   ///< one entry per pair
};

[[nodiscard]] EdgeSupport edge_support(const EdgeList& edges);

/// Trussness of every edge: the largest k such that the edge survives in
/// the k-truss (the maximal subgraph where every edge closes at least k-2
/// triangles within the subgraph). Edges in no triangle get trussness 2.
/// Computed by the standard peeling algorithm.
struct TrussDecomposition {
  std::vector<Edge> pairs;                 ///< sorted canonical pairs
  std::vector<std::uint32_t> trussness;    ///< per pair, >= 2
  std::uint32_t max_trussness = 2;
};

[[nodiscard]] TrussDecomposition truss_decomposition(const EdgeList& edges);

/// Edges of the k-truss of the graph (k >= 2): pairs with trussness >= k.
[[nodiscard]] EdgeList k_truss(const EdgeList& edges, std::uint32_t k);

/// Degree-resolved clustering profile C(k): mean local clustering
/// coefficient over vertices of degree k (NaN-free: degrees with no
/// vertices get 0). Used to study hierarchical structure; result.size() =
/// max degree + 1.
[[nodiscard]] std::vector<double> clustering_by_degree(const EdgeList& edges);

}  // namespace trico::analysis
