// Network-analysis metrics built on triangle counting — the motivating
// applications from the paper's introduction (§I): the local/global
// clustering coefficient and the transitivity ratio.

#pragma once

#include <vector>

#include "graph/edge_list.hpp"

namespace trico::analysis {

/// Local clustering coefficient of every vertex:
/// c(v) = triangles(v) / C(deg(v), 2), defined as 0 when deg(v) < 2.
[[nodiscard]] std::vector<double> local_clustering(const EdgeList& edges);

/// Global clustering coefficient: the average of the local coefficients
/// (Watts–Strogatz definition) over vertices of degree >= 2.
[[nodiscard]] double global_clustering(const EdgeList& edges);

/// Transitivity ratio: 3 * triangles / number of connected vertex triples
/// (paths of length two).
[[nodiscard]] double transitivity(const EdgeList& edges);

/// Number of paths of length two (open + closed wedges):
/// sum_v C(deg(v), 2).
[[nodiscard]] std::uint64_t wedge_count(const EdgeList& edges);

}  // namespace trico::analysis
