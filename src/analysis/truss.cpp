#include "analysis/truss.hpp"

#include <algorithm>
#include <unordered_map>

#include "analysis/clustering.hpp"

namespace trico::analysis {

namespace {

/// Index of canonical pair (u < v) in the sorted pair list, or -1.
class PairIndex {
 public:
  explicit PairIndex(const std::vector<Edge>& pairs) {
    index_.reserve(pairs.size() * 2);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      index_.emplace(pack_edge(pairs[i]), i);
    }
  }

  [[nodiscard]] std::int64_t find(VertexId u, VertexId v) const {
    if (u > v) std::swap(u, v);
    const auto it = index_.find(pack_edge(Edge{u, v}));
    return it == index_.end() ? -1 : static_cast<std::int64_t>(it->second);
  }

 private:
  std::unordered_map<std::uint64_t, std::size_t> index_;
};

std::vector<Edge> sorted_pairs(const EdgeList& edges) {
  std::vector<Edge> pairs;
  pairs.reserve(edges.num_edges());
  for (const Edge& e : edges.edges()) {
    if (e.u < e.v) pairs.push_back(e);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

}  // namespace

EdgeSupport edge_support(const EdgeList& edges) {
  EdgeSupport result;
  result.pairs = sorted_pairs(edges);
  result.support.assign(result.pairs.size(), 0);
  const PairIndex index(result.pairs);
  const Csr adjacency = Csr::from_edge_list(edges);
  for (std::size_t i = 0; i < result.pairs.size(); ++i) {
    const Edge& e = result.pairs[i];
    const auto adj_u = adjacency.neighbors(e.u);
    const auto adj_v = adjacency.neighbors(e.v);
    std::size_t a = 0, b = 0;
    while (a < adj_u.size() && b < adj_v.size()) {
      if (adj_u[a] < adj_v[b]) {
        ++a;
      } else if (adj_u[a] > adj_v[b]) {
        ++b;
      } else {
        ++result.support[i];
        ++a;
        ++b;
      }
    }
  }
  return result;
}

TrussDecomposition truss_decomposition(const EdgeList& edges) {
  EdgeSupport initial = edge_support(edges);
  TrussDecomposition result;
  result.pairs = initial.pairs;
  const std::size_t m = result.pairs.size();
  result.trussness.assign(m, 2);
  if (m == 0) return result;

  const PairIndex index(result.pairs);
  const Csr adjacency = Csr::from_edge_list(edges);
  std::vector<std::uint32_t> support = std::move(initial.support);
  std::vector<std::uint8_t> alive(m, 1);

  // Lazy bucket queue keyed by current support.
  std::uint32_t max_support = 0;
  for (std::uint32_t s : support) max_support = std::max(max_support, s);
  std::vector<std::vector<std::uint32_t>> buckets(max_support + 1);
  for (std::uint32_t i = 0; i < m; ++i) {
    buckets[support[i]].push_back(i);
  }

  std::uint32_t running = 0;  // current peel level (support floor)
  std::size_t removed = 0;
  std::size_t cursor = 0;
  while (removed < m) {
    // Find the lowest non-empty bucket holding a live, up-to-date entry.
    while (cursor < buckets.size()) {
      bool popped = false;
      while (!buckets[cursor].empty()) {
        const std::uint32_t e = buckets[cursor].back();
        buckets[cursor].pop_back();
        if (!alive[e] || support[e] != cursor) continue;  // stale entry
        // Peel edge e.
        running = std::max(running, static_cast<std::uint32_t>(cursor));
        result.trussness[e] = running + 2;
        alive[e] = 0;
        ++removed;
        const Edge& pair = result.pairs[e];
        const auto adj_u = adjacency.neighbors(pair.u);
        const auto adj_v = adjacency.neighbors(pair.v);
        std::size_t a = 0, b = 0;
        while (a < adj_u.size() && b < adj_v.size()) {
          if (adj_u[a] < adj_v[b]) {
            ++a;
          } else if (adj_u[a] > adj_v[b]) {
            ++b;
          } else {
            const VertexId w = adj_u[a];
            const std::int64_t uw = index.find(pair.u, w);
            const std::int64_t vw = index.find(pair.v, w);
            if (uw >= 0 && vw >= 0 && alive[uw] && alive[vw]) {
              for (const std::int64_t other : {uw, vw}) {
                if (support[other] > 0) {
                  --support[other];
                  buckets[support[other]].push_back(
                      static_cast<std::uint32_t>(other));
                }
              }
            }
            ++a;
            ++b;
          }
        }
        popped = true;
        break;  // re-scan from the lowest bucket (supports only decrease)
      }
      if (popped) {
        // Decrements may have filled buckets below `cursor`; restart the
        // scan from the current peel floor (they cannot go below it... but
        // decremented supports can, so restart from 0 and rely on `running`
        // for monotone trussness).
        cursor = 0;
      } else {
        ++cursor;
      }
      if (removed == m) break;
    }
  }

  for (std::uint32_t t : result.trussness) {
    result.max_trussness = std::max(result.max_trussness, t);
  }
  return result;
}

EdgeList k_truss(const EdgeList& edges, std::uint32_t k) {
  const TrussDecomposition decomposition = truss_decomposition(edges);
  std::vector<Edge> kept;
  for (std::size_t i = 0; i < decomposition.pairs.size(); ++i) {
    if (decomposition.trussness[i] >= k) kept.push_back(decomposition.pairs[i]);
  }
  return EdgeList::from_undirected_pairs(kept, edges.num_vertices());
}

std::vector<double> clustering_by_degree(const EdgeList& edges) {
  const std::vector<double> local = local_clustering(edges);
  const std::vector<EdgeIndex> degree = edges.degrees();
  EdgeIndex max_degree = 0;
  for (EdgeIndex d : degree) max_degree = std::max(max_degree, d);
  std::vector<double> sum(max_degree + 1, 0.0);
  std::vector<std::uint64_t> count(max_degree + 1, 0);
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    sum[degree[v]] += local[v];
    ++count[degree[v]];
  }
  std::vector<double> profile(max_degree + 1, 0.0);
  for (std::size_t d = 0; d <= max_degree; ++d) {
    if (count[d] > 0) profile[d] = sum[d] / static_cast<double>(count[d]);
  }
  return profile;
}

}  // namespace trico::analysis
