// A miniature MapReduce execution engine with a modeled cluster.
//
// The paper's §V opens with the MapReduce comparison: "MapReduce approach
// to the problem [5] has significant overhead, and even for moderately
// sized graphs the execution time is in the order of minutes. It is
// beneficial to use it for extremely large graphs, with the number of
// edges in the order of one billion."
//
// To reproduce that comparison without a cluster, this engine runs
// map/shuffle/reduce rounds *functionally* on the host (results are exact)
// while charging a cluster cost model per round: fixed job-scheduling
// overhead (the dominant term at small scale — the paper's "significant
// overhead") plus data-volume terms for map input, shuffle traffic, and
// reduce input across a fixed worker pool. Keys are 64-bit; values are
// POD. Records are hash-partitioned to reducers by key, and the largest
// reducer's input is tracked to expose the "curse of the last reducer"
// the [5] title refers to.

#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace trico::mr {

/// Modeled Hadoop-style cluster.
struct ClusterConfig {
  std::uint32_t num_workers = 40;
  /// Per-round fixed cost: job scheduling, task launch, barrier. This is
  /// what makes MapReduce lose at moderate scale (tens of seconds per
  /// round on 2011-era Hadoop).
  double per_round_overhead_s = 25.0;
  /// Per-worker record-processing throughput (map+reduce), bytes/s.
  double worker_throughput_bps = 50e6;
  /// Aggregate shuffle (network + spill) bandwidth, bytes/s.
  double shuffle_bandwidth_bps = 1e9;
};

/// Accounting for one round.
struct RoundStats {
  std::uint64_t map_input_records = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t map_output_bytes = 0;
  std::uint64_t reduce_groups = 0;
  std::uint64_t max_reducer_records = 0;  ///< the "last reducer"
  double modeled_s = 0;
};

/// Aggregated job statistics.
struct JobStats {
  std::vector<RoundStats> rounds;
  [[nodiscard]] double total_s() const {
    double total = 0;
    for (const RoundStats& r : rounds) total += r.modeled_s;
    return total;
  }
  [[nodiscard]] std::uint64_t max_reducer_records() const {
    std::uint64_t worst = 0;
    for (const RoundStats& r : rounds) {
      worst = std::max(worst, r.max_reducer_records);
    }
    return worst;
  }
};

/// One round over records of type In producing records of type Out.
/// `map` emits key/value records; the engine groups by key (stable within
/// a key, hash-partitioned across reducers for skew accounting); `reduce`
/// sees each key's values together.
template <typename In, typename Out>
class Round {
 public:
  struct Record {
    std::uint64_t key;
    Out value;
  };
  using Emit = std::function<void(std::uint64_t, const Out&)>;
  using MapFn = std::function<void(const In&, const Emit&)>;
  using ReduceFn =
      std::function<void(std::uint64_t, std::span<const Out>,
                         const std::function<void(const Out&)>&)>;
};

/// Runs one map-shuffle-reduce round and returns the reducer outputs.
/// The engine is deterministic: groups are processed in ascending key
/// order and values keep their emission order.
template <typename In, typename Out>
std::vector<Out> run_round(const ClusterConfig& cluster,
                           std::span<const In> input,
                           const typename Round<In, Out>::MapFn& map,
                           const typename Round<In, Out>::ReduceFn& reduce,
                           RoundStats& stats) {
  using Record = typename Round<In, Out>::Record;
  std::vector<Record> intermediate;
  stats.map_input_records = input.size();
  for (const In& item : input) {
    map(item, [&](std::uint64_t key, const Out& value) {
      intermediate.push_back(Record{key, value});
    });
  }
  stats.map_output_records = intermediate.size();
  stats.map_output_bytes =
      intermediate.size() * (sizeof(std::uint64_t) + sizeof(Out));

  std::stable_sort(
      intermediate.begin(), intermediate.end(),
      [](const Record& a, const Record& b) { return a.key < b.key; });

  // Partition skew accounting: records hash to num_workers reducers.
  std::vector<std::uint64_t> reducer_load(cluster.num_workers, 0);

  std::vector<Out> output;
  std::vector<Out> group_values;
  std::size_t i = 0;
  while (i < intermediate.size()) {
    const std::uint64_t key = intermediate[i].key;
    group_values.clear();
    while (i < intermediate.size() && intermediate[i].key == key) {
      group_values.push_back(intermediate[i].value);
      ++i;
    }
    ++stats.reduce_groups;
    std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
    h ^= h >> 32;
    reducer_load[h % cluster.num_workers] += group_values.size();
    reduce(key, group_values, [&](const Out& value) { output.push_back(value); });
  }
  for (std::uint64_t load : reducer_load) {
    stats.max_reducer_records = std::max(stats.max_reducer_records, load);
  }

  // Cluster time: fixed overhead + parallel map + shuffle + the *slowest*
  // reducer (stragglers gate the round — the curse of the last reducer).
  const double record_bytes = sizeof(std::uint64_t) + sizeof(Out);
  const double map_s =
      static_cast<double>(input.size()) * sizeof(In) /
      (cluster.worker_throughput_bps * cluster.num_workers);
  const double shuffle_s = static_cast<double>(stats.map_output_bytes) /
                           cluster.shuffle_bandwidth_bps;
  const double reduce_s =
      static_cast<double>(stats.max_reducer_records) * record_bytes /
      cluster.worker_throughput_bps;
  stats.modeled_s =
      cluster.per_round_overhead_s + map_s + shuffle_s + reduce_s;
  return output;
}

}  // namespace trico::mr
