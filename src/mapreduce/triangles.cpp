#include "mapreduce/triangles.hpp"

#include <algorithm>
#include <array>
#include <span>

#include "gen/rng.hpp"
#include "graph/orientation.hpp"
#include "outofcore/partition.hpp"

namespace trico::mr {

namespace {

/// Tagged record for the join round: a packed vertex pair plus whether it
/// is a wedge occurrence or a real edge.
struct TaggedPair {
  std::uint64_t pair;
  std::uint8_t tag;  // 0 = wedge, 1 = edge
};

}  // namespace

MrCountResult count_node_iterator_pp(const EdgeList& edges,
                                     const ClusterConfig& cluster,
                                     bool use_degree_order) {
  MrCountResult result;

  const EdgeList oriented =
      use_degree_order ? orient_forward(edges) : orient_by_id(edges);

  // Round 1: group oriented edges by source; each reducer emits every pair
  // of its group's targets as an open wedge keyed by the (sorted) pair.
  RoundStats round1;
  const auto wedges = run_round<Edge, std::uint64_t>(
      cluster, oriented.edges(),
      [](const Edge& e, const auto& emit) {
        emit(e.u, static_cast<std::uint64_t>(e.v));
      },
      [](std::uint64_t /*pivot*/, std::span<const std::uint64_t> targets,
         const auto& emit) {
        for (std::size_t i = 0; i < targets.size(); ++i) {
          for (std::size_t j = i + 1; j < targets.size(); ++j) {
            const auto a = static_cast<VertexId>(targets[i]);
            const auto b = static_cast<VertexId>(targets[j]);
            emit(pack_edge(Edge{std::min(a, b), std::max(a, b)}));
          }
        }
      },
      round1);
  result.job.rounds.push_back(round1);

  // Round 2: join wedges against the (canonical, u < v) edge set; each
  // wedge whose closing edge exists is one triangle.
  std::vector<TaggedPair> join_input;
  join_input.reserve(wedges.size() + edges.num_edges());
  for (std::uint64_t w : wedges) join_input.push_back(TaggedPair{w, 0});
  for (const Edge& e : edges.edges()) {
    if (e.u < e.v) join_input.push_back(TaggedPair{pack_edge(e), 1});
  }
  RoundStats round2;
  TriangleCount total = 0;
  run_round<TaggedPair, std::uint8_t>(
      cluster, join_input,
      [](const TaggedPair& record, const auto& emit) {
        emit(record.pair, record.tag);
      },
      [&total](std::uint64_t /*pair*/, std::span<const std::uint8_t> tags,
               const auto& /*emit*/) {
        std::uint64_t wedge_count = 0;
        bool edge_present = false;
        for (std::uint8_t tag : tags) {
          if (tag == 0) {
            ++wedge_count;
          } else {
            edge_present = true;
          }
        }
        if (edge_present) total += wedge_count;
      },
      round2);
  result.job.rounds.push_back(round2);
  result.triangles = total;
  return result;
}

MrCountResult count_graph_partition(const EdgeList& edges,
                                    const ClusterConfig& cluster,
                                    std::uint32_t num_colors,
                                    std::uint64_t seed) {
  MrCountResult result;
  const outofcore::Coloring coloring =
      outofcore::color_vertices(edges.num_vertices(), num_colors, seed);
  const std::uint64_t k = num_colors;

  // Canonical pairs as round input.
  std::vector<Edge> pairs;
  pairs.reserve(edges.num_edges());
  for (const Edge& e : edges.edges()) {
    if (e.u < e.v) pairs.push_back(e);
  }

  RoundStats round;
  TriangleCount total = 0;
  run_round<Edge, Edge>(
      cluster, pairs,
      [&](const Edge& e, const auto& emit) {
        // Emit the pair to every color triple containing both endpoint
        // colors: one triple per choice of third color (all distinct as
        // multisets).
        std::array<std::uint32_t, 3> triple{};
        for (std::uint32_t c = 0; c < k; ++c) {
          triple = {coloring.of(e.u), coloring.of(e.v), c};
          std::sort(triple.begin(), triple.end());
          const std::uint64_t key =
              (static_cast<std::uint64_t>(triple[0]) * k + triple[1]) * k +
              triple[2];
          emit(key, e);
        }
      },
      [&](std::uint64_t key, std::span<const Edge> subgraph_pairs,
          const auto& /*emit*/) {
        // Decode the triple and count this subgraph's responsibility:
        // triangles whose sorted color multiset equals the triple.
        outofcore::SubgraphTask task;
        task.l = static_cast<std::uint32_t>(key % k);
        task.j = static_cast<std::uint32_t>((key / k) % k);
        task.i = static_cast<std::uint32_t>(key / (k * k));
        task.edges = EdgeList::from_undirected_pairs(subgraph_pairs,
                                                     edges.num_vertices());
        total += outofcore::count_task_cpu(task, coloring);
      },
      round);
  result.job.rounds.push_back(round);
  result.triangles = total;
  return result;
}

}  // namespace trico::mr
