// The two MapReduce triangle-counting algorithms of Suri & Vassilvitskii
// (WWW'11) [5] — the paper's §V comparison point — on the trico::mr engine.
//
//  * NodeIterator++: round 1 groups edges by their ≺-smaller endpoint and
//    emits every "pivot wedge" (pair of ≺-larger neighbours); round 2 joins
//    wedges against edges: a wedge that meets its closing edge is a
//    triangle. The degree ordering bounds per-vertex wedge output by
//    deg+(v)^2 <= 2m per vertex class — without it, hub vertices make the
//    naive variant explode (the "curse of the last reducer").
//  * GraphPartition: one round; each edge is mapped to every color triple
//    containing both endpoint colors and each reducer counts its induced
//    subgraph's triangles with the exact color-triple filter (shared with
//    trico::outofcore).

#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "mapreduce/engine.hpp"

namespace trico::mr {

/// Result of a MapReduce triangle count.
struct MrCountResult {
  TriangleCount triangles = 0;
  JobStats job;
};

/// NodeIterator++ [5]: two rounds; `use_degree_order` selects the paper's
/// fixed variant (pivot = lowest-degree vertex) vs the naive id-order
/// variant whose hub reducers explode on skewed graphs.
[[nodiscard]] MrCountResult count_node_iterator_pp(
    const EdgeList& edges, const ClusterConfig& cluster,
    bool use_degree_order = true);

/// GraphPartition [5]: one round over `num_colors` vertex colors.
[[nodiscard]] MrCountResult count_graph_partition(const EdgeList& edges,
                                                  const ClusterConfig& cluster,
                                                  std::uint32_t num_colors,
                                                  std::uint64_t seed = 1);

}  // namespace trico::mr
