#include <cassert>

#include "prim/algorithms.hpp"

namespace trico::prim {

std::vector<std::uint64_t> histogram(ThreadPool& pool,
                                     std::span<const std::uint32_t> keys,
                                     std::size_t num_bins) {
  const std::size_t nw = pool.num_threads();
  std::vector<std::vector<std::uint64_t>> local(nw);
  const std::size_t n = keys.size();
  const std::size_t chunk = (n + nw - 1) / nw;
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    auto& bins = local[w];
    bins.assign(num_bins, 0);
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      assert(keys[i] < num_bins);
      ++bins[keys[i]];
    }
  });
  std::vector<std::uint64_t> bins(num_bins, 0);
  for (const auto& part : local) {
    for (std::size_t b = 0; b < num_bins; ++b) bins[b] += part[b];
  }
  return bins;
}

}  // namespace trico::prim
