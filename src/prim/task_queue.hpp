// A bounded, priority-ordered MPMC task queue.
//
// This is the submission substrate of the service layer's RequestScheduler
// (src/service/scheduler.hpp): producers try_push closures with a priority,
// consumers pop them in (priority desc, FIFO-within-priority) order, and a
// full queue rejects the push instead of blocking or growing — the
// backpressure signal the service turns into a reject-with-reason response.
//
// Like ThreadPool it is an explicit object with no hidden global state.
// pause()/resume() gate consumers without affecting producers, which lets
// tests (and drains) stage a queue deterministically before any worker runs.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <vector>

namespace trico::prim {

/// Bounded MPMC queue of closures with integer priorities (higher pops
/// first; equal priorities pop FIFO).
class TaskQueue {
 public:
  using Task = std::function<void()>;

  explicit TaskQueue(std::size_t capacity);

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues `task` unless the queue is full or closed. Never blocks.
  /// Returns false (leaving the queue unchanged) when rejected.
  bool try_push(Task task, int priority = 0);

  /// Blocks until a task is available (and the queue is not paused), then
  /// returns the highest-priority one. Returns an empty function once the
  /// queue is closed *and* drained.
  [[nodiscard]] Task pop();

  /// Stops accepting pushes; consumers drain the remaining tasks, then every
  /// blocked pop() returns empty. Also clears any pause so a paused queue
  /// cannot deadlock shutdown.
  void close();

  /// Consumers block in pop() while paused (producers are unaffected).
  void pause();
  void resume();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t depth() const;       ///< tasks currently queued
  [[nodiscard]] std::size_t peak_depth() const;  ///< high-water mark
  [[nodiscard]] std::uint64_t rejected() const;  ///< try_push refusals
  [[nodiscard]] bool closed() const;

 private:
  struct Item {
    int priority = 0;
    std::uint64_t seq = 0;  ///< tie-break: lower seq (earlier push) first
    Task task;
  };
  struct ItemOrder {
    bool operator()(const Item& a, const Item& b) const {
      // std::priority_queue pops the *largest*; make that the highest
      // priority, earliest sequence.
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable consumer_cv_;
  std::priority_queue<Item, std::vector<Item>, ItemOrder> items_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t peak_depth_ = 0;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace trico::prim
