// A fixed-size work-sharing thread pool.
//
// This is the execution substrate for the "Thrust substitute" primitives
// (prim::*) and for the multicore-CPU comparison of §V. Tasks are submitted
// in bulk as index ranges (parallel_for style) rather than one closure per
// item, which keeps per-task overhead negligible for data-parallel loops.
//
// Per CP.3/CP.4 of the C++ Core Guidelines, the pool is an explicit object —
// no hidden global state — and callers think in tasks, not threads.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trico::prim {

/// Work-sharing pool over `num_threads` worker threads. A pool with 0 or 1
/// threads degenerates to inline sequential execution (useful for tests and
/// for machines with a single hardware thread).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// Runs body(begin..end) partitioned into contiguous chunks across the
  /// workers (and the calling thread). Blocks until every chunk finished.
  /// `body(lo, hi)` processes the half-open index range [lo, hi).
  void parallel_ranges(std::size_t begin, std::size_t end,
                       const std::function<void(std::size_t, std::size_t)>& body);

  /// Runs body(worker_index, num_workers) once on each worker slot (including
  /// the caller's slot). Used by primitives that need per-worker scratch.
  void parallel_workers(const std::function<void(std::size_t, std::size_t)>& body);

  /// A process-wide default pool sized to the hardware. Prefer passing an
  /// explicit pool; this exists so one-shot helpers have a sane default.
  static ThreadPool& shared();

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t begin = 0;
    std::size_t end = 0;          // for parallel_ranges
    std::size_t chunk = 0;        // chunk size
    std::size_t next = 0;         // next chunk cursor (guarded by mutex_)
    bool per_worker = false;      // parallel_workers mode
    std::size_t generation = 0;
    std::size_t active_workers = 0;
  };

  void worker_loop(std::size_t worker_index);
  void run_job_share(std::size_t worker_index);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable job_ready_;
  std::condition_variable job_done_;
  Job job_;
  bool shutting_down_ = false;
};

}  // namespace trico::prim
