// Data-parallel primitives: the vocabulary the paper's preprocessing phase is
// written in (thrust::reduce, thrust::sort, thrust::remove_if, ...), here
// implemented on the ThreadPool. All primitives are deterministic for a given
// input regardless of thread count.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <numeric>
#include <span>
#include <type_traits>
#include <vector>

#include "prim/thread_pool.hpp"

namespace trico::prim {

/// parallel_for: applies fn(i) for i in [begin, end) across the pool.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Fn&& fn) {
  pool.parallel_ranges(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// Picks a dynamic-scheduling chunk size: small enough that a skewed work
/// distribution rebalances (~64 chunks per worker), large enough that the
/// atomic cursor is not contended.
[[nodiscard]] inline std::size_t dynamic_chunk(std::size_t count,
                                               std::size_t num_workers) {
  return std::clamp<std::size_t>(count / (num_workers * 64 + 1), 1, 4096);
}

/// Dynamic-schedule parallel loop: workers claim chunks of `chunk` indices
/// from a shared atomic cursor (work stealing by over-subscription), so one
/// straggler chunk cannot serialize the whole loop the way static
/// partitioning does on skewed per-index costs. `body(worker, lo, hi)` runs
/// the half-open range [lo, hi) on worker slot `worker`; chunk 0 = auto.
template <typename Body>
void parallel_chunks_dynamic(ThreadPool& pool, std::size_t begin,
                             std::size_t end, std::size_t chunk, Body&& body) {
  if (begin >= end) return;
  if (chunk == 0) chunk = dynamic_chunk(end - begin, pool.num_threads());
  std::atomic<std::size_t> cursor{begin};
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      body(w, lo, std::min(end, lo + chunk));
    }
  });
}

/// parallel_for with dynamic chunking: fn(i) for i in [begin, end), chunks
/// claimed from an atomic cursor (chunk 0 = auto).
template <typename Fn>
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t chunk, Fn&& fn) {
  parallel_chunks_dynamic(pool, begin, end, chunk,
                          [&fn](std::size_t, std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i) fn(i);
                          });
}

/// transform_reduce with dynamic chunking: reduce over fn(i) for i in
/// [0, count). Which worker claims which chunk varies run to run, so the
/// result is deterministic only when `op` is *exactly* associative and
/// commutative (integer sums, max, ...) — unlike the static transform_reduce
/// below, do not use this with floating-point accumulation.
template <typename T, typename Fn, typename Op = std::plus<T>>
[[nodiscard]] T transform_reduce_dynamic(ThreadPool& pool, std::size_t count,
                                         std::size_t chunk, T init, Fn&& fn,
                                         Op op = Op{}) {
  if (count == 0) return init;
  std::vector<T> partial(pool.num_threads(), init);
  parallel_chunks_dynamic(
      pool, 0, count, chunk,
      [&](std::size_t w, std::size_t lo, std::size_t hi) {
        T acc = partial[w];
        for (std::size_t i = lo; i < hi; ++i) acc = op(acc, fn(i));
        partial[w] = acc;
      });
  T result = init;
  for (const T& p : partial) result = op(result, p);
  return result;
}

/// reduce: folds values with `op` (must be associative & commutative),
/// seeded with `init`. Mirrors thrust::reduce — preprocessing step 2 uses it
/// with a maximum operator to find the vertex count.
template <typename T, typename Op = std::plus<T>>
[[nodiscard]] T reduce(ThreadPool& pool, std::span<const T> values, T init = T{},
                       Op op = Op{}) {
  if (values.empty()) return init;
  std::vector<T> partial(pool.num_threads(), init);
  pool.parallel_workers([&](std::size_t w, std::size_t nw) {
    const std::size_t chunk = (values.size() + nw - 1) / nw;
    const std::size_t lo = std::min(values.size(), w * chunk);
    const std::size_t hi = std::min(values.size(), lo + chunk);
    T acc = init;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, values[i]);
    partial[w] = acc;
  });
  T result = init;
  for (const T& p : partial) result = op(result, p);
  return result;
}

/// transform_reduce: reduce over fn(i) for i in [0, count).
template <typename T, typename Fn, typename Op = std::plus<T>>
[[nodiscard]] T transform_reduce(ThreadPool& pool, std::size_t count, T init,
                                 Fn&& fn, Op op = Op{}) {
  if (count == 0) return init;
  std::vector<T> partial(pool.num_threads(), init);
  pool.parallel_workers([&](std::size_t w, std::size_t nw) {
    const std::size_t chunk = (count + nw - 1) / nw;
    const std::size_t lo = std::min(count, w * chunk);
    const std::size_t hi = std::min(count, lo + chunk);
    T acc = init;
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, fn(i));
    partial[w] = acc;
  });
  T result = init;
  for (const T& p : partial) result = op(result, p);
  return result;
}

/// exclusive_scan: out[i] = init + sum(in[0..i)). `out` may alias `in`.
/// Two-pass blocked algorithm (per-worker partial sums, then offset fixup).
template <typename T>
void exclusive_scan(ThreadPool& pool, std::span<const T> in, std::span<T> out,
                    T init = T{}) {
  const std::size_t n = in.size();
  if (n == 0) return;
  const std::size_t nw = pool.num_threads();
  const std::size_t chunk = (n + nw - 1) / nw;
  std::vector<T> block_sum(nw, T{});
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    T acc = T{};
    for (std::size_t i = lo; i < hi; ++i) acc += in[i];
    block_sum[w] = acc;
  });
  std::vector<T> block_off(nw, init);
  for (std::size_t w = 1; w < nw; ++w) {
    block_off[w] = block_off[w - 1] + block_sum[w - 1];
  }
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    T acc = block_off[w];
    for (std::size_t i = lo; i < hi; ++i) {
      const T value = in[i];  // read before write: in may alias out
      out[i] = acc;
      acc += value;
    }
  });
}

/// inclusive_scan: out[i] = sum(in[0..i]).
template <typename T>
void inclusive_scan(ThreadPool& pool, std::span<const T> in, std::span<T> out) {
  const std::size_t n = in.size();
  if (n == 0) return;
  const std::size_t nw = pool.num_threads();
  const std::size_t chunk = (n + nw - 1) / nw;
  std::vector<T> block_sum(nw, T{});
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    T acc = T{};
    for (std::size_t i = lo; i < hi; ++i) acc += in[i];
    block_sum[w] = acc;
  });
  std::vector<T> block_off(nw, T{});
  for (std::size_t w = 1; w < nw; ++w) {
    block_off[w] = block_off[w - 1] + block_sum[w - 1];
  }
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    T acc = block_off[w];
    for (std::size_t i = lo; i < hi; ++i) {
      acc += in[i];
      out[i] = acc;
    }
  });
}

/// transform: out[i] = fn(in[i]). `out` may alias `in`.
template <typename In, typename Out, typename Fn>
void transform(ThreadPool& pool, std::span<const In> in, std::span<Out> out,
               Fn&& fn) {
  parallel_for(pool, 0, in.size(), [&](std::size_t i) { out[i] = fn(in[i]); });
}

/// remove_if: stable-compacts `values`, dropping element i when flags[i] is
/// true. Mirrors thrust::remove_if — preprocessing step 6 uses it to drop
/// backward edges. Returns the compacted vector.
template <typename T>
[[nodiscard]] std::vector<T> remove_if_flagged(ThreadPool& pool,
                                               std::span<const T> values,
                                               std::span<const std::uint8_t> flags) {
  const std::size_t n = values.size();
  std::vector<std::size_t> keep(n);
  parallel_for(pool, 0, n,
               [&](std::size_t i) { keep[i] = flags[i] ? 0u : 1u; });
  std::vector<std::size_t> pos(n);
  exclusive_scan<std::size_t>(pool, keep, pos);
  const std::size_t kept = n == 0 ? 0 : pos[n - 1] + keep[n - 1];
  std::vector<T> out(kept);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    if (keep[i]) out[pos[i]] = values[i];
  });
  return out;
}

/// histogram: counts occurrences of each key in [0, num_bins).
[[nodiscard]] std::vector<std::uint64_t> histogram(ThreadPool& pool,
                                                   std::span<const std::uint32_t> keys,
                                                   std::size_t num_bins);

/// max_element value (not iterator); returns `lowest` for empty input.
template <typename T>
[[nodiscard]] T max_value(ThreadPool& pool, std::span<const T> values, T lowest) {
  return reduce<T>(pool, values, lowest,
                   [](const T& a, const T& b) { return std::max(a, b); });
}

}  // namespace trico::prim
