#include "prim/fair_queue.hpp"

#include <algorithm>

namespace trico::prim {

namespace {

// Weights are clamped so a pathological weight can neither starve the ring
// (a near-zero weight would make pop() loop for many passes before the key
// accrues one credit) nor monopolize it.
constexpr double kMinWeight = 1.0 / 64.0;
constexpr double kMaxWeight = 64.0;

double clamp_weight(double weight) {
  return std::clamp(weight, kMinWeight, kMaxWeight);
}

}  // namespace

FairQueue::FairQueue(Options options)
    : capacity_(options.capacity == 0 ? 1 : options.capacity),
      per_key_cap_(options.per_key_cap),
      default_weight_(clamp_weight(options.default_weight)) {}

FairQueue::PushResult FairQueue::try_push(Task task, const std::string& key,
                                          int priority, double weight) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) {
      ++rejected_;
      return PushResult::kClosed;
    }
    if (total_ >= capacity_) {
      ++rejected_;
      return PushResult::kQueueFull;
    }
    auto [it, inserted] = tenants_.try_emplace(key);
    Tenant& tenant = it->second;
    if (inserted) tenant.weight = default_weight_;
    if (weight > 0.0) tenant.weight = clamp_weight(weight);
    if (per_key_cap_ > 0 && tenant.items.size() >= per_key_cap_) {
      ++rejected_;
      return PushResult::kTenantFull;
    }
    if (tenant.items.empty()) ring_.push_back(key);
    tenant.items.push(Item{priority, next_seq_++, std::move(task)});
    ++total_;
    peak_depth_ = std::max(peak_depth_, total_);
  }
  consumer_cv_.notify_one();
  return PushResult::kOk;
}

FairQueue::Task FairQueue::pop_locked() {
  // Deficit round robin: the cursor hands each visited key `weight` credits
  // (at most once per visit) and a key with a full credit is served one
  // task. Every key in the ring has queued tasks (the push/pop invariant),
  // so the walk terminates within ~1/kMinWeight passes.
  for (;;) {
    if (cursor_ >= ring_.size()) cursor_ = 0;
    Tenant& tenant = tenants_[ring_[cursor_]];
    if (tenant.deficit < 1.0) tenant.deficit += tenant.weight;
    if (tenant.deficit >= 1.0) {
      tenant.deficit -= 1.0;
      // priority_queue::top() is const; move the task out via const_cast
      // (safe: popped immediately under the lock).
      Task task = std::move(const_cast<Item&>(tenant.items.top()).task);
      tenant.items.pop();
      --total_;
      if (tenant.items.empty()) {
        // An inactive key loses its credit (standard DRR), so a tenant
        // cannot bank service while idle and burst past its share later.
        tenant.deficit = 0.0;
        ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(cursor_));
      } else if (tenant.deficit < 1.0) {
        ++cursor_;
      }
      return task;
    }
    ++cursor_;
  }
}

FairQueue::Task FairQueue::pop() {
  std::unique_lock lock(mutex_);
  consumer_cv_.wait(lock, [&] { return closed_ || (total_ > 0 && !paused_); });
  if (total_ == 0) return {};  // closed and drained
  return pop_locked();
}

void FairQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
    paused_ = false;
  }
  consumer_cv_.notify_all();
}

void FairQueue::pause() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void FairQueue::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  consumer_cv_.notify_all();
}

std::size_t FairQueue::depth() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::size_t FairQueue::depth(const std::string& key) const {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(key);
  return it == tenants_.end() ? 0 : it->second.items.size();
}

std::size_t FairQueue::peak_depth() const {
  std::lock_guard lock(mutex_);
  return peak_depth_;
}

std::uint64_t FairQueue::rejected() const {
  std::lock_guard lock(mutex_);
  return rejected_;
}

bool FairQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::vector<std::pair<std::string, std::size_t>> FairQueue::depths() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, std::size_t>> out;
  out.reserve(tenants_.size());
  for (const auto& [key, tenant] : tenants_) {
    if (!tenant.items.empty()) out.emplace_back(key, tenant.items.size());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace trico::prim
