#include "prim/thread_pool.hpp"

#include <algorithm>

namespace trico::prim {

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(num_threads == 0
                       ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                       : num_threads) {
  // Worker 0 is the calling thread; spawn the rest.
  for (std::size_t i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutting_down_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      job_ready_.wait(lock, [&] {
        return shutting_down_ || job_.generation != seen_generation;
      });
      if (shutting_down_) return;
      seen_generation = job_.generation;
    }
    run_job_share(worker_index);
    bool last = false;
    {
      std::lock_guard lock(mutex_);
      last = (--job_.active_workers == 0);
    }
    if (last) job_done_.notify_all();
  }
}

void ThreadPool::run_job_share(std::size_t worker_index) {
  if (job_.per_worker) {
    (*job_.body)(worker_index, num_threads_);
    return;
  }
  for (;;) {
    std::size_t lo, hi;
    {
      std::lock_guard lock(mutex_);
      if (job_.next >= job_.end) return;
      lo = job_.next;
      hi = std::min(job_.end, lo + job_.chunk);
      job_.next = hi;
    }
    (*job_.body)(lo, hi);
  }
}

void ThreadPool::parallel_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  if (num_threads_ <= 1 || count == 1) {
    body(begin, end);
    return;
  }
  // Aim for ~4 chunks per worker so stragglers rebalance.
  const std::size_t chunk = std::max<std::size_t>(1, count / (num_threads_ * 4));
  {
    std::lock_guard lock(mutex_);
    job_.body = &body;
    job_.begin = begin;
    job_.end = end;
    job_.chunk = chunk;
    job_.next = begin;
    job_.per_worker = false;
    // Every spawned worker wakes, runs its share (possibly empty), and
    // decrements active_workers exactly once per generation.
    job_.active_workers = num_threads_ - 1;
    ++job_.generation;
  }
  job_ready_.notify_all();
  run_job_share(0);  // the caller participates as worker 0
  std::unique_lock lock(mutex_);
  job_done_.wait(lock, [&] { return job_.active_workers == 0; });
  job_.body = nullptr;
}

void ThreadPool::parallel_workers(
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (num_threads_ <= 1) {
    body(0, 1);
    return;
  }
  {
    std::lock_guard lock(mutex_);
    job_.body = &body;
    job_.per_worker = true;
    job_.next = 0;
    job_.end = 0;
    job_.active_workers = num_threads_ - 1;
    ++job_.generation;
  }
  job_ready_.notify_all();
  body(0, num_threads_);
  std::unique_lock lock(mutex_);
  job_done_.wait(lock, [&] { return job_.active_workers == 0; });
  job_.body = nullptr;
}

}  // namespace trico::prim
