// A bounded, multi-tenant fair task queue.
//
// This is TaskQueue's successor as the admission substrate of the service
// layer's RequestScheduler: producers try_push closures under a string key
// (the tenant), and consumers pop them under weighted deficit-round-robin
// across the keys — each active key earns `weight` credits per scheduling
// visit and spends one credit per dequeued task, so a tenant's long-run
// service share is proportional to its weight no matter how many tasks it
// has queued. Within one key, tasks pop (priority desc, FIFO-within-
// priority), exactly like TaskQueue.
//
// Two admission bounds protect the queue:
//  * a global capacity — the overall admission valve, and
//  * a per-key cap — one heavy tenant can fill at most its own cap, never
//    the whole queue, so light tenants always find admission room.
// try_push distinguishes the two rejections (kQueueFull vs kTenantFull) so
// the service can put the right reason in the backpressure response.
//
// pause()/resume()/close() follow TaskQueue's semantics: pause gates
// consumers only, close stops admission and lets consumers drain (also
// clearing any pause so a paused queue cannot deadlock shutdown).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace trico::prim {

/// Bounded MPMC queue of closures, fair across string keys (tenants) via
/// weighted deficit round robin, priority-ordered within a key.
class FairQueue {
 public:
  using Task = std::function<void()>;

  struct Options {
    std::size_t capacity = 64;   ///< global admission bound
    /// Per-key admission bound; 0 = no separate bound (the global capacity
    /// is the only limit).
    std::size_t per_key_cap = 0;
    /// Credit share of keys try_push never named with an explicit weight.
    double default_weight = 1.0;
  };

  /// Admission outcome of try_push.
  enum class PushResult : std::uint8_t {
    kOk,
    kQueueFull,   ///< global capacity reached
    kTenantFull,  ///< this key's cap reached (queue may have room)
    kClosed,
  };

  explicit FairQueue(Options options);

  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  /// Enqueues `task` under `key` unless closed, the queue is full, or the
  /// key's cap is reached. Never blocks. `weight` (> 0) updates the key's
  /// round-robin share (last push wins); pass 0 to keep the current/default.
  PushResult try_push(Task task, const std::string& key, int priority = 0,
                      double weight = 0.0);

  /// Blocks until a task is available (and the queue is not paused), then
  /// returns the next task under deficit round robin. Returns an empty
  /// function once the queue is closed *and* drained.
  [[nodiscard]] Task pop();

  /// Stops accepting pushes; consumers drain, then blocked pops return
  /// empty. Clears any pause.
  void close();

  /// Consumers block in pop() while paused (producers are unaffected).
  void pause();
  void resume();

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t depth() const;       ///< tasks queued, all keys
  [[nodiscard]] std::size_t depth(const std::string& key) const;
  [[nodiscard]] std::size_t peak_depth() const;  ///< global high-water mark
  [[nodiscard]] std::uint64_t rejected() const;  ///< all try_push refusals
  [[nodiscard]] bool closed() const;

  /// Point-in-time (key, depth) gauges for every key with queued tasks.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>> depths() const;

 private:
  struct Item {
    int priority = 0;
    std::uint64_t seq = 0;  ///< tie-break: lower seq (earlier push) first
    Task task;
  };
  struct ItemOrder {
    bool operator()(const Item& a, const Item& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };
  struct Tenant {
    std::priority_queue<Item, std::vector<Item>, ItemOrder> items;
    double weight = 1.0;
    double deficit = 0.0;  ///< earned credits; reset when the key drains
  };

  /// Pops the next item under DRR. Caller holds mutex_; total_ > 0.
  Task pop_locked();

  const std::size_t capacity_;
  const std::size_t per_key_cap_;
  const double default_weight_;
  mutable std::mutex mutex_;
  std::condition_variable consumer_cv_;
  std::unordered_map<std::string, Tenant> tenants_;
  /// Active ring: keys with queued tasks, in first-activation order; the
  /// cursor walks it round-robin handing out credits.
  std::deque<std::string> ring_;
  std::size_t cursor_ = 0;
  std::size_t total_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t rejected_ = 0;
  std::size_t peak_depth_ = 0;
  bool closed_ = false;
  bool paused_ = false;
};

}  // namespace trico::prim
