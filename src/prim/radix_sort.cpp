#include "prim/radix_sort.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "prim/algorithms.hpp"

namespace trico::prim {

namespace {

constexpr std::size_t kRadixBits = 8;
constexpr std::size_t kBuckets = 1u << kRadixBits;

// One stable counting-sort pass over digit `shift`. Workers own contiguous
// input chunks; the scatter offsets are ordered (digit, worker), which keeps
// the pass stable.
template <typename Key, typename Scatter>
void counting_pass(ThreadPool& pool, std::span<const Key> in, unsigned shift,
                   const Scatter& scatter) {
  const std::size_t n = in.size();
  const std::size_t nw = pool.num_threads();
  const std::size_t chunk = (n + nw - 1) / nw;
  std::vector<std::array<std::size_t, kBuckets>> counts(nw);
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    auto& local = counts[w];
    local.fill(0);
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      ++local[(in[i] >> shift) & (kBuckets - 1)];
    }
  });
  // offsets[w][d] = start position for worker w's digit-d elements.
  std::size_t running = 0;
  std::vector<std::array<std::size_t, kBuckets>> offsets(nw);
  for (std::size_t d = 0; d < kBuckets; ++d) {
    for (std::size_t w = 0; w < nw; ++w) {
      offsets[w][d] = running;
      running += counts[w][d];
    }
  }
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    auto local = offsets[w];
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t d = (in[i] >> shift) & (kBuckets - 1);
      scatter(i, local[d]++);
    }
  });
}

template <typename Key>
unsigned significant_bytes(ThreadPool& pool, std::span<const Key> keys) {
  const Key max_key = max_value<Key>(pool, keys, Key{0});
  unsigned bytes = 1;
  for (Key k = max_key; k > 0xff; k >>= 8) ++bytes;
  return bytes;
}

template <typename Key>
void radix_sort_keys(ThreadPool& pool, std::span<Key> keys) {
  if (keys.size() < 2) return;
  std::vector<Key> scratch(keys.size());
  std::span<Key> a = keys, b = scratch;
  const unsigned passes = significant_bytes<Key>(pool, keys);
  for (unsigned p = 0; p < passes; ++p) {
    counting_pass<Key>(pool, a, p * kRadixBits,
                       [&](std::size_t from, std::size_t to) { b[to] = a[from]; });
    std::swap(a, b);
  }
  if (a.data() != keys.data()) {
    std::copy(a.begin(), a.end(), keys.begin());
  }
}

}  // namespace

void radix_sort_u64(ThreadPool& pool, std::span<std::uint64_t> keys) {
  radix_sort_keys<std::uint64_t>(pool, keys);
}

void radix_sort_u32(ThreadPool& pool, std::span<std::uint32_t> keys) {
  radix_sort_keys<std::uint32_t>(pool, keys);
}

void radix_sort_pairs_u64(ThreadPool& pool, std::span<std::uint64_t> keys,
                          std::span<std::uint32_t> values) {
  const std::size_t n = keys.size();
  if (n < 2) return;
  std::vector<std::uint64_t> key_scratch(n);
  std::vector<std::uint32_t> val_scratch(n);
  std::span<std::uint64_t> ka = keys, kb = key_scratch;
  std::span<std::uint32_t> va = values, vb = val_scratch;
  const unsigned passes = significant_bytes<std::uint64_t>(pool, keys);
  for (unsigned p = 0; p < passes; ++p) {
    counting_pass<std::uint64_t>(pool, ka, p * kRadixBits,
                                 [&](std::size_t from, std::size_t to) {
                                   kb[to] = ka[from];
                                   vb[to] = va[from];
                                 });
    std::swap(ka, kb);
    std::swap(va, vb);
  }
  if (ka.data() != keys.data()) {
    std::copy(ka.begin(), ka.end(), keys.begin());
    std::copy(va.begin(), va.end(), values.begin());
  }
}

namespace {

template <auto Pack, auto Unpack>
void sort_edges_packed(ThreadPool& pool, std::span<Edge> edges) {
  std::vector<std::uint64_t> keys(edges.size());
  parallel_for(pool, 0, edges.size(),
               [&](std::size_t i) { keys[i] = Pack(edges[i]); });
  radix_sort_u64(pool, keys);
  parallel_for(pool, 0, edges.size(),
               [&](std::size_t i) { edges[i] = Unpack(keys[i]); });
}

}  // namespace

void sort_edges_as_u64(ThreadPool& pool, std::span<Edge> edges) {
  sort_edges_packed<pack_edge, unpack_edge>(pool, edges);
}

void sort_edges_as_u64_le(ThreadPool& pool, std::span<Edge> edges) {
  sort_edges_packed<pack_edge_le, unpack_edge_le>(pool, edges);
}

void sort_edges_as_pairs(ThreadPool& pool, std::span<Edge> edges) {
  // Parallel merge sort: sort per-worker chunks, then pairwise merge rounds.
  const std::size_t n = edges.size();
  const std::size_t nw = pool.num_threads();
  if (n < 2) return;
  if (nw <= 1) {
    std::sort(edges.begin(), edges.end());
    return;
  }
  const std::size_t chunk = (n + nw - 1) / nw;
  pool.parallel_workers([&](std::size_t w, std::size_t) {
    const std::size_t lo = std::min(n, w * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    std::sort(edges.begin() + lo, edges.begin() + hi);
  });
  for (std::size_t width = chunk; width < n; width *= 2) {
    std::vector<std::size_t> starts;
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) starts.push_back(lo);
    parallel_for(pool, 0, starts.size(), [&](std::size_t s) {
      const std::size_t lo = starts[s];
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(n, lo + 2 * width);
      std::inplace_merge(edges.begin() + lo, edges.begin() + mid,
                         edges.begin() + hi);
    });
  }
}

}  // namespace trico::prim
