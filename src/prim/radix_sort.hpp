// Parallel LSD radix sort.
//
// This is the stand-in for thrust::sort on integer keys (the paper's
// preprocessing step 3). Like Thrust on the GPU, it is a least-significant-
// digit radix sort, and like the paper's §III-D2 trick it is far faster on
// packed 64-bit keys than a comparison sort on (u32, u32) pairs —
// bench_ablation_sort64 measures exactly that gap.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "prim/thread_pool.hpp"

namespace trico::prim {

/// Stable LSD radix sort of 64-bit keys (8 passes of 8-bit digits, or fewer
/// when the top bytes are all zero). Sorts in place.
void radix_sort_u64(ThreadPool& pool, std::span<std::uint64_t> keys);

/// Stable LSD radix sort of 32-bit keys.
void radix_sort_u32(ThreadPool& pool, std::span<std::uint32_t> keys);

/// Stable LSD radix sort of (key, value) pairs by key.
void radix_sort_pairs_u64(ThreadPool& pool, std::span<std::uint64_t> keys,
                          std::span<std::uint32_t> values);

/// Sorts an edge array by packing each slot into a 64-bit key with the
/// *first* vertex in the high half: the natural (u, v) order used by
/// preprocessing step 3.
void sort_edges_as_u64(ThreadPool& pool, std::span<Edge> edges);

/// Sorts an edge array the way the paper's little-endian memcpy trick does:
/// keys carry the *second* vertex in the high half, so the result is ordered
/// by (v, u) (§III-D2's caveat). Exposed for the ablation bench.
void sort_edges_as_u64_le(ThreadPool& pool, std::span<Edge> edges);

/// Baseline for the §III-D2 ablation: comparison sort on (u, v) structs.
void sort_edges_as_pairs(ThreadPool& pool, std::span<Edge> edges);

}  // namespace trico::prim
