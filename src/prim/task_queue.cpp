#include "prim/task_queue.hpp"

#include <algorithm>
#include <utility>

namespace trico::prim {

TaskQueue::TaskQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool TaskQueue::try_push(Task task, int priority) {
  {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
      ++rejected_;
      return false;
    }
    items_.push(Item{priority, next_seq_++, std::move(task)});
    peak_depth_ = std::max(peak_depth_, items_.size());
  }
  consumer_cv_.notify_one();
  return true;
}

TaskQueue::Task TaskQueue::pop() {
  std::unique_lock lock(mutex_);
  consumer_cv_.wait(lock,
                    [&] { return closed_ || (!items_.empty() && !paused_); });
  if (items_.empty()) return {};  // closed and drained
  // priority_queue::top() is const; the Item must be moved out via const_cast
  // (safe: we pop immediately and hold the lock).
  Task task = std::move(const_cast<Item&>(items_.top()).task);
  items_.pop();
  return task;
}

void TaskQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
    paused_ = false;
  }
  consumer_cv_.notify_all();
}

void TaskQueue::pause() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void TaskQueue::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  consumer_cv_.notify_all();
}

std::size_t TaskQueue::depth() const {
  std::lock_guard lock(mutex_);
  return items_.size();
}

std::size_t TaskQueue::peak_depth() const {
  std::lock_guard lock(mutex_);
  return peak_depth_;
}

std::uint64_t TaskQueue::rejected() const {
  std::lock_guard lock(mutex_);
  return rejected_;
}

bool TaskQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

}  // namespace trico::prim
