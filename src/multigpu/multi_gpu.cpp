#include "multigpu/multi_gpu.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/preprocess.hpp"
#include "simt/cost_model.hpp"
#include "simt/runner.hpp"

namespace trico::multigpu {

double amdahl_max_speedup(double preprocessing_fraction, unsigned devices) {
  const double p = std::clamp(preprocessing_fraction, 0.0, 1.0);
  return 1.0 / (p + (1.0 - p) / static_cast<double>(devices));
}

MultiGpuCounter::MultiGpuCounter(simt::DeviceConfig device,
                                 unsigned num_devices,
                                 core::CountingOptions options)
    : device_config_(std::move(device)),
      num_devices_(num_devices),
      options_(options),
      pool_() {
  if (num_devices_ == 0) {
    throw std::invalid_argument("MultiGpuCounter: zero devices");
  }
}

MultiGpuResult MultiGpuCounter::count(const EdgeList& edges) {
  const simt::CostModel cost(device_config_);

  // Preprocessing runs on device 0 only (§III-E).
  core::PreprocessedGraph pre =
      core::preprocess_for_device(edges, device_config_, options_, pool_);

  MultiGpuResult result;
  result.preprocessing_ms = pre.phases.preprocessing_ms();

  // Broadcast the oriented edge array + node array to the other devices.
  const std::uint64_t broadcast_bytes =
      pre.resident_bytes(options_.variant.soa);
  result.broadcast_ms =
      static_cast<double>(num_devices_ - 1) *
      cost.peer_transfer_ms(broadcast_bytes);

  // Each device counts its modulo slice of the oriented edges.
  result.slices.resize(num_devices_);
  for (unsigned d = 0; d < num_devices_; ++d) {
    simt::Device device(device_config_);
    core::OrientedDeviceGraph graph;
    graph.num_edges = pre.oriented.size();
    graph.first_edge = d;
    graph.edge_step = num_devices_;
    if (options_.variant.soa) {
      graph.src = device.upload<VertexId>(pre.soa.src);
      graph.dst = device.upload<VertexId>(pre.soa.dst);
    } else {
      graph.pairs = device.upload<Edge>(pre.oriented);
    }
    graph.node = device.upload<std::uint32_t>(pre.node);

    core::CountTrianglesKernel kernel(graph, options_.variant);
    const simt::KernelStats stats =
        simt::launch_kernel(device, options_.launch, kernel, options_.sim);

    DeviceSlice& slice = result.slices[d];
    slice.edges = (pre.oriented.size() + num_devices_ - 1 - d) / num_devices_;
    slice.counting_ms = stats.time_ms;
    slice.triangles = kernel.total();
    result.triangles += slice.triangles;
    result.counting_ms = std::max(result.counting_ms, slice.counting_ms);
  }

  // Partial sums back to the host plus the final reduce.
  result.gather_ms =
      static_cast<double>(num_devices_) * cost.transfer_ms(sizeof(TriangleCount)) +
      cost.result_reduce_ms(options_.launch.total_threads(device_config_));
  return result;
}

}  // namespace trico::multigpu
