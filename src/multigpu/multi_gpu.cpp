#include "multigpu/multi_gpu.hpp"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/preprocess.hpp"
#include "simt/cost_model.hpp"
#include "simt/runner.hpp"

namespace trico::multigpu {

double amdahl_max_speedup(double preprocessing_fraction, unsigned devices) {
  const double p = std::clamp(preprocessing_fraction, 0.0, 1.0);
  return 1.0 / (p + (1.0 - p) / static_cast<double>(devices));
}

MultiGpuCounter::MultiGpuCounter(simt::DeviceConfig device,
                                 unsigned num_devices,
                                 core::CountingOptions options)
    : device_config_(std::move(device)),
      num_devices_(num_devices),
      options_(options),
      pool_(options.host_threads) {
  if (num_devices_ == 0) {
    throw std::invalid_argument("MultiGpuCounter: zero devices");
  }
}

namespace {

/// Chains an FNV-1a checksum across the counting-phase resident arrays —
/// what the broadcast receiver verifies before trusting its copy.
std::uint64_t graph_checksum(bool soa, const std::vector<VertexId>& src,
                             const std::vector<VertexId>& dst,
                             const std::vector<Edge>& pairs,
                             const std::vector<std::uint32_t>& node) {
  std::uint64_t sum = simt::kChecksumSeed;
  if (soa) {
    sum = simt::checksum_bytes(src.data(), src.size() * sizeof(VertexId), sum);
    sum = simt::checksum_bytes(dst.data(), dst.size() * sizeof(VertexId), sum);
  } else {
    sum = simt::checksum_bytes(pairs.data(), pairs.size() * sizeof(Edge), sum);
  }
  return simt::checksum_bytes(node.data(), node.size() * sizeof(std::uint32_t),
                              sum);
}

}  // namespace

MultiGpuResult MultiGpuCounter::count(const EdgeList& edges) {
  const simt::CostModel cost(device_config_);
  simt::FaultPlan* plan = options_.fault_plan;
  const simt::RetryPolicy retry = options_.retry;
  const bool soa = options_.variant.soa;

  MultiGpuResult result;
  simt::RobustnessReport& rep = result.robustness;
  result.slices.resize(num_devices_);

  std::vector<std::uint8_t> alive(num_devices_, 1);
  auto drop_device = [&](unsigned d) {
    if (!alive[d]) return;
    alive[d] = 0;
    result.slices[d].lost = true;
    ++rep.devices_lost;
  };

  // ---- Preprocessing on the first healthy device (§III-E); a failed
  // device is dropped and the phase fails over to the next one.
  core::PreprocessedGraph pre;
  unsigned pre_device = num_devices_;
  for (unsigned d = 0; d < num_devices_; ++d) {
    try {
      pre = core::preprocess_for_device(edges, device_config_, options_,
                                        pool_, d);
      pre_device = d;
      break;
    } catch (const simt::DeviceFault& fault) {
      const bool can_retry = d + 1 < num_devices_;
      rep.events.push_back({fault.kind(), fault.site(), d, 1, can_retry,
                            fault.injected()});
      if (fault.kind() == simt::FaultKind::kAllocFailure) {
        ++rep.alloc_failures;
      }
      drop_device(d);
      if (!can_retry) throw;
      ++rep.preprocess_retries;
      const double backoff = retry.backoff_ms(rep.preprocess_retries - 1);
      rep.retry_backoff_ms += backoff;
      result.preprocessing_ms += backoff;
    }
  }
  result.preprocessing_ms += pre.phases.preprocessing_ms();

  // ---- Per-device resident graph state. A null device means "never got a
  // usable copy of the graph" — its slice is repartitioned below.
  struct DeviceState {
    std::unique_ptr<simt::Device> device;
    core::OrientedDeviceGraph graph;
  };
  std::vector<DeviceState> states(num_devices_);

  auto upload_graph = [&](unsigned d, const std::vector<VertexId>& src,
                          const std::vector<VertexId>& dst,
                          const std::vector<Edge>& pairs,
                          const std::vector<std::uint32_t>& node) {
    if (plan != nullptr) {
      if (const auto kind = plan->probe(simt::FaultSite::kAlloc, d)) {
        rep.events.push_back(
            {*kind, simt::FaultSite::kAlloc, d, 1, true, true});
        if (*kind == simt::FaultKind::kAllocFailure) ++rep.alloc_failures;
        drop_device(d);
        return;
      }
    }
    auto state = std::make_unique<simt::Device>(device_config_);
    try {
      core::OrientedDeviceGraph graph;
      graph.num_edges = pre.oriented.size();
      if (soa) {
        graph.src = state->upload<VertexId>(src);
        graph.dst = state->upload<VertexId>(dst);
      } else {
        graph.pairs = state->upload<Edge>(pairs);
      }
      graph.node = state->upload<std::uint32_t>(node);
      states[d].graph = graph;
      states[d].device = std::move(state);
    } catch (const simt::DeviceFault& fault) {
      // Organic device OOM: this device cannot hold the graph.
      rep.events.push_back({fault.kind(), fault.site(), d, 1, true,
                            fault.injected()});
      ++rep.alloc_failures;
      drop_device(d);
    }
  };

  // The preprocessing device already holds the arrays.
  if (alive[pre_device]) {
    upload_graph(pre_device, pre.soa.src, pre.soa.dst, pre.oriented, pre.node);
  }

  // ---- Broadcast to the remaining devices, checksum-verified. Without a
  // fault plan the transfer cannot corrupt, so the verification copies are
  // skipped and only the transfer time is charged.
  const std::uint64_t broadcast_bytes = pre.resident_bytes(soa);
  const std::uint64_t ref_checksum =
      plan != nullptr
          ? graph_checksum(soa, pre.soa.src, pre.soa.dst, pre.oriented,
                           pre.node)
          : 0;
  for (unsigned d = 0; d < num_devices_; ++d) {
    if (d == pre_device || !alive[d]) continue;
    for (unsigned attempt = 1;; ++attempt) {
      result.broadcast_ms += cost.peer_transfer_ms(broadcast_bytes);
      if (plan == nullptr) {
        upload_graph(d, pre.soa.src, pre.soa.dst, pre.oriented, pre.node);
        break;
      }
      const auto kind = plan->probe(simt::FaultSite::kBroadcast, d);
      if (kind == simt::FaultKind::kDeviceLost) {
        rep.events.push_back(
            {*kind, simt::FaultSite::kBroadcast, d, attempt, true, true});
        drop_device(d);
        break;
      }
      // Receive the transferred copy; an injected corruption flips a byte
      // that the checksum must catch.
      std::vector<VertexId> src_copy = soa ? pre.soa.src : std::vector<VertexId>{};
      std::vector<VertexId> dst_copy = soa ? pre.soa.dst : std::vector<VertexId>{};
      std::vector<Edge> pairs_copy = soa ? std::vector<Edge>{} : pre.oriented;
      std::vector<std::uint32_t> node_copy = pre.node;
      if (kind == simt::FaultKind::kTransferCorruption) {
        auto corruptible = [&]() -> std::span<std::byte> {
          if (soa && !src_copy.empty()) {
            return std::as_writable_bytes(std::span(src_copy));
          }
          if (!soa && !pairs_copy.empty()) {
            return std::as_writable_bytes(std::span(pairs_copy));
          }
          return std::as_writable_bytes(std::span(node_copy));
        };
        plan->corrupt(corruptible());
      }
      if (graph_checksum(soa, src_copy, dst_copy, pairs_copy, node_copy) !=
          ref_checksum) {
        ++rep.broadcast_retries;
        const bool can_retry = attempt < retry.max_attempts;
        // Even the budget-exhausting corruption is compensated: the device
        // is dropped and its slice repartitioned below.
        rep.events.push_back({simt::FaultKind::kTransferCorruption,
                              simt::FaultSite::kBroadcast, d, attempt,
                              /*recovered=*/true, true});
        if (!can_retry) {
          drop_device(d);
          break;
        }
        const double backoff = retry.backoff_ms(attempt - 1);
        rep.retry_backoff_ms += backoff;
        result.broadcast_ms += backoff;
        continue;
      }
      upload_graph(d, src_copy, dst_copy, pairs_copy, node_copy);
      break;
    }
  }

  // ---- Counting. Each device runs its modulo slice; lost devices' slices
  // are repartitioned across the survivors (recursively, until every edge
  // is counted or no device remains).
  struct WorkItem {
    std::uint64_t first;
    std::uint64_t step;
  };
  const std::uint64_t oriented = pre.oriented.size();
  auto work_edges = [&](WorkItem w) -> std::uint64_t {
    return w.first >= oriented ? 0 : (oriented - w.first + w.step - 1) / w.step;
  };
  std::vector<double> dev_time(num_devices_, 0.0);

  // Runs `w` on device `d`; false means the device died and `w` still
  // needs an owner.
  auto count_on = [&](unsigned d, WorkItem w) -> bool {
    for (unsigned attempt = 1;; ++attempt) {
      if (plan != nullptr) {
        if (const auto kind = plan->probe(simt::FaultSite::kKernel, d)) {
          if (*kind == simt::FaultKind::kKernelAbort &&
              attempt < retry.max_attempts) {
            const double backoff = retry.backoff_ms(attempt - 1);
            rep.events.push_back(
                {*kind, simt::FaultSite::kKernel, d, attempt, true, true});
            ++rep.kernel_retries;
            ++result.slices[d].kernel_retries;
            rep.retry_backoff_ms += backoff;
            dev_time[d] += backoff;
            result.slices[d].counting_ms += backoff;
            continue;
          }
          rep.events.push_back(
              {*kind, simt::FaultSite::kKernel, d, attempt, true, true});
          drop_device(d);
          return false;
        }
      }
      core::OrientedDeviceGraph graph = states[d].graph;
      graph.first_edge = w.first;
      graph.edge_step = w.step;
      core::CountTrianglesKernel kernel(graph, options_.variant);
      const simt::KernelStats stats = simt::launch_kernel(
          *states[d].device, options_.launch, kernel, options_.sim);
      DeviceSlice& slice = result.slices[d];
      slice.edges += work_edges(w);
      slice.counting_ms += stats.time_ms;
      slice.triangles += kernel.total();
      result.triangles += kernel.total();
      dev_time[d] += stats.time_ms;
      return true;
    }
  };

  std::vector<WorkItem> orphaned;
  if (plan == nullptr) {
    // Fault-free path: the devices are independent, so their slices are
    // simulated concurrently — one pool task per resident device — and the
    // results folded in device order afterwards, keeping every total
    // deterministic. The fault-injected path below stays sequential because
    // FaultPlan's occurrence counters are consumed in probe order.
    struct SliceRun {
      simt::KernelStats stats;
      TriangleCount triangles = 0;
      std::exception_ptr error;
    };
    std::vector<SliceRun> runs(num_devices_);
    std::vector<unsigned> resident;
    for (unsigned d = 0; d < num_devices_; ++d) {
      if (alive[d] && states[d].device != nullptr) {
        resident.push_back(d);
      } else {
        orphaned.push_back(WorkItem{d, num_devices_});
      }
    }
    pool_.parallel_ranges(
        0, resident.size(), [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            const unsigned d = resident[i];
            try {
              core::OrientedDeviceGraph graph = states[d].graph;
              graph.first_edge = d;
              graph.edge_step = num_devices_;
              core::CountTrianglesKernel kernel(graph, options_.variant);
              runs[d].stats = simt::launch_kernel(
                  *states[d].device, options_.launch, kernel, options_.sim);
              runs[d].triangles = kernel.total();
            } catch (...) {
              runs[d].error = std::current_exception();
            }
          }
        });
    for (unsigned d : resident) {
      if (runs[d].error) std::rethrow_exception(runs[d].error);
      DeviceSlice& slice = result.slices[d];
      slice.edges += work_edges(WorkItem{d, num_devices_});
      slice.counting_ms += runs[d].stats.time_ms;
      slice.triangles += runs[d].triangles;
      result.triangles += runs[d].triangles;
      dev_time[d] += runs[d].stats.time_ms;
    }
  } else {
    for (unsigned d = 0; d < num_devices_; ++d) {
      const WorkItem w{d, num_devices_};
      if (!alive[d] || states[d].device == nullptr) {
        orphaned.push_back(w);
        continue;
      }
      if (!count_on(d, w)) orphaned.push_back(w);
    }
  }

  unsigned rounds = 0;
  while (!orphaned.empty()) {
    std::vector<unsigned> survivors;
    for (unsigned d = 0; d < num_devices_; ++d) {
      if (alive[d] && states[d].device != nullptr) survivors.push_back(d);
    }
    if (survivors.empty() || ++rounds > num_devices_) {
      throw simt::DeviceFault(
          simt::FaultKind::kDeviceLost, simt::FaultSite::kKernel, 0,
          "multi-GPU recovery failed: every device lost with " +
              std::to_string(orphaned.size()) + " edge slices uncounted",
          /*injected=*/false);
    }
    const auto stride = static_cast<std::uint64_t>(survivors.size());
    std::vector<WorkItem> next;
    for (const WorkItem& w : orphaned) {
      if (work_edges(w) == 0) continue;
      ++rep.slices_repartitioned;
      for (std::size_t i = 0; i < survivors.size(); ++i) {
        const WorkItem sub{w.first + w.step * i, w.step * stride};
        if (work_edges(sub) == 0) continue;
        const unsigned s = survivors[i];
        if (!alive[s] || states[s].device == nullptr || !count_on(s, sub)) {
          next.push_back(sub);
        }
      }
    }
    orphaned = std::move(next);
  }

  result.counting_ms = *std::max_element(dev_time.begin(), dev_time.end());

  // ---- Gather. A 1-device run is the single-GPU pipeline: no broadcast
  // happened and no peer gather is needed — charge exactly the pipeline's
  // final reduce + result copy so the totals agree.
  const double reduce_ms =
      cost.result_reduce_ms(options_.launch.total_threads(device_config_));
  if (num_devices_ == 1) {
    result.gather_ms = reduce_ms + cost.transfer_ms(sizeof(TriangleCount));
  } else {
    std::uint64_t participants = 0;
    for (unsigned d = 0; d < num_devices_; ++d) {
      if (alive[d] && states[d].device != nullptr) ++participants;
    }
    result.gather_ms =
        static_cast<double>(participants) *
            cost.transfer_ms(sizeof(TriangleCount)) +
        reduce_ms;
  }
  return result;
}

}  // namespace trico::multigpu
