// Multi-GPU extension (§III-E) with failure recovery.
//
// The paper's scheme: run the preprocessing phase on a single device, copy
// the oriented edge array and node array to the remaining devices, and let
// each device's grid-stride loop cover its allotted subset of edges. The
// achievable speedup is bounded by Amdahl's law through the preprocessing
// fraction — the bench reproduces the paper's observation that Kronecker
// graphs (high triangles/edges ratio) scale to ~2.8x on 4 devices while
// preprocessing-dominated graphs stay near 1x.
//
// Recovery (driven by simt::FaultPlan injection, see docs/robustness.md):
//  * a device failing during preprocessing is dropped and the phase retries
//    on the next device (with modeled backoff);
//  * each broadcast is verified with an FNV-1a checksum over the oriented
//    edge and node arrays; a corrupted transfer is re-sent up to the retry
//    budget, after which the receiving device is dropped;
//  * a transient kernel abort retries on the same device within the retry
//    budget; a device lost during counting is dropped and its modulo edge
//    slice is repartitioned across the surviving devices;
//  * every fault and recovery action lands in MultiGpuResult::robustness,
//    and any recovered run still produces the exact triangle count.

#pragma once

#include <cstdint>
#include <vector>

#include "core/gpu_forward.hpp"
#include "simt/fault.hpp"

namespace trico::multigpu {

/// Per-device slice statistics.
struct DeviceSlice {
  std::uint64_t edges = 0;      ///< oriented edges this device counted
  double counting_ms = 0;       ///< kernel time + modeled retry backoff
  trico::TriangleCount triangles = 0;
  unsigned kernel_retries = 0;  ///< transient aborts retried on this device
  bool lost = false;            ///< device dropped; its work went elsewhere
};

/// Result of a multi-GPU run.
struct MultiGpuResult {
  TriangleCount triangles = 0;
  double preprocessing_ms = 0;  ///< on the preprocessing device (includes H2D)
  double broadcast_ms = 0;      ///< arrays to the other devices (incl. re-sends)
  double counting_ms = 0;       ///< max over devices (incl. recovery rework)
  double gather_ms = 0;         ///< partial results back + final sum
  std::vector<DeviceSlice> slices;
  simt::RobustnessReport robustness;

  [[nodiscard]] double total_ms() const {
    return preprocessing_ms + broadcast_ms + counting_ms + gather_ms;
  }
};

/// Amdahl's-law bound of §III-E: maximum speedup on `devices` given the
/// measured preprocessing fraction p: 1 / (p + (1 - p) / devices).
[[nodiscard]] double amdahl_max_speedup(double preprocessing_fraction,
                                        unsigned devices);

/// Runs the paper's multi-GPU scheme on `num_devices` identical simulated
/// devices. Edges are dealt round-robin so every device sees a uniform
/// slice of the degree distribution, like the modulo assignment in the
/// single-GPU kernel. With num_devices == 1 the run degenerates to the
/// single-GPU pipeline: no broadcast, no peer gather, identical total time.
///
/// Host execution: on the fault-free path the devices' counting kernels are
/// simulated concurrently (one thread-pool task per device, results folded
/// in device order, so counts and times are deterministic); each kernel may
/// additionally fan its SMs out across host threads via
/// CountingOptions::sim.threads. Fault-injected runs execute sequentially
/// because FaultPlan occurrence counters are consumed in probe order.
///
/// Fault injection and retry budgets come from CountingOptions
/// (fault_plan / retry). count() throws simt::DeviceFault only when every
/// device has been lost; any lesser failure is recovered and reported.
class MultiGpuCounter {
 public:
  MultiGpuCounter(simt::DeviceConfig device, unsigned num_devices,
                  core::CountingOptions options = {});

  [[nodiscard]] MultiGpuResult count(const EdgeList& edges);

  [[nodiscard]] unsigned num_devices() const { return num_devices_; }

 private:
  simt::DeviceConfig device_config_;
  unsigned num_devices_;
  core::CountingOptions options_;
  prim::ThreadPool pool_;
};

}  // namespace trico::multigpu
