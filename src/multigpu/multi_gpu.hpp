// Multi-GPU extension (§III-E).
//
// The paper's scheme: run the preprocessing phase on a single device, copy
// the oriented edge array and node array to the remaining devices, and let
// each device's grid-stride loop cover its allotted subset of edges. The
// achievable speedup is bounded by Amdahl's law through the preprocessing
// fraction — the bench reproduces the paper's observation that Kronecker
// graphs (high triangles/edges ratio) scale to ~2.8x on 4 devices while
// preprocessing-dominated graphs stay near 1x.

#pragma once

#include <cstdint>
#include <vector>

#include "core/gpu_forward.hpp"

namespace trico::multigpu {

/// Per-device slice statistics.
struct DeviceSlice {
  std::uint64_t edges = 0;
  double counting_ms = 0;
  trico::TriangleCount triangles = 0;
};

/// Result of a multi-GPU run.
struct MultiGpuResult {
  TriangleCount triangles = 0;
  double preprocessing_ms = 0;  ///< on device 0 (includes H2D)
  double broadcast_ms = 0;      ///< arrays to the other devices
  double counting_ms = 0;       ///< max over devices
  double gather_ms = 0;         ///< partial results back + final sum
  std::vector<DeviceSlice> slices;

  [[nodiscard]] double total_ms() const {
    return preprocessing_ms + broadcast_ms + counting_ms + gather_ms;
  }
};

/// Amdahl's-law bound of §III-E: maximum speedup on `devices` given the
/// measured preprocessing fraction p: 1 / (p + (1 - p) / devices).
[[nodiscard]] double amdahl_max_speedup(double preprocessing_fraction,
                                        unsigned devices);

/// Runs the paper's multi-GPU scheme on `num_devices` identical simulated
/// devices. Edges are dealt round-robin so every device sees a uniform
/// slice of the degree distribution, like the modulo assignment in the
/// single-GPU kernel.
class MultiGpuCounter {
 public:
  MultiGpuCounter(simt::DeviceConfig device, unsigned num_devices,
                  core::CountingOptions options = {});

  [[nodiscard]] MultiGpuResult count(const EdgeList& edges);

  [[nodiscard]] unsigned num_devices() const { return num_devices_; }

 private:
  simt::DeviceConfig device_config_;
  unsigned num_devices_;
  core::CountingOptions options_;
  prim::ThreadPool pool_;
};

}  // namespace trico::multigpu
