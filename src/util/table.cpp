#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace trico::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.push_back(Row{});
  return *this;
}

Table& Table::cell(const std::string& text) {
  rows_.back().cells.push_back(text);
  return *this;
}

Table& Table::cell(const char* text) { return cell(std::string(text)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(int value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return cell(out.str());
}

Table& Table::section(const std::string& label) {
  Row row;
  row.is_section = true;
  row.section_label = label;
  rows_.push_back(std::move(row));
  return *this;
}

namespace {

/// Display width of a UTF-8 string: count non-continuation bytes so cells
/// containing multi-byte characters (e.g. the dagger) stay aligned.
std::size_t display_width(const std::string& text) {
  std::size_t width = 0;
  for (unsigned char ch : text) {
    if ((ch & 0xc0) != 0x80) ++width;
  }
  return width;
}

}  // namespace

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = display_width(header_[c]);
  }
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], display_width(row.cells[c]));
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = width[c] - display_width(text);
      out << (c == 0 ? "" : "  ");
      if (c == 0) {
        out << text << std::string(pad, ' ');
      } else {
        out << std::string(pad, ' ') << text;
      }
    }
    out << '\n';
  };
  std::size_t total = width.empty() ? 0 : 2 * (width.size() - 1);
  for (std::size_t w : width) total += w;
  print_row(header_);
  out << std::string(total, '-') << '\n';
  for (const Row& row : rows_) {
    if (row.is_section) {
      out << "-- " << row.section_label << " --\n";
    } else {
      print_row(row.cells);
    }
  }
}

std::string human_count(std::uint64_t value) {
  std::ostringstream out;
  if (value >= 1000ull * 1000 * 1000) {
    out << std::fixed << std::setprecision(1)
        << static_cast<double>(value) / 1e9 << "G";
  } else if (value >= 1000ull * 1000) {
    out << std::fixed << std::setprecision(1)
        << static_cast<double>(value) / 1e6 << "M";
  } else if (value >= 1000) {
    out << std::fixed << std::setprecision(1)
        << static_cast<double>(value) / 1e3 << "K";
  } else {
    out << value;
  }
  return out.str();
}

}  // namespace trico::util
