// Wall-clock timing helpers for the experiment harness.
//
// The paper measures wall-clock time, starting just before the edge array is
// copied to the device and ending after the result returns (§IV); every
// experiment runs five times and reports the mean. Timer/repeat_timed mirror
// that protocol.

#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

namespace trico::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Result of a repeated timing run.
struct TimingResult {
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::size_t runs = 0;

  /// Relative standard deviation; the paper reports it never exceeded 0.05.
  [[nodiscard]] double rel_stddev() const {
    return mean_ms > 0 ? stddev_ms / mean_ms : 0.0;
  }
};

/// Runs `body` `runs` times (the paper uses five) and reports mean/sd.
TimingResult repeat_timed(std::size_t runs, const std::function<void()>& body);

}  // namespace trico::util
