#include "util/io.hpp"

#include <cerrno>
#include <chrono>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace trico::util::io {

const char* to_string(IoStatus status) {
  switch (status) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kEof: return "eof";
    case IoStatus::kError: return "error";
  }
  return "?";
}

int open_retry(const char* path, int flags) {
  for (;;) {
    const int fd = ::open(path, flags);  // NOLINT(cppcoreguidelines-pro-type-vararg)
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

int close_quiet(int fd) noexcept {
  const int rc = ::close(fd);
  if (rc == -1 && errno == EINTR) return 0;  // fd is released regardless
  return rc;
}

IoResult read_full(int fd, void* buf, std::size_t n) noexcept {
  IoResult result;
  char* cursor = static_cast<char*>(buf);
  while (result.bytes < n) {
    const ssize_t got = ::read(fd, cursor + result.bytes, n - result.bytes);
    if (got > 0) {
      result.bytes += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      result.status = IoStatus::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    result.status = IoStatus::kError;
    result.error = errno;
    return result;
  }
  return result;
}

IoResult pread_full(int fd, void* buf, std::size_t n, off_t offset) noexcept {
  IoResult result;
  char* cursor = static_cast<char*>(buf);
  while (result.bytes < n) {
    const ssize_t got = ::pread(fd, cursor + result.bytes, n - result.bytes,
                                offset + static_cast<off_t>(result.bytes));
    if (got > 0) {
      result.bytes += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) {
      result.status = IoStatus::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    result.status = IoStatus::kError;
    result.error = errno;
    return result;
  }
  return result;
}

IoResult write_full(int fd, const void* buf, std::size_t n) noexcept {
  IoResult result;
  const char* cursor = static_cast<const char*>(buf);
  while (result.bytes < n) {
    const ssize_t put = ::write(fd, cursor + result.bytes, n - result.bytes);
    if (put > 0) {
      result.bytes += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    result.status = IoStatus::kError;
    result.error = put < 0 ? errno : EIO;
    return result;
  }
  return result;
}

int accept_retry(int listen_fd, sockaddr* addr, socklen_t* addr_len) noexcept {
  for (;;) {
    const int fd = ::accept(listen_fd, addr, addr_len);
    if (fd >= 0) return fd;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return -1;
  }
}

int poll_retry(pollfd* fds, nfds_t nfds, int timeout_ms) noexcept {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      timeout_ms >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                      : Clock::time_point::max();
  int remaining = timeout_ms;
  for (;;) {
    const int rc = ::poll(fds, nfds, remaining);
    if (rc >= 0 || errno != EINTR) return rc;
    if (timeout_ms < 0) continue;  // infinite wait: just re-arm
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    remaining = static_cast<int>(std::max<long long>(0, left.count()));
    if (remaining == 0) return 0;  // the signal ate the whole window
  }
}

}  // namespace trico::util::io
