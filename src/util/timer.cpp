#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace trico::util {

TimingResult repeat_timed(std::size_t runs, const std::function<void()>& body) {
  TimingResult result;
  result.runs = runs;
  result.min_ms = std::numeric_limits<double>::infinity();
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    Timer timer;
    body();
    const double ms = timer.elapsed_ms();
    sum += ms;
    sum_sq += ms * ms;
    result.min_ms = std::min(result.min_ms, ms);
    result.max_ms = std::max(result.max_ms, ms);
  }
  if (runs > 0) {
    result.mean_ms = sum / static_cast<double>(runs);
    const double variance =
        std::max(0.0, sum_sq / static_cast<double>(runs) -
                          result.mean_ms * result.mean_ms);
    result.stddev_ms = std::sqrt(variance);
  } else {
    result.min_ms = 0.0;
  }
  return result;
}

}  // namespace trico::util
