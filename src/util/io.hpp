// EINTR-safe POSIX io helpers.
//
// Every raw read/write/accept/poll the repo issues goes through these
// wrappers: a signal landing mid-syscall (the supervisor's SIGCHLD, a
// profiler's SIGPROF, the CLI's SIGTERM drain) must never surface as a
// spurious io failure, and a socket delivering fewer bytes than asked must
// never tear a frame. The helpers retry on EINTR and loop short transfers
// to completion, reporting a tri-state outcome (ok / clean eof / error with
// errno) instead of throwing — the transport layer and the `.trico` loader
// each map outcomes onto their own typed errors.
//
// None of these block differently than the underlying syscall: read_full on
// a blocking fd waits for the remaining bytes, on a non-blocking fd it
// reports kError with EAGAIN like read(2) would.

#pragma once

#include <cstddef>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

namespace trico::util::io {

/// Outcome of a full-transfer helper.
enum class IoStatus {
  kOk,     ///< all requested bytes transferred
  kEof,    ///< peer closed cleanly before the requested bytes arrived
  kError,  ///< a syscall failed; `error` carries its errno
};

[[nodiscard]] const char* to_string(IoStatus status);

/// Result of read_full / write_full: the outcome, how many bytes actually
/// moved (meaningful for kEof: a frame torn mid-payload reports the bytes
/// that made it), and errno for kError.
struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
  int error = 0;
};

/// open(2), retried on EINTR. Returns the fd, or -1 with errno set.
[[nodiscard]] int open_retry(const char* path, int flags);

/// close(2) ignoring EINTR (retrying close is wrong on Linux: the fd is
/// released even when the call is interrupted). Returns 0 or -1/errno for
/// real failures.
int close_quiet(int fd) noexcept;

/// Reads exactly `n` bytes into `buf`, retrying EINTR and looping short
/// reads. kEof reports a clean close with `bytes` < n already transferred.
[[nodiscard]] IoResult read_full(int fd, void* buf, std::size_t n) noexcept;

/// pread(2) analogue of read_full: reads exactly `n` bytes at absolute
/// `offset` without moving the fd's file position, retrying EINTR and
/// looping short reads — the primitive under the store's parallel chunked
/// ingest, where many workers read disjoint ranges of one shared fd.
[[nodiscard]] IoResult pread_full(int fd, void* buf, std::size_t n,
                                  off_t offset) noexcept;

/// Writes exactly `n` bytes from `buf`, retrying EINTR and looping short
/// writes. A peer that disappears mid-write reports kError (EPIPE /
/// ECONNRESET); there is no clean-EOF case for writes.
[[nodiscard]] IoResult write_full(int fd, const void* buf,
                                  std::size_t n) noexcept;

/// accept(2), retried on EINTR (and on ECONNABORTED, which a listener
/// should simply skip). Returns the connection fd, or -1 with errno set.
[[nodiscard]] int accept_retry(int listen_fd, sockaddr* addr,
                               socklen_t* addr_len) noexcept;

/// poll(2), retried on EINTR with the timeout re-armed to the *remaining*
/// wall clock so a signal storm cannot extend the deadline. Returns poll's
/// result (>0 ready, 0 timeout, -1/errno on real failure).
[[nodiscard]] int poll_retry(pollfd* fds, nfds_t nfds,
                             int timeout_ms) noexcept;

}  // namespace trico::util::io
