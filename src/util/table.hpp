// Minimal fixed-width table printer for the benchmark harness, so every
// bench binary reports its rows in the same aligned, grep-friendly format as
// the paper's Tables I and II.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace trico::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& text);
  Table& cell(const char* text);
  Table& cell(std::uint64_t value);
  Table& cell(std::int64_t value);
  Table& cell(int value);
  /// Fixed-point with `digits` decimals.
  Table& cell(double value, int digits = 2);

  /// Section separator row rendered as a label line (e.g. "Real world
  /// graphs" / "Synthetic graphs" in Table I).
  Table& section(const std::string& label);

  void print(std::ostream& out) const;

 private:
  struct Row {
    bool is_section = false;
    std::string section_label;
    std::vector<std::string> cells;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a count with thousands separators for readability (e.g. 8816M).
[[nodiscard]] std::string human_count(std::uint64_t value);

}  // namespace trico::util
