// Cooperative cancellation for long-running operations.
//
// A CancelToken is shared between the party that decides an operation must
// stop (a client cancelling its ticket, the service watchdog, a deadline
// sweep) and the code doing the work (the CPU hybrid counting loop, the
// simulated-GPU scheduling rounds). The worker polls cancelled() — one
// relaxed atomic load, cheap enough for inner loops at chunk granularity —
// and unwinds via throw_if_cancelled() from its own calling thread once the
// current parallel region has drained, so no exception ever crosses a
// thread-pool boundary.
//
// The first cancellation cause wins and is immutable afterwards; the service
// maps it to the terminal request status (kCancelled vs kDeadlineExpired).

#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace trico::util {

/// Why an operation was asked to stop. The first recorded cause sticks.
enum class CancelCause : std::uint8_t {
  kNone = 0,      ///< not cancelled
  kUser = 1,      ///< explicit client cancellation (Ticket::cancel)
  kDeadline = 2,  ///< the request's own deadline passed during execution
  kBudget = 3,    ///< watchdog: hard execution budget exceeded
};

[[nodiscard]] inline const char* to_string(CancelCause cause) {
  switch (cause) {
    case CancelCause::kNone: return "none";
    case CancelCause::kUser: return "cancelled by client";
    case CancelCause::kDeadline: return "deadline expired during execution";
    case CancelCause::kBudget: return "hard execution budget exceeded";
  }
  return "?";
}

/// Thrown by throw_if_cancelled() on the worker's calling thread once a
/// cancelled operation has drained its parallel region.
class OperationCancelled : public std::runtime_error {
 public:
  explicit OperationCancelled(CancelCause cause)
      : std::runtime_error(to_string(cause)), cause_(cause) {}

  [[nodiscard]] CancelCause cause() const { return cause_; }

 private:
  CancelCause cause_;
};

/// Sticky one-shot cancellation flag. request_cancel() may race from any
/// thread; the first cause wins. cancelled() is a single relaxed load.
class CancelToken {
 public:
  /// Returns true when this call recorded the cause (i.e. the token was not
  /// already cancelled) — callers counting cancellations use it to avoid
  /// double counting.
  bool request_cancel(CancelCause cause) {
    if (cause == CancelCause::kNone) return false;
    std::uint8_t expected = 0;
    return state_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(cause), std::memory_order_relaxed,
        std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancelled() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  [[nodiscard]] CancelCause cause() const {
    return static_cast<CancelCause>(state_.load(std::memory_order_relaxed));
  }

  /// Throws OperationCancelled carrying the recorded cause if cancelled.
  void throw_if_cancelled() const {
    const CancelCause c = cause();
    if (c != CancelCause::kNone) throw OperationCancelled(c);
  }

 private:
  std::atomic<std::uint8_t> state_{0};
};

}  // namespace trico::util
