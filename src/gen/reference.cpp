#include "gen/reference.hpp"

#include <stdexcept>
#include <vector>

namespace trico::gen {

namespace {

TriangleCount choose3(std::uint64_t n) {
  return n < 3 ? 0 : n * (n - 1) * (n - 2) / 6;
}

ReferenceGraph make(std::vector<Edge> pairs, VertexId n,
                    TriangleCount triangles, const char* family) {
  ReferenceGraph g;
  g.edges = EdgeList::from_undirected_pairs(pairs, n);
  g.expected_triangles = triangles;
  g.family = family;
  return g;
}

}  // namespace

ReferenceGraph complete(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) pairs.push_back({u, v});
  }
  return make(std::move(pairs), n, choose3(n), "complete");
}

ReferenceGraph cycle(VertexId n) {
  if (n < 3) throw std::invalid_argument("cycle: n < 3");
  std::vector<Edge> pairs;
  for (VertexId u = 0; u < n; ++u) {
    pairs.push_back({u, static_cast<VertexId>((u + 1) % n)});
  }
  return make(std::move(pairs), n, n == 3 ? 1 : 0, "cycle");
}

ReferenceGraph path(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId u = 0; u + 1 < n; ++u) {
    pairs.push_back({u, static_cast<VertexId>(u + 1)});
  }
  return make(std::move(pairs), n, 0, "path");
}

ReferenceGraph star(VertexId n) {
  std::vector<Edge> pairs;
  for (VertexId leaf = 1; leaf < n; ++leaf) pairs.push_back({0, leaf});
  return make(std::move(pairs), n, 0, "star");
}

ReferenceGraph wheel(VertexId n) {
  if (n < 4) throw std::invalid_argument("wheel: n < 4");
  const VertexId rim = n - 1;
  std::vector<Edge> pairs;
  for (VertexId i = 0; i < rim; ++i) {
    pairs.push_back({0, static_cast<VertexId>(1 + i)});
    pairs.push_back({static_cast<VertexId>(1 + i),
                     static_cast<VertexId>(1 + (i + 1) % rim)});
  }
  // Hub-rim triangles: one per rim edge. A 3-cycle rim (n == 4) also closes
  // itself, making K_4 with C(4,3) = 4 triangles.
  const TriangleCount triangles = (rim == 3) ? 4 : rim;
  return make(std::move(pairs), n, triangles, "wheel");
}

ReferenceGraph complete_bipartite(VertexId a, VertexId b) {
  std::vector<Edge> pairs;
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) {
      pairs.push_back({u, static_cast<VertexId>(a + v)});
    }
  }
  return make(std::move(pairs), a + b, 0, "complete_bipartite");
}

ReferenceGraph grid(VertexId rows, VertexId cols) {
  std::vector<Edge> pairs;
  auto id = [cols](VertexId r, VertexId c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) pairs.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) pairs.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return make(std::move(pairs), rows * cols, 0, "grid");
}

ReferenceGraph disjoint_triangles(VertexId t) {
  std::vector<Edge> pairs;
  for (VertexId i = 0; i < t; ++i) {
    const VertexId base = 3 * i;
    pairs.push_back({base, static_cast<VertexId>(base + 1)});
    pairs.push_back({static_cast<VertexId>(base + 1),
                     static_cast<VertexId>(base + 2)});
    pairs.push_back({base, static_cast<VertexId>(base + 2)});
  }
  return make(std::move(pairs), 3 * t, t, "disjoint_triangles");
}

ReferenceGraph windmill(VertexId k, VertexId t) {
  if (k < 2) throw std::invalid_argument("windmill: k < 2");
  std::vector<Edge> pairs;
  // Vertex 0 is shared; copy i uses vertices [1 + i*(k-1), 1 + (i+1)*(k-1)).
  for (VertexId i = 0; i < t; ++i) {
    const VertexId base = 1 + i * (k - 1);
    for (VertexId a = 0; a < k - 1; ++a) {
      pairs.push_back({0, static_cast<VertexId>(base + a)});
      for (VertexId b = a + 1; b < k - 1; ++b) {
        pairs.push_back({static_cast<VertexId>(base + a),
                         static_cast<VertexId>(base + b)});
      }
    }
  }
  return make(std::move(pairs), 1 + t * (k - 1), t * choose3(k), "windmill");
}

ReferenceGraph clique_ring(VertexId k, VertexId t) {
  if (k < 2 || t < 3) throw std::invalid_argument("clique_ring: k < 2 or t < 3");
  std::vector<Edge> pairs;
  for (VertexId i = 0; i < t; ++i) {
    const VertexId base = i * k;
    for (VertexId a = 0; a < k; ++a) {
      for (VertexId b = a + 1; b < k; ++b) {
        pairs.push_back({static_cast<VertexId>(base + a),
                         static_cast<VertexId>(base + b)});
      }
    }
    // Bridge: last vertex of clique i to first vertex of clique i+1.
    const VertexId next_base = ((i + 1) % t) * k;
    pairs.push_back({static_cast<VertexId>(base + k - 1), next_base});
  }
  return make(std::move(pairs), k * t, t * choose3(k), "clique_ring");
}

ReferenceGraph triangular_strip(VertexId cols) {
  if (cols < 2) throw std::invalid_argument("triangular_strip: cols < 2");
  std::vector<Edge> pairs;
  auto top = [](VertexId c) { return c; };
  auto bot = [cols](VertexId c) { return static_cast<VertexId>(cols + c); };
  for (VertexId c = 0; c < cols; ++c) {
    pairs.push_back({top(c), bot(c)});
    if (c + 1 < cols) {
      pairs.push_back({top(c), top(c + 1)});
      pairs.push_back({bot(c), bot(c + 1)});
      pairs.push_back({top(c), bot(c + 1)});  // diagonal
    }
  }
  // Each of the cols-1 quads is split by its diagonal into 2 triangles.
  return make(std::move(pairs), 2 * cols, 2 * (cols - 1), "triangular_strip");
}

std::vector<ReferenceGraph> all_small_references() {
  std::vector<ReferenceGraph> graphs;
  graphs.push_back(complete(8));
  graphs.push_back(cycle(3));
  graphs.push_back(cycle(12));
  graphs.push_back(path(20));
  graphs.push_back(star(16));
  graphs.push_back(wheel(4));
  graphs.push_back(wheel(10));
  graphs.push_back(complete_bipartite(5, 7));
  graphs.push_back(grid(6, 9));
  graphs.push_back(disjoint_triangles(11));
  graphs.push_back(windmill(4, 5));
  graphs.push_back(clique_ring(4, 6));
  graphs.push_back(triangular_strip(14));
  return graphs;
}

}  // namespace trico::gen
