// Deterministic, seedable random number generation for the generators.
//
// Every generator in trico::gen is a pure function of its parameters and
// seed, so experiments are exactly reproducible across runs and platforms
// (std::mt19937 distributions are not guaranteed identical across standard
// library implementations, so we implement our own).

#pragma once

#include <cstdint>

namespace trico::gen {

/// SplitMix64: used for seeding and cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      word = splitmix64(x);
    }
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (bound > 0).
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // 128-bit multiply keeps the modulo bias negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  constexpr bool bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace trico::gen
