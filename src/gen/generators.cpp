#include "gen/generators.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "gen/rng.hpp"
#include "graph/csr.hpp"

namespace trico::gen {

namespace {

/// Collects unique undirected pairs (canonicalized to u < v) into an
/// EdgeList.
class PairCollector {
 public:
  explicit PairCollector(VertexId n) : n_(n) {}

  /// Returns true iff the pair was new (and not a self-loop).
  bool add(VertexId u, VertexId v) {
    if (u == v) return false;
    if (u > v) std::swap(u, v);
    if (!seen_.insert(pack_edge(Edge{u, v})).second) return false;
    pairs_.push_back(Edge{u, v});
    return true;
  }

  [[nodiscard]] bool contains(VertexId u, VertexId v) const {
    if (u > v) std::swap(u, v);
    return seen_.contains(pack_edge(Edge{u, v}));
  }

  [[nodiscard]] std::size_t size() const { return pairs_.size(); }

  [[nodiscard]] EdgeList finish() const {
    return EdgeList::from_undirected_pairs(pairs_, n_);
  }

  [[nodiscard]] const std::vector<Edge>& pairs() const { return pairs_; }

 private:
  VertexId n_;
  std::unordered_set<std::uint64_t> seen_;
  std::vector<Edge> pairs_;
};

}  // namespace

EdgeList erdos_renyi(VertexId n, EdgeIndex m, std::uint64_t seed) {
  const auto max_edges =
      static_cast<EdgeIndex>(n) * (n > 0 ? n - 1 : 0) / 2;
  if (m > max_edges) {
    throw std::invalid_argument("erdos_renyi: more edges than vertex pairs");
  }
  Rng rng(splitmix64(seed ^ 0xE7D05E7D05ull));
  PairCollector collector(n);
  while (collector.size() < m) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    collector.add(u, v);
  }
  return collector.finish();
}

EdgeList rmat(const RmatParams& params, std::uint64_t seed) {
  const VertexId n = VertexId{1} << params.scale;
  const auto attempts =
      static_cast<EdgeIndex>(params.edge_factor * static_cast<double>(n));
  Rng rng(splitmix64(seed ^ 0x92A7ull));
  PairCollector collector(n);
  for (EdgeIndex i = 0; i < attempts; ++i) {
    VertexId u = 0, v = 0;
    for (unsigned level = 0; level < params.scale; ++level) {
      double a = params.a, b = params.b, c = params.c;
      if (params.noise) {
        // +-10% multiplicative jitter per level, as in the Graph500
        // reference generator, prevents exact-degree artifacts.
        const double ja = 0.9 + 0.2 * rng.next_double();
        const double jb = 0.9 + 0.2 * rng.next_double();
        const double jc = 0.9 + 0.2 * rng.next_double();
        const double jd = 0.9 + 0.2 * rng.next_double();
        const double norm =
            params.a * ja + params.b * jb + params.c * jc + params.d * jd;
        a = params.a * ja / norm;
        b = params.b * jb / norm;
        c = params.c * jc / norm;
      }
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    collector.add(u, v);
  }
  return collector.finish();
}

EdgeList barabasi_albert(VertexId n, unsigned attach, std::uint64_t seed) {
  if (attach == 0) throw std::invalid_argument("barabasi_albert: attach == 0");
  const VertexId seed_size = std::max<VertexId>(attach + 1, 3);
  if (n < seed_size) {
    throw std::invalid_argument("barabasi_albert: n too small for attach");
  }
  Rng rng(splitmix64(seed ^ 0xBABAull));
  PairCollector collector(n);
  // Repeated-endpoint list: picking a uniform element of `endpoints` is
  // preferential attachment (each vertex appears deg(v) times).
  std::vector<VertexId> endpoints;
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      if (collector.add(u, v)) {
        endpoints.push_back(u);
        endpoints.push_back(v);
      }
    }
  }
  for (VertexId u = seed_size; u < n; ++u) {
    unsigned added = 0;
    // Cap resampling so pathological parameter choices cannot live-lock.
    unsigned attempts_left = attach * 50;
    while (added < attach && attempts_left-- > 0) {
      const VertexId v = endpoints[rng.next_below(endpoints.size())];
      if (collector.add(u, v)) {
        ++added;
        endpoints.push_back(u);
        endpoints.push_back(v);
      }
    }
  }
  return collector.finish();
}

EdgeList watts_strogatz(VertexId n, unsigned k, double beta,
                        std::uint64_t seed) {
  if (n == 0 || 2ull * k >= n) {
    throw std::invalid_argument("watts_strogatz: requires 2k < n");
  }
  Rng rng(splitmix64(seed ^ 0x35ull));
  PairCollector collector(n);
  for (VertexId u = 0; u < n; ++u) {
    for (unsigned j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire: keep u, pick a fresh endpoint.
        unsigned attempts_left = 50;
        VertexId w = v;
        do {
          w = static_cast<VertexId>(rng.next_below(n));
        } while ((w == u || collector.contains(u, w)) && attempts_left-- > 0);
        if (w != u && !collector.contains(u, w)) v = w;
      }
      collector.add(u, v);
    }
  }
  return collector.finish();
}

EdgeList social(const SocialParams& params, std::uint64_t seed) {
  // Backbone: power-law degrees from preferential attachment.
  EdgeList backbone = barabasi_albert(params.n, params.attach, seed);
  Rng rng(splitmix64(seed ^ 0x50C1A1ull));
  PairCollector collector(params.n);
  for (const Edge& e : backbone.edges()) {
    if (e.u < e.v) collector.add(e.u, e.v);
  }
  // Triadic closure: sample a random wedge (u - v - w) by walking two random
  // incident edges, then close it. This concentrates new edges where degree
  // is already high, boosting the triangles/edges ratio like real social
  // graphs.
  const Csr adjacency = Csr::from_edge_list(backbone);
  const auto rounds = static_cast<EdgeIndex>(
      params.closure_rounds * static_cast<double>(backbone.num_edges()));
  const auto slots = backbone.edges();
  for (EdgeIndex i = 0; i < rounds; ++i) {
    const Edge& uv = slots[rng.next_below(slots.size())];
    const auto nbrs = adjacency.neighbors(uv.v);
    if (nbrs.empty()) continue;
    const VertexId w = nbrs[rng.next_below(nbrs.size())];
    if (w == uv.u) continue;
    if (rng.bernoulli(params.closure_prob)) collector.add(uv.u, w);
  }
  return EdgeList::from_undirected_pairs(collector.pairs(), params.n);
}

EdgeList copaper(const CopaperParams& params, std::uint64_t seed) {
  if (params.n < params.max_authors || params.min_authors < 2 ||
      params.max_authors < params.min_authors) {
    throw std::invalid_argument("copaper: inconsistent parameters");
  }
  Rng rng(splitmix64(seed ^ 0xC09A9E8ull));
  PairCollector collector(params.n);
  std::vector<VertexId> authors;
  for (std::uint64_t p = 0; p < params.papers; ++p) {
    // Zipf-ish clique size: small papers common, large ones rare.
    const unsigned range = params.max_authors - params.min_authors + 1;
    unsigned size = params.min_authors;
    double mass = rng.next_double();
    double weight = 0.0, norm = 0.0;
    for (unsigned k = 0; k < range; ++k) norm += 1.0 / static_cast<double>(k + 1);
    for (unsigned k = 0; k < range; ++k) {
      weight += 1.0 / static_cast<double>(k + 1) / norm;
      if (mass < weight) {
        size = params.min_authors + k;
        break;
      }
    }
    // First author anchors a community window; co-authors are mostly local.
    const VertexId anchor = static_cast<VertexId>(rng.next_below(params.n));
    const VertexId window = std::max<VertexId>(64, params.n / 1000);
    authors.clear();
    authors.push_back(anchor);
    while (authors.size() < size) {
      VertexId a;
      if (rng.bernoulli(params.locality)) {
        const std::uint64_t offset = rng.next_below(window);
        a = static_cast<VertexId>((anchor + offset) % params.n);
      } else {
        a = static_cast<VertexId>(rng.next_below(params.n));
      }
      if (std::find(authors.begin(), authors.end(), a) == authors.end()) {
        authors.push_back(a);
      }
    }
    for (std::size_t i = 0; i < authors.size(); ++i) {
      for (std::size_t j = i + 1; j < authors.size(); ++j) {
        collector.add(authors[i], authors[j]);
      }
    }
  }
  return collector.finish();
}

}  // namespace trico::gen
