// Reference graph families with closed-form triangle counts.
//
// These back the property tests: every counting algorithm in the library
// must reproduce the closed forms exactly, for every family, at every size.

#pragma once

#include <vector>

#include "graph/edge_list.hpp"

namespace trico::gen {

/// A graph together with its analytically known triangle count.
struct ReferenceGraph {
  EdgeList edges;
  TriangleCount expected_triangles = 0;
  const char* family = "";
};

/// Complete graph K_n: C(n, 3) triangles.
[[nodiscard]] ReferenceGraph complete(VertexId n);

/// Cycle C_n: 1 triangle when n == 3, else 0.
[[nodiscard]] ReferenceGraph cycle(VertexId n);

/// Path P_n: 0 triangles.
[[nodiscard]] ReferenceGraph path(VertexId n);

/// Star S_n (one hub, n-1 leaves): 0 triangles.
[[nodiscard]] ReferenceGraph star(VertexId n);

/// Wheel W_n (hub + cycle of n-1 rim vertices, n >= 4): n-1 triangles
/// (each rim edge closes with the hub), plus 1 more when the rim is a
/// 3-cycle (n == 4 gives K_4 with 4 triangles).
[[nodiscard]] ReferenceGraph wheel(VertexId n);

/// Complete bipartite K_{a,b}: 0 triangles.
[[nodiscard]] ReferenceGraph complete_bipartite(VertexId a, VertexId b);

/// 2-D grid graph (rows x cols, 4-neighbourhood): 0 triangles.
[[nodiscard]] ReferenceGraph grid(VertexId rows, VertexId cols);

/// t vertex-disjoint triangles: exactly t triangles.
[[nodiscard]] ReferenceGraph disjoint_triangles(VertexId t);

/// Windmill Wd(k, t): t copies of K_k sharing one common vertex.
/// Triangles: t * C(k, 3) within copies... all triangles lie inside a copy,
/// so the count is t * C(k, 3).
[[nodiscard]] ReferenceGraph windmill(VertexId k, VertexId t);

/// Clique ring: t cliques of size k arranged in a ring, consecutive cliques
/// joined by a single bridge edge. Triangles: t * C(k, 3) (bridges create
/// none).
[[nodiscard]] ReferenceGraph clique_ring(VertexId k, VertexId t);

/// Triangular lattice strip: two rows of `cols` vertices where cell (r, c)
/// also gets the diagonal, giving 2*(cols-1) ... — computed constructively;
/// expected count derived from the construction (each quad contributes 2).
[[nodiscard]] ReferenceGraph triangular_strip(VertexId cols);

/// All families at a given small size, for parameterized sweeps.
[[nodiscard]] std::vector<ReferenceGraph> all_small_references();

}  // namespace trico::gen
