// Synthetic graph generators.
//
// These replace the paper's datasets: Kronecker R-MAT graphs (DIMACS-10
// parameters) are generated exactly as in the paper's synthetic experiments;
// Barabási–Albert and Watts–Strogatz match the paper's other two synthetic
// graphs; Erdős–Rényi and the power-law/triadic-closure "social" generator
// provide stand-ins for the SNAP/DIMACS real-world datasets that are not
// available offline (see DESIGN.md §2).
//
// All generators return a canonical undirected EdgeList (no self-loops, no
// duplicates, both directions present) and are deterministic in (params,
// seed).

#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace trico::gen {

/// Erdős–Rényi G(n, m): m distinct undirected edges chosen uniformly.
/// Requires m <= n*(n-1)/2.
[[nodiscard]] EdgeList erdos_renyi(VertexId n, EdgeIndex m, std::uint64_t seed);

/// R-MAT / stochastic-Kronecker parameters. The defaults are the DIMACS-10
/// values (a=0.57, b=c=0.19, d=0.05) used by the paper's "Kronecker" rows.
struct RmatParams {
  unsigned scale = 16;          ///< n = 2^scale vertices
  double edge_factor = 16.0;    ///< directed edge attempts per vertex
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  bool noise = true;            ///< per-level parameter jitter (smooths degrees)
};

/// R-MAT generator. Duplicate edges and self-loops from the recursive
/// process are dropped, so the resulting edge count is slightly below
/// n * edge_factor (as in the DIMACS generator).
[[nodiscard]] EdgeList rmat(const RmatParams& params, std::uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a small seed clique
/// and attaches each new vertex to `attach` existing vertices with
/// probability proportional to degree.
[[nodiscard]] EdgeList barabasi_albert(VertexId n, unsigned attach,
                                       std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbours per
/// side, each edge rewired with probability `beta`. Requires 2*k < n.
[[nodiscard]] EdgeList watts_strogatz(VertexId n, unsigned k, double beta,
                                      std::uint64_t seed);

/// Parameters for the "social network" stand-in generator: a power-law
/// degree backbone (Barabási–Albert) densified with triadic closure, which
/// raises the triangles/edges ratio into the range of the paper's social
/// graphs (LiveJournal, Orkut) and co-paper graphs (Citeseer, DBLP).
struct SocialParams {
  VertexId n = 100000;
  unsigned attach = 8;          ///< BA attachment (controls edge count)
  double closure_rounds = 1.0;  ///< triadic-closure passes per edge
  double closure_prob = 0.25;   ///< probability of closing a sampled wedge
};

/// Power-law + triadic-closure generator.
[[nodiscard]] EdgeList social(const SocialParams& params, std::uint64_t seed);

/// Parameters for the co-authorship ("co-paper") generator standing in for
/// the DIMACS Citeseer/DBLP graphs: each paper contributes a clique over
/// its authors, so the triangles/edges ratio is very high (the paper's
/// Citeseer has 27 triangles per directed edge slot).
struct CopaperParams {
  VertexId n = 100000;      ///< author pool
  std::uint64_t papers = 60000;
  unsigned min_authors = 2;
  unsigned max_authors = 9; ///< clique sizes drawn ~ Zipf in [min, max]
  double locality = 0.95;   ///< chance each co-author is drawn from a local
                            ///< community window rather than uniformly
};

/// Co-paper generator: union of author cliques with community locality.
[[nodiscard]] EdgeList copaper(const CopaperParams& params, std::uint64_t seed);

}  // namespace trico::gen
