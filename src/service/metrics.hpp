// Service observability: latency histograms and the MetricsSnapshot.
//
// Every terminal response is recorded once, sliced two ways: the global
// aggregate and the submitting tenant's slice (tenant isolation is only
// real if you can *see* per-tenant latency and rejection rates — a noisy
// neighbor shows up as one tenant's rejections, not a global blur).
// Counters are aggregated under one mutex (recording is a few adds —
// contention is negligible next to a count), and snapshot() returns a
// consistent copy so readers never see a torn state. The circuit-breaker
// and queue gauges are attached by TriangleService::metrics() from their
// owning components.

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "service/catalog.hpp"
#include "service/request.hpp"
#include "service/router.hpp"

namespace trico::service {

/// Log2-bucketed latency histogram (milliseconds). Bucket i counts samples
/// in (base * 2^(i-1), base * 2^i]; the first bucket catches everything at
/// or below `kBaseMs`, the last everything beyond the top edge.
struct LatencyHistogram {
  static constexpr double kBaseMs = 0.0625;  ///< 62.5 µs first bucket edge
  static constexpr std::size_t kBuckets = 22;  ///< top edge ~36 minutes

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_ms = 0;
  double min_ms = 0;
  double max_ms = 0;

  void record(double ms);
  [[nodiscard]] double mean_ms() const { return count ? sum_ms / count : 0; }
  /// Upper edge of bucket i in milliseconds.
  [[nodiscard]] static double bucket_edge_ms(std::size_t i);
  /// Smallest bucket edge with >= `quantile` of the mass at or below it —
  /// a bucketed upper bound on the quantile (e.g. 0.99 for p99).
  [[nodiscard]] double quantile_upper_bound_ms(double quantile) const;
};

/// One tenant's slice of the lifecycle counters and latency.
struct TenantMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  LatencyHistogram total_latency;  ///< submit -> done, kOk responses only
};

/// Point-in-time copy of every service counter.
struct MetricsSnapshot {
  // Request lifecycle.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< reached any terminal state
  std::uint64_t ok = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;

  // Backend routing (kOk responses, by serving tier).
  std::array<std::uint64_t, kNumBackends> served_by_backend{};
  std::uint64_t fallbacks = 0;  ///< responses served past the first choice

  // Latency.
  LatencyHistogram total_latency;    ///< submit -> done
  LatencyHistogram execute_latency;  ///< dequeue -> done

  // Per-tenant slices, keyed by tenant_id ("" = the anonymous default
  // tenant). std::map: deterministic iteration for reports and tests.
  std::map<std::string, TenantMetrics> tenants;

  // Catalog.
  CatalogStats catalog;

  // Queue.
  std::size_t queue_depth = 0;
  std::size_t queue_peak_depth = 0;
  std::size_t queue_capacity = 0;
  std::size_t per_tenant_queue_cap = 0;
  std::vector<std::pair<std::string, std::size_t>> tenant_queue_depths;

  // Robustness.
  std::array<BreakerSnapshot, kNumBackends> breakers{};
  std::uint64_t watchdog_budget_cancels = 0;

  // Router calibration: the live ns-per-unit constants the cost model is
  // scoring with right now (attached by TriangleService::metrics()).
  CalibrationSnapshot router_calibration{};

  // Supervised worker pool (attached by the owner of a WorkerSupervisor —
  // the cluster Coordinator or the CLI cluster mode; empty in
  // single-process deployments). One slot per worker process: liveness,
  // heartbeat-breaker state and how many times the slot was respawned.
  struct WorkerSlot {
    long pid = -1;
    std::uint16_t port = 0;
    bool alive = false;
    BreakerState breaker = BreakerState::kClosed;
    std::uint64_t restarts = 0;
  };
  std::vector<WorkerSlot> workers;
  std::uint64_t worker_restarts = 0;         ///< pool-wide respawn total
  std::uint64_t worker_heartbeat_faults = 0;
  std::uint64_t worker_reroutes = 0;         ///< requests moved between workers

  // Coordinator HA (attached by an HaCoordinator owner; ha_enabled is
  // false in single-coordinator deployments and the block is omitted from
  // reports).
  bool ha_enabled = false;
  bool ha_leading = false;
  std::uint64_t ha_epoch = 0;       ///< fencing epoch while leading, else 0
  std::uint64_t ha_promotions = 0;  ///< lease acquisitions by this node
  std::uint64_t ha_demotions = 0;   ///< leases lost by this node
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_bytes = 0;
  std::uint64_t journal_replays = 0;           ///< exactly-once replay hits
  std::uint64_t journal_recovered = 0;         ///< records indexed from scans
  std::uint64_t journal_quarantined_bytes = 0; ///< torn tails copied aside

  // CPU tier: detected SIMD features and the ISA the intersection kernels
  // resolve to (empty until attached by TriangleService::metrics()).
  std::string cpu_features;
  std::string cpu_isa;

  /// Multi-line human-readable report (the CLI's final summary).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe recorder behind the snapshot.
class MetricsRegistry {
 public:
  void record_submitted(const Request& request);
  void record_response(const Request& request, const Response& response);
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot data_;
};

}  // namespace trico::service
