// Service observability: latency histograms and the MetricsSnapshot.
//
// Every terminal response is recorded once. Counters are aggregated under
// one mutex (recording is a few adds — contention is negligible next to a
// count), and snapshot() returns a consistent copy so readers never see a
// torn state.

#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "service/catalog.hpp"
#include "service/request.hpp"

namespace trico::service {

/// Log2-bucketed latency histogram (milliseconds). Bucket i counts samples
/// in (base * 2^(i-1), base * 2^i]; the first bucket catches everything at
/// or below `kBaseMs`, the last everything beyond the top edge.
struct LatencyHistogram {
  static constexpr double kBaseMs = 0.0625;  ///< 62.5 µs first bucket edge
  static constexpr std::size_t kBuckets = 22;  ///< top edge ~36 minutes

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_ms = 0;
  double min_ms = 0;
  double max_ms = 0;

  void record(double ms);
  [[nodiscard]] double mean_ms() const { return count ? sum_ms / count : 0; }
  /// Upper edge of bucket i in milliseconds.
  [[nodiscard]] static double bucket_edge_ms(std::size_t i);
  /// Smallest bucket edge with >= `quantile` of the mass at or below it —
  /// a bucketed upper bound on the quantile (e.g. 0.99 for p99).
  [[nodiscard]] double quantile_upper_bound_ms(double quantile) const;
};

/// Point-in-time copy of every service counter.
struct MetricsSnapshot {
  // Request lifecycle.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< reached any terminal state
  std::uint64_t ok = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;

  // Backend routing (kOk responses, by serving tier).
  std::array<std::uint64_t, kNumBackends> served_by_backend{};
  std::uint64_t fallbacks = 0;  ///< responses served past the first choice

  // Latency.
  LatencyHistogram total_latency;    ///< submit -> done
  LatencyHistogram execute_latency;  ///< dequeue -> done

  // Catalog.
  CatalogStats catalog;

  // Queue.
  std::size_t queue_depth = 0;
  std::size_t queue_peak_depth = 0;
  std::size_t queue_capacity = 0;

  /// Multi-line human-readable report (the CLI's final summary).
  [[nodiscard]] std::string to_string() const;
};

/// Thread-safe recorder behind the snapshot.
class MetricsRegistry {
 public:
  void record_submitted();
  void record_response(const Response& response);
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  MetricsSnapshot data_;
};

}  // namespace trico::service
