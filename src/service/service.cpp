#include "service/service.hpp"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/clustering.hpp"
#include "analysis/truss.hpp"
#include "cpu/simd/cpu_features.hpp"
#include "multigpu/multi_gpu.hpp"
#include "outofcore/counter.hpp"
#include "service/sharding.hpp"
#include "simt/fault.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace trico::service {

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kCpuHybrid: return "cpu-hybrid";
    case Backend::kGpu: return "gpu";
    case Backend::kMultiGpu: return "multigpu";
    case Backend::kOutOfCore: return "outofcore";
    case Backend::kAuto: return "auto";
  }
  return "?";
}

const char* to_string(Operation op) {
  switch (op) {
    case Operation::kCount: return "count";
    case Operation::kClustering: return "clustering";
    case Operation::kTruss: return "truss";
  }
  return "?";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kRejectedQueueFull: return "rejected-queue-full";
    case Status::kDeadlineExpired: return "deadline-expired";
    case Status::kCancelled: return "cancelled";
    case Status::kFailed: return "failed";
  }
  return "?";
}

core::CountingOptions default_service_counting() {
  core::CountingOptions options;
  options.sim.sample_sms = 2;  // the bench harness's affordable sampling
  options.host_threads = 1;    // workers, not requests, carry the parallelism
  return options;
}

namespace {

RouterOptions synced_router_options(const ServiceOptions& options) {
  RouterOptions router = options.router;
  router.sim_sample_sms = options.counting.sim.sample_sms;
  if (router.memory_budget_bytes == 0) {
    router.memory_budget_bytes = options.counting.memory_budget_bytes;
  }
  return router;
}

}  // namespace

TriangleService::TriangleService(ServiceOptions options)
    : options_(std::move(options)),
      catalog_(options_.catalog),
      router_(synced_router_options(options_)) {
  scheduler_ = std::make_unique<RequestScheduler>(
      options_.scheduler,
      [this](const Request& request, ExecContext& ctx) {
        return serve(request, ctx);
      },
      [this](const Request& request, const Response& response) {
        metrics_.record_response(request, response);
      });
}

Ticket TriangleService::submit(Request request) {
  metrics_.record_submitted(request);
  return scheduler_->submit(std::move(request));
}

Response TriangleService::execute(Request request) {
  return submit(std::move(request)).wait();
}

MetricsSnapshot TriangleService::metrics() const {
  MetricsSnapshot snapshot = metrics_.snapshot();
  snapshot.catalog = catalog_.stats();
  snapshot.queue_depth = scheduler_->queue_depth();
  snapshot.queue_peak_depth = scheduler_->queue_peak_depth();
  snapshot.queue_capacity = scheduler_->queue_capacity();
  snapshot.per_tenant_queue_cap = scheduler_->per_tenant_queue_cap();
  snapshot.tenant_queue_depths = scheduler_->tenant_queue_depths();
  snapshot.breakers = router_.breaker_snapshots();
  snapshot.watchdog_budget_cancels = scheduler_->watchdog_flags();
  snapshot.router_calibration = router_.calibration();
  snapshot.cpu_features = cpu::simd::detect_cpu_features().to_string();
  snapshot.cpu_isa = cpu::simd::to_string(cpu::simd::resolve_isa());
  return snapshot;
}

void TriangleService::pause() { scheduler_->pause(); }
void TriangleService::resume() { scheduler_->resume(); }

Response TriangleService::run_backend(Backend backend,
                                      const CatalogEntry& entry,
                                      const RouteDecision& route,
                                      ExecContext& ctx) {
  if (options_.chaos != nullptr &&
      options_.chaos->should_fault(ChaosSite::kBackendRun, backend)) {
    throw simt::DeviceFault(
        simt::FaultKind::kKernelAbort, simt::FaultSite::kKernel, 0,
        std::string("chaos: injected fault launching the ") +
            to_string(backend) + " tier");
  }

  core::CountingOptions counting = options_.counting;
  counting.host_threads = ctx.pool.num_threads();
  // The request's cancel token rides the SimOptions into every simulated
  // launch, so a cancelled/expired request unwinds the device tiers too.
  counting.sim.cancel = ctx.cancel;
  const simt::DeviceConfig& device = router_.options().device;

  Response response;
  response.backend = backend;
  switch (backend) {
    case Backend::kCpuHybrid: {
      // prepared_view spans either the owned PreparedGraph or an mmapped
      // store artifact — same kernel, bit-identical counts either way.
      response.triangles = cpu::count_prepared(entry.prepared_view, ctx.pool,
                                               nullptr, ctx.cancel);
      break;
    }
    case Backend::kGpu: {
      const core::GpuCountResult result =
          core::count_triangles_gpu(*entry.edges, device, counting);
      response.triangles = result.triangles;
      response.modeled_device_ms = result.phases.total_ms();
      // The pipeline's own degradation ladder (PR 1) surfaces as a degraded
      // serve even when the backend itself did not change.
      response.degraded =
          result.robustness.degradation_rung != simt::DegradationRung::kFullGpu;
      break;
    }
    case Backend::kMultiGpu: {
      multigpu::MultiGpuCounter counter(
          device, std::max(1u, router_.options().num_devices), counting);
      const multigpu::MultiGpuResult result = counter.count(*entry.edges);
      response.triangles = result.triangles;
      response.modeled_device_ms = result.total_ms();
      break;
    }
    case Backend::kOutOfCore: {
      outofcore::OutOfCoreCounter counter(device, route.outofcore_colors, 1,
                                          counting);
      // The artifact store doubles as the spill tier: extracted color-triple
      // subgraphs persist across runs (no-op when the store is disabled).
      counter.set_spill(&catalog_.artifact_store(), entry.key);
      const outofcore::OutOfCoreResult result = counter.count(*entry.edges);
      response.triangles = result.triangles;
      response.modeled_device_ms = result.total_ms();
      break;
    }
    case Backend::kAuto:
      throw std::logic_error("run_backend: unrouted kAuto");
  }
  response.status = Status::kOk;
  return response;
}

Response TriangleService::run_shard(const Request& request,
                                   const CatalogEntry& entry,
                                   std::uint64_t key, bool catalog_hit,
                                   ExecContext& ctx) {
  // Shards run on the CPU hybrid tier unconditionally: count_prepared_range
  // is the only backend with a row-sliced entry point, and it is exact over
  // owned and mmapped views alike. The chaos probe keeps the wire chaos
  // tests able to fault a shard mid-gather like any other backend run.
  if (options_.chaos != nullptr &&
      options_.chaos->should_fault(ChaosSite::kBackendRun,
                                   Backend::kCpuHybrid)) {
    throw simt::DeviceFault(
        simt::FaultKind::kKernelAbort, simt::FaultSite::kKernel, 0,
        "chaos: injected fault launching a shard on the cpu tier");
  }

  const cpu::PreparedGraphView& view = entry.prepared_view;
  const cpu::ShardRange range =
      cpu::shard_rows(view, request.shard_index, request.shard_count);

  Response response;
  response.backend = Backend::kCpuHybrid;
  response.catalog_hit = catalog_hit;
  response.triangles = cpu::count_prepared_range(
      view, ctx.pool, range.row_begin, range.row_end, nullptr, ctx.cancel);
  response.shard_index = request.shard_index;
  response.shard_count = request.shard_count;
  response.shard_row_begin = range.row_begin;
  response.shard_row_end = range.row_end;
  response.shard_edges = range.num_edges();
  response.shard_checksum = shard_slice_checksum(view, range);
  response.graph_fingerprint = shard_graph_fingerprint(key, view);
  response.status = Status::kOk;
  return response;
}

Response TriangleService::serve(const Request& request, ExecContext& ctx) {
  Response response;
  if (!request.graph) {
    response.status = Status::kFailed;
    response.reason = "request carries no graph";
    return response;
  }

  if (options_.chaos != nullptr) {
    const double delay = options_.chaos->execute_delay_ms();
    if (delay > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay));
      // A deadline or cancel that fired during the stall is observed here
      // instead of burning a full serve first.
      if (ctx.cancel != nullptr) ctx.cancel->throw_if_cancelled();
    }
  }

  // Memoized exact results short-circuit the whole pipeline — but only for
  // kAuto requests; an explicit backend must actually run its tier.
  const std::uint64_t key = catalog_.content_key(request.graph);
  if (request.backend == Backend::kAuto) {
    if (const auto cached = catalog_.find_result(key, request.op)) {
      response.triangles = cached->triangles;
      response.clustering = cached->clustering;
      response.transitivity = cached->transitivity;
      response.max_trussness = cached->max_trussness;
      response.backend = cached->backend;
      response.catalog_hit = true;
      response.status = Status::kOk;
      return response;
    }
  }
  const auto memoize = [&](const Response& r) {
    CachedResult result;
    result.triangles = r.triangles;
    result.clustering = r.clustering;
    result.transitivity = r.transitivity;
    result.max_trussness = r.max_trussness;
    result.backend = r.backend;
    catalog_.store_result(key, request.op, result);
  };

  if (options_.chaos != nullptr &&
      options_.chaos->should_fault(ChaosSite::kCatalogBuild)) {
    throw CatalogError("chaos: injected catalog build failure");
  }
  util::Timer acquire_timer;
  const GraphCatalog::Acquired acquired =
      catalog_.acquire(request.graph, ctx.pool);
  const CatalogEntry& entry = *acquired.entry;
  // A cold acquire just ran the parallel preprocess: feed its measured wall
  // clock back into the router's cpu_prepare_ns_per_slot constant.
  if (!acquired.hit) {
    router_.record_preparation(entry.stats, acquire_timer.elapsed_ms());
  }

  // Sharded subrequests (coordinator scatter/gather) take a dedicated path:
  // a partial CPU count over the request's row slice, with the shard echo
  // fields filled in and — crucially — no result memoization, since a
  // partial is not a whole-graph answer for (key, op).
  if (request.sharded()) {
    if (request.op != Operation::kCount) {
      response.status = Status::kFailed;
      response.reason = "sharded requests support only the count operation";
      return response;
    }
    if (request.shard_index >= request.shard_count) {
      response.status = Status::kFailed;
      std::ostringstream reason;
      reason << "invalid shard " << request.shard_index << " of "
             << request.shard_count;
      response.reason = reason.str();
      return response;
    }
    return run_shard(request, entry, key, acquired.hit, ctx);
  }

  // The analysis operations run on the CPU tier (they consume the edge
  // array, not the oriented CSR); routing applies to counting.
  if (request.op == Operation::kClustering) {
    response.clustering = analysis::global_clustering(*entry.edges);
    response.transitivity = analysis::transitivity(*entry.edges);
    response.backend = Backend::kCpuHybrid;
    response.catalog_hit = acquired.hit;
    response.status = Status::kOk;
    memoize(response);
    return response;
  }
  if (request.op == Operation::kTruss) {
    const analysis::TrussDecomposition truss =
        analysis::truss_decomposition(*entry.edges);
    response.max_trussness = truss.max_trussness;
    response.backend = Backend::kCpuHybrid;
    response.catalog_hit = acquired.hit;
    response.status = Status::kOk;
    memoize(response);
    return response;
  }

  const RouteDecision route = router_.route(entry.stats, acquired.hit, request);
  std::ostringstream failures;
  for (std::size_t rung = 0; rung < route.chain.size(); ++rung) {
    const Backend backend = route.chain[rung];
    // The circuit breaker makes the skip decision once per incident: a tier
    // that tripped it is stepped over without paying a doomed attempt.
    if (!router_.admit(backend)) {
      failures << to_string(backend) << ": skipped (circuit open); ";
      continue;
    }
    try {
      util::Timer run_timer;
      response = run_backend(backend, entry, route, ctx);
      router_.record_execution(backend, entry.stats, run_timer.elapsed_ms());
      router_.record_success(backend);
      response.catalog_hit = acquired.hit;
      if (failures.tellp() > 0) {
        response.degraded = true;
        response.reason = "fell back after: " + failures.str();
      }
      memoize(response);
      return response;
    } catch (const util::OperationCancelled&) {
      // Cancellation is a verdict on the request, not the tier: release the
      // breaker's probe slot and unwind to the scheduler, which owns the
      // kCancelled / kDeadlineExpired bookkeeping.
      router_.release(backend);
      throw;
    } catch (const simt::DeviceFault& fault) {
      // A faulted tier steps the request down the chain instead of failing
      // it — the request-level degradation ladder — and feeds the breaker.
      router_.record_fault(backend);
      failures << to_string(backend) << ": " << fault.what() << "; ";
    } catch (const std::exception& error) {
      // Non-fault errors (bad options, out-of-memory task, ...) step down
      // the chain without a breaker verdict.
      router_.release(backend);
      failures << to_string(backend) << ": " << error.what() << "; ";
    }
  }
  response = Response{};
  response.catalog_hit = acquired.hit;
  response.status = Status::kFailed;
  response.reason = "every routed backend failed: " + failures.str();
  return response;
}

}  // namespace trico::service
