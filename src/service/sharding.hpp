// Shard arithmetic shared by the worker-side shard execution path
// (TriangleService) and the coordinator's gather verification (src/cluster).
//
// A sharded request is a partial count over one slice of the edge-balanced
// row tiling cpu::shard_rows derives from the prepared oriented CSR. Both
// sides must agree on what they are summing, so the worker echoes two
// digests with every partial:
//
//   graph fingerprint  — FNV-1a over (catalog content key, n, m_oriented).
//                        Equal fingerprints across shards mean every worker
//                        prepared the same graph to the same CSR shape, so
//                        the deterministic tiling is the same everywhere and
//                        the partials are summable.
//   shard checksum     — FNV-1a over the shard's owned neighbor slice, the
//                        exact bytes the partial was computed from. Pins the
//                        slice for re-scatter equivalence checks and audits.

#pragma once

#include <cstdint>
#include <cstring>

#include "cpu/hybrid_engine.hpp"

namespace trico::service {

inline constexpr std::uint64_t kShardFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kShardFnvPrime = 0x100000001b3ull;

/// FNV-1a folded 8 bytes at a time (byte-wise tail), over arbitrary bytes —
/// unlike store::fnv1a_words it has no length-multiple requirement, so it
/// can digest a neighbor slice of any edge count.
[[nodiscard]] inline std::uint64_t shard_fnv1a(const void* data,
                                               std::size_t num_bytes,
                                               std::uint64_t hash =
                                                   kShardFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::size_t i = 0;
  for (; i + 8 <= num_bytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    hash = (hash ^ word) * kShardFnvPrime;
  }
  for (; i < num_bytes; ++i) hash = (hash ^ bytes[i]) * kShardFnvPrime;
  return hash;
}

/// Digest of the neighbor slice shard `range` owns. Computed over the raw
/// VertexId bytes, so owned and mmapped views of the same artifact agree.
[[nodiscard]] inline std::uint64_t shard_slice_checksum(
    const cpu::PreparedGraphView& view, const cpu::ShardRange& range) {
  const VertexId* slice = view.neighbors.data() + range.edge_begin;
  return shard_fnv1a(slice, sizeof(VertexId) * range.num_edges());
}

/// Fingerprint of the prepared graph a shard was cut from: content key
/// (what the coordinator hashed) chained with the CSR shape the worker
/// actually prepared (n rows, m oriented edges).
[[nodiscard]] inline std::uint64_t shard_graph_fingerprint(
    std::uint64_t content_key, const cpu::PreparedGraphView& view) {
  const std::uint64_t parts[3] = {content_key, view.num_vertices(),
                                  view.num_edges()};
  return shard_fnv1a(parts, sizeof(parts));
}

}  // namespace trico::service
