#include "service/router.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/gpu_forward.hpp"

namespace trico::service {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

BackendRouter::BackendRouter(RouterOptions options)
    : options_(std::move(options)), cost_(options_.device) {
  calibration_.cpu_count_ns_per_step = options_.cpu_count_ns_per_step;
  calibration_.cpu_prepare_ns_per_slot = options_.cpu_prepare_ns_per_slot;
  calibration_.sim_ns_per_step = options_.sim_ns_per_step;
}

namespace {

/// EWMA fold with an outlier clamp: one wildly off sample (page cache miss,
/// scheduler stall) may move the constant at most 64x in either direction.
void fold_observation(double alpha, double& live, double observed) {
  if (!(observed > 0) || !std::isfinite(observed)) return;
  observed = std::clamp(observed, live / 64.0, live * 64.0);
  live = (1.0 - alpha) * live + alpha * observed;
}

}  // namespace

void BackendRouter::record_execution(Backend backend, const GraphStats& stats,
                                     double execute_ms) {
  const double alpha = options_.calibration_alpha;
  const double steps = counting_steps(stats);
  if (alpha <= 0 || execute_ms <= 0 || steps <= 0) return;
  std::lock_guard lock(calibration_mutex_);
  switch (backend) {
    case Backend::kCpuHybrid:
      // Counting phase only: the catalog owns preprocessing, so the whole
      // measured run amortizes over the modeled merge steps.
      fold_observation(alpha, calibration_.cpu_count_ns_per_step,
                       execute_ms * 1e6 / steps);
      ++calibration_.count_samples;
      break;
    case Backend::kGpu:
    case Backend::kMultiGpu:
    case Backend::kOutOfCore: {
      // Deduct the estimated host preprocessing share (scaled by ~k/2 for
      // the out-of-core tier, mirroring estimate()); what remains is the
      // simulator's per-step host cost under the configured SM sampling.
      const double slots = 2.0 * static_cast<double>(stats.num_edges);
      double host_pre_ms =
          slots * calibration_.cpu_prepare_ns_per_slot * 1e-6;
      if (backend == Backend::kOutOfCore) {
        host_pre_ms *= auto_colors(stats) / 2.0;
      }
      const double sample_fraction =
          options_.sim_sample_sms == 0
              ? 1.0
              : std::min(1.0, static_cast<double>(options_.sim_sample_sms) /
                                  static_cast<double>(options_.device.num_sms));
      const double denom = steps * sample_fraction;
      const double sim_ms = execute_ms - host_pre_ms;
      if (sim_ms > 0 && denom > 0) {
        fold_observation(alpha, calibration_.sim_ns_per_step,
                         sim_ms * 1e6 / denom);
        ++calibration_.sim_samples;
      }
      break;
    }
    case Backend::kAuto:
      break;
  }
}

void BackendRouter::record_preparation(const GraphStats& stats,
                                       double prepare_ms) {
  const double alpha = options_.calibration_alpha;
  const double slots = 2.0 * static_cast<double>(stats.num_edges);
  if (alpha <= 0 || prepare_ms <= 0 || slots <= 0) return;
  std::lock_guard lock(calibration_mutex_);
  fold_observation(alpha, calibration_.cpu_prepare_ns_per_slot,
                   prepare_ms * 1e6 / slots);
  ++calibration_.prepare_samples;
}

CalibrationSnapshot BackendRouter::calibration() const {
  std::lock_guard lock(calibration_mutex_);
  return calibration_;
}

bool BackendRouter::admit(Backend backend) {
  if (backend == Backend::kCpuHybrid || backend == Backend::kAuto) return true;
  std::lock_guard lock(breaker_mutex_);
  BreakerEntry& breaker = breakers_[static_cast<std::size_t>(backend)];
  switch (breaker.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const std::chrono::duration<double, std::milli> open_for =
          std::chrono::steady_clock::now() - breaker.opened_at;
      if (open_for.count() >= breaker.backoff_ms) {
        breaker.state = BreakerState::kHalfOpen;
        breaker.probe_in_flight = true;
        return true;  // the caller is the probe
      }
      ++breaker.skipped;
      return false;
    }
    case BreakerState::kHalfOpen:
      if (breaker.probe_in_flight) {
        ++breaker.skipped;
        return false;  // one probe at a time
      }
      breaker.probe_in_flight = true;
      return true;
  }
  return true;
}

void BackendRouter::record_success(Backend backend) {
  if (backend == Backend::kCpuHybrid || backend == Backend::kAuto) return;
  std::lock_guard lock(breaker_mutex_);
  BreakerEntry& breaker = breakers_[static_cast<std::size_t>(backend)];
  breaker.state = BreakerState::kClosed;
  breaker.consecutive_failures = 0;
  breaker.backoff_ms = 0;
  breaker.probe_in_flight = false;
}

void BackendRouter::record_fault(Backend backend) {
  if (backend == Backend::kCpuHybrid || backend == Backend::kAuto) return;
  const BreakerOptions& opts = options_.breaker;
  std::lock_guard lock(breaker_mutex_);
  BreakerEntry& breaker = breakers_[static_cast<std::size_t>(backend)];
  ++breaker.consecutive_failures;
  const bool was_probe = breaker.state == BreakerState::kHalfOpen;
  breaker.probe_in_flight = false;
  if (was_probe) {
    // Failed probe: reopen with a longer cool-down.
    breaker.state = BreakerState::kOpen;
    breaker.backoff_ms =
        std::min(opts.max_backoff_ms,
                 std::max(opts.open_backoff_ms,
                          breaker.backoff_ms * opts.backoff_multiplier));
    breaker.opened_at = std::chrono::steady_clock::now();
    ++breaker.trips;
  } else if (breaker.state == BreakerState::kClosed &&
             breaker.consecutive_failures >= opts.failure_threshold) {
    breaker.state = BreakerState::kOpen;
    breaker.backoff_ms = opts.open_backoff_ms;
    breaker.opened_at = std::chrono::steady_clock::now();
    ++breaker.trips;
  }
}

void BackendRouter::release(Backend backend) {
  if (backend == Backend::kCpuHybrid || backend == Backend::kAuto) return;
  std::lock_guard lock(breaker_mutex_);
  BreakerEntry& breaker = breakers_[static_cast<std::size_t>(backend)];
  breaker.probe_in_flight = false;
}

std::array<BreakerSnapshot, kNumBackends> BackendRouter::breaker_snapshots()
    const {
  std::array<BreakerSnapshot, kNumBackends> out{};
  std::lock_guard lock(breaker_mutex_);
  for (std::size_t b = 0; b < kNumBackends; ++b) {
    const BreakerEntry& breaker = breakers_[b];
    out[b].backend = static_cast<Backend>(b);
    out[b].state = breaker.state;
    out[b].consecutive_failures = breaker.consecutive_failures;
    out[b].trips = breaker.trips;
    out[b].skipped = breaker.skipped;
    out[b].current_backoff_ms = breaker.backoff_ms;
  }
  return out;
}

std::uint64_t BackendRouter::effective_budget() const {
  const std::uint64_t device = options_.device.memory_bytes;
  return options_.memory_budget_bytes == 0
             ? device
             : std::min(options_.memory_budget_bytes, device);
}

double BackendRouter::counting_steps(const GraphStats& stats) const {
  // Per oriented edge the merge walks at most |adj(u)| + |adj(v)|, and the
  // forward orientation bounds lists by sqrt(2m); on real degree
  // distributions the average walk is closer to the mean degree. Use the
  // smaller of the two bounds as the expectation.
  const double m = static_cast<double>(stats.num_edges);
  const double slots = 2.0 * m;
  const double per_edge =
      std::min(stats.avg_degree + 2.0, std::sqrt(std::max(1.0, slots)));
  return m * per_edge;
}

double BackendRouter::modeled_preprocess_ms(const GraphStats& stats) const {
  const std::uint64_t slots = 2 * stats.num_edges;
  const std::uint64_t n = stats.num_vertices;
  const std::uint64_t m = stats.num_edges;
  return cost_.transfer_ms(slots * 8) + cost_.reduce_ms(slots, 4) +
         cost_.radix_sort_ms(slots, 8, 8) + cost_.node_array_ms(slots, n) +
         cost_.mark_backward_ms(slots) + cost_.remove_if_ms(slots) +
         cost_.unzip_ms(m) + cost_.node_array_ms(m, n);
}

double BackendRouter::modeled_counting_ms(const GraphStats& stats) const {
  const double steps = counting_steps(stats);
  const auto& dev = options_.device;
  // Throughput bound: issue cycles spread over the SMs.
  const double issue_ms = steps * dev.issue_cycles_per_step /
                          (static_cast<double>(dev.num_sms) * dev.clock_ghz) /
                          1e6;
  // Bandwidth bound: ~4 bytes of neighbor traffic per step at the paper's
  // ~80% hit rates, so roughly 1 DRAM byte per step.
  const double bw_ms = steps / (dev.dram_bandwidth_gbps * 1e6);
  return std::max(issue_ms, bw_ms);
}

std::uint32_t BackendRouter::auto_colors(const GraphStats& stats) const {
  if (options_.outofcore_colors > 0) return options_.outofcore_colors;
  const std::uint64_t budget = std::max<std::uint64_t>(1, effective_budget());
  for (std::uint32_t k = 2; k < 16; ++k) {
    // A task carries roughly (3/k)^2-ish of the edges; use the counter's own
    // conservative 3/k fraction.
    const auto task_slots = static_cast<EdgeIndex>(
        3.0 / k * static_cast<double>(2 * stats.num_edges));
    if (core::GpuForwardCounter::device_preprocess_bytes(
            task_slots, stats.num_vertices) <= budget) {
      return k;
    }
  }
  return 16;
}

BackendEstimate BackendRouter::estimate(Backend backend,
                                        const GraphStats& stats,
                                        bool catalog_warm) const {
  const double slots = 2.0 * static_cast<double>(stats.num_edges);
  const double steps = counting_steps(stats);
  const std::uint64_t budget = effective_budget();
  const std::uint64_t full_bytes = core::GpuForwardCounter::device_preprocess_bytes(
      2 * stats.num_edges, stats.num_vertices);
  // §III-D6 halves the device footprint by orienting on the host first.
  const std::uint64_t d6_bytes = full_bytes / 2;

  BackendEstimate est;
  est.backend = backend;
  // Score with the *live* (EWMA-calibrated) constants, not the seeds.
  double cpu_count_ns, cpu_prepare_ns, sim_ns;
  {
    std::lock_guard lock(calibration_mutex_);
    cpu_count_ns = calibration_.cpu_count_ns_per_step;
    cpu_prepare_ns = calibration_.cpu_prepare_ns_per_slot;
    sim_ns = calibration_.sim_ns_per_step;
  }
  // Host cost of simulating one modeled counting phase: per-step simulation
  // work, reduced by SM sampling.
  const double sample_fraction =
      options_.sim_sample_sms == 0
          ? 1.0
          : std::min(1.0, static_cast<double>(options_.sim_sample_sms) /
                              static_cast<double>(options_.device.num_sms));
  const double sim_wall_ms = steps * sim_ns * sample_fraction * 1e-6;
  // Host-side functional preprocessing accompanies every simulated run.
  const double host_pre_ms = slots * cpu_prepare_ns * 1e-6;

  switch (backend) {
    case Backend::kCpuHybrid: {
      est.modeled_ms = -1;
      est.wall_ms = steps * cpu_count_ns * 1e-6 +
                    (catalog_warm ? 0.0 : host_pre_ms);
      est.memory_ok = true;
      break;
    }
    case Backend::kGpu: {
      est.modeled_ms = modeled_preprocess_ms(stats) + modeled_counting_ms(stats);
      est.wall_ms = host_pre_ms + sim_wall_ms;
      // The pipeline's own ladder (§III-D6, out-of-core rung) absorbs budget
      // misses, so the tier stays feasible as long as the halved footprint
      // fits; beyond that prefer routing straight to out-of-core.
      est.memory_ok = d6_bytes <= budget;
      break;
    }
    case Backend::kMultiGpu: {
      const unsigned d = std::max(1u, options_.num_devices);
      const double pre = modeled_preprocess_ms(stats);
      const std::uint64_t bcast_bytes =
          static_cast<std::uint64_t>(slots / 2.0) * 8 +
          (static_cast<std::uint64_t>(stats.num_vertices) + 1) * 4;
      est.modeled_ms = pre +
                       (d - 1) * cost_.peer_transfer_ms(bcast_bytes) +
                       modeled_counting_ms(stats) / d;
      est.wall_ms = host_pre_ms + sim_wall_ms;  // devices simulate concurrently
      est.memory_ok = d6_bytes <= budget;
      break;
    }
    case Backend::kOutOfCore: {
      const std::uint32_t k = auto_colors(stats);
      // Every edge ships to ~k tasks, so preprocessing volume scales by ~k/2
      // relative to the one-shot pipeline; counting work is unchanged.
      est.modeled_ms = modeled_preprocess_ms(stats) * (k / 2.0) +
                       modeled_counting_ms(stats);
      est.wall_ms = host_pre_ms * (k / 2.0) + sim_wall_ms;
      est.memory_ok = true;  // k is chosen so tasks fit
      break;
    }
    case Backend::kAuto:
      break;  // never scored
  }
  return est;
}

RouteDecision BackendRouter::route(const GraphStats& stats, bool catalog_warm,
                                   const Request& request) const {
  RouteDecision decision;
  decision.outofcore_colors = auto_colors(stats);
  for (std::size_t b = 0; b < kNumBackends; ++b) {
    decision.estimates[b] =
        estimate(static_cast<Backend>(b), stats, catalog_warm);
  }

  std::ostringstream why;
  if (request.backend != Backend::kAuto) {
    // Explicit pick: honor it, then fall back in feasibility order ending at
    // the CPU tier (which cannot fault).
    decision.chain.push_back(request.backend);
    if (request.backend != Backend::kOutOfCore &&
        !decision.estimates[static_cast<std::size_t>(request.backend)]
             .memory_ok) {
      decision.chain.push_back(Backend::kOutOfCore);
    }
    if (request.backend != Backend::kCpuHybrid) {
      decision.chain.push_back(Backend::kCpuHybrid);
    }
    why << "explicit backend " << to_string(request.backend);
    decision.rationale = why.str();
    return decision;
  }

  // Auto: rank candidates by the requested objective among feasible tiers.
  std::vector<Backend> candidates;
  for (std::size_t b = 0; b < kNumBackends; ++b) {
    const auto backend = static_cast<Backend>(b);
    if (backend == Backend::kMultiGpu && options_.num_devices < 2) continue;
    if (!decision.estimates[b].memory_ok) continue;
    if (request.objective == RouteObjective::kModeledDevice &&
        backend == Backend::kCpuHybrid) {
      continue;  // the paper's metric ranks device tiers only
    }
    candidates.push_back(backend);
  }
  auto score = [&](Backend b) {
    const auto& e = decision.estimates[static_cast<std::size_t>(b)];
    return request.objective == RouteObjective::kModeledDevice ? e.modeled_ms
                                                               : e.wall_ms;
  };
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](Backend a, Backend b) { return score(a) < score(b); });
  if (candidates.empty()) candidates.push_back(Backend::kOutOfCore);
  decision.chain = candidates;
  // The CPU tier cannot fault, so it terminates the chain: rungs ranked
  // after it are unreachable, and it is appended when not ranked at all.
  const auto cpu = std::find(decision.chain.begin(), decision.chain.end(),
                             Backend::kCpuHybrid);
  if (cpu == decision.chain.end()) {
    decision.chain.push_back(Backend::kCpuHybrid);
  } else {
    decision.chain.erase(cpu + 1, decision.chain.end());
  }

  why << "auto("
      << (request.objective == RouteObjective::kModeledDevice ? "modeled"
                                                              : "wall-clock")
      << "): picked " << to_string(decision.chain.front()) << " at "
      << score(decision.chain.front()) << " ms est";
  if (!decision.estimates[static_cast<std::size_t>(Backend::kGpu)].memory_ok) {
    why << "; full pipeline over budget -> out-of-core preferred (k="
        << decision.outofcore_colors << ")";
  }
  decision.rationale = why.str();
  return decision;
}

}  // namespace trico::service
