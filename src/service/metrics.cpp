#include "service/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace trico::service {

void LatencyHistogram::record(double ms) {
  std::size_t bucket = 0;
  for (double edge = kBaseMs; bucket + 1 < kBuckets && ms > edge;
       edge *= 2.0) {
    ++bucket;
  }
  ++buckets[bucket];
  min_ms = count == 0 ? ms : std::min(min_ms, ms);
  max_ms = std::max(max_ms, ms);
  sum_ms += ms;
  ++count;
}

double LatencyHistogram::bucket_edge_ms(std::size_t i) {
  double edge = kBaseMs;
  for (std::size_t b = 0; b < i; ++b) edge *= 2.0;
  return edge;
}

double LatencyHistogram::quantile_upper_bound_ms(double quantile) const {
  if (count == 0) return 0;
  const double target = quantile * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) return bucket_edge_ms(i);
  }
  return bucket_edge_ms(kBuckets - 1);
}

void MetricsRegistry::record_submitted(const Request& request) {
  std::lock_guard lock(mutex_);
  ++data_.submitted;
  ++data_.tenants[request.tenant_id].submitted;
}

void MetricsRegistry::record_response(const Request& request,
                                      const Response& response) {
  std::lock_guard lock(mutex_);
  TenantMetrics& tenant = data_.tenants[request.tenant_id];
  ++data_.completed;
  ++tenant.completed;
  switch (response.status) {
    case Status::kOk:
      ++data_.ok;
      ++tenant.ok;
      ++data_.served_by_backend[static_cast<std::size_t>(response.backend)];
      if (response.degraded) ++data_.fallbacks;
      data_.execute_latency.record(response.execute_ms);
      tenant.total_latency.record(response.total_ms());
      break;
    case Status::kRejectedQueueFull:
      ++data_.rejected_queue_full;
      ++tenant.rejected_queue_full;
      break;
    case Status::kDeadlineExpired:
      ++data_.deadline_expired;
      ++tenant.deadline_expired;
      break;
    case Status::kCancelled:
      ++data_.cancelled;
      ++tenant.cancelled;
      break;
    case Status::kFailed:
      ++data_.failed;
      ++tenant.failed;
      break;
  }
  data_.total_latency.record(response.total_ms());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  return data_;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream out;
  out << "requests: submitted=" << submitted << " completed=" << completed
      << " ok=" << ok << " rejected=" << rejected_queue_full
      << " expired=" << deadline_expired << " cancelled=" << cancelled
      << " failed=" << failed << "\n";
  out << "backends: ";
  for (std::size_t b = 0; b < kNumBackends; ++b) {
    if (b) out << " ";
    out << service::to_string(static_cast<Backend>(b)) << "="
        << served_by_backend[b];
  }
  out << " fallbacks=" << fallbacks << "\n";
  out << "latency[total]: mean=" << total_latency.mean_ms()
      << "ms p99<=" << total_latency.quantile_upper_bound_ms(0.99)
      << "ms max=" << total_latency.max_ms << "ms n=" << total_latency.count
      << "\n";
  out << "latency[execute]: mean=" << execute_latency.mean_ms()
      << "ms p99<=" << execute_latency.quantile_upper_bound_ms(0.99)
      << "ms max=" << execute_latency.max_ms
      << "ms n=" << execute_latency.count << "\n";
  for (const auto& [id, tenant] : tenants) {
    out << "tenant[" << (id.empty() ? "(default)" : id)
        << "]: submitted=" << tenant.submitted << " ok=" << tenant.ok
        << " rejected=" << tenant.rejected_queue_full
        << " expired=" << tenant.deadline_expired
        << " cancelled=" << tenant.cancelled << " failed=" << tenant.failed
        << " p50<=" << tenant.total_latency.quantile_upper_bound_ms(0.5)
        << "ms p99<=" << tenant.total_latency.quantile_upper_bound_ms(0.99)
        << "ms\n";
  }
  out << "breakers:";
  for (std::size_t b = 0; b < kNumBackends; ++b) {
    if (static_cast<Backend>(b) == Backend::kCpuHybrid) continue;
    out << " " << service::to_string(static_cast<Backend>(b)) << "="
        << service::to_string(breakers[b].state) << "(trips="
        << breakers[b].trips << ",skipped=" << breakers[b].skipped << ")";
  }
  out << " watchdog_budget_cancels=" << watchdog_budget_cancels << "\n";
  if (!workers.empty()) {
    out << "workers:";
    for (std::size_t i = 0; i < workers.size(); ++i) {
      const WorkerSlot& w = workers[i];
      out << " [" << i << "]=pid:" << w.pid << ",port:" << w.port
          << ",alive:" << (w.alive ? 1 : 0)
          << ",breaker:" << service::to_string(w.breaker)
          << ",restarts:" << w.restarts;
    }
    out << "\n";
    out << "pool: restarts=" << worker_restarts
        << " heartbeat_faults=" << worker_heartbeat_faults
        << " reroutes=" << worker_reroutes << "\n";
  }
  if (ha_enabled) {
    out << "ha: leading=" << (ha_leading ? 1 : 0) << " epoch=" << ha_epoch
        << " promotions=" << ha_promotions << " demotions=" << ha_demotions
        << "\n";
    out << "journal: appends=" << journal_appends
        << " bytes=" << journal_bytes << " replays=" << journal_replays
        << " recovered=" << journal_recovered
        << " quarantined_bytes=" << journal_quarantined_bytes << "\n";
  }
  if (!cpu_isa.empty()) {
    out << "cpu: isa=" << cpu_isa << " features=[" << cpu_features << "]\n";
  }
  out << "calibration: cpu_count_ns/step="
      << router_calibration.cpu_count_ns_per_step << " (n="
      << router_calibration.count_samples << ") cpu_prepare_ns/slot="
      << router_calibration.cpu_prepare_ns_per_slot << " (n="
      << router_calibration.prepare_samples << ") sim_ns/step="
      << router_calibration.sim_ns_per_step << " (n="
      << router_calibration.sim_samples << ")\n";
  out << "catalog: hits=" << catalog.hits << " misses=" << catalog.misses
      << " hit_rate=" << catalog.hit_rate() << " builds=" << catalog.builds
      << " stampede_waits=" << catalog.stampede_waits
      << " evictions=" << catalog.evictions
      << " oversize=" << catalog.oversize_rejects
      << " result_hits=" << catalog.result_hits
      << " resident=" << catalog.resident_entries << " entries / "
      << catalog.resident_bytes << " bytes\n";
  if (catalog.store.enabled) {
    out << "store: hits=" << catalog.store.hits
        << " misses=" << catalog.store.misses
        << " loads=" << catalog.store_loads
        << " publishes=" << catalog.store.publishes
        << " publish_failures=" << catalog.store.publish_failures
        << " corrupt=" << catalog.store.corrupt_rejects
        << " evictions=" << catalog.store.evictions
        << " spill_hits=" << catalog.store.edge_hits
        << " spill_stores=" << catalog.store.edge_publishes
        << " mapped=" << catalog.store.mapped_artifacts << " artifacts / "
        << catalog.store.bytes_mapped << " bytes\n";
  }
  out << "queue: depth=" << queue_depth << " peak=" << queue_peak_depth
      << " capacity=" << queue_capacity
      << " per_tenant_cap=" << per_tenant_queue_cap;
  for (const auto& [id, depth] : tenant_queue_depths) {
    out << " [" << (id.empty() ? "(default)" : id) << "]=" << depth;
  }
  return out.str();
}

}  // namespace trico::service
