// Request/response vocabulary of the triangle-analytics service.
//
// A Request names a graph (shared, immutable), an operation and how to run
// it; a Response carries the result plus the serving metadata (backend,
// catalog hit, queue/execute wall clock) that the metrics layer aggregates.
// Tickets are the async handle: submit() returns immediately, wait() blocks
// until a worker finished (or the scheduler rejected/cancelled/expired the
// request without running it).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "graph/edge_list.hpp"
#include "util/cancel.hpp"

namespace trico::service {

/// Analytics operations the service executes.
enum class Operation : std::uint8_t {
  kCount,       ///< exact triangle count
  kClustering,  ///< global clustering coefficient + transitivity
  kTruss,       ///< k-truss decomposition (max trussness)
};

/// Execution backends (the four counting tiers).
enum class Backend : std::uint8_t {
  kCpuHybrid,  ///< adaptive hybrid intersection engine (cpu/hybrid_engine)
  kGpu,        ///< single simulated GPU pipeline with degradation ladder
  kMultiGpu,   ///< §III-E broadcast scheme on N simulated devices
  kOutOfCore,  ///< color-triple partitioned counting
  kAuto,       ///< let the BackendRouter decide
};
inline constexpr std::size_t kNumBackends = 4;  ///< concrete tiers (not kAuto)

[[nodiscard]] const char* to_string(Backend backend);
[[nodiscard]] const char* to_string(Operation op);

/// What the router optimizes when the request says kAuto.
enum class RouteObjective : std::uint8_t {
  kWallClock,      ///< host wall clock (service throughput; default)
  kModeledDevice,  ///< modeled device milliseconds (the paper's metric)
};

/// Scheduler priority; higher pops first, FIFO within a level.
enum class Priority : std::int8_t { kLow = -1, kNormal = 0, kHigh = 1 };

/// One analytics query.
struct Request {
  std::shared_ptr<const EdgeList> graph;  ///< required, shared & immutable
  Operation op = Operation::kCount;
  Backend backend = Backend::kAuto;
  RouteObjective objective = RouteObjective::kWallClock;
  Priority priority = Priority::kNormal;
  /// Deadline measured from submit. A request still queued past it is
  /// rejected at dequeue with kDeadlineExpired; one already executing is
  /// cancelled cooperatively by the scheduler watchdog. 0 = none.
  double deadline_ms = 0;
  /// Who is asking. The scheduler enforces per-tenant queue caps and
  /// weighted fair dequeue across tenants; metrics keep per-tenant slices.
  /// Empty = the anonymous default tenant.
  std::string tenant_id;

  /// Distributed sharding (coordinator subrequests only). shard_count > 0
  /// turns a kCount request into a *partial* count over shard
  /// `shard_index` of a `shard_count`-way edge-balanced row tiling of the
  /// prepared oriented CSR (cpu::shard_rows). Partial results bypass the
  /// catalog's result memoization — they are not whole-graph answers — and
  /// always execute on the CPU hybrid tier. shard_count == 0 (default) is a
  /// normal whole-graph request.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;

  /// Coordinator HA fencing token. A leading coordinator stamps every
  /// worker-bound subrequest with its lease epoch; a worker serving with a
  /// lease file rejects any stamped request whose epoch is older than the
  /// newest it has observed, so a paused-then-resumed deposed coordinator
  /// cannot land stale scatter frames into a gather. 0 = unfenced.
  std::uint64_t lease_epoch = 0;

  [[nodiscard]] bool sharded() const { return shard_count > 0; }
};

/// Terminal states of a request.
enum class Status : std::uint8_t {
  kOk,
  kRejectedQueueFull,  ///< backpressure: never queued
  kDeadlineExpired,    ///< expired queued, mid-execution, or over the budget
  kCancelled,          ///< cancelled while queued or mid-execution
  kFailed,             ///< every backend in the fallback chain failed
};

[[nodiscard]] const char* to_string(Status status);

/// Result + serving metadata of one request.
struct Response {
  Status status = Status::kFailed;
  std::string reason;  ///< human-readable detail for non-kOk (and fallbacks)

  // Results (valid when status == kOk, per the request's op).
  TriangleCount triangles = 0;
  double clustering = 0;     ///< kClustering: Watts–Strogatz global coefficient
  double transitivity = 0;   ///< kClustering
  std::uint32_t max_trussness = 0;  ///< kTruss

  // Serving metadata.
  Backend backend = Backend::kCpuHybrid;  ///< tier that produced the result
  bool catalog_hit = false;   ///< preprocessed artifacts came from the cache
  bool degraded = false;      ///< fallback chain advanced past first choice
  double modeled_device_ms = -1;  ///< device-tier runs only; -1 otherwise
  double queue_ms = 0;        ///< submit -> dequeue
  double execute_ms = 0;      ///< dequeue -> done (includes cold preprocess)

  // Shard echo (set iff the request was sharded). The coordinator's gather
  // step cross-checks these before trusting a sum of partials: fingerprints
  // must agree across shards (same prepared graph everywhere), row ranges
  // must tile [0, n) contiguously in shard order, and the per-shard FNV
  // checksum over the owned neighbor slice pins the bytes the partial was
  // computed from.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  std::uint64_t shard_row_begin = 0;
  std::uint64_t shard_row_end = 0;
  std::uint64_t shard_edges = 0;      ///< oriented edges in the shard's rows
  std::uint64_t shard_checksum = 0;   ///< FNV-1a over the shard's neighbors
  std::uint64_t graph_fingerprint = 0;  ///< FNV over (content key, n, m)

  [[nodiscard]] double total_ms() const { return queue_ms + execute_ms; }
};

namespace detail {

/// Shared state behind a Ticket. The scheduler owns the transitions:
/// queued -> running -> done, or queued -> {cancelled, expired, rejected}.
struct RequestState {
  Request request;
  std::chrono::steady_clock::time_point submit_time;
  std::atomic<bool> cancel_requested{false};
  /// Cooperative cancellation channel into an *executing* request: the
  /// worker polls it from the backend inner loops, and the watchdog uses it
  /// to enforce deadlines and the hard execution budget. Created at submit
  /// so Ticket::cancel reaches the worker no matter when it is called.
  std::shared_ptr<util::CancelToken> cancel = std::make_shared<util::CancelToken>();

  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  Response response;

  void finish(Response r) {
    {
      std::lock_guard lock(mutex);
      response = std::move(r);
      done = true;
    }
    done_cv.notify_all();
  }
};

}  // namespace detail

/// Async handle for a submitted request. Copyable (shared state).
class Ticket {
 public:
  Ticket() = default;
  explicit Ticket(std::shared_ptr<detail::RequestState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Blocks until the request reached a terminal state.
  const Response& wait() const {
    std::unique_lock lock(state_->mutex);
    state_->done_cv.wait(lock, [&] { return state_->done; });
    return state_->response;
  }

  /// True once the request reached a terminal state.
  [[nodiscard]] bool done() const {
    std::lock_guard lock(state_->mutex);
    return state_->done;
  }

  /// Requests cancellation. A request still in the queue reports kCancelled
  /// when a worker skips it; one already executing is stopped cooperatively
  /// (the worker observes the cancel token at its next poll and unwinds).
  /// Returns false when the request had already reached a terminal state at
  /// the call.
  bool cancel() const {
    state_->cancel_requested.store(true, std::memory_order_relaxed);
    state_->cancel->request_cancel(util::CancelCause::kUser);
    return !done();
  }

 private:
  std::shared_ptr<detail::RequestState> state_;
};

}  // namespace trico::service
