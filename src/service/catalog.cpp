#include "service/catalog.hpp"

#include <filesystem>
#include <limits>
#include <utility>

#include "graph/io.hpp"
#include "store/ingest.hpp"
#include "util/timer.hpp"

namespace trico::service {

std::uint64_t GraphCatalog::content_hash(const EdgeList& graph) {
  // FNV-1a over the vertex count then the raw slot bytes (delegated to the
  // store so catalog slots and on-disk artifacts share one address space).
  // Slot order is significant — the canonical producers in this codebase
  // are deterministic, so identical content yields identical slot order.
  return store::edge_list_key(graph);
}

std::uint64_t GraphCatalog::content_key(
    const std::shared_ptr<const EdgeList>& graph) {
  if (!graph) throw CatalogError("GraphCatalog::content_key: null graph");
  {
    std::lock_guard lock(mutex_);
    auto it = hash_memo_.find(graph.get());
    if (it != hash_memo_.end()) {
      // lock() succeeding proves the memoized object is still alive, so the
      // address cannot have been reused by a different graph.
      if (auto memoized = it->second.graph.lock(); memoized == graph) {
        return it->second.hash;
      }
      hash_memo_.erase(it);
    }
  }
  const std::uint64_t hash = content_hash(*graph);
  std::lock_guard lock(mutex_);
  if (hash_memo_.size() >= 64) {
    // Sweep entries whose graphs died; clear outright if none did (bounded
    // memo, graphs are few and long-lived in practice).
    for (auto it = hash_memo_.begin(); it != hash_memo_.end();) {
      it = it->second.graph.expired() ? hash_memo_.erase(it) : std::next(it);
    }
    if (hash_memo_.size() >= 64) hash_memo_.clear();
  }
  hash_memo_[graph.get()] = HashMemo{graph, hash};
  return hash;
}

namespace {

/// Combines a content key with the operation into one result-cache key.
std::uint64_t result_key(std::uint64_t key, Operation op) {
  return key ^ ((static_cast<std::uint64_t>(op) + 1) * 0x9e3779b97f4a7c15ull);
}

}  // namespace

std::optional<CachedResult> GraphCatalog::find_result(std::uint64_t key,
                                                      Operation op) {
  if (options_.byte_budget == 0 || !options_.cache_results) return {};
  std::lock_guard lock(mutex_);
  auto it = results_.find(result_key(key, op));
  if (it == results_.end()) return {};
  ++stats_.result_hits;
  return it->second;
}

void GraphCatalog::store_result(std::uint64_t key, Operation op,
                                const CachedResult& result) {
  if (options_.byte_budget == 0 || !options_.cache_results) return;
  std::lock_guard lock(mutex_);
  if (results_.size() >= 65536) results_.clear();  // simple size bound
  results_[result_key(key, op)] = result;
}

std::shared_ptr<const CatalogEntry> GraphCatalog::build_entry(
    std::uint64_t key, std::shared_ptr<const EdgeList> graph,
    prim::ThreadPool& pool) const {
  auto entry = std::make_shared<CatalogEntry>();
  entry->key = key;
  entry->stats = compute_stats(*graph);
  util::Timer timer;
  entry->prepared = cpu::prepare(*graph, pool, options_.engine);
  entry->prepare_ms = timer.elapsed_ms();
  entry->prepared_view = entry->prepared.view();
  entry->bytes = graph->num_edge_slots() * sizeof(Edge) +
                 entry->prepared.byte_size() + sizeof(CatalogEntry);
  entry->edges = std::move(graph);
  return entry;
}

std::shared_ptr<const CatalogEntry> GraphCatalog::entry_from_store(
    std::uint64_t key, std::shared_ptr<const EdgeList> graph) {
  util::Timer timer;
  std::shared_ptr<const store::MappedPreparedGraph> mapped = store_.find(key);
  if (mapped == nullptr) return nullptr;
  auto entry = std::make_shared<CatalogEntry>();
  entry->key = key;
  entry->stats = mapped->graph_stats();  // snapshotted — skips compute_stats
  entry->prepared_view = mapped->view();
  entry->mapped = std::move(mapped);
  entry->from_store = true;
  entry->prepare_ms = timer.elapsed_ms();
  // The prepared arrays live in page cache behind the mapping (accounted by
  // the store's own mapped-bytes gauge); the heap cost of this entry is just
  // the edge list.
  entry->bytes = graph->num_edge_slots() * sizeof(Edge) + sizeof(CatalogEntry);
  entry->edges = std::move(graph);
  return entry;
}

GraphCatalog::Acquired GraphCatalog::acquire(
    std::shared_ptr<const EdgeList> graph, prim::ThreadPool& pool) {
  if (!graph) throw CatalogError("GraphCatalog::acquire: null graph");
  const std::uint64_t key = content_key(graph);

  if (options_.byte_budget == 0) {
    // Catalog disabled: build fresh, share nothing. Still counted so the
    // metrics make the cold configuration legible.
    {
      std::lock_guard lock(mutex_);
      ++stats_.misses;
      ++stats_.builds;
    }
    return {build_entry(key, std::move(graph), pool), false};
  }

  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = slots_.find(key);
    if (it == slots_.end()) break;  // miss: become the builder
    Slot& slot = it->second;
    if (slot.entry) {
      ++stats_.hits;
      slot.lru_tick = ++lru_tick_;
      return {slot.entry, true};
    }
    // A build for this key is in flight: join it instead of duplicating the
    // preprocess (stampede protection). Loop: the build may fail and erase
    // the slot, in which case this waiter becomes the builder.
    ++stats_.stampede_waits;
    build_cv_.wait(lock, [&] {
      auto jt = slots_.find(key);
      return jt == slots_.end() || jt->second.entry != nullptr;
    });
  }

  ++stats_.misses;
  slots_.emplace(key, Slot{nullptr, true, 0});
  lock.unlock();

  std::shared_ptr<const CatalogEntry> entry;
  try {
    // Artifact tier first: a prior run (or `trico_cli prewarm`) may have
    // published this graph's preprocessed form; mapping it skips the whole
    // preprocess. Only an actual preprocess counts as a "build".
    entry = entry_from_store(key, graph);
    if (entry) {
      std::lock_guard relock(mutex_);
      ++stats_.store_loads;
    } else {
      {
        std::lock_guard relock(mutex_);
        ++stats_.builds;
      }
      entry = build_entry(key, std::move(graph), pool);
      // Persist for the next restart. Publish failures (disk full, races)
      // degrade to "no artifact" — never fail the query.
      store_.publish(key, entry->prepared, entry->stats);
    }
  } catch (...) {
    {
      std::lock_guard relock(mutex_);
      slots_.erase(key);
    }
    build_cv_.notify_all();
    throw;
  }

  lock.lock();
  if (entry->bytes > options_.byte_budget) {
    // Larger than the whole budget: serve it but do not cache it.
    ++stats_.oversize_rejects;
    slots_.erase(key);
    lock.unlock();
    build_cv_.notify_all();
    return {entry, false};
  }
  Slot& slot = slots_[key];
  slot.entry = entry;
  slot.building = false;
  slot.lru_tick = ++lru_tick_;
  stats_.resident_bytes += entry->bytes;
  stats_.resident_entries = slots_.size();
  evict_to_budget_locked();
  lock.unlock();
  build_cv_.notify_all();
  return {entry, false};
}

void GraphCatalog::evict_to_budget_locked() {
  while (stats_.resident_bytes > options_.byte_budget) {
    // O(entries) LRU scan; the catalog holds few, large entries.
    auto victim = slots_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.entry && it->second.lru_tick < oldest) {
        oldest = it->second.lru_tick;
        victim = it;
      }
    }
    if (victim == slots_.end()) return;  // only in-flight builds left
    stats_.resident_bytes -= victim->second.entry->bytes;
    slots_.erase(victim);  // shared_ptr keeps in-use entries alive
    ++stats_.evictions;
  }
  stats_.resident_entries = slots_.size();
}

CatalogStats GraphCatalog::stats() const {
  CatalogStats out;
  {
    std::lock_guard lock(mutex_);
    out = stats_;
    out.resident_entries = slots_.size();
  }
  out.store = store_.stats();  // store has its own lock; never nest them
  return out;
}

EdgeList GraphCatalog::load_graph_file(const std::string& path) {
  return load_graph_file(path, prim::ThreadPool::shared());
}

EdgeList GraphCatalog::load_graph_file(const std::string& path,
                                       prim::ThreadPool& pool) {
  if (!std::filesystem::exists(path)) {
    throw CatalogError("graph file not found: " + path +
                       " (generate the bench cache by running any suite "
                       "bench, e.g. bench_table1, from the repo root)");
  }
  try {
    // Small files aren't worth chunked dispatch; past the threshold the
    // parallel ingest overlaps pread with per-chunk validation across the
    // pool (see store/ingest.hpp).
    constexpr std::uintmax_t kParallelIngestBytes = 32ull << 20;  // 32 MiB
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (!ec && size >= kParallelIngestBytes) {
      return store::read_edges_parallel(path, pool);
    }
    return io::read_binary_file(path);
  } catch (const io::IoError& error) {
    throw CatalogError("graph file unreadable: " + path + ": " +
                       error.what() +
                       " (the file is truncated or corrupt; delete it and "
                       "re-run a suite bench to regenerate)");
  }
}

}  // namespace trico::service
