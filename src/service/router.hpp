// BackendRouter: cost-model-driven routing of queries to counting tiers.
//
// Which algorithm/backend wins depends on the graph, not the build — the
// comparative studies (Wang et al. 2016, TRUST 2021) make backend choice a
// per-query decision. The router scores the four tiers from graph statistics
// and simt::CostModel:
//
//  * kWallClock (service default): minimize estimated *host* wall clock.
//    The CPU hybrid engine is scored from calibrated ns-per-unit constants
//    (warm = counting only, cold = preprocess + counting); the simulated
//    device tiers additionally pay the simulation overhead per modeled
//    warp-step, which the estimate makes explicit.
//  * kModeledDevice (the paper's metric): minimize modeled device
//    milliseconds among the device tiers, built from the same CostModel the
//    pipeline charges (transfer + sort + streaming passes + counting).
//
// The decision is a *fallback chain*, not a single pick: if the chosen tier
// throws (device fault, out-of-memory task, budget miss) the service steps
// down the chain — the request-level analogue of PR 1's degradation ladder.
// The chain always ends at kCpuHybrid, which cannot fault.
//
// Memory feasibility uses the same gate as the pipeline itself
// (GpuForwardCounter::device_preprocess_bytes vs the effective budget): a
// graph whose working set cannot fit even via §III-D6 routes out-of-core
// first, with the color count chosen so a task's footprint fits.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/stats.hpp"
#include "service/request.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_config.hpp"

namespace trico::service {

struct RouterOptions {
  simt::DeviceConfig device = simt::DeviceConfig::gtx_980();
  unsigned num_devices = 1;           ///< width of the multi-GPU tier
  std::uint64_t memory_budget_bytes = 0;  ///< 0 = full device memory
  std::uint32_t outofcore_colors = 0;     ///< 0 = choose from footprint
  std::uint32_t sim_sample_sms = 2;   ///< SM sampling the service runs with

  // Host-side calibration constants (nanoseconds per unit). The defaults
  // were fitted on this container against E21 (CPU engine) and the
  // simulator's measured throughput; they only need order-of-magnitude
  // accuracy to rank backends.
  double cpu_count_ns_per_step = 1.2;     ///< hybrid engine, per merge step
  double cpu_prepare_ns_per_slot = 150.0; ///< parallel preprocessing
  double sim_ns_per_step = 80.0;          ///< simulator host cost per step
};

/// Scored candidate for one tier.
struct BackendEstimate {
  Backend backend = Backend::kCpuHybrid;
  double modeled_ms = -1;  ///< modeled device time; -1 for the CPU tier
  double wall_ms = 0;      ///< estimated host wall clock
  bool memory_ok = true;   ///< fits the effective device budget
};

/// Routing decision: ordered fallback chain plus the reasoning.
struct RouteDecision {
  std::vector<Backend> chain;  ///< first = chosen, rest = fallbacks
  std::array<BackendEstimate, kNumBackends> estimates{};
  std::uint32_t outofcore_colors = 2;  ///< k for the out-of-core tier
  std::string rationale;
};

class BackendRouter {
 public:
  explicit BackendRouter(RouterOptions options = {});

  /// Routes one request given the graph's statistics and whether its
  /// preprocessed artifacts are already resident in the catalog.
  [[nodiscard]] RouteDecision route(const GraphStats& stats,
                                    bool catalog_warm,
                                    const Request& request) const;

  /// Per-tier estimate (public for tests and the bench).
  [[nodiscard]] BackendEstimate estimate(Backend backend,
                                         const GraphStats& stats,
                                         bool catalog_warm) const;

  /// Smallest color count whose per-task footprint fits the budget.
  [[nodiscard]] std::uint32_t auto_colors(const GraphStats& stats) const;

  /// Effective device byte budget: min(option, device memory).
  [[nodiscard]] std::uint64_t effective_budget() const;

  [[nodiscard]] const RouterOptions& options() const { return options_; }

 private:
  /// Expected two-pointer/probe steps of the counting phase: the §II-B
  /// bound m * O(sqrt(m)) tempered by the average degree.
  [[nodiscard]] double counting_steps(const GraphStats& stats) const;
  [[nodiscard]] double modeled_preprocess_ms(const GraphStats& stats) const;
  [[nodiscard]] double modeled_counting_ms(const GraphStats& stats) const;

  RouterOptions options_;
  simt::CostModel cost_;
};

}  // namespace trico::service
