// BackendRouter: cost-model-driven routing of queries to counting tiers.
//
// Which algorithm/backend wins depends on the graph, not the build — the
// comparative studies (Wang et al. 2016, TRUST 2021) make backend choice a
// per-query decision. The router scores the four tiers from graph statistics
// and simt::CostModel:
//
//  * kWallClock (service default): minimize estimated *host* wall clock.
//    The CPU hybrid engine is scored from calibrated ns-per-unit constants
//    (warm = counting only, cold = preprocess + counting); the simulated
//    device tiers additionally pay the simulation overhead per modeled
//    warp-step, which the estimate makes explicit.
//  * kModeledDevice (the paper's metric): minimize modeled device
//    milliseconds among the device tiers, built from the same CostModel the
//    pipeline charges (transfer + sort + streaming passes + counting).
//
// The decision is a *fallback chain*, not a single pick: if the chosen tier
// throws (device fault, out-of-memory task, budget miss) the service steps
// down the chain — the request-level analogue of PR 1's degradation ladder.
// The chain always ends at kCpuHybrid, which cannot fault.
//
// Memory feasibility uses the same gate as the pipeline itself
// (GpuForwardCounter::device_preprocess_bytes vs the effective budget): a
// graph whose working set cannot fit even via §III-D6 routes out-of-core
// first, with the color count chosen so a task's footprint fits.
//
// The router also hosts the per-backend *circuit breaker*: a tier that
// faults repeatedly (consecutive simt::DeviceFaults) is opened — the serve
// loop skips it outright instead of rediscovering the fault request by
// request — then probed again (half-open, a single request at a time) after
// an exponentially backed-off cool-down. One probe success closes the
// breaker. The CPU tier cannot fault and is never broken, so the fallback
// chain always has an admissible terminal rung.

#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "graph/stats.hpp"
#include "service/request.hpp"
#include "simt/cost_model.hpp"
#include "simt/device_config.hpp"

namespace trico::service {

/// Circuit-breaker state of one backend tier.
enum class BreakerState : std::uint8_t {
  kClosed,    ///< healthy: requests flow
  kOpen,      ///< tripped: requests skip this tier until the backoff lapses
  kHalfOpen,  ///< probing: one request is trying the tier right now
};

[[nodiscard]] const char* to_string(BreakerState state);

struct BreakerOptions {
  /// Consecutive DeviceFaults that trip the breaker open.
  unsigned failure_threshold = 3;
  /// Cool-down before the first half-open probe; doubles (x multiplier) per
  /// failed probe up to max_backoff_ms.
  double open_backoff_ms = 50.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
};

/// Point-in-time copy of one backend's breaker (for MetricsSnapshot).
struct BreakerSnapshot {
  Backend backend = Backend::kCpuHybrid;
  BreakerState state = BreakerState::kClosed;
  unsigned consecutive_failures = 0;
  std::uint64_t trips = 0;     ///< closed/half-open -> open transitions
  std::uint64_t skipped = 0;   ///< admissions denied while open/probing
  double current_backoff_ms = 0;
};

struct RouterOptions {
  simt::DeviceConfig device = simt::DeviceConfig::gtx_980();
  unsigned num_devices = 1;           ///< width of the multi-GPU tier
  std::uint64_t memory_budget_bytes = 0;  ///< 0 = full device memory
  std::uint32_t outofcore_colors = 0;     ///< 0 = choose from footprint
  std::uint32_t sim_sample_sms = 2;   ///< SM sampling the service runs with

  // Host-side calibration constants (nanoseconds per unit). The defaults
  // were fitted on this container against E21 (CPU engine) and the
  // simulator's measured throughput; they only need order-of-magnitude
  // accuracy to rank backends. They are *seeds*: every served request feeds
  // its measured wall clock back through record_execution() /
  // record_preparation(), and the router scores subsequent requests with
  // the EWMA-updated live constants instead of these.
  double cpu_count_ns_per_step = 1.2;     ///< hybrid engine, per merge step
  double cpu_prepare_ns_per_slot = 150.0; ///< parallel preprocessing
  double sim_ns_per_step = 80.0;          ///< simulator host cost per step

  /// EWMA weight of each new timing observation (live = (1-a)*live + a*obs).
  /// 0 disables calibration: the seed constants stay fixed.
  double calibration_alpha = 0.2;

  BreakerOptions breaker{};
};

/// Live calibration state (for MetricsSnapshot and tests): the current
/// ns-per-unit constants and how many observations shaped each.
struct CalibrationSnapshot {
  double cpu_count_ns_per_step = 0;
  double cpu_prepare_ns_per_slot = 0;
  double sim_ns_per_step = 0;
  std::uint64_t count_samples = 0;    ///< CPU-tier counting runs observed
  std::uint64_t prepare_samples = 0;  ///< cold catalog preprocesses observed
  std::uint64_t sim_samples = 0;      ///< simulated device-tier runs observed
};

/// Scored candidate for one tier.
struct BackendEstimate {
  Backend backend = Backend::kCpuHybrid;
  double modeled_ms = -1;  ///< modeled device time; -1 for the CPU tier
  double wall_ms = 0;      ///< estimated host wall clock
  bool memory_ok = true;   ///< fits the effective device budget
};

/// Routing decision: ordered fallback chain plus the reasoning.
struct RouteDecision {
  std::vector<Backend> chain;  ///< first = chosen, rest = fallbacks
  std::array<BackendEstimate, kNumBackends> estimates{};
  std::uint32_t outofcore_colors = 2;  ///< k for the out-of-core tier
  std::string rationale;
};

class BackendRouter {
 public:
  explicit BackendRouter(RouterOptions options = {});

  /// Routes one request given the graph's statistics and whether its
  /// preprocessed artifacts are already resident in the catalog.
  [[nodiscard]] RouteDecision route(const GraphStats& stats,
                                    bool catalog_warm,
                                    const Request& request) const;

  /// Per-tier estimate (public for tests and the bench).
  [[nodiscard]] BackendEstimate estimate(Backend backend,
                                         const GraphStats& stats,
                                         bool catalog_warm) const;

  /// Smallest color count whose per-task footprint fits the budget.
  [[nodiscard]] std::uint32_t auto_colors(const GraphStats& stats) const;

  /// Effective device byte budget: min(option, device memory).
  [[nodiscard]] std::uint64_t effective_budget() const;

  // -- Circuit breaker ------------------------------------------------------
  // The serve loop brackets every tier attempt with these three calls:
  // admit() gates the attempt, then exactly one of record_success /
  // record_fault / release() reports how it ended (release() = no verdict,
  // e.g. the request was cancelled mid-probe).

  /// True when `backend` may take a request now. kCpuHybrid always admits.
  /// An open breaker whose backoff has lapsed flips to half-open and admits
  /// the caller as the (single) probe.
  [[nodiscard]] bool admit(Backend backend);
  /// The admitted attempt succeeded: close the breaker, reset the streak.
  void record_success(Backend backend);
  /// The admitted attempt faulted (DeviceFault): extend the streak; trips
  /// the breaker open at the threshold, re-opens with doubled backoff when
  /// it was a half-open probe.
  void record_fault(Backend backend);
  /// The admitted attempt ended without a health verdict (cancellation,
  /// non-fault error): release the probe slot, leave the state unchanged.
  void release(Backend backend);
  /// Point-in-time breaker state of every tier.
  [[nodiscard]] std::array<BreakerSnapshot, kNumBackends> breaker_snapshots()
      const;

  // -- Calibration ----------------------------------------------------------
  // The serve loop feeds measured wall clocks back after the fact; the
  // router folds each observation into its ns-per-unit constants (EWMA,
  // weight = options.calibration_alpha) so estimates track the machine the
  // service actually runs on rather than the constants it shipped with.

  /// One successful backend run took `execute_ms`. The CPU tier's runs are
  /// counting-only (preprocessing lives in the catalog), so they calibrate
  /// cpu_count_ns_per_step; simulated device runs calibrate sim_ns_per_step
  /// after deducting the estimated host preprocessing share.
  void record_execution(Backend backend, const GraphStats& stats,
                        double execute_ms);

  /// One cold catalog acquire (parallel preprocess) took `prepare_ms`:
  /// calibrates cpu_prepare_ns_per_slot.
  void record_preparation(const GraphStats& stats, double prepare_ms);

  /// The live constants estimate() is currently scoring with.
  [[nodiscard]] CalibrationSnapshot calibration() const;

  [[nodiscard]] const RouterOptions& options() const { return options_; }

 private:
  struct BreakerEntry {
    BreakerState state = BreakerState::kClosed;
    unsigned consecutive_failures = 0;
    std::uint64_t trips = 0;
    std::uint64_t skipped = 0;
    double backoff_ms = 0;  ///< current open-state cool-down
    std::chrono::steady_clock::time_point opened_at{};
    bool probe_in_flight = false;
  };
  /// Expected two-pointer/probe steps of the counting phase: the §II-B
  /// bound m * O(sqrt(m)) tempered by the average degree.
  [[nodiscard]] double counting_steps(const GraphStats& stats) const;
  [[nodiscard]] double modeled_preprocess_ms(const GraphStats& stats) const;
  [[nodiscard]] double modeled_counting_ms(const GraphStats& stats) const;

  RouterOptions options_;
  simt::CostModel cost_;

  mutable std::mutex breaker_mutex_;
  std::array<BreakerEntry, kNumBackends> breakers_{};

  mutable std::mutex calibration_mutex_;
  CalibrationSnapshot calibration_;  ///< seeded from options_, then EWMA-fed
};

}  // namespace trico::service
