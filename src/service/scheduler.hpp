// RequestScheduler: bounded admission + worker execution for the service.
//
// Producers submit work through a prim::FairQueue (bounded, per-tenant
// capped, weighted deficit-round-robin across tenants, priority-ordered
// within one); consumers are the slots of a prim::ThreadPool running a
// serving loop (parallel_workers), launched once from a small runner thread
// — the pool is the execution substrate, the queue is the admission valve.
//
// Admission semantics:
//  * a full queue — or a tenant at its per-tenant cap — rejects at submit()
//    with kRejectedQueueFull and the reason naming which bound tripped:
//    backpressure, never an exception or a block;
//  * per-request deadlines are checked at dequeue (a request that waited
//    past its deadline reports kDeadlineExpired without executing) and
//    enforced *during* execution by the watchdog, which cancels the
//    request's CancelToken so the worker unwinds instead of burning on;
//  * Ticket::cancel() marks a queued request (the dequeuing worker reports
//    kCancelled without executing) and cancels the token of a running one,
//    which the backend inner loops observe cooperatively;
//  * tenants are served weighted-fair; within a tenant, priorities pop
//    high-to-low, FIFO within a level.
//
// The watchdog is a tiny periodic sweep over the running set: it fires a
// request's deadline and flags any execution past the hard budget
// (max_execution_ms), again via the CancelToken. pause()/resume() gate the
// workers (tests use this to stage deterministic queue states); the
// destructor drains the queue gracefully — every admitted request reaches a
// terminal state before shutdown completes.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "prim/fair_queue.hpp"
#include "prim/thread_pool.hpp"
#include "service/request.hpp"
#include "util/cancel.hpp"

namespace trico::service {

/// Execution context handed to the work function: the worker slot index, a
/// per-worker thread pool for the backend's data-parallel phases, and the
/// request's cancel token (never null) the backend loops must poll.
struct ExecContext {
  std::size_t worker = 0;
  prim::ThreadPool& pool;
  const util::CancelToken* cancel = nullptr;
};

class RequestScheduler {
 public:
  struct Options {
    std::size_t workers = 1;         ///< serving pool slots
    std::size_t queue_capacity = 64; ///< global admission bound
    /// Per-tenant admission bound; 0 (default) = no per-tenant bound, only
    /// the global capacity gates. Multi-tenant deployments set this below
    /// queue_capacity so one heavy tenant can never fill the whole queue
    /// and light tenants always find admission room.
    std::size_t per_tenant_queue_cap = 0;
    /// Deficit-round-robin weight per tenant id; tenants not named here get
    /// default_tenant_weight. A weight-2 tenant receives twice the service
    /// share of a weight-1 tenant while both are backlogged.
    std::unordered_map<std::string, double> tenant_weights;
    double default_tenant_weight = 1.0;
    /// Threads of each worker's backend pool (preprocessing, counting
    /// chunks). Default 1: with several workers, intra-request parallelism
    /// would oversubscribe the host.
    std::size_t backend_threads = 1;
    /// Hard execution budget: the watchdog cancels any request executing
    /// longer than this (reported kDeadlineExpired with a watchdog reason).
    /// 0 = no budget.
    double max_execution_ms = 0;
    /// Watchdog sweep period over the running set.
    double watchdog_interval_ms = 2.0;
  };

  /// `work` runs on a worker slot for every admitted, live request and
  /// returns the Response (status kOk or kFailed). The scheduler fills the
  /// timing fields and terminal bookkeeping for every path.
  using Work = std::function<Response(const Request&, ExecContext&)>;
  /// Observer invoked once per terminal response (the metrics hook).
  using Observer = std::function<void(const Request&, const Response&)>;

  RequestScheduler(Options options, Work work, Observer observer = {});
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Admits `request` or rejects it immediately (ticket already terminal
  /// with kRejectedQueueFull). Never blocks.
  [[nodiscard]] Ticket submit(Request request);

  /// Gate the workers (admission unaffected).
  void pause();
  void resume();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] std::size_t queue_peak_depth() const {
    return queue_.peak_depth();
  }
  [[nodiscard]] std::size_t queue_capacity() const {
    return queue_.capacity();
  }
  [[nodiscard]] std::size_t per_tenant_queue_cap() const {
    return per_tenant_cap_;
  }
  [[nodiscard]] std::size_t workers() const { return pool_.num_threads(); }
  /// (tenant, queued) gauges for every tenant with queued requests.
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>>
  tenant_queue_depths() const {
    return queue_.depths();
  }
  /// Requests the watchdog cancelled for exceeding the hard execution
  /// budget (monotonic).
  [[nodiscard]] std::uint64_t watchdog_flags() const;

 private:
  struct Running {
    std::shared_ptr<detail::RequestState> state;
    std::chrono::steady_clock::time_point exec_start;
  };

  void run_one(std::shared_ptr<detail::RequestState> state, ExecContext& ctx);
  void finish(detail::RequestState& state, Response response);
  void watchdog_loop();

  Options options_;
  std::size_t per_tenant_cap_ = 0;
  Work work_;
  Observer observer_;
  prim::FairQueue queue_;
  prim::ThreadPool pool_;
  std::thread runner_;  ///< drives pool_.parallel_workers(serving loop)

  mutable std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  std::vector<Running> running_;  ///< requests currently executing
  std::uint64_t watchdog_flags_ = 0;
  bool watchdog_stop_ = false;
  std::thread watchdog_;
};

}  // namespace trico::service
