// RequestScheduler: bounded admission + worker execution for the service.
//
// Producers submit work through a prim::TaskQueue (bounded, priority-
// ordered); consumers are the slots of a prim::ThreadPool running a serving
// loop (parallel_workers), launched once from a small runner thread — the
// pool is the execution substrate, the queue is the admission valve.
//
// Admission semantics:
//  * a full queue rejects at submit() with kRejectedQueueFull and the depth
//    in the reason — backpressure, never an exception or a block;
//  * per-request deadlines are checked at dequeue: a request that waited
//    past its deadline reports kDeadlineExpired without executing;
//  * Ticket::cancel() marks a queued request; the worker that dequeues it
//    reports kCancelled without executing (best-effort: a request already
//    running completes normally);
//  * priorities pop high-to-low, FIFO within a level.
//
// pause()/resume() gate the workers (tests use this to stage deterministic
// queue states); the destructor drains the queue gracefully — every
// admitted request reaches a terminal state before shutdown completes.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <thread>

#include "prim/task_queue.hpp"
#include "prim/thread_pool.hpp"
#include "service/request.hpp"

namespace trico::service {

/// Execution context handed to the work function: the worker slot index and
/// a per-worker thread pool for the backend's data-parallel phases.
struct ExecContext {
  std::size_t worker = 0;
  prim::ThreadPool& pool;
};

class RequestScheduler {
 public:
  struct Options {
    std::size_t workers = 1;         ///< serving pool slots
    std::size_t queue_capacity = 64; ///< admission bound
    /// Threads of each worker's backend pool (preprocessing, counting
    /// chunks). Default 1: with several workers, intra-request parallelism
    /// would oversubscribe the host.
    std::size_t backend_threads = 1;
  };

  /// `work` runs on a worker slot for every admitted, live request and
  /// returns the Response (status kOk or kFailed). The scheduler fills the
  /// timing fields and terminal bookkeeping for every path.
  using Work = std::function<Response(const Request&, ExecContext&)>;
  /// Observer invoked once per terminal response (the metrics hook).
  using Observer = std::function<void(const Response&)>;

  RequestScheduler(Options options, Work work, Observer observer = {});
  ~RequestScheduler();

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Admits `request` or rejects it immediately (ticket already terminal
  /// with kRejectedQueueFull). Never blocks.
  [[nodiscard]] Ticket submit(Request request);

  /// Gate the workers (admission unaffected).
  void pause();
  void resume();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] std::size_t queue_peak_depth() const {
    return queue_.peak_depth();
  }
  [[nodiscard]] std::size_t queue_capacity() const {
    return queue_.capacity();
  }
  [[nodiscard]] std::size_t workers() const { return pool_.num_threads(); }

 private:
  void run_one(std::shared_ptr<detail::RequestState> state, ExecContext& ctx);
  void finish(detail::RequestState& state, Response response);

  Options options_;
  Work work_;
  Observer observer_;
  prim::TaskQueue queue_;
  prim::ThreadPool pool_;
  std::thread runner_;  ///< drives pool_.parallel_workers(serving loop)
};

}  // namespace trico::service
