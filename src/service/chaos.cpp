#include "service/chaos.hpp"

#include <utility>

namespace trico::service {

const char* to_string(ChaosSite site) {
  switch (site) {
    case ChaosSite::kCatalogBuild: return "catalog-build";
    case ChaosSite::kBackendRun: return "backend-run";
    case ChaosSite::kExecuteDelay: return "execute-delay";
  }
  return "?";
}

ChaosPlan& ChaosPlan::script(ChaosSpec spec) {
  std::lock_guard lock(mutex_);
  armed_.push_back(Armed{spec, 0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::randomize(std::uint64_t seed, RandomOptions options) {
  std::lock_guard lock(mutex_);
  rng_state_ = seed ? seed : 1;
  random_ = options;
  randomized_ = true;
  return *this;
}

std::uint64_t ChaosPlan::next_random_locked() {
  // splitmix64: tiny, seed-deterministic, good enough for fault rolls.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool ChaosPlan::roll_locked(ChaosSite site, Backend backend, double rate) {
  bool fire = false;
  for (Armed& armed : armed_) {
    if (armed.spec.site != site) continue;
    if (site == ChaosSite::kBackendRun && armed.spec.backend != Backend::kAuto &&
        armed.spec.backend != backend) {
      continue;
    }
    ++armed.probes;
    if (armed.probes >= armed.spec.occurrence &&
        armed.fired < armed.spec.repeats) {
      ++armed.fired;
      fire = true;
    }
  }
  if (!fire && randomized_ && rate > 0) {
    const double roll = static_cast<double>(next_random_locked() >> 11) *
                        0x1.0p-53;  // uniform in [0, 1)
    fire = roll < rate;
  }
  if (fire) ++fired_;
  return fire;
}

bool ChaosPlan::should_fault(ChaosSite site, Backend backend) {
  std::lock_guard lock(mutex_);
  const double rate = site == ChaosSite::kCatalogBuild
                          ? random_.catalog_fault_rate
                          : random_.backend_fault_rate;
  return roll_locked(site, backend, rate);
}

double ChaosPlan::execute_delay_ms() {
  std::lock_guard lock(mutex_);
  // Scripted delays carry their own magnitude; take the largest firing one.
  double delay = 0;
  bool scripted = false;
  for (Armed& armed : armed_) {
    if (armed.spec.site != ChaosSite::kExecuteDelay) continue;
    ++armed.probes;
    if (armed.probes >= armed.spec.occurrence &&
        armed.fired < armed.spec.repeats) {
      ++armed.fired;
      scripted = true;
      if (armed.spec.delay_ms > delay) delay = armed.spec.delay_ms;
    }
  }
  if (!scripted && randomized_ && random_.delay_rate > 0) {
    const double roll = static_cast<double>(next_random_locked() >> 11) *
                        0x1.0p-53;
    if (roll < random_.delay_rate) {
      const double frac = static_cast<double>(next_random_locked() >> 11) *
                          0x1.0p-53;
      delay = random_.max_delay_ms * (frac + 1.0 / 1024.0);
    }
  }
  if (delay > 0) ++fired_;
  return delay;
}

std::uint64_t ChaosPlan::fired() const {
  std::lock_guard lock(mutex_);
  return fired_;
}

}  // namespace trico::service
