#include "service/chaos.hpp"

#include <utility>

namespace trico::service {

const char* to_string(ChaosSite site) {
  switch (site) {
    case ChaosSite::kCatalogBuild: return "catalog-build";
    case ChaosSite::kBackendRun: return "backend-run";
    case ChaosSite::kExecuteDelay: return "execute-delay";
    case ChaosSite::kWireTornFrame: return "wire-torn-frame";
    case ChaosSite::kWireDelayedAck: return "wire-delayed-ack";
    case ChaosSite::kWireConnReset: return "wire-conn-reset";
    case ChaosSite::kWireWorkerKill: return "wire-worker-kill";
  }
  return "?";
}

ChaosPlan& ChaosPlan::script(ChaosSpec spec) {
  std::lock_guard lock(mutex_);
  armed_.push_back(Armed{spec, 0, 0});
  return *this;
}

ChaosPlan& ChaosPlan::randomize(std::uint64_t seed, RandomOptions options) {
  std::lock_guard lock(mutex_);
  rng_state_ = seed ? seed : 1;
  random_ = options;
  randomized_ = true;
  return *this;
}

std::uint64_t ChaosPlan::next_random_locked() {
  // splitmix64: tiny, seed-deterministic, good enough for fault rolls.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool ChaosPlan::roll_locked(ChaosSite site, Backend backend, double rate) {
  bool fire = false;
  for (Armed& armed : armed_) {
    if (armed.spec.site != site) continue;
    if (site == ChaosSite::kBackendRun && armed.spec.backend != Backend::kAuto &&
        armed.spec.backend != backend) {
      continue;
    }
    ++armed.probes;
    if (armed.probes >= armed.spec.occurrence &&
        armed.fired < armed.spec.repeats) {
      ++armed.fired;
      fire = true;
    }
  }
  if (!fire && randomized_ && rate > 0) {
    const double roll = static_cast<double>(next_random_locked() >> 11) *
                        0x1.0p-53;  // uniform in [0, 1)
    fire = roll < rate;
  }
  if (fire) ++fired_;
  return fire;
}

bool ChaosPlan::should_fault(ChaosSite site, Backend backend) {
  std::lock_guard lock(mutex_);
  double rate = 0;
  switch (site) {
    case ChaosSite::kCatalogBuild: rate = random_.catalog_fault_rate; break;
    case ChaosSite::kBackendRun: rate = random_.backend_fault_rate; break;
    case ChaosSite::kWireTornFrame: rate = random_.torn_frame_rate; break;
    case ChaosSite::kWireConnReset: rate = random_.conn_reset_rate; break;
    case ChaosSite::kWireWorkerKill: rate = random_.worker_kill_rate; break;
    case ChaosSite::kExecuteDelay:
    case ChaosSite::kWireDelayedAck:
      // Delay sites carry a magnitude; probe them via the *_delay_ms()
      // helpers instead so the caller learns how long to stall.
      rate = 0;
      break;
  }
  return roll_locked(site, backend, rate);
}

double ChaosPlan::delay_locked(ChaosSite site, double rate, double max_ms) {
  // Scripted delays carry their own magnitude; take the largest firing one.
  double delay = 0;
  bool scripted = false;
  for (Armed& armed : armed_) {
    if (armed.spec.site != site) continue;
    ++armed.probes;
    if (armed.probes >= armed.spec.occurrence &&
        armed.fired < armed.spec.repeats) {
      ++armed.fired;
      scripted = true;
      if (armed.spec.delay_ms > delay) delay = armed.spec.delay_ms;
    }
  }
  if (!scripted && randomized_ && rate > 0) {
    const double roll = static_cast<double>(next_random_locked() >> 11) *
                        0x1.0p-53;
    if (roll < rate) {
      const double frac = static_cast<double>(next_random_locked() >> 11) *
                          0x1.0p-53;
      delay = max_ms * (frac + 1.0 / 1024.0);
    }
  }
  if (delay > 0) ++fired_;
  return delay;
}

double ChaosPlan::execute_delay_ms() {
  std::lock_guard lock(mutex_);
  return delay_locked(ChaosSite::kExecuteDelay, random_.delay_rate,
                      random_.max_delay_ms);
}

double ChaosPlan::wire_delay_ms() {
  std::lock_guard lock(mutex_);
  return delay_locked(ChaosSite::kWireDelayedAck, random_.wire_delay_rate,
                      random_.max_wire_delay_ms);
}

std::uint64_t ChaosPlan::fired() const {
  std::lock_guard lock(mutex_);
  return fired_;
}

}  // namespace trico::service
