// GraphCatalog: content-addressed cache of preprocessed graph artifacts.
//
// The paper's own measurements make preprocessing the serving bottleneck:
// its share of end-to-end time (the §III-E Amdahl fraction) runs 0.08–0.76,
// so a service that re-preprocesses per query throws away most of its
// throughput. The catalog loads a graph once, runs the hybrid-engine
// preprocessing once (oriented CSR, degree stats, bitmap index — see
// cpu/hybrid_engine.hpp), and hands every subsequent query a shared
// immutable CatalogEntry:
//
//  * keyed by a content hash (FNV-1a over the slot array + vertex count),
//    so the same graph submitted under different names/paths still hits;
//  * bounded by a byte budget with LRU eviction — entries pinned by
//    in-flight queries survive via shared_ptr until the last user drops;
//  * stampede-protected: concurrent requests for the same uncached graph
//    share one in-flight preprocess instead of racing N of them.
//
// Because graphs are immutable and every operation deterministic, the
// catalog also memoizes exact *results* by (content key, operation) — the
// second `count` of the same graph is a lookup, not a recount. Explicit-
// backend requests bypass memoization so each tier stays exercisable.
//
// A budget of 0 disables the catalog entirely (every acquire builds fresh,
// no sharing, no memoization) — the "cold" baseline of bench_service.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cpu/hybrid_engine.hpp"
#include "graph/edge_list.hpp"
#include "graph/stats.hpp"
#include "prim/thread_pool.hpp"
#include "service/request.hpp"
#include "store/store.hpp"

namespace trico::service {

/// Error raised by the catalog's file-loading helper (missing or corrupt
/// graph files); carries an actionable message, never crashes the service.
class CatalogError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable preprocessed artifacts for one graph. Shared by every query
/// that touches the graph; safe for concurrent reads (count_prepared takes
/// const state and keeps all scratch per worker).
struct CatalogEntry {
  std::uint64_t key = 0;             ///< content hash
  std::shared_ptr<const EdgeList> edges;  ///< the graph (device tiers consume it)
  GraphStats stats;                  ///< degree statistics (router input)
  cpu::PreparedGraph prepared;       ///< owned precomputation (empty when
                                     ///< the entry is artifact-backed)
  /// Mmapped artifact backing, when the entry was served from the store; the
  /// shared_ptr pins the mapping for the entry's lifetime.
  std::shared_ptr<const store::MappedPreparedGraph> mapped;
  /// What queries count over — spans into `prepared` (owned build) or into
  /// `mapped` (warm restart). Identical layout, bit-identical counts.
  cpu::PreparedGraphView prepared_view;
  std::uint64_t bytes = 0;           ///< accounted size (edges + artifacts)
  double prepare_ms = 0;             ///< build cost (or artifact map cost)
  bool from_store = false;           ///< served from an on-disk artifact
};

/// An exact operation result memoized by (content key, operation). Graphs
/// are immutable and every operation deterministic, so serving a memoized
/// result is always correct; only the fields of the recording operation are
/// meaningful.
struct CachedResult {
  TriangleCount triangles = 0;
  double clustering = 0;
  double transitivity = 0;
  std::uint32_t max_trussness = 0;
  Backend backend = Backend::kCpuHybrid;  ///< tier that computed it
};

/// Catalog counters (all monotonic except the resident_* gauges).
struct CatalogStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;           ///< acquires that had to build
  std::uint64_t builds = 0;           ///< actual preprocess runs
  std::uint64_t stampede_waits = 0;   ///< acquires that joined an in-flight build
  std::uint64_t evictions = 0;
  std::uint64_t oversize_rejects = 0; ///< entries larger than the whole budget
  std::uint64_t result_hits = 0;      ///< queries served from memoized results
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_entries = 0;
  std::uint64_t store_loads = 0;      ///< acquires served from disk artifacts
                                      ///< (skipped a full preprocess)
  store::StoreStats store{};          ///< artifact-store counters + gauges

  [[nodiscard]] double hit_rate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

struct CatalogOptions {
  /// Total byte budget for resident entries; 0 disables caching.
  std::uint64_t byte_budget = std::uint64_t{1} << 30;  // 1 GiB
  /// Memoize exact operation results by (content key, operation). Served
  /// only to kAuto requests — an explicit-backend request always exercises
  /// its tier. Disabled alongside the catalog when byte_budget is 0.
  bool cache_results = true;
  /// Engine tunables used for every build (entries are keyed by content
  /// only, so these must stay fixed for the catalog's lifetime).
  cpu::EngineOptions engine{};
  /// Persistent artifact store (docs/storage.md). An empty root disables
  /// it; with a root set, acquire consults the store before preprocessing
  /// and publishes freshly built entries for the next restart.
  store::StoreOptions store{};
};

class GraphCatalog {
 public:
  using Options = CatalogOptions;

  explicit GraphCatalog(Options options = {})
      : options_(options), store_(options.store) {}

  /// acquire() result: the entry plus whether this call was served from the
  /// cache (a resident entry or a joined in-flight build) or had to build.
  struct Acquired {
    std::shared_ptr<const CatalogEntry> entry;
    bool hit = false;
  };

  /// Returns the entry for `graph`, building (and caching, budget
  /// permitting) it on a miss. Concurrent acquires of the same uncached
  /// graph share one build. The build runs on `pool`.
  [[nodiscard]] Acquired acquire(std::shared_ptr<const EdgeList> graph,
                                 prim::ThreadPool& pool);

  /// FNV-1a content hash over the vertex count and the raw slot array.
  [[nodiscard]] static std::uint64_t content_hash(const EdgeList& graph);

  /// content_hash memoized by graph identity: repeated submissions of the
  /// same shared EdgeList skip rehashing its slot array (graphs are
  /// immutable once shared, so identity implies content).
  [[nodiscard]] std::uint64_t content_key(
      const std::shared_ptr<const EdgeList>& graph);

  /// Memoized-result store; no-ops / misses when byte_budget is 0 or
  /// cache_results is off.
  [[nodiscard]] std::optional<CachedResult> find_result(std::uint64_t key,
                                                        Operation op);
  void store_result(std::uint64_t key, Operation op,
                    const CachedResult& result);

  [[nodiscard]] CatalogStats stats() const;
  [[nodiscard]] const Options& options() const { return options_; }

  /// Loads a `.trico` binary graph, translating IO failures (missing,
  /// truncated, corrupt) into CatalogError with an actionable message.
  /// Files past a size threshold load via the store's parallel chunked
  /// ingest on `pool`; the single-argument form uses the shared pool.
  [[nodiscard]] static EdgeList load_graph_file(const std::string& path);
  [[nodiscard]] static EdgeList load_graph_file(const std::string& path,
                                                prim::ThreadPool& pool);

  /// The persistent artifact tier (disabled unless options.store.root is
  /// set). Exposed so the service can hand it to the out-of-core counter as
  /// a spill tier and the CLI can prewarm/inspect it.
  [[nodiscard]] store::ArtifactStore& artifact_store() { return store_; }

 private:
  struct Slot {
    std::shared_ptr<const CatalogEntry> entry;  ///< null while building
    bool building = false;
    std::uint64_t lru_tick = 0;
  };

  std::shared_ptr<const CatalogEntry> build_entry(
      std::uint64_t key, std::shared_ptr<const EdgeList> graph,
      prim::ThreadPool& pool) const;
  std::shared_ptr<const CatalogEntry> entry_from_store(
      std::uint64_t key, std::shared_ptr<const EdgeList> graph);
  void evict_to_budget_locked();

  struct HashMemo {
    std::weak_ptr<const EdgeList> graph;  ///< staleness check for the address
    std::uint64_t hash = 0;
  };

  Options options_;
  store::ArtifactStore store_;
  mutable std::mutex mutex_;
  std::condition_variable build_cv_;
  std::unordered_map<std::uint64_t, Slot> slots_;
  std::unordered_map<const EdgeList*, HashMemo> hash_memo_;
  std::unordered_map<std::uint64_t, CachedResult> results_;
  std::uint64_t lru_tick_ = 0;
  CatalogStats stats_{};
};

}  // namespace trico::service
