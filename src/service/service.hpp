// TriangleService: the concurrent in-process triangle-analytics service.
//
// Wires the three pillars together (docs/service.md has the full design):
//
//   GraphCatalog ── preprocess once, serve many (content-hash keyed,
//   │               LRU byte budget, stampede-protected)
//   RequestScheduler ── bounded admission queue over prim primitives with
//   │                   priorities, deadlines, cancellation, backpressure
//   BackendRouter ── per-query cost-model routing across the four counting
//                    tiers with a fallback chain (the request-level
//                    degradation ladder)
//
// A request is served entirely on a scheduler worker: acquire the catalog
// entry (cold requests pay — and share — the preprocess), route, then walk
// the backend chain until one tier succeeds. Every terminal response lands
// in the MetricsRegistry; metrics() returns a consistent snapshot with the
// catalog and queue gauges attached.
//
// Thread-safety: submit()/execute()/metrics() are safe from any thread.
// The CountingOptions handed to the device tiers are copied per request;
// a fault_plan pointer inside them is shared mutable state and is only
// meaningful with a single worker.

#pragma once

#include <memory>

#include "core/gpu_forward.hpp"
#include "service/catalog.hpp"
#include "service/chaos.hpp"
#include "service/metrics.hpp"
#include "service/request.hpp"
#include "service/router.hpp"
#include "service/scheduler.hpp"

namespace trico::service {

/// Device-tier defaults for serving: SM sampling keeps simulated runs
/// affordable, one host thread per worker avoids oversubscription.
[[nodiscard]] core::CountingOptions default_service_counting();

struct ServiceOptions {
  RequestScheduler::Options scheduler{};
  GraphCatalog::Options catalog{};
  RouterOptions router{};
  core::CountingOptions counting = default_service_counting();
  /// Service-level fault injection (non-owning; nullptr = no chaos). Must
  /// outlive the service. Thread-safe — meaningful with any worker count.
  ChaosPlan* chaos = nullptr;
};

class TriangleService {
 public:
  explicit TriangleService(ServiceOptions options = {});

  /// Admits the request (or rejects it with backpressure) and returns the
  /// async handle. Never blocks.
  [[nodiscard]] Ticket submit(Request request);

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] Response execute(Request request);

  /// Consistent point-in-time snapshot of every counter and gauge.
  [[nodiscard]] MetricsSnapshot metrics() const;

  /// Gate the workers; used by tests and drains to stage the queue.
  void pause();
  void resume();

  [[nodiscard]] GraphCatalog& catalog() { return catalog_; }
  [[nodiscard]] BackendRouter& router() { return router_; }
  [[nodiscard]] const BackendRouter& router() const { return router_; }
  [[nodiscard]] const RequestScheduler& scheduler() const {
    return *scheduler_;
  }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

 private:
  Response serve(const Request& request, ExecContext& ctx);
  Response run_backend(Backend backend, const CatalogEntry& entry,
                       const RouteDecision& route, ExecContext& ctx);
  /// Partial count over one shard of the prepared CSR (coordinator
  /// subrequests). Never touches result memoization.
  Response run_shard(const Request& request, const CatalogEntry& entry,
                     std::uint64_t key, bool catalog_hit, ExecContext& ctx);

  ServiceOptions options_;
  GraphCatalog catalog_;
  BackendRouter router_;
  MetricsRegistry metrics_;
  /// Declared last: its destructor drains the workers while the members
  /// above are still alive.
  std::unique_ptr<RequestScheduler> scheduler_;
};

}  // namespace trico::service
