// ChaosPlan: service-level fault injection.
//
// simt::FaultPlan breaks the *device*; a service also breaks one layer up —
// a catalog build that cannot load its graph, a backend that faults on
// launch, an execution that suddenly runs 100x slow. A ChaosPlan scripts
// those service-level failures (deterministic occurrence/repeats probes,
// the FaultPlan idiom) and can additionally arm a *seeded randomized* mode
// where every probe fires with a configured probability — the chaos test's
// storm generator. Both modes compose: scripted specs are consulted first,
// then the randomized roll.
//
// Sites and their consequences when a probe fires:
//  * kCatalogBuild  -> CatalogError thrown before preprocessing; the request
//                      terminates kFailed with a clean reason.
//  * kBackendRun    -> simt::DeviceFault thrown at backend launch; feeds the
//                      circuit breaker and the fallback chain. Scripted
//                      specs can target one backend or all (kAuto).
//  * kExecuteDelay  -> the worker sleeps delay_ms before serving; exercises
//                      deadlines-during-execution and the watchdog budget.
//  * kWireTornFrame -> transport::Server truncates the response frame
//                      mid-payload and drops the connection; the client must
//                      detect the tear and retry idempotently.
//  * kWireDelayedAck-> the server sits on a finished response before
//                      flushing; exercises client timeouts racing real work.
//  * kWireConnReset -> the connection is reset (RST) instead of answering.
//  * kWireWorkerKill-> the worker process exits abruptly (kill -9
//                      semantics); only the supervisor can recover.
//
// Thread-safe: the service probes from every worker concurrently. The plan
// outlives the service that points at it (ServiceOptions::chaos is
// non-owning, like CountingOptions::fault_plan).

#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "service/request.hpp"

namespace trico::service {

/// Where in the serve path a chaos fault can strike. The kWire* sites are
/// probed by transport::Server (src/transport/), one layer below the serve
/// path — the process/network failure modes of the cross-process stack.
enum class ChaosSite : std::uint8_t {
  kCatalogBuild,    ///< graph acquisition / preprocessing
  kBackendRun,      ///< launch of a counting tier
  kExecuteDelay,    ///< slow execution (a sleep before serving)
  kWireTornFrame,   ///< response frame truncated mid-payload, connection dropped
  kWireDelayedAck,  ///< response held back before flushing (slow ack)
  kWireConnReset,   ///< connection reset (RST) instead of a response
  kWireWorkerKill,  ///< worker process dies abruptly (kill -9 semantics)
};

[[nodiscard]] const char* to_string(ChaosSite site);

/// One scripted chaos event: fires on the `occurrence`-th probe of its site
/// (counting only probes matching `backend`), and on the `repeats - 1`
/// matching probes after it.
struct ChaosSpec {
  ChaosSite site = ChaosSite::kBackendRun;
  /// kBackendRun only: the tier to strike; kAuto = any tier.
  Backend backend = Backend::kAuto;
  unsigned occurrence = 1;  ///< 1-based matching-probe index
  unsigned repeats = 1;     ///< consecutive matching probes that keep firing
  double delay_ms = 0;      ///< kExecuteDelay only: how long to stall
};

/// Deterministic script + optional seeded random storm of service faults.
class ChaosPlan {
 public:
  /// Randomized-mode knobs (all probabilities in [0, 1], 0 = off).
  struct RandomOptions {
    double catalog_fault_rate = 0;
    double backend_fault_rate = 0;
    double delay_rate = 0;
    double max_delay_ms = 5.0;  ///< random delays are uniform in (0, max]
    // Wire-layer rates, probed by transport::Server per response / request.
    double torn_frame_rate = 0;
    double conn_reset_rate = 0;
    double wire_delay_rate = 0;
    double max_wire_delay_ms = 5.0;  ///< random ack delays, uniform in (0, max]
    double worker_kill_rate = 0;
  };

  ChaosPlan() = default;

  /// Adds a scripted event; returns *this for chaining.
  ChaosPlan& script(ChaosSpec spec);

  /// Arms the seeded randomized mode.
  ChaosPlan& randomize(std::uint64_t seed, RandomOptions options);

  /// Probes the plan at a fault site. True = the caller must fail there.
  /// For kBackendRun pass the tier being launched.
  [[nodiscard]] bool should_fault(ChaosSite site,
                                  Backend backend = Backend::kAuto);

  /// Probes the delay site. Returns the milliseconds to stall (0 = none).
  [[nodiscard]] double execute_delay_ms();

  /// Probes the kWireDelayedAck site: milliseconds the server must sit on a
  /// finished response before flushing it (0 = none).
  [[nodiscard]] double wire_delay_ms();

  /// Faults + delays that have fired so far.
  [[nodiscard]] std::uint64_t fired() const;

 private:
  struct Armed {
    ChaosSpec spec;
    unsigned probes = 0;  ///< matching probes seen so far
    unsigned fired = 0;
  };

  /// Consults the script, then the random roll. Caller holds mutex_.
  bool roll_locked(ChaosSite site, Backend backend, double rate);
  /// Shared body of the two delay probes. Caller holds mutex_.
  double delay_locked(ChaosSite site, double rate, double max_ms);
  std::uint64_t next_random_locked();

  mutable std::mutex mutex_;
  std::vector<Armed> armed_;
  RandomOptions random_{};
  bool randomized_ = false;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  std::uint64_t fired_ = 0;
};

}  // namespace trico::service
