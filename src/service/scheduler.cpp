#include "service/scheduler.hpp"

#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "util/timer.hpp"

namespace trico::service {

namespace {

/// The queue stores plain closures; the popping worker's context is
/// published thread-locally by the serving loop so a task can reach the
/// slot-local backend pool without the queue knowing about contexts.
thread_local ExecContext* tls_context = nullptr;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

RequestScheduler::RequestScheduler(Options options, Work work,
                                   Observer observer)
    : options_(options),
      work_(std::move(work)),
      observer_(std::move(observer)),
      queue_(options.queue_capacity),
      pool_(options.workers == 0 ? 1 : options.workers) {
  runner_ = std::thread([this] {
    pool_.parallel_workers([this](std::size_t worker, std::size_t) {
      prim::ThreadPool backend_pool(
          options_.backend_threads == 0 ? 1 : options_.backend_threads);
      ExecContext ctx{worker, backend_pool};
      tls_context = &ctx;
      for (;;) {
        prim::TaskQueue::Task task = queue_.pop();
        if (!task) break;  // closed and drained
        task();
      }
      tls_context = nullptr;
    });
  });
}

RequestScheduler::~RequestScheduler() {
  queue_.close();  // drain: every admitted request reaches a terminal state
  runner_.join();
}

Ticket RequestScheduler::submit(Request request) {
  auto state = std::make_shared<detail::RequestState>();
  state->request = std::move(request);
  state->submit_time = std::chrono::steady_clock::now();
  Ticket ticket(state);

  const int priority = static_cast<int>(state->request.priority);
  auto task = [this, state] { run_one(state, *tls_context); };
  if (!queue_.try_push(std::move(task), priority)) {
    Response response;
    response.status = Status::kRejectedQueueFull;
    std::ostringstream reason;
    reason << "queue full: depth " << queue_.depth() << " of capacity "
           << queue_.capacity() << (queue_.closed() ? " (shutting down)" : "");
    response.reason = reason.str();
    finish(*state, std::move(response));
  }
  return ticket;
}

void RequestScheduler::run_one(std::shared_ptr<detail::RequestState> state,
                               ExecContext& ctx) {
  const double queue_ms = ms_since(state->submit_time);
  Response response;
  response.queue_ms = queue_ms;

  if (state->cancel_requested.load(std::memory_order_relaxed)) {
    response.status = Status::kCancelled;
    response.reason = "cancelled while queued";
    finish(*state, std::move(response));
    return;
  }
  const double deadline = state->request.deadline_ms;
  if (deadline > 0 && queue_ms > deadline) {
    std::ostringstream reason;
    reason << "deadline expired in queue: waited " << queue_ms
           << " ms of a " << deadline << " ms budget";
    response.status = Status::kDeadlineExpired;
    response.reason = reason.str();
    finish(*state, std::move(response));
    return;
  }

  util::Timer timer;
  try {
    response = work_(state->request, ctx);
  } catch (const std::exception& error) {
    response = Response{};
    response.status = Status::kFailed;
    response.reason = error.what();
  }
  response.queue_ms = queue_ms;
  response.execute_ms = timer.elapsed_ms();
  finish(*state, std::move(response));
}

void RequestScheduler::finish(detail::RequestState& state, Response response) {
  // Observe before waking waiters so metrics are consistent the moment
  // wait() returns.
  if (observer_) observer_(response);
  state.finish(std::move(response));
}

void RequestScheduler::pause() { queue_.pause(); }
void RequestScheduler::resume() { queue_.resume(); }

}  // namespace trico::service
