#include "service/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "util/timer.hpp"

namespace trico::service {

namespace {

/// The queue stores plain closures; the popping worker's context is
/// published thread-locally by the serving loop so a task can reach the
/// slot-local backend pool without the queue knowing about contexts.
thread_local ExecContext* tls_context = nullptr;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

prim::FairQueue::Options queue_options(const RequestScheduler::Options& options,
                                       std::size_t per_tenant_cap) {
  prim::FairQueue::Options queue;
  queue.capacity = options.queue_capacity;
  queue.per_key_cap = per_tenant_cap;
  queue.default_weight = options.default_tenant_weight;
  return queue;
}

std::size_t resolve_tenant_cap(const RequestScheduler::Options& options) {
  const std::size_t capacity = options.queue_capacity == 0
                                   ? 1
                                   : options.queue_capacity;
  // A cap at or above the whole queue is no cap at all; 0 means unset.
  return options.per_tenant_queue_cap >= capacity
             ? 0
             : options.per_tenant_queue_cap;
}

}  // namespace

RequestScheduler::RequestScheduler(Options options, Work work,
                                   Observer observer)
    : options_(options),
      per_tenant_cap_(resolve_tenant_cap(options)),
      work_(std::move(work)),
      observer_(std::move(observer)),
      queue_(queue_options(options, per_tenant_cap_)),
      pool_(options.workers == 0 ? 1 : options.workers) {
  runner_ = std::thread([this] {
    pool_.parallel_workers([this](std::size_t worker, std::size_t) {
      prim::ThreadPool backend_pool(
          options_.backend_threads == 0 ? 1 : options_.backend_threads);
      ExecContext ctx{worker, backend_pool, nullptr};
      tls_context = &ctx;
      for (;;) {
        prim::FairQueue::Task task = queue_.pop();
        if (!task) break;  // closed and drained
        task();
      }
      tls_context = nullptr;
    });
  });
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

RequestScheduler::~RequestScheduler() {
  queue_.close();  // drain: every admitted request reaches a terminal state
  runner_.join();
  {
    std::lock_guard lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  watchdog_.join();
}

Ticket RequestScheduler::submit(Request request) {
  auto state = std::make_shared<detail::RequestState>();
  state->request = std::move(request);
  state->submit_time = std::chrono::steady_clock::now();
  Ticket ticket(state);

  const int priority = static_cast<int>(state->request.priority);
  const std::string& tenant = state->request.tenant_id;
  const auto weight_it = options_.tenant_weights.find(tenant);
  const double weight = weight_it == options_.tenant_weights.end()
                            ? options_.default_tenant_weight
                            : weight_it->second;
  auto task = [this, state] { run_one(state, *tls_context); };
  const prim::FairQueue::PushResult pushed =
      queue_.try_push(std::move(task), tenant, priority, weight);
  if (pushed != prim::FairQueue::PushResult::kOk) {
    Response response;
    response.status = Status::kRejectedQueueFull;
    std::ostringstream reason;
    if (pushed == prim::FairQueue::PushResult::kTenantFull) {
      reason << "tenant '" << tenant << "' at its queue cap "
             << per_tenant_cap_ << " (global depth " << queue_.depth()
             << " of capacity " << queue_.capacity() << ")";
    } else {
      reason << "queue full: depth " << queue_.depth() << " of capacity "
             << queue_.capacity()
             << (pushed == prim::FairQueue::PushResult::kClosed ||
                         queue_.closed()
                     ? " (shutting down)"
                     : "");
    }
    response.reason = reason.str();
    finish(*state, std::move(response));
  }
  return ticket;
}

void RequestScheduler::run_one(std::shared_ptr<detail::RequestState> state,
                               ExecContext& ctx) {
  const double queue_ms = ms_since(state->submit_time);
  Response response;
  response.queue_ms = queue_ms;

  if (state->cancel_requested.load(std::memory_order_relaxed)) {
    response.status = Status::kCancelled;
    response.reason = "cancelled while queued";
    finish(*state, std::move(response));
    return;
  }
  const double deadline = state->request.deadline_ms;
  if (deadline > 0 && queue_ms > deadline) {
    std::ostringstream reason;
    reason << "deadline expired in queue: waited " << queue_ms
           << " ms of a " << deadline << " ms budget";
    response.status = Status::kDeadlineExpired;
    response.reason = reason.str();
    finish(*state, std::move(response));
    return;
  }

  // Hand the token to the work function and register with the watchdog so
  // deadlines and the hard execution budget stay enforced while running.
  ctx.cancel = state->cancel.get();
  {
    std::lock_guard lock(watchdog_mutex_);
    running_.push_back(Running{state, std::chrono::steady_clock::now()});
  }

  util::Timer timer;
  try {
    response = work_(state->request, ctx);
  } catch (const util::OperationCancelled& cancelled) {
    response = Response{};
    std::ostringstream reason;
    switch (cancelled.cause()) {
      case util::CancelCause::kUser:
        response.status = Status::kCancelled;
        reason << "cancelled during execution";
        break;
      case util::CancelCause::kBudget:
        response.status = Status::kDeadlineExpired;
        reason << "watchdog: execution exceeded the hard budget of "
               << options_.max_execution_ms << " ms";
        break;
      case util::CancelCause::kDeadline:
      case util::CancelCause::kNone:  // unreachable: thrown only when set
        response.status = Status::kDeadlineExpired;
        reason << "deadline expired during execution: " << deadline
               << " ms budget, " << queue_ms << " ms already spent queued";
        break;
    }
    response.reason = reason.str();
  } catch (const std::exception& error) {
    response = Response{};
    response.status = Status::kFailed;
    response.reason = error.what();
  }

  {
    std::lock_guard lock(watchdog_mutex_);
    running_.erase(
        std::remove_if(running_.begin(), running_.end(),
                       [&](const Running& r) { return r.state == state; }),
        running_.end());
  }
  ctx.cancel = nullptr;

  response.queue_ms = queue_ms;
  response.execute_ms = timer.elapsed_ms();
  finish(*state, std::move(response));
}

void RequestScheduler::watchdog_loop() {
  std::unique_lock lock(watchdog_mutex_);
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.watchdog_interval_ms <= 0 ? 2.0
                                         : options_.watchdog_interval_ms);
  for (;;) {
    watchdog_cv_.wait_for(lock, interval, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    for (const Running& run : running_) {
      const Request& request = run.state->request;
      if (request.deadline_ms > 0) {
        const std::chrono::duration<double, std::milli> since_submit =
            now - run.state->submit_time;
        if (since_submit.count() > request.deadline_ms) {
          run.state->cancel->request_cancel(util::CancelCause::kDeadline);
        }
      }
      if (options_.max_execution_ms > 0) {
        const std::chrono::duration<double, std::milli> executing =
            now - run.exec_start;
        if (executing.count() > options_.max_execution_ms &&
            run.state->cancel->request_cancel(util::CancelCause::kBudget)) {
          ++watchdog_flags_;
        }
      }
    }
  }
}

std::uint64_t RequestScheduler::watchdog_flags() const {
  std::lock_guard lock(watchdog_mutex_);
  return watchdog_flags_;
}

void RequestScheduler::finish(detail::RequestState& state, Response response) {
  // Observe before waking waiters so metrics are consistent the moment
  // wait() returns.
  if (observer_) observer_(state.request, response);
  state.finish(std::move(response));
}

void RequestScheduler::pause() { queue_.pause(); }
void RequestScheduler::resume() { queue_.resume(); }

}  // namespace trico::service
