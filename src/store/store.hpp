// The content-addressed artifact store: directory layout, atomic publish,
// and an LRU over mapped bytes.
//
// Layout under `root`:
//   <key:016x>.tpg     mmap-backed PreparedGraph artifact (artifact.hpp)
//   <key:016x>.trico   raw binary edge list (the out-of-core spill tier)
//   *.tmp.<pid>        in-flight writes; never opened by readers, swept on
//                      store construction
//
// Publish protocol: write + fsync to a temp name in the same directory,
// then rename(2) into place. Readers open only final names, and rename is
// atomic on POSIX, so a reader observes either the complete old artifact,
// the complete new one, or nothing — a crash mid-publish leaves at most a
// swept-up temp file (tests/store_test.cpp kills a publisher process in a
// loop to enforce exactly this).
//
// find() keeps opened artifacts resident in a keyed LRU; the budget bounds
// *mapped* bytes, and eviction drops an artifact's pages via
// madvise(MADV_DONTNEED) before unmapping. Handles are shared_ptr, so an
// artifact evicted mid-count stays valid until its last reader drops it.
// Concurrent find()s of the same key collapse onto one open (the catalog's
// stampede pattern), and a corrupt artifact is quarantined (renamed to
// `<name>.corrupt`) and reported as a miss so the caller rebuilds and
// republishes cleanly.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"
#include "store/artifact.hpp"

namespace trico::store {

struct StoreOptions {
  /// Artifact directory; empty disables the store entirely (every find
  /// misses, every publish no-ops). Created on construction if absent.
  std::string root;

  /// LRU budget over mapped artifact bytes. Note these are page-cache
  /// bytes, not heap: an artifact over budget still opens and serves, the
  /// store just won't keep it resident afterwards.
  std::uint64_t mapped_byte_budget = std::uint64_t{4} << 30;  // 4 GiB

  /// Verify payload checksums on open (see OpenOptions::verify_checksum).
  bool verify_checksums = true;

  /// madvise(MADV_WILLNEED) each artifact as it is opened, so the kernel
  /// prefetches it ahead of the first counting run.
  bool prefault = false;
};

/// Monotonic counters + gauges, attached to CatalogStats/MetricsSnapshot so
/// warm-restart behavior is observable from the CLI metrics printout.
struct StoreStats {
  bool enabled = false;
  std::uint64_t hits = 0;             ///< finds served from disk or residents
  std::uint64_t misses = 0;           ///< no artifact for the key
  std::uint64_t publishes = 0;
  std::uint64_t publish_failures = 0; ///< failed writes (store stays usable)
  std::uint64_t corrupt_rejects = 0;  ///< artifacts quarantined on open
  std::uint64_t evictions = 0;        ///< LRU unmaps
  std::uint64_t edge_hits = 0;        ///< spill-tier edge-list loads
  std::uint64_t edge_publishes = 0;   ///< spill-tier edge-list writes
  std::uint64_t mapped_artifacts = 0; ///< gauge: resident mappings
  std::uint64_t bytes_mapped = 0;     ///< gauge: resident mapped bytes
};

/// FNV-1a content key of an edge list (vertex count + raw slot bytes) —
/// the same key the service catalog addresses its RAM slots with, so a
/// catalog entry and its on-disk artifact share an address.
[[nodiscard]] std::uint64_t edge_list_key(const EdgeList& edges);

class ArtifactStore {
 public:
  /// A disabled store (no root): every operation is a cheap no-op.
  ArtifactStore() = default;
  explicit ArtifactStore(StoreOptions options);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  [[nodiscard]] bool enabled() const { return !options_.root.empty(); }
  [[nodiscard]] const StoreOptions& options() const { return options_; }

  /// Looks up the PreparedGraph artifact for `key`: resident map first,
  /// then disk. Returns nullptr on miss (including quarantined corruption —
  /// the caller rebuilds). Never throws for artifact-level problems.
  [[nodiscard]] std::shared_ptr<const MappedPreparedGraph> find(
      std::uint64_t key);

  /// Serializes `prepared` under `key` (temp + fsync + rename), then opens
  /// the published artifact, inserts it into the resident LRU, and returns
  /// it — so the very bytes just written are verified readable. Returns
  /// nullptr on failure (counted; the owned build keeps serving).
  std::shared_ptr<const MappedPreparedGraph> publish(
      std::uint64_t key, const cpu::PreparedGraph& prepared,
      const GraphStats& stats);

  /// Spill tier: persists a raw edge list under `key` as a binary `.trico`
  /// artifact (same temp + rename protocol). Returns false on failure.
  bool publish_edges(std::uint64_t key, const EdgeList& edges);

  /// Spill tier lookup: loads the edge-list artifact via parallel chunked
  /// ingest. nullopt on miss or corruption (corrupt files quarantined).
  [[nodiscard]] std::optional<EdgeList> load_edges(std::uint64_t key,
                                                   prim::ThreadPool& pool);

  [[nodiscard]] StoreStats stats() const;

  [[nodiscard]] std::string prepared_path(std::uint64_t key) const;
  [[nodiscard]] std::string edges_path(std::uint64_t key) const;

 private:
  struct Resident {
    std::shared_ptr<const MappedPreparedGraph> mapped;  ///< null while opening
    std::uint64_t tick = 0;
    bool opening = false;
  };

  /// Inserts an opened artifact and evicts LRU residents past the budget.
  void insert_resident_locked(std::uint64_t key,
                              std::shared_ptr<const MappedPreparedGraph> mapped);
  void evict_to_budget_locked();
  void quarantine(const std::string& path) const;

  StoreOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable open_cv_;
  std::unordered_map<std::uint64_t, Resident> residents_;
  std::uint64_t tick_ = 0;
  StoreStats stats_;
};

}  // namespace trico::store
