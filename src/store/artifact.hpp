// Serializer and mmap-backed reader for PreparedGraph artifacts.
//
// write_prepared_artifact lays the prepared arrays out exactly as they sit
// in memory (format.hpp documents the layout); open_prepared_artifact maps
// the file and hands back a MappedPreparedGraph whose PreparedGraphView
// spans point straight into the mapping — the hybrid engine counts over it
// unchanged and bit-identically (tests/store_test.cpp enforces this across
// every ISA level and thread count).
//
// The writer targets the exact path it is given and performs no atomicity
// of its own — ArtifactStore publishes via write-to-temp + rename so
// readers never observe a partially written artifact.

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cpu/hybrid_engine.hpp"
#include "graph/stats.hpp"
#include "store/format.hpp"
#include "store/mmap_file.hpp"

namespace trico::store {

/// Serializes `prepared` (+ its GraphStats, so a warm restart skips
/// compute_stats) to `path`, fsyncing before returning. Returns the total
/// file size in bytes. Throws StoreError(kIo) on any write failure.
std::uint64_t write_prepared_artifact(const std::string& path,
                                      std::uint64_t content_key,
                                      const cpu::PreparedGraph& prepared,
                                      const GraphStats& stats);

struct OpenOptions {
  /// Verify the payload checksum on open. The default catches any flipped
  /// byte before it can become a wrong count; off trusts the file (the
  /// header self-checksum and structural cross-checks still run).
  bool verify_checksum = true;
  /// When non-zero, the header's content key must match (a mismatch means
  /// the file was renamed or the directory rewired) — kCorrupt otherwise.
  std::uint64_t expected_key = 0;
};

/// A PreparedGraph backed by an mmapped artifact instead of owned vectors.
/// The view is valid for the lifetime of this object; the store hands these
/// out as shared_ptr so eviction cannot unmap under an in-flight count.
class MappedPreparedGraph {
 public:
  [[nodiscard]] const cpu::PreparedGraphView& view() const { return view_; }
  [[nodiscard]] std::uint64_t content_key() const {
    return header_.content_key;
  }
  [[nodiscard]] const ArtifactHeader& header() const { return header_; }
  [[nodiscard]] const GraphStats& graph_stats() const { return stats_; }
  [[nodiscard]] std::uint64_t mapped_bytes() const { return map_.size(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// LRU-eviction hook: drop resident pages, keep the mapping valid.
  void advise_dont_need() const noexcept { map_.advise_dont_need(); }
  /// Prewarm hook: ask the kernel to fault the whole artifact in.
  void advise_will_need() const noexcept { map_.advise_will_need(); }

 private:
  friend std::shared_ptr<const MappedPreparedGraph> open_prepared_artifact(
      const std::string& path, const OpenOptions& options);

  MmapFile map_;
  ArtifactHeader header_{};
  cpu::PreparedGraphView view_;
  GraphStats stats_;
  std::string path_;
};

/// Maps and validates the artifact at `path`. Validation order: existence →
/// magic → version/endianness → header checksum → declared size vs file
/// size → structural cross-checks → payload checksum (if enabled). Each
/// failure throws the matching typed StoreError; a successful open can be
/// counted over immediately.
[[nodiscard]] std::shared_ptr<const MappedPreparedGraph>
open_prepared_artifact(const std::string& path, const OpenOptions& options = {});

}  // namespace trico::store
