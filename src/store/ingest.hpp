// Parallel chunked ingest of binary `.trico` edge lists.
//
// The serial loader (io::read_binary_file) reads the whole file on one
// thread; for multi-GB inputs that leaves every other core idle while the
// page cache fills. This path preads disjoint chunks across the thread pool
// directly into the final Edge array — IO overlapped with per-chunk
// vertex-id validation — the RapidsAtHKUST recipe the ROADMAP names.
// Optionally opens with O_DIRECT (aligned bounce buffers, page-cache
// bypass) for cold one-shot loads; hosts or filesystems that reject the
// flag fall back to buffered reads transparently.
//
// Same contract as the serial loader: slots restored verbatim, io::IoError
// on anything malformed.

#pragma once

#include <cstddef>
#include <string>

#include "graph/edge_list.hpp"
#include "prim/thread_pool.hpp"

namespace trico::store {

struct IngestOptions {
  /// Bytes per pread chunk (rounded to whole Edge slots).
  std::size_t chunk_bytes = std::size_t{8} << 20;  // 8 MiB

  /// Open with O_DIRECT and read through aligned bounce buffers. Falls back
  /// to buffered IO when the open or the first read rejects the flag.
  bool direct_io = false;

  /// Cross-check every slot's vertex ids against the header's vertex count
  /// while the next chunk's IO is in flight. Rejects files whose payload
  /// disagrees with their header (the serial loader trusts them) — the
  /// validation is free, hiding entirely under the IO.
  bool validate = true;
};

/// Loads `path` with parallel chunked pread across `pool`. Bit-identical
/// output to io::read_binary_file on any valid file. Throws io::IoError on
/// open/read failures, bad magic/version, size mismatch, or (with
/// `validate`) out-of-range vertex ids.
[[nodiscard]] EdgeList read_edges_parallel(const std::string& path,
                                           prim::ThreadPool& pool,
                                           const IngestOptions& options = {});

}  // namespace trico::store
