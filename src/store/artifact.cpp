#include "store/artifact.hpp"

#include <cerrno>
#include <cstring>
#include <span>

#include <fcntl.h>
#include <unistd.h>

#include "util/io.hpp"

namespace trico::store {

namespace {

[[noreturn]] void fail(StoreErrorKind kind, const std::string& what) {
  throw StoreError(kind, what);
}

/// File offsets of the six sections, derived purely from the header counts.
/// Each section starts 64-aligned; `end` is the total (aligned) file size.
struct Layout {
  std::uint64_t offsets = 0;
  std::uint64_t neighbors = 0;
  std::uint64_t new_to_old = 0;
  std::uint64_t bitmap_rows = 0;
  std::uint64_t bitmap_offsets = 0;
  std::uint64_t bitmap_words = 0;
  std::uint64_t end = 0;
};

Layout layout_of(const ArtifactHeader& header) {
  Layout layout;
  std::uint64_t cursor = sizeof(ArtifactHeader);
  const auto place = [&cursor](std::uint64_t count, std::uint64_t elem_size) {
    const std::uint64_t at = cursor;
    cursor = align_up(cursor + count * elem_size, kSectionAlign);
    return at;
  };
  layout.offsets = place(header.num_offsets, sizeof(EdgeIndex));
  layout.neighbors = place(header.num_neighbors, sizeof(VertexId));
  layout.new_to_old = place(header.num_new_to_old, sizeof(VertexId));
  layout.bitmap_rows = place(header.num_bitmap_rows, sizeof(std::uint32_t));
  layout.bitmap_offsets =
      place(header.num_bitmap_offsets, sizeof(std::uint64_t));
  layout.bitmap_words = place(header.num_bitmap_words, sizeof(std::uint64_t));
  layout.end = cursor;
  return layout;
}

int open_create_retry(const char* path) {
  for (;;) {
    const int fd =  // NOLINT(cppcoreguidelines-pro-type-vararg)
        ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

void write_or_fail(int fd, const void* bytes, std::uint64_t num_bytes,
                   const std::string& path) {
  const util::io::IoResult r = util::io::write_full(fd, bytes, num_bytes);
  if (r.status != util::io::IoStatus::kOk) {
    const int err = r.error;
    util::io::close_quiet(fd);
    fail(StoreErrorKind::kIo,
         "write " + path + ": " + std::strerror(err));
  }
}

}  // namespace

std::uint64_t write_prepared_artifact(const std::string& path,
                                      std::uint64_t content_key,
                                      const cpu::PreparedGraph& prepared,
                                      const GraphStats& stats) {
  ArtifactHeader header{};
  std::memcpy(header.magic, kArtifactMagic.data(), kArtifactMagic.size());
  header.content_key = content_key;
  header.num_offsets = prepared.oriented.offsets().size();
  header.num_neighbors = prepared.oriented.neighbor_array().size();
  header.num_new_to_old = prepared.new_to_old.size();
  header.num_bitmap_rows = prepared.bitmaps.rows.size();
  header.num_bitmap_offsets = prepared.bitmaps.offsets.size();
  header.num_bitmap_words = prepared.bitmaps.words.size();
  header.opt_strategy = static_cast<std::uint32_t>(prepared.options.strategy);
  header.opt_isa = static_cast<std::uint32_t>(prepared.options.isa);
  header.opt_skew_threshold = prepared.options.skew_threshold;
  header.opt_bitmap_threshold = prepared.options.bitmap_threshold;
  header.opt_bitmap_word_budget = prepared.options.bitmap_word_budget;
  header.opt_counting_chunk = prepared.options.counting_chunk;
  header.opt_relabel = prepared.options.relabel_by_degree ? 1 : 0;
  header.stat_num_vertices = stats.num_vertices;
  header.stat_isolated_vertices = stats.isolated_vertices;
  header.stat_num_edges = stats.num_edges;
  header.stat_max_degree = stats.max_degree;
  header.stat_avg_degree = stats.avg_degree;
  header.stat_degree_stddev = stats.degree_stddev;

  const Layout layout = layout_of(header);
  header.payload_bytes = layout.end - sizeof(ArtifactHeader);

  // Sections in file order: {data, bytes}. The checksum folds exactly the
  // byte stream the file will hold — section bytes plus the zeroed
  // alignment padding after each — so the reader can verify with one flat
  // pass over the mapping.
  const struct {
    const void* data;
    std::uint64_t bytes;
  } sections[] = {
      {prepared.oriented.offsets().data(),
       header.num_offsets * sizeof(EdgeIndex)},
      {prepared.oriented.neighbor_array().data(),
       header.num_neighbors * sizeof(VertexId)},
      {prepared.new_to_old.data(), header.num_new_to_old * sizeof(VertexId)},
      {prepared.bitmaps.rows.data(),
       header.num_bitmap_rows * sizeof(std::uint32_t)},
      {prepared.bitmaps.offsets.data(),
       header.num_bitmap_offsets * sizeof(std::uint64_t)},
      {prepared.bitmaps.words.data(),
       header.num_bitmap_words * sizeof(std::uint64_t)},
  };
  ChecksumStream checksum;
  for (const auto& s : sections) {
    checksum.feed(s.data, s.bytes);
    checksum.feed_zeros(align_up(s.bytes, kSectionAlign) - s.bytes);
  }
  header.payload_checksum = checksum.finish();
  header.header_checksum = header_checksum_of(header);

  const int fd = open_create_retry(path.c_str());
  if (fd < 0) {
    fail(StoreErrorKind::kIo,
         "create " + path + ": " + std::strerror(errno));
  }
  write_or_fail(fd, &header, sizeof(header), path);
  static constexpr std::uint8_t kZeros[kSectionAlign] = {};
  for (const auto& s : sections) {
    if (s.bytes > 0) write_or_fail(fd, s.data, s.bytes, path);
    const std::uint64_t pad = align_up(s.bytes, kSectionAlign) - s.bytes;
    if (pad > 0) write_or_fail(fd, kZeros, pad, path);
  }
  // Durability before visibility: the store renames this file into place
  // only after it (and its bytes) are on disk, so a crash can never leave a
  // published name pointing at unwritten pages.
  if (::fsync(fd) != 0) {
    const int err = errno;
    util::io::close_quiet(fd);
    fail(StoreErrorKind::kIo, "fsync " + path + ": " + std::strerror(err));
  }
  util::io::close_quiet(fd);
  return layout.end;
}

std::shared_ptr<const MappedPreparedGraph> open_prepared_artifact(
    const std::string& path, const OpenOptions& options) {
  auto artifact = std::make_shared<MappedPreparedGraph>();
  artifact->path_ = path;
  // With checksum verification on, every payload byte is about to be read
  // once anyway — MAP_POPULATE turns ~size/4K soft faults into one batched
  // page-table fill.
  artifact->map_ = MmapFile::open_readonly(path, options.verify_checksum);
  const MmapFile& map = artifact->map_;

  if (map.size() < sizeof(ArtifactHeader)) {
    fail(StoreErrorKind::kTruncated,
         path + " holds " + std::to_string(map.size()) +
             " bytes, shorter than the fixed header");
  }
  ArtifactHeader& header = artifact->header_;
  std::memcpy(&header, map.data(), sizeof(header));
  if (std::memcmp(header.magic, kArtifactMagic.data(),
                  kArtifactMagic.size()) != 0) {
    fail(StoreErrorKind::kMagic, path + " is not a trico artifact");
  }
  if (header.version != kArtifactVersion) {
    fail(StoreErrorKind::kVersion,
         path + " is format version " + std::to_string(header.version) +
             ", this build reads version " + std::to_string(kArtifactVersion));
  }
  if (header.endian != kEndianTag) {
    fail(StoreErrorKind::kVersion,
         path + " was written on a host with foreign byte order");
  }
  if (header.header_checksum != header_checksum_of(header)) {
    fail(StoreErrorKind::kChecksum, path + ": header checksum mismatch");
  }

  // Counts are now self-consistent with what the writer recorded (the
  // header checksum vouches for them); bound them anyway so a colliding
  // checksum cannot drive the layout arithmetic into overflow.
  const std::uint64_t counts[] = {
      header.num_offsets,        header.num_neighbors,
      header.num_new_to_old,     header.num_bitmap_rows,
      header.num_bitmap_offsets, header.num_bitmap_words,
  };
  for (const std::uint64_t c : counts) {
    if (c > (std::uint64_t{1} << 48)) {
      fail(StoreErrorKind::kCorrupt,
           path + ": implausible section count " + std::to_string(c));
    }
  }
  const Layout layout = layout_of(header);
  if (header.payload_bytes != layout.end - sizeof(ArtifactHeader)) {
    fail(StoreErrorKind::kCorrupt,
         path + ": declared payload bytes disagree with section counts");
  }
  if (map.size() < layout.end) {
    fail(StoreErrorKind::kTruncated,
         path + " holds " + std::to_string(map.size()) + " of " +
             std::to_string(layout.end) + " declared bytes");
  }
  if (map.size() > layout.end) {
    fail(StoreErrorKind::kCorrupt,
         path + ": " + std::to_string(map.size() - layout.end) +
             " trailing bytes past the declared payload");
  }

  const std::uint64_t n = header.stat_num_vertices;
  if (header.num_offsets != 0 && header.num_offsets != n + 1) {
    fail(StoreErrorKind::kCorrupt,
         path + ": offsets section disagrees with the vertex count");
  }
  if (header.num_offsets == 0 && header.num_neighbors != 0) {
    fail(StoreErrorKind::kCorrupt, path + ": neighbors without offsets");
  }
  if (header.num_new_to_old != 0 && header.num_new_to_old != n) {
    fail(StoreErrorKind::kCorrupt,
         path + ": relabel map disagrees with the vertex count");
  }
  if (header.num_bitmap_rows != 0 && header.num_bitmap_rows != n) {
    fail(StoreErrorKind::kCorrupt,
         path + ": bitmap row map disagrees with the vertex count");
  }
  if (header.num_bitmap_offsets == 0 && header.num_bitmap_words != 0) {
    fail(StoreErrorKind::kCorrupt, path + ": bitmap words without offsets");
  }
  if (header.opt_strategy > 2 || header.opt_isa > 3) {
    fail(StoreErrorKind::kCorrupt, path + ": unknown engine option value");
  }

  if (options.verify_checksum) {
    const std::uint64_t got = fnv1a_words(map.data() + sizeof(ArtifactHeader),
                                          header.payload_bytes);
    if (got != header.payload_checksum) {
      fail(StoreErrorKind::kChecksum, path + ": payload checksum mismatch");
    }
  }
  if (options.expected_key != 0 &&
      header.content_key != options.expected_key) {
    fail(StoreErrorKind::kCorrupt,
         path + ": content key mismatch (artifact renamed or directory "
                "rewired?)");
  }

  const std::byte* base = map.data();
  cpu::PreparedGraphView& view = artifact->view_;
  view.offsets = {reinterpret_cast<const EdgeIndex*>(base + layout.offsets),
                  header.num_offsets};
  view.neighbors = {
      reinterpret_cast<const VertexId*>(base + layout.neighbors),
      header.num_neighbors};
  view.new_to_old = {
      reinterpret_cast<const VertexId*>(base + layout.new_to_old),
      header.num_new_to_old};
  view.bitmap_rows = {
      reinterpret_cast<const std::uint32_t*>(base + layout.bitmap_rows),
      header.num_bitmap_rows};
  view.bitmap_offsets = {
      reinterpret_cast<const std::uint64_t*>(base + layout.bitmap_offsets),
      header.num_bitmap_offsets};
  view.bitmap_words = {
      reinterpret_cast<const std::uint64_t*>(base + layout.bitmap_words),
      header.num_bitmap_words};

  // The last offset locates counting's every neighbor access; cross-check
  // it (and the bitmap tail) so even a checksum-off open cannot index past
  // the mapping.
  if (!view.offsets.empty() && view.offsets.back() != header.num_neighbors) {
    fail(StoreErrorKind::kCorrupt,
         path + ": CSR tail offset disagrees with the neighbor count");
  }
  if (!view.bitmap_offsets.empty() &&
      view.bitmap_offsets.back() != header.num_bitmap_words) {
    fail(StoreErrorKind::kCorrupt,
         path + ": bitmap tail offset disagrees with the word count");
  }

  cpu::EngineOptions& opts = view.options;
  opts.strategy = static_cast<cpu::IntersectStrategy>(header.opt_strategy);
  opts.isa = static_cast<cpu::simd::IsaRequest>(header.opt_isa);
  opts.skew_threshold = header.opt_skew_threshold;
  opts.bitmap_threshold = header.opt_bitmap_threshold;
  opts.bitmap_word_budget = header.opt_bitmap_word_budget;
  opts.counting_chunk = header.opt_counting_chunk;
  opts.relabel_by_degree = header.opt_relabel != 0;

  GraphStats& stats = artifact->stats_;
  stats.num_vertices = header.stat_num_vertices;
  stats.isolated_vertices = header.stat_isolated_vertices;
  stats.num_edges = header.stat_num_edges;
  stats.max_degree = header.stat_max_degree;
  stats.avg_degree = header.stat_avg_degree;
  stats.degree_stddev = header.stat_degree_stddev;
  return artifact;
}

}  // namespace trico::store
