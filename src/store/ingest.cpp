#include "store/ingest.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "graph/io.hpp"
#include "prim/algorithms.hpp"
#include "util/io.hpp"

namespace trico::store {

namespace {

[[noreturn]] void fail(const std::string& what) { throw io::IoError(what); }

/// O_DIRECT alignment unit: offset, length, and buffer address must all be
/// multiples of the logical block size. 4096 covers every modern device.
constexpr std::size_t kDirectAlign = 4096;

/// An aligned bounce buffer per worker, reused across chunks.
struct BounceBuffer {
  void* data = nullptr;
  std::size_t size = 0;

  ~BounceBuffer() { std::free(data); }  // NOLINT(cppcoreguidelines-no-malloc)

  bool ensure(std::size_t bytes) {
    if (size >= bytes) return true;
    std::free(data);  // NOLINT(cppcoreguidelines-no-malloc)
    data = nullptr;
    size = 0;
    if (::posix_memalign(&data, kDirectAlign, bytes) != 0) return false;
    size = bytes;
    return true;
  }
};

/// First-error-wins collector for failures inside the parallel region
/// (exceptions must not cross the pool boundary).
struct ErrorSlot {
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::string message;

  void set(const std::string& what) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      const std::lock_guard<std::mutex> lock(mutex);
      message = what;
    }
  }
};

}  // namespace

EdgeList read_edges_parallel(const std::string& path, prim::ThreadPool& pool,
                             const IngestOptions& options) {
  const int fd = util::io::open_retry(path.c_str(), O_RDONLY);
  if (fd < 0) {
    fail("cannot open graph file: " + path + ": " + std::strerror(errno));
  }
  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    util::io::close_quiet(fd);
    fail("cannot determine size of graph file: " + path);
  }

  // Header through the buffered fd regardless of mode (24 bytes can never
  // satisfy O_DIRECT's alignment contract).
  unsigned char header_bytes[io::kBinaryHeaderBytes];
  const std::size_t header_take = std::min<std::size_t>(
      sizeof(header_bytes), static_cast<std::size_t>(file_size));
  {
    const util::io::IoResult r =
        util::io::pread_full(fd, header_bytes, header_take, 0);
    if (r.status == util::io::IoStatus::kError) {
      util::io::close_quiet(fd);
      fail("read failure on graph file " + path + ": " +
           std::strerror(r.error));
    }
  }
  io::BinaryHeader header;
  try {
    header = io::parse_binary_header(header_bytes, header_take,
                                     static_cast<std::int64_t>(file_size));
  } catch (...) {
    util::io::close_quiet(fd);
    throw;
  }

  // A second fd carrying O_DIRECT when asked for; -1 means buffered reads
  // (the flag unsupported here, or never requested).
  int direct_fd = -1;
  if (options.direct_io) {
    direct_fd =  // NOLINT(cppcoreguidelines-pro-type-vararg)
        ::open(path.c_str(), O_RDONLY | O_DIRECT);
  }

  std::vector<Edge> edges(header.num_slots);
  const std::size_t chunk_slots =
      std::max<std::size_t>(1, options.chunk_bytes / sizeof(Edge));
  const std::size_t num_chunks =
      (edges.size() + chunk_slots - 1) / chunk_slots;
  const std::size_t nw = std::max<std::size_t>(1, pool.num_threads());

  ErrorSlot error;
  std::atomic<bool> direct_failed{false};
  std::vector<BounceBuffer> bounce(nw);
  const VertexId n = header.num_vertices;

  prim::parallel_chunks_dynamic(
      pool, 0, num_chunks, 1,
      [&](std::size_t w, std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          if (error.failed.load(std::memory_order_relaxed)) return;
          const std::size_t slot_lo = c * chunk_slots;
          const std::size_t slot_hi =
              std::min(edges.size(), slot_lo + chunk_slots);
          const std::size_t bytes = (slot_hi - slot_lo) * sizeof(Edge);
          const off_t offset = static_cast<off_t>(
              io::kBinaryHeaderBytes + slot_lo * sizeof(Edge));
          char* dest = reinterpret_cast<char*>(edges.data() + slot_lo);

          bool done = false;
          if (direct_fd >= 0 && !direct_failed.load()) {
            // Read the aligned cover of [offset, offset+bytes) into the
            // worker's bounce buffer, then copy the overlap out. A short
            // read at EOF is fine as long as it covers the slice.
            const off_t a_lo = offset & ~static_cast<off_t>(kDirectAlign - 1);
            const std::size_t a_len =
                (static_cast<std::size_t>(offset - a_lo) + bytes +
                 kDirectAlign - 1) /
                kDirectAlign * kDirectAlign;
            BounceBuffer& buf = bounce[w];
            if (buf.ensure(a_len)) {
              const util::io::IoResult r =
                  util::io::pread_full(direct_fd, buf.data, a_len, a_lo);
              const std::size_t need =
                  static_cast<std::size_t>(offset - a_lo) + bytes;
              if (r.status == util::io::IoStatus::kOk || r.bytes >= need) {
                std::memcpy(dest,
                            static_cast<char*>(buf.data) + (offset - a_lo),
                            bytes);
                done = true;
              } else if (r.status == util::io::IoStatus::kError &&
                         r.error == EINVAL) {
                // Filesystem rejected the alignment after all — degrade the
                // whole load to buffered reads.
                direct_failed.store(true);
              } else {
                error.set("read failure on graph file " + path + ": " +
                          (r.status == util::io::IoStatus::kEof
                               ? "file shrank mid-read"
                               : std::string(std::strerror(r.error))));
                return;
              }
            } else {
              direct_failed.store(true);
            }
          }
          if (!done) {
            const util::io::IoResult r =
                util::io::pread_full(fd, dest, bytes, offset);
            if (r.status != util::io::IoStatus::kOk) {
              error.set("read failure on graph file " + path + ": " +
                        (r.status == util::io::IoStatus::kEof
                             ? "file shrank mid-read"
                             : std::string(std::strerror(r.error))));
              return;
            }
          }
          if (options.validate) {
            // Overlaps the next chunk's IO; the serial loader never checks
            // this at all.
            for (std::size_t i = slot_lo; i < slot_hi; ++i) {
              if (edges[i].u >= n || edges[i].v >= n) {
                error.set("graph file " + path + ": slot " +
                          std::to_string(i) + " names vertex " +
                          std::to_string(std::max(edges[i].u, edges[i].v)) +
                          " outside the declared " + std::to_string(n) +
                          "-vertex domain");
                return;
              }
            }
          }
        }
      });

  if (direct_fd >= 0) util::io::close_quiet(direct_fd);
  util::io::close_quiet(fd);
  if (error.failed.load()) {
    const std::lock_guard<std::mutex> lock(error.mutex);
    fail(error.message);
  }
  return EdgeList(std::move(edges), header.num_vertices);
}

}  // namespace trico::store
