// On-disk artifact format for the zero-copy persistent graph store.
//
// A `.tpg` artifact is a 256-byte POD header followed by the PreparedGraph
// arrays (CSR offsets, neighbors, relabel map, bitmap rows/offsets/words)
// written back to back in their exact in-memory layout, each section padded
// to a 64-byte boundary. Reopening is mmap + pointer fixup: the counting
// engine's PreparedGraphView spans point straight into the mapping, so a
// restarted service counts off page cache with zero deserialization.
//
// The format is deliberately host-native (endianness, struct layout): an
// mmapped artifact *is* the in-memory representation, so portability across
// byte orders is impossible by construction. The header carries an endian
// tag and a version so a foreign or stale artifact is rejected with a typed
// StoreError instead of producing wrong counts.
//
// Integrity: a multi-lane word-folded FNV-1a checksum over the whole
// payload (and a second one over the header itself). Folding u64 words
// across kChecksumLanes interleaved lanes instead of bytes through one
// chain keeps verification ~50x cheaper — it still detects any flipped
// byte, which is the failure mode that matters (torn writes are already
// excluded by the write-to-temp + atomic-rename publish protocol in
// store.cpp).

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace trico::store {

inline constexpr std::array<char, 8> kArtifactMagic = {'T', 'R', 'I', 'C',
                                                       'O', 'T', 'P', 'G'};
inline constexpr std::uint32_t kArtifactVersion = 1;

/// Written as 0x01020304 by the producing host; a reader that sees any
/// other value is running on an incompatible byte order.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

/// Every section starts on a 64-byte boundary (cache line; also keeps u64
/// sections 8-aligned inside the page-aligned mapping).
inline constexpr std::uint64_t kSectionAlign = 64;

inline constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// The word fold runs this many independent FNV lanes (word i feeds lane
/// i % kChecksumLanes), combined into one u64 at the end. A single FNV
/// chain is latency-bound on its multiply (~5 cycles per 8 bytes); eight
/// lanes keep the multiplier pipelined, and 8 lanes x 8 bytes = one
/// 64-byte block per iteration, matching kSectionAlign. Verifying a
/// multi-GB artifact must not dominate the warm restart it exists to
/// accelerate.
inline constexpr std::uint32_t kChecksumLanes = 8;
inline constexpr std::uint64_t kChecksumLaneSalt = 0x9e3779b97f4a7c15ull;

/// What went wrong with an artifact, as a typed taxonomy: corruption and
/// version skew must surface as diagnosable errors — never a wrong count,
/// never a crash.
enum class StoreErrorKind {
  kNotFound,   ///< no artifact at that path / key
  kMagic,      ///< not a trico artifact at all
  kVersion,    ///< stale format version or foreign endianness
  kTruncated,  ///< file shorter than its header declares
  kChecksum,   ///< header or payload checksum mismatch (flipped bytes)
  kCorrupt,    ///< internally inconsistent header (counts/offsets disagree)
  kIo,         ///< a syscall failed (open, write, mmap, fsync, rename)
};

[[nodiscard]] constexpr const char* to_string(StoreErrorKind kind) {
  switch (kind) {
    case StoreErrorKind::kNotFound: return "not-found";
    case StoreErrorKind::kMagic: return "bad-magic";
    case StoreErrorKind::kVersion: return "version-mismatch";
    case StoreErrorKind::kTruncated: return "truncated";
    case StoreErrorKind::kChecksum: return "checksum-mismatch";
    case StoreErrorKind::kCorrupt: return "corrupt";
    case StoreErrorKind::kIo: return "io-error";
  }
  return "?";
}

class StoreError : public std::runtime_error {
 public:
  StoreError(StoreErrorKind kind, const std::string& what)
      : std::runtime_error(std::string(to_string(kind)) + ": " + what),
        kind_(kind) {}

  [[nodiscard]] StoreErrorKind kind() const { return kind_; }

 private:
  StoreErrorKind kind_;
};

/// The fixed 256-byte artifact header. Fixed-width fields only, explicit
/// padding, trailing self-checksum — memcpy'able from the mapping.
struct ArtifactHeader {
  char magic[8];                     // "TRICOTPG"
  std::uint32_t version = kArtifactVersion;
  std::uint32_t endian = kEndianTag;
  std::uint64_t content_key = 0;     ///< FNV content hash of the edge list
  std::uint64_t payload_bytes = 0;   ///< section bytes incl. alignment padding
  std::uint64_t payload_checksum = 0;

  // Section element counts, in file order.
  std::uint64_t num_offsets = 0;        // EdgeIndex (u64), n+1 or 0
  std::uint64_t num_neighbors = 0;      // VertexId (u32)
  std::uint64_t num_new_to_old = 0;     // VertexId (u32), n or 0
  std::uint64_t num_bitmap_rows = 0;    // u32, n or 0
  std::uint64_t num_bitmap_offsets = 0; // u64, rows+1 or <=1
  std::uint64_t num_bitmap_words = 0;   // u64

  // EngineOptions snapshot — the options the artifact was prepared with;
  // restored verbatim into the view so strategy selection (and therefore
  // counts AND CountingStats) is bit-identical to the owned build.
  std::uint32_t opt_strategy = 0;
  std::uint32_t opt_isa = 0;
  double opt_skew_threshold = 0;
  std::uint64_t opt_bitmap_threshold = 0;
  std::uint64_t opt_bitmap_word_budget = 0;
  std::uint64_t opt_counting_chunk = 0;
  std::uint32_t opt_relabel = 0;
  std::uint32_t pad0 = 0;

  // GraphStats snapshot, so a warm restart skips compute_stats too.
  std::uint32_t stat_num_vertices = 0;
  std::uint32_t stat_isolated_vertices = 0;
  std::uint64_t stat_num_edges = 0;
  std::uint64_t stat_max_degree = 0;
  double stat_avg_degree = 0;
  double stat_degree_stddev = 0;

  std::uint8_t reserved[72] = {};    // future fields; zero on write
  std::uint64_t header_checksum = 0; ///< FNV words over the preceding bytes
};
static_assert(sizeof(ArtifactHeader) == 256, "artifact header is 4 lines");
static_assert(sizeof(ArtifactHeader) % kSectionAlign == 0);

/// FNV-1a folded over u64 words across kChecksumLanes interleaved lanes
/// (word i -> lane i % lanes), lane results combined with one final FNV
/// pass. `bytes` need not be 8-aligned (words are assembled with memcpy);
/// `num_bytes` must be a multiple of 8. Still detects any flipped byte.
[[nodiscard]] inline std::uint64_t fnv1a_words(const void* bytes,
                                               std::uint64_t num_bytes) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  std::uint64_t lanes[kChecksumLanes];
  for (std::uint32_t l = 0; l < kChecksumLanes; ++l) {
    lanes[l] = kFnvBasis + l * kChecksumLaneSalt;
  }
  std::uint64_t i = 0;
  constexpr std::uint64_t kBlock = kChecksumLanes * 8;
  for (; i + kBlock <= num_bytes; i += kBlock) {
    std::uint64_t words[kChecksumLanes];
    std::memcpy(words, p + i, kBlock);
    for (std::uint32_t l = 0; l < kChecksumLanes; ++l) {
      lanes[l] = (lanes[l] ^ words[l]) * kFnvPrime;
    }
  }
  // Tail words continue the round-robin (block loop leaves word index a
  // multiple of kChecksumLanes, so the tail starts at lane 0).
  for (std::uint32_t l = 0; i + 8 <= num_bytes; i += 8, ++l) {
    std::uint64_t word;
    std::memcpy(&word, p + i, 8);
    lanes[l] = (lanes[l] ^ word) * kFnvPrime;
  }
  std::uint64_t h = kFnvBasis;
  for (std::uint32_t l = 0; l < kChecksumLanes; ++l) {
    h ^= lanes[l];
    h *= kFnvPrime;
  }
  return h;
}

/// Streaming word folder for producers whose sections live in separate
/// buffers: feeds bytes (buffering sub-word tails) and zero padding so the
/// result equals fnv1a_words over the concatenated padded stream the reader
/// maps. finish() requires a word-aligned total — the layout guarantees it.
class ChecksumStream {
 public:
  ChecksumStream() {
    for (std::uint32_t l = 0; l < kChecksumLanes; ++l) {
      lanes_[l] = kFnvBasis + l * kChecksumLaneSalt;
    }
  }

  void feed(const void* bytes, std::uint64_t num_bytes) {
    const auto* p = static_cast<const unsigned char*>(bytes);
    // Word-aligned fast path once the partial buffer is empty: fold whole
    // words straight from the caller's buffer, round-robin over the lanes.
    if (partial_bytes_ == 0) {
      std::uint64_t i = 0;
      for (; i + 8 <= num_bytes; i += 8) {
        std::uint64_t word;
        std::memcpy(&word, p + i, 8);
        fold(word);
      }
      p += i;
      num_bytes -= i;
    }
    while (num_bytes > 0) {
      const std::uint64_t take =
          num_bytes < 8 - partial_bytes_ ? num_bytes : 8 - partial_bytes_;
      std::memcpy(reinterpret_cast<unsigned char*>(&partial_) + partial_bytes_,
                  p, take);
      partial_bytes_ += take;
      p += take;
      num_bytes -= take;
      if (partial_bytes_ == 8) {
        fold(partial_);
        partial_ = 0;
        partial_bytes_ = 0;
      }
    }
  }

  void feed_zeros(std::uint64_t num_bytes) {
    static constexpr unsigned char kZeros[64] = {};
    while (num_bytes > 0) {
      const std::uint64_t take = num_bytes < 64 ? num_bytes : 64;
      feed(kZeros, take);
      num_bytes -= take;
    }
  }

  [[nodiscard]] std::uint64_t finish() const {
    std::uint64_t h = kFnvBasis;
    for (std::uint32_t l = 0; l < kChecksumLanes; ++l) {
      h ^= lanes_[l];
      h *= kFnvPrime;
    }
    return h;
  }

 private:
  void fold(std::uint64_t word) {
    lanes_[lane_] = (lanes_[lane_] ^ word) * kFnvPrime;
    lane_ = (lane_ + 1) % kChecksumLanes;
  }

  std::uint64_t lanes_[kChecksumLanes];
  std::uint32_t lane_ = 0;
  std::uint64_t partial_ = 0;
  std::uint64_t partial_bytes_ = 0;
};

/// Self-checksum of a header: FNV words over everything before the trailing
/// header_checksum field.
[[nodiscard]] inline std::uint64_t header_checksum_of(
    const ArtifactHeader& header) {
  return fnv1a_words(&header, sizeof(ArtifactHeader) - sizeof(std::uint64_t));
}

[[nodiscard]] inline std::uint64_t align_up(std::uint64_t value,
                                            std::uint64_t align) {
  return (value + align - 1) / align * align;
}

}  // namespace trico::store
