#include "store/store.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "graph/io.hpp"
#include "store/ingest.hpp"
#include "util/io.hpp"

namespace trico::store {

namespace fs = std::filesystem;

namespace {

std::string key_name(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(key));
  return std::string(buf);
}

std::string temp_name(const std::string& final_path) {
  // pid disambiguates across processes sharing one store root, the counter
  // across threads publishing the same key inside one process.
  static std::atomic<std::uint64_t> seq{0};
  return final_path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1));
}

/// rename + best-effort directory fsync, so the new name itself is durable.
bool rename_into_place(const std::string& from, const std::string& to,
                       const std::string& dir) {
  if (::rename(from.c_str(), to.c_str()) != 0) return false;
  const int dfd = util::io::open_retry(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    util::io::close_quiet(dfd);
  }
  return true;
}

}  // namespace

std::uint64_t edge_list_key(const EdgeList& edges) {
  // Multi-lane word-folded FNV-1a over the raw slot bytes (Edge is 8 bytes,
  // so the slot array is word-exact), with the vertex count mixed in last —
  // the catalog's content hash, so catalog slots and on-disk artifacts
  // share an address. Keying a multi-GB graph must not dominate the warm
  // restart the store exists to accelerate; the byte-wise fold it replaces
  // was ~20x slower than the artifact open it gated.
  const auto slots = edges.edges();
  std::uint64_t h = fnv1a_words(slots.data(), slots.size_bytes());
  h ^= static_cast<std::uint64_t>(edges.num_vertices());
  h *= kFnvPrime;
  return h;
}

ArtifactStore::ArtifactStore(StoreOptions options)
    : options_(std::move(options)) {
  stats_.enabled = enabled();
  if (!enabled()) return;
  std::error_code ec;
  fs::create_directories(options_.root, ec);
  // Sweep temp files from crashed publishers: they were never visible to
  // readers, and any live publisher in this process will use fresh names.
  for (fs::directory_iterator it(options_.root, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.find(".tmp.") != std::string::npos) {
      std::error_code rm_ec;
      fs::remove(it->path(), rm_ec);
    }
  }
}

std::string ArtifactStore::prepared_path(std::uint64_t key) const {
  return options_.root + "/" + key_name(key) + ".tpg";
}

std::string ArtifactStore::edges_path(std::uint64_t key) const {
  return options_.root + "/" + key_name(key) + ".trico";
}

void ArtifactStore::quarantine(const std::string& path) const {
  // Move the bad file aside (keeping it for post-mortem) so the next
  // publish of this key starts clean and the next find doesn't re-open it.
  std::error_code ec;
  fs::rename(path, path + ".corrupt", ec);
  if (ec) fs::remove(path, ec);
}

std::shared_ptr<const MappedPreparedGraph> ArtifactStore::find(
    std::uint64_t key) {
  if (!enabled()) return nullptr;
  std::unique_lock lock(mutex_);
  for (;;) {
    auto it = residents_.find(key);
    if (it == residents_.end()) break;
    if (it->second.opening) {
      // Another thread is opening this artifact: wait for its verdict
      // rather than double-mapping and double-verifying (stampede guard).
      open_cv_.wait(lock);
      continue;
    }
    ++stats_.hits;
    it->second.tick = ++tick_;
    return it->second.mapped;
  }
  residents_[key] = Resident{nullptr, ++tick_, true};
  lock.unlock();

  std::shared_ptr<const MappedPreparedGraph> mapped;
  StoreErrorKind failure = StoreErrorKind::kNotFound;
  const std::string path = prepared_path(key);
  try {
    OpenOptions open_options;
    open_options.verify_checksum = options_.verify_checksums;
    open_options.expected_key = key;
    mapped = open_prepared_artifact(path, open_options);
    if (options_.prefault) mapped->advise_will_need();
  } catch (const StoreError& e) {
    failure = e.kind();
    if (failure != StoreErrorKind::kNotFound) quarantine(path);
  }

  lock.lock();
  residents_.erase(key);
  if (mapped != nullptr) {
    ++stats_.hits;
    insert_resident_locked(key, mapped);
  } else if (failure == StoreErrorKind::kNotFound) {
    ++stats_.misses;
  } else {
    ++stats_.corrupt_rejects;
    ++stats_.misses;
  }
  open_cv_.notify_all();
  return mapped;
}

std::shared_ptr<const MappedPreparedGraph> ArtifactStore::publish(
    std::uint64_t key, const cpu::PreparedGraph& prepared,
    const GraphStats& stats) {
  if (!enabled()) return nullptr;
  const std::string final_path = prepared_path(key);
  const std::string tmp_path = temp_name(final_path);
  try {
    write_prepared_artifact(tmp_path, key, prepared, stats);
  } catch (const StoreError&) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    const std::lock_guard lock(mutex_);
    ++stats_.publish_failures;
    return nullptr;
  }
  if (!rename_into_place(tmp_path, final_path, options_.root)) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    const std::lock_guard lock(mutex_);
    ++stats_.publish_failures;
    return nullptr;
  }
  std::shared_ptr<const MappedPreparedGraph> mapped;
  try {
    // Read back through the normal open path: verifies the round trip and
    // seeds the resident LRU so the next find is a RAM hit.
    OpenOptions open_options;
    open_options.verify_checksum = options_.verify_checksums;
    open_options.expected_key = key;
    mapped = open_prepared_artifact(final_path, open_options);
  } catch (const StoreError&) {
    quarantine(final_path);
    const std::lock_guard lock(mutex_);
    ++stats_.publish_failures;
    return nullptr;
  }
  const std::lock_guard lock(mutex_);
  ++stats_.publishes;
  auto it = residents_.find(key);
  if (it == residents_.end() || !it->second.opening) {
    // Replace any stale resident (concurrent publishers: last wins; the
    // content under one key is identical by construction). Never clobber an
    // in-flight opening slot — its owner will erase it.
    if (it != residents_.end()) {
      stats_.bytes_mapped -= it->second.mapped->mapped_bytes();
      --stats_.mapped_artifacts;
      residents_.erase(it);
    }
    insert_resident_locked(key, mapped);
  }
  return mapped;
}

void ArtifactStore::insert_resident_locked(
    std::uint64_t key, std::shared_ptr<const MappedPreparedGraph> mapped) {
  stats_.bytes_mapped += mapped->mapped_bytes();
  ++stats_.mapped_artifacts;
  residents_[key] = Resident{std::move(mapped), ++tick_, false};
  evict_to_budget_locked();
}

void ArtifactStore::evict_to_budget_locked() {
  while (stats_.bytes_mapped > options_.mapped_byte_budget) {
    auto victim = residents_.end();
    for (auto it = residents_.begin(); it != residents_.end(); ++it) {
      if (it->second.opening || it->second.mapped == nullptr) continue;
      // use_count > 1 means a counting run (or the catalog) still holds the
      // mapping — skip it; the shared_ptr keeps it valid regardless.
      if (it->second.mapped.use_count() > 1) continue;
      if (victim == residents_.end() || it->second.tick < victim->second.tick) {
        victim = it;
      }
    }
    if (victim == residents_.end()) return;  // everything pinned
    victim->second.mapped->advise_dont_need();
    stats_.bytes_mapped -= victim->second.mapped->mapped_bytes();
    --stats_.mapped_artifacts;
    ++stats_.evictions;
    residents_.erase(victim);
  }
}

bool ArtifactStore::publish_edges(std::uint64_t key, const EdgeList& edges) {
  if (!enabled()) return false;
  const std::string final_path = edges_path(key);
  const std::string tmp_path = temp_name(final_path);
  try {
    io::write_binary_file(tmp_path, edges);
  } catch (const io::IoError&) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    const std::lock_guard lock(mutex_);
    ++stats_.publish_failures;
    return false;
  }
  // write_binary_file goes through an ofstream; re-open to fsync the bytes
  // before the rename makes them reachable.
  const int fd = util::io::open_retry(tmp_path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    util::io::close_quiet(fd);
  }
  if (!rename_into_place(tmp_path, final_path, options_.root)) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    const std::lock_guard lock(mutex_);
    ++stats_.publish_failures;
    return false;
  }
  const std::lock_guard lock(mutex_);
  ++stats_.edge_publishes;
  return true;
}

std::optional<EdgeList> ArtifactStore::load_edges(std::uint64_t key,
                                                  prim::ThreadPool& pool) {
  if (!enabled()) return std::nullopt;
  const std::string path = edges_path(key);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    const std::lock_guard lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
  }
  try {
    EdgeList edges = read_edges_parallel(path, pool);
    const std::lock_guard lock(mutex_);
    ++stats_.edge_hits;
    return edges;
  } catch (const io::IoError&) {
    quarantine(path);
    const std::lock_guard lock(mutex_);
    ++stats_.corrupt_rejects;
    ++stats_.misses;
    return std::nullopt;
  }
}

StoreStats ArtifactStore::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace trico::store
