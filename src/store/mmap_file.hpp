// RAII read-only mmap of a whole file, plus the madvise hooks the store's
// LRU uses: DONTNEED on eviction drops the artifact's resident pages without
// invalidating the mapping, WILLNEED prewarms it ahead of a counting run.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace trico::store {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Throws StoreError(kNotFound) when the file does
  /// not exist, StoreError(kIo) on any other open/stat/mmap failure. An
  /// empty file yields a valid object with size() == 0 and no mapping.
  /// `populate` requests MAP_POPULATE — the kernel builds the page tables
  /// up front in one batch instead of ~size/4K soft faults during the first
  /// read pass (the checksum verify); falls back to a plain mapping where
  /// the flag is unsupported.
  [[nodiscard]] static MmapFile open_readonly(const std::string& path,
                                              bool populate = false);

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] bool valid() const { return data_ != nullptr; }

  /// madvise(MADV_DONTNEED): release resident pages (they reload from disk
  /// on next touch). Advisory — failures are ignored.
  void advise_dont_need() const noexcept;
  /// madvise(MADV_WILLNEED): ask the kernel to prefetch the whole mapping.
  void advise_will_need() const noexcept;

 private:
  std::byte* data_ = nullptr;
  std::uint64_t size_ = 0;
};

}  // namespace trico::store
