#include "store/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "store/format.hpp"
#include "util/io.hpp"

namespace trico::store {

MmapFile::~MmapFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MmapFile MmapFile::open_readonly(const std::string& path, bool populate) {
  const int fd = util::io::open_retry(path.c_str(), O_RDONLY);
  if (fd < 0) {
    const int err = errno;
    throw StoreError(err == ENOENT ? StoreErrorKind::kNotFound
                                   : StoreErrorKind::kIo,
                     "open " + path + ": " + std::strerror(err));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    util::io::close_quiet(fd);
    throw StoreError(StoreErrorKind::kIo,
                     "fstat " + path + ": " + std::strerror(err));
  }
  MmapFile file;
  file.size_ = static_cast<std::uint64_t>(st.st_size);
  if (file.size_ > 0) {
    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    if (populate) flags |= MAP_POPULATE;
#else
    (void)populate;
#endif
    void* mapped = ::mmap(nullptr, file.size_, PROT_READ, flags, fd, 0);
#ifdef MAP_POPULATE
    if (mapped == MAP_FAILED && populate) {
      // Some filesystems reject MAP_POPULATE; the mapping itself is what
      // matters, the prefault is an optimization.
      mapped = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    }
#endif
    if (mapped == MAP_FAILED) {
      const int err = errno;
      util::io::close_quiet(fd);
      file.size_ = 0;
      throw StoreError(StoreErrorKind::kIo,
                       "mmap " + path + ": " + std::strerror(err));
    }
    file.data_ = static_cast<std::byte*>(mapped);
  }
  // The mapping outlives the fd; closing now keeps the store's fd footprint
  // at zero per resident artifact.
  util::io::close_quiet(fd);
  return file;
}

void MmapFile::advise_dont_need() const noexcept {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_DONTNEED);
}

void MmapFile::advise_will_need() const noexcept {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_WILLNEED);
}

}  // namespace trico::store
