// Rendezvous (highest-random-weight) hashing for graph-affinity routing.
//
// Every (content key, worker slot) pair gets a deterministic pseudo-random
// score; a key's preference order is the slots sorted by descending score.
// The property the coordinator buys with this: when a worker leaves (or
// rejoins after a crash), only the keys whose *top-ranked* slot was the
// departed worker move — every other key keeps its placement, so artifact
// and page caches stay hot through membership churn. Slot identity is the
// supervisor's slot index (stable across respawns of the process behind
// it), so a respawned worker inherits exactly the keys it owned before —
// with a shared artifact store, it warms straight back up from disk.

#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace trico::cluster {

/// splitmix64 finalizer — full-avalanche 64-bit mix, the same construction
/// the engine's deterministic generators use.
[[nodiscard]] inline std::uint64_t hrw_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Score of slot `slot` for key `key`. The slot is mixed before combining
/// so slot 0 (mix of zero) is not a fixed point of the key.
[[nodiscard]] inline std::uint64_t hrw_score(std::uint64_t key,
                                             std::size_t slot) {
  return hrw_mix(key ^ hrw_mix(static_cast<std::uint64_t>(slot) + 1));
}

/// Ranks `candidates` (slot indices) by descending score for `key`; ties
/// break by ascending slot so the order is total and deterministic.
[[nodiscard]] inline std::vector<std::size_t> hrw_rank(
    std::uint64_t key, std::vector<std::size_t> candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [key](std::size_t a, std::size_t b) {
              const std::uint64_t sa = hrw_score(key, a);
              const std::uint64_t sb = hrw_score(key, b);
              if (sa != sb) return sa > sb;
              return a < b;
            });
  return candidates;
}

/// Convenience: rank the full slot range [0, num_slots).
[[nodiscard]] inline std::vector<std::size_t> hrw_rank_all(
    std::uint64_t key, std::size_t num_slots) {
  std::vector<std::size_t> slots(num_slots);
  std::iota(slots.begin(), slots.end(), std::size_t{0});
  return hrw_rank(key, std::move(slots));
}

}  // namespace trico::cluster
