#include "cluster/ha/lease.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <time.h>
#include <unistd.h>

#include "store/format.hpp"
#include "util/io.hpp"

namespace trico::cluster::ha {

namespace {

/// flock(2), retried on EINTR (the CLI's signal handlers must not surface
/// as spurious lease failures).
int flock_retry(int fd, int op) {
  int rc;
  do {
    rc = ::flock(fd, op);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

/// Scoped flock: every lease transition is a short lock-read-write-unlock.
class FileLock {
 public:
  FileLock(int fd, int op) : fd_(fd) {
    if (flock_retry(fd_, op) < 0) {
      throw LeaseError(std::string("flock: ") + std::strerror(errno));
    }
  }
  ~FileLock() { ::flock(fd_, LOCK_UN); }

 private:
  int fd_;
};

struct RawRecord {
  std::uint64_t magic = kLeaseMagic;
  std::uint32_t version = kLeaseVersion;
  std::uint16_t port = 0;
  std::uint16_t pad = 0;
  std::uint64_t epoch = 0;
  std::uint64_t owner = 0;
  std::uint64_t expires_at_ms = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(RawRecord) == kLeaseRecordBytes);

std::uint64_t record_checksum(const RawRecord& raw) {
  return store::fnv1a_words(&raw, sizeof(RawRecord) - sizeof(std::uint64_t));
}

/// Reads the record at offset 0. Outcomes: no record (empty/short file),
/// a valid record, or a corrupt one — for corrupt records with an intact
/// magic the epoch field is still surfaced so a rewrite can preserve
/// monotonicity (losing the epoch would break fencing; losing anything
/// else only costs one failover round).
enum class ReadOutcome { kAbsent, kValid, kCorrupt };

ReadOutcome read_locked(int fd, RawRecord& raw, std::uint64_t& epoch_floor) {
  const util::io::IoResult r =
      util::io::pread_full(fd, &raw, sizeof(RawRecord), 0);
  if (r.status != util::io::IoStatus::kOk) {
    return ReadOutcome::kAbsent;
  }
  if (raw.magic != kLeaseMagic || raw.version != kLeaseVersion) {
    return ReadOutcome::kCorrupt;
  }
  if (record_checksum(raw) != raw.checksum) {
    epoch_floor = std::max(epoch_floor, raw.epoch);
    return ReadOutcome::kCorrupt;
  }
  epoch_floor = std::max(epoch_floor, raw.epoch);
  return ReadOutcome::kValid;
}

void write_locked(int fd, RawRecord raw, const std::string& path) {
  raw.checksum = record_checksum(raw);
  const util::io::IoResult w =
      util::io::write_full(fd, &raw, sizeof(RawRecord));
  if (w.status != util::io::IoStatus::kOk) {
    throw LeaseError("write " + path + ": " + std::strerror(w.error));
  }
  if (::fsync(fd) < 0) {
    throw LeaseError("fsync " + path + ": " + std::strerror(errno));
  }
}

LeaseRecord to_record(const RawRecord& raw) {
  LeaseRecord record;
  record.epoch = raw.epoch;
  record.owner = raw.owner;
  record.port = raw.port;
  record.expires_at_ms = raw.expires_at_ms;
  return record;
}

}  // namespace

std::uint64_t LeaseFile::now_ms() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

LeaseFile::LeaseFile(LeaseOptions options) : options_(std::move(options)) {
  fd_ = ::open(options_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw LeaseError("open " + options_.path + ": " + std::strerror(errno));
  }
}

LeaseFile::~LeaseFile() {
  if (fd_ >= 0) util::io::close_quiet(fd_);
}

LeaseFile::Acquire LeaseFile::try_acquire(std::uint64_t owner,
                                          std::uint16_t port) {
  FileLock lock(fd_, LOCK_EX);
  RawRecord raw;
  std::uint64_t epoch_floor = 0;
  const ReadOutcome outcome = read_locked(fd_, raw, epoch_floor);
  const std::uint64_t now = now_ms();

  if (outcome == ReadOutcome::kValid && raw.expires_at_ms > now &&
      raw.owner != owner) {
    Acquire result;
    result.current = to_record(raw);
    return result;
  }

  // Free, expired, corrupt, or already ours: take it at the next epoch.
  // Pwrite a fresh record at offset 0 so a partially written old record
  // cannot mix with the new one.
  RawRecord next;
  next.port = port;
  next.epoch = epoch_floor + 1;
  next.owner = owner;
  next.expires_at_ms =
      now + static_cast<std::uint64_t>(options_.ttl_ms);
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    throw LeaseError("lseek " + options_.path + ": " + std::strerror(errno));
  }
  write_locked(fd_, next, options_.path);

  Acquire result;
  result.acquired = true;
  result.epoch = next.epoch;
  result.current = to_record(next);
  return result;
}

bool LeaseFile::renew(std::uint64_t owner, std::uint64_t epoch,
                      std::uint16_t port) {
  FileLock lock(fd_, LOCK_EX);
  RawRecord raw;
  std::uint64_t epoch_floor = 0;
  const ReadOutcome outcome = read_locked(fd_, raw, epoch_floor);
  if (outcome != ReadOutcome::kValid || raw.owner != owner ||
      raw.epoch != epoch) {
    return false;  // stolen (or corrupted out from under us): stop leading
  }
  raw.port = port;
  raw.expires_at_ms =
      now_ms() + static_cast<std::uint64_t>(options_.ttl_ms);
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    throw LeaseError("lseek " + options_.path + ": " + std::strerror(errno));
  }
  write_locked(fd_, raw, options_.path);
  return true;
}

void LeaseFile::release(std::uint64_t owner, std::uint64_t epoch) {
  FileLock lock(fd_, LOCK_EX);
  RawRecord raw;
  std::uint64_t epoch_floor = 0;
  const ReadOutcome outcome = read_locked(fd_, raw, epoch_floor);
  if (outcome != ReadOutcome::kValid || raw.owner != owner ||
      raw.epoch != epoch) {
    return;
  }
  raw.expires_at_ms = 0;  // expired in place; epoch stays for monotonicity
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    return;
  }
  write_locked(fd_, raw, options_.path);
}

std::optional<LeaseRecord> LeaseFile::read() {
  FileLock lock(fd_, LOCK_SH);
  RawRecord raw;
  std::uint64_t epoch_floor = 0;
  if (read_locked(fd_, raw, epoch_floor) != ReadOutcome::kValid) {
    return std::nullopt;
  }
  return to_record(raw);
}

std::optional<LeaseRecord> LeaseFile::peek(const std::string& path) {
  const int fd = util::io::open_retry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return std::nullopt;
  std::optional<LeaseRecord> result;
  if (flock_retry(fd, LOCK_SH) == 0) {
    RawRecord raw;
    std::uint64_t epoch_floor = 0;
    if (read_locked(fd, raw, epoch_floor) == ReadOutcome::kValid) {
      result = to_record(raw);
    }
    ::flock(fd, LOCK_UN);
  }
  util::io::close_quiet(fd);
  return result;
}

}  // namespace trico::cluster::ha
