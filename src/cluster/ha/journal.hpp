// cluster::ha::Journal — the durable exactly-once log behind coordinator
// failover.
//
// An append-only, checksummed, fsync-batched log of
// (client_id, request_id) -> encoded-Response records, implementing
// transport::ResponseJournal. The active coordinator's Server records every
// completed response here *before* the first send; the standby tails the
// same directory to keep a warm replay index; after a promotion, a client
// retry of a request the dead active had already completed replays the
// recorded bytes instead of recounting — exactly-once across coordinator
// death.
//
// On-disk layout: a directory of segments named `seg-<seq>-e<epoch>.trj`
// (sealed) and `seg-<seq>-e<epoch>.open` (the writer's current segment).
// Sequence numbers are monotone across epochs; the epoch in the name keeps
// two writers (the fenced old leader and the new one) on *different* files,
// so a deposed coordinator flushing its last in-flight completions can
// never interleave bytes into the new leader's segment. Segment lifecycle
// is atomic-rename throughout: a new segment is created as `journal.tmp`
// and renamed into its `.open` name; sealing renames `.open` -> `.trj`.
//
// Each record (store-tier FNV framing, 8-byte-aligned):
//
//   offset  size  field
//        0     4  magic         "TRJR"
//        4     4  payload_size  encoded Response bytes (un-padded)
//        8     8  client_id
//       16     8  request_id
//       24     8  checksum      fnv1a_words over bytes [0,24) + padded payload
//       32     *  payload, zero-padded to 8 bytes
//
// Recovery discipline (lenient prefix): a scan parses records until the
// first torn/invalid one, indexes the valid prefix, and — when becoming
// the writer — copies the unreadable tail into a `.quarantine` side file
// for forensics. The file is never truncated: a fenced old writer may
// still hold an fd, and its post-seal appends are simply ignored (they
// would be duplicate (client, request) pairs, and the first record wins).
// Duplicates across segments are counted, not trusted: the *first* record
// in scan order is the one replays serve.
//
// Durability: record() blocks until its bytes are fsynced. A dedicated
// flusher thread group-commits — every append queued while one fsync is in
// flight rides the next — so a storm of completions costs a handful of
// fsyncs, not one each. The index is published only after the fsync, so a
// record that can be replayed is always durable.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "transport/server.hpp"

namespace trico::cluster::ha {

inline constexpr std::uint32_t kJournalRecordMagic = 0x524a5254u;  // "TRJR"
inline constexpr std::size_t kJournalRecordHeaderBytes = 32;

struct JournalOptions {
  std::string dir;
  /// Rotation threshold: an append that would grow the open segment past
  /// this seals it and opens the next.
  std::uint64_t max_segment_bytes = 8ull << 20;
};

struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t append_bytes = 0;
  std::uint64_t fsyncs = 0;            ///< group commits (<= appends)
  std::uint64_t rotations = 0;
  std::uint64_t replays = 0;           ///< lookup hits
  std::uint64_t recovered_records = 0; ///< records indexed from disk scans
  std::uint64_t duplicate_records = 0; ///< later copies ignored (first wins)
  std::uint64_t quarantined_bytes = 0; ///< torn tails copied aside
  std::uint64_t segments = 0;          ///< files known to the index
};

class JournalError : public std::runtime_error {
 public:
  explicit JournalError(const std::string& what) : std::runtime_error(what) {}
};

class Journal : public transport::ResponseJournal {
 public:
  explicit Journal(JournalOptions options);
  ~Journal() override;

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Standby entry point: scan the directory and build the replay index.
  /// Torn tails are remembered, not quarantined — the writer may still be
  /// mid-append and the record may complete by the next refresh().
  void open();

  /// Incremental tail: picks up new segments and new records in known
  /// ones. Cheap when nothing changed.
  void refresh();

  /// Become the writer under `epoch` (a promotion, or first leadership):
  /// final refresh, quarantine any still-torn tails, seal orphaned `.open`
  /// segments, open a fresh `.open` segment, start the flusher.
  void start_writer(std::uint64_t epoch);

  /// transport::ResponseJournal: durable append (blocks until fsynced).
  /// Throws JournalError when not in writer mode or on an io failure.
  void record(std::uint64_t client_id, std::uint64_t request_id,
              const std::vector<std::uint8_t>& payload) override;

  /// transport::ResponseJournal: replay lookup (pread + checksum verify).
  bool lookup(std::uint64_t client_id, std::uint64_t request_id,
              std::vector<std::uint8_t>& out) override;

  /// Stops the flusher (final fsync included). Idempotent; the destructor
  /// calls it.
  void close();

  [[nodiscard]] JournalStats stats() const;
  /// Index size (distinct (client, request) pairs).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool writing() const;

 private:
  struct Location {
    std::uint64_t seq = 0;       ///< owning segment
    std::uint64_t offset = 0;    ///< of the record header
    std::uint32_t payload_bytes = 0;
  };

  /// One known segment file.
  struct Segment {
    std::uint64_t seq = 0;
    std::uint64_t epoch = 0;
    std::string name;            ///< current basename (.open or .trj)
    std::uint64_t parsed = 0;    ///< bytes of valid prefix indexed so far
    int fd = -1;                 ///< cached read (or write) fd
  };

  std::string path_of_locked(const Segment& segment) const;
  Segment* find_segment_locked(std::uint64_t seq);
  void scan_dir_locked();
  void parse_segment_locked(Segment& segment, bool quarantine_tail);
  void index_locked(std::uint64_t client_id, std::uint64_t request_id,
                    Location location);
  void rotate_locked();
  void open_fresh_segment_locked();
  void fsync_dir_locked() const;
  void flusher_loop();

  JournalOptions options_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Segment> segments_;  ///< seq -> file (scan order)
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, Location>>
      index_;
  std::size_t index_size_ = 0;
  JournalStats stats_{};

  // Writer state.
  bool writing_ = false;
  std::uint64_t write_epoch_ = 0;
  std::uint64_t write_seq_ = 0;     ///< seq of the open segment
  std::uint64_t write_offset_ = 0;  ///< durable + pending bytes in it
  std::vector<std::uint8_t> pending_;          ///< bytes awaiting fsync
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending_keys_;
  std::vector<Location> pending_locations_;
  std::uint64_t append_seq_ = 0;    ///< appends submitted
  std::uint64_t durable_seq_ = 0;   ///< appends fsynced
  std::condition_variable flusher_cv_;   ///< wakes the flusher
  std::condition_variable durable_cv_;   ///< wakes blocked record() calls
  bool stop_flusher_ = false;
  std::thread flusher_;
};

}  // namespace trico::cluster::ha
