#include "cluster/ha/node.hpp"

#include <algorithm>
#include <chrono>

#include <unistd.h>

namespace trico::cluster::ha {

namespace {

/// Owner ids must differ between the two nodes of a pair *and* between
/// successive incarnations in one process (tests run several nodes).
std::uint64_t next_owner_id() {
  static std::atomic<std::uint64_t> counter{0};
  return (static_cast<std::uint64_t>(::getpid()) << 16) |
         (counter.fetch_add(1, std::memory_order_relaxed) & 0xffffu);
}

std::chrono::milliseconds ms(double value) {
  return std::chrono::milliseconds(
      std::max<long long>(1, static_cast<long long>(value)));
}

}  // namespace

HaCoordinator::HaCoordinator(HaNodeOptions options)
    : options_(std::move(options)),
      epoch_cell_(std::make_shared<std::atomic<std::uint64_t>>(0)),
      owner_(next_owner_id()) {
  options_.coordinator.lease_epoch = epoch_cell_;
  coordinator_ = std::make_unique<Coordinator>(options_.coordinator);
  LeaseOptions lease_options;
  lease_options.path = options_.lease_path;
  lease_options.ttl_ms = options_.lease_ttl_ms;
  lease_ = std::make_unique<LeaseFile>(std::move(lease_options));
  JournalOptions journal_options;
  journal_options.dir = options_.journal_dir;
  journal_ = std::make_unique<Journal>(std::move(journal_options));
}

HaCoordinator::~HaCoordinator() { stop(); }

void HaCoordinator::start() {
  {
    std::lock_guard lock(mutex_);
    if (started_) return;
    started_ = true;
  }
  // Warm pool first: the standby's workers are up before it can ever win
  // the lease, so a promotion never waits on worker handshakes.
  coordinator_->start();
  journal_->open();
  loop_ = std::thread([this] { lease_loop(); });
}

void HaCoordinator::stop() {
  bool was_leading = false;
  std::uint64_t held_epoch = 0;
  {
    std::lock_guard lock(mutex_);
    if (!started_ || stop_) {
      if (!started_) return;
    }
    stop_ = true;
    was_leading = leading_;
    held_epoch = epoch_cell_->load(std::memory_order_acquire);
  }
  cv_.notify_all();
  if (loop_.joinable()) loop_.join();
  if (was_leading) {
    try {
      lease_->release(owner_, held_epoch);
    } catch (const LeaseError&) {
      // Best effort: the TTL expires it anyway.
    }
  }
  journal_->close();
  coordinator_->stop();
}

void HaCoordinator::set_advertised_port(std::uint16_t port) {
  advertised_port_.store(port, std::memory_order_release);
}

transport::LeaderView HaCoordinator::leader_view() {
  transport::LeaderView view;
  {
    std::lock_guard lock(mutex_);
    if (leading_) {
      view.leading = true;
      view.epoch = epoch_cell_->load(std::memory_order_acquire);
      return view;
    }
  }
  view.leading = false;
  if (const std::optional<LeaseRecord> record = lease_->read();
      record.has_value() && !record->expired(LeaseFile::now_ms())) {
    view.epoch = record->epoch;
    view.leader_host = options_.advertised_host;
    view.leader_port = record->port;
  }
  return view;
}

service::Ticket HaCoordinator::submit(service::Request request) {
  return coordinator_->submit(std::move(request));
}

std::string HaCoordinator::metrics_text() { return metrics().to_string(); }

service::MetricsSnapshot HaCoordinator::metrics() const {
  service::MetricsSnapshot snapshot = coordinator_->metrics();
  const HaStats ha = stats();
  snapshot.ha_enabled = true;
  snapshot.ha_leading = ha.leading;
  snapshot.ha_epoch = ha.epoch;
  snapshot.ha_promotions = ha.promotions;
  snapshot.ha_demotions = ha.demotions;
  snapshot.journal_appends = ha.journal.appends;
  snapshot.journal_bytes = ha.journal.append_bytes;
  snapshot.journal_replays = ha.journal.replays;
  snapshot.journal_recovered = ha.journal.recovered_records;
  snapshot.journal_quarantined_bytes = ha.journal.quarantined_bytes;
  return snapshot;
}

bool HaCoordinator::leading() const {
  std::lock_guard lock(mutex_);
  return leading_;
}

std::uint64_t HaCoordinator::epoch() const {
  return epoch_cell_->load(std::memory_order_acquire);
}

HaStats HaCoordinator::stats() const {
  HaStats stats;
  {
    std::lock_guard lock(mutex_);
    stats.leading = leading_;
    stats.promotions = promotions_;
    stats.demotions = demotions_;
  }
  stats.epoch = stats.leading ? epoch_cell_->load(std::memory_order_acquire)
                              : 0;
  stats.journal = journal_->stats();
  return stats;
}

bool HaCoordinator::wait_leading(double timeout_ms) {
  std::unique_lock lock(mutex_);
  cv_.wait_for(lock, ms(timeout_ms), [&] { return leading_ || stop_; });
  return leading_;
}

void HaCoordinator::pause_lease_for_test() {
  std::lock_guard lock(mutex_);
  paused_ = true;
}

void HaCoordinator::resume_lease_for_test() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void HaCoordinator::promote_locked(std::uint64_t new_epoch) {
  // Become the journal writer *before* publishing the epoch: once the
  // fronting server passes the leadership gate, replay lookups and records
  // must already work. A re-promotion closes the previous writer first.
  if (journal_->writing()) journal_->close();
  journal_->start_writer(new_epoch);
  epoch_cell_->store(new_epoch, std::memory_order_release);
  leading_ = true;
  ++promotions_;
  cv_.notify_all();
}

void HaCoordinator::lease_loop() {
  const double ttl = options_.lease_ttl_ms;
  const auto renew_interval = ms(ttl / 3);
  const auto poll_interval = ms(ttl / 2);

  std::unique_lock lock(mutex_);
  // A configured standby sits out one full TTL before its first attempt so
  // it cannot race a healthy active that simply has not renewed yet.
  std::uint64_t not_before =
      options_.standby ? LeaseFile::now_ms() +
                             static_cast<std::uint64_t>(ttl)
                       : 0;

  while (!stop_) {
    if (paused_) {
      cv_.wait(lock, [&] { return stop_ || !paused_; });
      continue;
    }

    if (leading_) {
      const std::uint64_t my_epoch =
          epoch_cell_->load(std::memory_order_acquire);
      bool renewed = false;
      lock.unlock();
      try {
        renewed = lease_->renew(
            owner_, my_epoch,
            advertised_port_.load(std::memory_order_acquire));
      } catch (const LeaseError&) {
        renewed = false;
      }
      lock.lock();
      if (stop_) break;
      if (!renewed && leading_) {
        // Stolen (we were paused/wedged past the TTL). Demote — but keep
        // stamping the stale epoch so our in-flight frames stay refusable
        // rather than unfenced.
        leading_ = false;
        ++demotions_;
        not_before = LeaseFile::now_ms() + static_cast<std::uint64_t>(ttl);
        cv_.notify_all();
        continue;
      }
      cv_.wait_for(lock, renew_interval, [&] { return stop_ || paused_; });
      continue;
    }

    // Standby: keep the replay index warm, then see whether the lease is
    // takeable.
    lock.unlock();
    try {
      journal_->refresh();
    } catch (const JournalError&) {
      // Transient directory races are retried next poll.
    }
    LeaseFile::Acquire acquire;
    bool attempted = false;
    if (LeaseFile::now_ms() >= not_before) {
      attempted = true;
      try {
        acquire = lease_->try_acquire(
            owner_, advertised_port_.load(std::memory_order_acquire));
      } catch (const LeaseError&) {
        attempted = false;
      }
    }
    lock.lock();
    if (stop_) break;
    if (attempted && acquire.acquired && !leading_) {
      try {
        promote_locked(acquire.epoch);
        continue;
      } catch (const JournalError&) {
        // Could not become the journal writer: surrender the lease so the
        // peer can lead instead of the pair deadlocking on a half-promoted
        // node.
        leading_ = false;
        lock.unlock();
        lease_->release(owner_, acquire.epoch);
        lock.lock();
        if (stop_) break;
      }
    }
    cv_.wait_for(lock, poll_interval, [&] { return stop_ || paused_; });
  }
}

}  // namespace trico::cluster::ha
