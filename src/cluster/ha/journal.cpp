#include "cluster/ha/journal.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "store/format.hpp"
#include "util/io.hpp"

namespace trico::cluster::ha {

namespace {

constexpr std::uint32_t kMaxRecordPayload = 1u << 30;

std::uint64_t align8(std::uint64_t n) { return store::align_up(n, 8); }

/// Parses "seg-<seq>-e<epoch>.trj" / ".open". Returns false for anything
/// else (tmp files, quarantine side files, strangers).
bool parse_segment_name(const std::string& name, std::uint64_t& seq,
                        std::uint64_t& epoch, bool& open) {
  std::uint64_t s = 0;
  std::uint64_t e = 0;
  char suffix[8] = {0};
  if (std::sscanf(name.c_str(), "seg-%" SCNu64 "-e%" SCNu64 ".%5s", &s, &e,
                  suffix) != 3) {
    return false;
  }
  if (std::strcmp(suffix, "trj") == 0) {
    open = false;
  } else if (std::strcmp(suffix, "open") == 0) {
    open = true;
  } else {
    return false;
  }
  seq = s;
  epoch = e;
  return true;
}

std::string segment_name(std::uint64_t seq, std::uint64_t epoch, bool open) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%08" PRIu64 "-e%" PRIu64 ".%s", seq,
                epoch, open ? "open" : "trj");
  return buf;
}

struct RecordHeader {
  std::uint32_t magic = kJournalRecordMagic;
  std::uint32_t payload_bytes = 0;
  std::uint64_t client_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(RecordHeader) == kJournalRecordHeaderBytes);

/// Checksum over the header's first 24 bytes plus the zero-padded payload
/// (everything except the checksum field itself).
std::uint64_t record_checksum(const RecordHeader& header,
                              const std::uint8_t* payload,
                              std::size_t payload_bytes) {
  store::ChecksumStream stream;
  stream.feed(&header, kJournalRecordHeaderBytes - sizeof(std::uint64_t));
  stream.feed(payload, payload_bytes);
  stream.feed_zeros(align8(payload_bytes) - payload_bytes);
  return stream.finish();
}

std::uint64_t file_size_of(int fd) {
  struct stat st {};
  if (::fstat(fd, &st) < 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

}  // namespace

Journal::Journal(JournalOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) {
    throw JournalError("journal directory not set");
  }
  // Create the directory if needed (one level; the parent must exist).
  if (::mkdir(options_.dir.c_str(), 0755) < 0 && errno != EEXIST) {
    throw JournalError("mkdir " + options_.dir + ": " + std::strerror(errno));
  }
}

Journal::~Journal() {
  close();
  std::lock_guard lock(mutex_);
  for (auto& [seq, segment] : segments_) {
    if (segment.fd >= 0) util::io::close_quiet(segment.fd);
  }
}

std::string Journal::path_of_locked(const Segment& segment) const {
  return options_.dir + "/" + segment.name;
}

Journal::Segment* Journal::find_segment_locked(std::uint64_t seq) {
  const auto it = segments_.find(seq);
  return it == segments_.end() ? nullptr : &it->second;
}

void Journal::fsync_dir_locked() const {
  const int fd =
      util::io::open_retry(options_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    util::io::close_quiet(fd);
  }
}

void Journal::scan_dir_locked() {
  DIR* dir = ::opendir(options_.dir.c_str());
  if (dir == nullptr) {
    throw JournalError("opendir " + options_.dir + ": " +
                       std::strerror(errno));
  }
  for (dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    std::uint64_t seq = 0;
    std::uint64_t epoch = 0;
    bool open = false;
    const std::string name = entry->d_name;
    if (!parse_segment_name(name, seq, epoch, open)) continue;
    Segment* known = find_segment_locked(seq);
    if (known == nullptr) {
      Segment segment;
      segment.seq = seq;
      segment.epoch = epoch;
      segment.name = name;
      segments_.emplace(seq, std::move(segment));
    } else if (known->name != name) {
      // Sealed (or renamed) by another process; any cached fd still points
      // at the same inode, only the basename moved.
      known->name = name;
    }
  }
  ::closedir(dir);
  stats_.segments = segments_.size();
}

void Journal::index_locked(std::uint64_t client_id, std::uint64_t request_id,
                           Location location) {
  auto& per_client = index_[client_id];
  const auto [it, inserted] = per_client.emplace(request_id, location);
  (void)it;
  if (inserted) {
    ++index_size_;
  } else {
    // First record wins: a duplicate across a rotation (or from a fenced
    // old writer) is observed, counted, and ignored.
    ++stats_.duplicate_records;
  }
}

void Journal::parse_segment_locked(Segment& segment, bool quarantine_tail) {
  if (segment.fd < 0) {
    std::string path = path_of_locked(segment);
    int fd = util::io::open_retry(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      // The segment may have been sealed under us: try the other suffix.
      const bool was_open = path.size() > 5 &&
                            path.compare(path.size() - 5, 5, ".open") == 0;
      std::string other = was_open
                              ? path.substr(0, path.size() - 5) + ".trj"
                              : path.substr(0, path.size() - 4) + ".open";
      fd = util::io::open_retry(other.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) return;  // gone entirely; skip this round
      segment.name = other.substr(other.rfind('/') + 1);
    }
    segment.fd = fd;
  }

  const std::uint64_t size = file_size_of(segment.fd);
  std::uint64_t offset = segment.parsed;
  std::vector<std::uint8_t> buffer;
  while (offset + kJournalRecordHeaderBytes <= size) {
    RecordHeader header;
    if (util::io::pread_full(segment.fd, &header, sizeof(header), static_cast<off_t>(offset))
            .status != util::io::IoStatus::kOk) {
      break;
    }
    if (header.magic != kJournalRecordMagic ||
        header.payload_bytes > kMaxRecordPayload) {
      break;  // garbage from here on: unrecoverable tail
    }
    const std::uint64_t padded = align8(header.payload_bytes);
    if (offset + kJournalRecordHeaderBytes + padded > size) {
      break;  // torn final record (possibly still being written)
    }
    buffer.resize(padded);
    if (padded > 0 &&
        util::io::pread_full(segment.fd, buffer.data(), padded,
                             static_cast<off_t>(offset +
                                                kJournalRecordHeaderBytes))
                .status != util::io::IoStatus::kOk) {
      break;
    }
    if (record_checksum(header, buffer.data(), header.payload_bytes) !=
        header.checksum) {
      break;  // damaged record: stop at the valid prefix
    }
    Location location;
    location.seq = segment.seq;
    location.offset = offset;
    location.payload_bytes = header.payload_bytes;
    const std::size_t before = index_size_;
    index_locked(header.client_id, header.request_id, location);
    if (index_size_ > before) ++stats_.recovered_records;
    offset += kJournalRecordHeaderBytes + padded;
  }
  segment.parsed = offset;

  if (quarantine_tail && offset < size) {
    // Becoming the writer: the tail can no longer complete (its writer is
    // dead or fenced). Copy it aside for forensics and never re-read it.
    // The segment itself is not truncated — a fenced old writer may still
    // hold an fd into it, and fighting a live writer over the same bytes
    // is how corruption happens.
    const std::uint64_t tail = size - offset;
    std::vector<std::uint8_t> bytes(tail);
    if (util::io::pread_full(segment.fd, bytes.data(), tail,
                             static_cast<off_t>(offset))
            .status == util::io::IoStatus::kOk) {
      const std::string qpath = path_of_locked(segment) + ".quarantine";
      const int qfd = ::open(qpath.c_str(),
                             O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
      if (qfd >= 0) {
        (void)util::io::write_full(qfd, bytes.data(), bytes.size());
        ::fsync(qfd);
        util::io::close_quiet(qfd);
      }
    }
    stats_.quarantined_bytes += tail;
    segment.parsed = size;
  }
}

void Journal::open() {
  std::lock_guard lock(mutex_);
  scan_dir_locked();
  for (auto& [seq, segment] : segments_) {
    parse_segment_locked(segment, /*quarantine_tail=*/false);
  }
}

void Journal::refresh() { open(); }

void Journal::start_writer(std::uint64_t epoch) {
  std::unique_lock lock(mutex_);
  if (writing_) {
    throw JournalError("journal is already in writer mode");
  }
  scan_dir_locked();
  std::uint64_t max_seq = 0;
  for (auto& [seq, segment] : segments_) {
    parse_segment_locked(segment, /*quarantine_tail=*/true);
    max_seq = std::max(max_seq, seq);
    if (segment.name.size() > 5 &&
        segment.name.compare(segment.name.size() - 5, 5, ".open") == 0) {
      // Seal the dead (or fenced) writer's open segment. Atomic rename:
      // its post-seal appends land in the sealed file and are ignored
      // until the next cold recovery decides about them.
      const std::string from = path_of_locked(segment);
      const std::string sealed =
          segment_name(segment.seq, segment.epoch, /*open=*/false);
      if (::rename(from.c_str(), (options_.dir + "/" + sealed).c_str()) ==
          0) {
        segment.name = sealed;
      }
    }
  }
  fsync_dir_locked();

  write_epoch_ = epoch;
  write_seq_ = max_seq + 1;
  open_fresh_segment_locked();
  writing_ = true;
  stop_flusher_ = false;
  flusher_ = std::thread([this] { flusher_loop(); });
}

void Journal::open_fresh_segment_locked() {
  const std::string tmp = options_.dir + "/journal.tmp";
  const int fd =
      ::open(tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw JournalError("open " + tmp + ": " + std::strerror(errno));
  }
  if (::fsync(fd) < 0) {
    util::io::close_quiet(fd);
    throw JournalError("fsync " + tmp + ": " + std::strerror(errno));
  }
  const std::string name = segment_name(write_seq_, write_epoch_, true);
  if (::rename(tmp.c_str(), (options_.dir + "/" + name).c_str()) < 0) {
    util::io::close_quiet(fd);
    throw JournalError("rename " + tmp + ": " + std::strerror(errno));
  }
  fsync_dir_locked();

  Segment segment;
  segment.seq = write_seq_;
  segment.epoch = write_epoch_;
  segment.name = name;
  segment.fd = fd;
  segment.parsed = 0;
  segments_[write_seq_] = std::move(segment);
  stats_.segments = segments_.size();
  write_offset_ = 0;
}

void Journal::rotate_locked() {
  Segment* current = find_segment_locked(write_seq_);
  if (current != nullptr && current->fd >= 0) {
    ::fsync(current->fd);
    const std::string from = path_of_locked(*current);
    const std::string sealed =
        segment_name(current->seq, current->epoch, /*open=*/false);
    if (::rename(from.c_str(), (options_.dir + "/" + sealed).c_str()) == 0) {
      current->name = sealed;
    }
    fsync_dir_locked();
  }
  ++stats_.rotations;
  ++write_seq_;
  open_fresh_segment_locked();
}

void Journal::record(std::uint64_t client_id, std::uint64_t request_id,
                     const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxRecordPayload) {
    throw JournalError("journal record payload too large");
  }
  RecordHeader header;
  header.payload_bytes = static_cast<std::uint32_t>(payload.size());
  header.client_id = client_id;
  header.request_id = request_id;
  header.checksum = record_checksum(header, payload.data(), payload.size());
  const std::uint64_t padded = align8(payload.size());
  const std::uint64_t total = kJournalRecordHeaderBytes + padded;

  std::unique_lock lock(mutex_);
  if (!writing_) {
    throw JournalError("journal is not in writer mode");
  }
  if (write_offset_ > 0 &&
      write_offset_ + total > options_.max_segment_bytes) {
    // Rotation needs the in-flight batch durable first (its bytes belong
    // to the segment being sealed).
    durable_cv_.wait(
        lock, [&] { return durable_seq_ == append_seq_ || !writing_; });
    if (writing_ && write_offset_ > 0 &&
        write_offset_ + total > options_.max_segment_bytes) {
      rotate_locked();
    }
  }
  if (!writing_) {
    throw JournalError("journal closed");
  }

  Location location;
  location.seq = write_seq_;
  location.offset = write_offset_;
  location.payload_bytes = header.payload_bytes;

  const std::size_t base = pending_.size();
  pending_.resize(base + total, 0);
  std::memcpy(pending_.data() + base, &header, sizeof(header));
  if (!payload.empty()) {
    std::memcpy(pending_.data() + base + sizeof(header), payload.data(),
                payload.size());
  }
  pending_keys_.emplace_back(client_id, request_id);
  pending_locations_.push_back(location);
  write_offset_ += total;
  const std::uint64_t my_seq = ++append_seq_;
  ++stats_.appends;
  stats_.append_bytes += total;
  flusher_cv_.notify_one();

  // Group commit: block until the flusher has fsynced this append (it
  // batches everything queued while the previous fsync was in flight).
  durable_cv_.wait(lock,
                   [&] { return durable_seq_ >= my_seq || !writing_; });
  if (durable_seq_ < my_seq) {
    throw JournalError("journal closed before the record became durable");
  }
}

void Journal::flusher_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    flusher_cv_.wait(lock,
                     [&] { return stop_flusher_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_flusher_) return;
      continue;
    }
    std::vector<std::uint8_t> batch = std::move(pending_);
    pending_.clear();
    std::vector<std::pair<std::uint64_t, std::uint64_t>> keys =
        std::move(pending_keys_);
    pending_keys_.clear();
    std::vector<Location> locations = std::move(pending_locations_);
    pending_locations_.clear();
    const std::uint64_t batch_top = append_seq_;
    Segment* segment = find_segment_locked(locations.front().seq);
    const int fd = segment != nullptr ? segment->fd : -1;

    bool ok = fd >= 0;
    lock.unlock();
    if (ok) {
      const util::io::IoResult w =
          util::io::write_full(fd, batch.data(), batch.size());
      ok = w.status == util::io::IoStatus::kOk && ::fsync(fd) == 0;
    }
    lock.lock();

    if (ok) {
      ++stats_.fsyncs;
      for (std::size_t i = 0; i < keys.size(); ++i) {
        // Publish to the replay index only now that the bytes are durable.
        index_locked(keys[i].first, keys[i].second, locations[i]);
      }
      if (segment != nullptr) {
        // Our own appends are already indexed: advance the parse cursor so
        // a later writer restart does not re-scan them from offset 0.
        segment->parsed += batch.size();
      }
      durable_seq_ = batch_top;
    } else {
      // The waiters must not report durability: fail them by closing the
      // writer (the server falls back to its in-memory dedup entry).
      writing_ = false;
    }
    durable_cv_.notify_all();
    if (!ok) return;
  }
}

bool Journal::lookup(std::uint64_t client_id, std::uint64_t request_id,
                     std::vector<std::uint8_t>& out) {
  std::lock_guard lock(mutex_);
  const auto cit = index_.find(client_id);
  if (cit == index_.end()) return false;
  const auto rit = cit->second.find(request_id);
  if (rit == cit->second.end()) return false;
  const Location& location = rit->second;
  Segment* segment = find_segment_locked(location.seq);
  if (segment == nullptr) return false;
  if (segment->fd < 0) {
    const std::string path = path_of_locked(*segment);
    segment->fd = util::io::open_retry(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (segment->fd < 0) return false;
  }

  const std::uint64_t padded = align8(location.payload_bytes);
  std::vector<std::uint8_t> raw(kJournalRecordHeaderBytes + padded);
  if (util::io::pread_full(segment->fd, raw.data(), raw.size(),
                           static_cast<off_t>(location.offset))
          .status != util::io::IoStatus::kOk) {
    return false;
  }
  RecordHeader header;
  std::memcpy(&header, raw.data(), sizeof(header));
  if (header.magic != kJournalRecordMagic ||
      header.client_id != client_id || header.request_id != request_id ||
      header.payload_bytes != location.payload_bytes ||
      record_checksum(header, raw.data() + kJournalRecordHeaderBytes,
                      header.payload_bytes) != header.checksum) {
    return false;  // bytes no longer trustworthy: treat as unknown
  }
  out.assign(raw.begin() + kJournalRecordHeaderBytes,
             raw.begin() + kJournalRecordHeaderBytes + header.payload_bytes);
  ++stats_.replays;
  return true;
}

void Journal::close() {
  {
    std::lock_guard lock(mutex_);
    if (!flusher_.joinable()) return;
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  flusher_.join();
  std::lock_guard lock(mutex_);
  writing_ = false;
  Segment* current = find_segment_locked(write_seq_);
  if (current != nullptr && current->fd >= 0) {
    ::fsync(current->fd);
  }
  durable_cv_.notify_all();
}

JournalStats Journal::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t Journal::size() const {
  std::lock_guard lock(mutex_);
  return index_size_;
}

bool Journal::writing() const {
  std::lock_guard lock(mutex_);
  return writing_;
}

}  // namespace trico::cluster::ha
