// cluster::ha::HaCoordinator — an active/standby coordinator node.
//
// Wraps a cluster::Coordinator with the two HA primitives:
//
//   LeaseFile   who leads, and at which fencing epoch. The node's lease
//               loop acquires/renews; a node that cannot renew inside the
//               TTL (crashed, SIGSTOPped, wedged) is stolen from and
//               demoted on resume.
//
//   Journal     the durable exactly-once log. The leader's Server records
//               completed responses through it; the standby tails the same
//               directory so its replay index is warm at promotion.
//
// Both nodes start their worker pool immediately — a standby's workers are
// spawned, handshaked and idle, so a promotion costs one lease acquisition
// plus Journal::start_writer (a directory scan of already-tailed segments),
// not a pool cold start. The target is promotion inside one client backoff
// interval.
//
// Fencing: the node owns the epoch cell that CoordinatorOptions::lease_epoch
// points at. Every scatter/affinity subrequest the inner Coordinator
// dispatches is stamped with the epoch current *at dispatch time*; workers
// (given `serve --lease`) reject stamps below the highest epoch they have
// seen. A deposed leader that resumes mid-gather keeps stamping its stale
// epoch — the cell is never zeroed on demotion — so its frames are refused
// and its gather fails instead of double-counting alongside the new
// leader's.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/coordinator.hpp"
#include "cluster/ha/journal.hpp"
#include "cluster/ha/lease.hpp"

namespace trico::cluster::ha {

struct HaNodeOptions {
  /// The inner coordinator (pool, scheduler, sharding). Its lease_epoch
  /// cell is installed by HaCoordinator; leave it null.
  CoordinatorOptions coordinator;
  std::string lease_path;
  std::string journal_dir;
  /// Lease TTL. Renewals run at a third of this; a standby polls for a
  /// steal at TTL/2. Failover time after a leader death is bounded by
  /// roughly 1.5 * ttl.
  double lease_ttl_ms = 1000;
  /// Start as the standby: delay the first acquisition attempt by one TTL
  /// so a healthy already-running active is never raced at startup.
  bool standby = false;
  /// Host advertised in kNotLeader redirects (the lease file carries only
  /// the leader's port; both nodes of a pair share a host in this
  /// deployment model).
  std::string advertised_host = "127.0.0.1";
};

struct HaStats {
  bool leading = false;
  std::uint64_t epoch = 0;       ///< our epoch when leading, else 0
  std::uint64_t promotions = 0;  ///< lease acquisitions by this node
  std::uint64_t demotions = 0;   ///< renewals lost by this node
  JournalStats journal;
};

class HaCoordinator : public transport::RequestSink {
 public:
  explicit HaCoordinator(HaNodeOptions options);
  ~HaCoordinator() override;

  HaCoordinator(const HaCoordinator&) = delete;
  HaCoordinator& operator=(const HaCoordinator&) = delete;

  /// Spawns the (warm) worker pool, opens + tails the journal, starts the
  /// lease loop. The node comes up in its configured role; call
  /// wait_leading() to block until promoted.
  void start();

  /// Releases the lease when leading (graceful handoff: the peer's next
  /// poll acquires immediately), stops the lease loop, closes the journal,
  /// stops the pool. Idempotent.
  void stop();

  /// The serving port advertised via the lease record and kNotLeader
  /// hints. Set it once the fronting transport::Server has bound.
  void set_advertised_port(std::uint16_t port);

  /// RequestSink: delegates to the inner coordinator (which stamps the
  /// fencing epoch at dispatch). Front a transport::Server with *this* so
  /// metrics reports carry the HA block.
  service::Ticket submit(service::Request request) override;
  std::string metrics_text() override;

  /// Cluster snapshot with the HA/journal block attached.
  [[nodiscard]] service::MetricsSnapshot metrics() const;

  [[nodiscard]] Coordinator& coordinator() { return *coordinator_; }

  /// For ServerOptions::journal on the fronting server. Records only
  /// succeed while this node is the journal writer (i.e. leading); the
  /// Server falls back to its in-memory entry otherwise.
  [[nodiscard]] transport::ResponseJournal& journal() { return *journal_; }

  /// For ServerOptions::leadership on the fronting server: leading -> pass;
  /// not leading -> kNotLeader with the current holder's hint.
  [[nodiscard]] transport::LeaderView leader_view();

  [[nodiscard]] bool leading() const;
  /// Our fencing epoch while leading; after a demotion the *stale* epoch is
  /// retained (never zeroed) so a deposed node keeps stamping refusable
  /// frames.
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] HaStats stats() const;

  /// Blocks until this node leads, at most `timeout_ms`. Returns leading().
  bool wait_leading(double timeout_ms);

  /// Test hooks: freeze/unfreeze the lease loop without stopping the node —
  /// the in-process analogue of SIGSTOPping a leader past its TTL. While
  /// paused the node keeps serving (and keeps stamping its last epoch); on
  /// resume the failed renewal demotes it.
  void pause_lease_for_test();
  void resume_lease_for_test();

 private:
  void lease_loop();
  void promote_locked(std::uint64_t new_epoch);

  HaNodeOptions options_;
  std::shared_ptr<std::atomic<std::uint64_t>> epoch_cell_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<LeaseFile> lease_;
  std::unique_ptr<Journal> journal_;
  std::uint64_t owner_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool leading_ = false;
  bool paused_ = false;
  bool stop_ = false;
  std::uint64_t promotions_ = 0;
  std::uint64_t demotions_ = 0;
  std::atomic<std::uint16_t> advertised_port_{0};
  bool started_ = false;
  std::thread loop_;
};

}  // namespace trico::cluster::ha
