// cluster::ha::LeaseFile — file-lock-backed leadership lease with a
// fencing epoch.
//
// Leadership of a coordinator pair is one small record in a shared file:
//
//   offset  size  field
//        0     8  magic        "TRICOLSE"
//        8     4  version      kLeaseVersion
//       12     2  port         the holder's serving port (leader hint)
//       14     2  (pad)
//       16     8  epoch        fencing token, bumped on every acquisition
//       24     8  owner        holder id (pid-derived)
//       32     8  expires_at   CLOCK_REALTIME milliseconds
//       40     8  checksum     store-tier FNV words over bytes [0, 40)
//
// Every read-modify-write holds flock(LOCK_EX) only for the duration of the
// update — the lock serializes *transitions*, it does not represent
// leadership. Leadership is the record: a holder that cannot renew before
// expires_at (crashed, or SIGSTOPped past the TTL) is simply stolen from —
// the thief bumps the epoch, and the fencing check downstream (workers
// rejecting stale-epoch subrequests) makes the deposed holder harmless even
// if it resumes believing it still leads. Epochs are monotone across
// acquisitions, releases and steals; they never reset while the file
// exists.
//
// Wall clock (CLOCK_REALTIME) rather than the monotonic clock: expiry must
// be comparable *across processes*, and the monotonic clock has no
// cross-process epoch. The TTL should therefore be generous relative to
// expected clock slew between coordinators on one host (the deployment
// model here: both coordinators share the lease file's filesystem).

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace trico::cluster::ha {

inline constexpr std::uint64_t kLeaseMagic = 0x45534c4f43495254ull;  // "TRICOLSE"
inline constexpr std::uint32_t kLeaseVersion = 1;
inline constexpr std::size_t kLeaseRecordBytes = 48;

/// The decoded lease record.
struct LeaseRecord {
  std::uint64_t epoch = 0;
  std::uint64_t owner = 0;
  std::uint16_t port = 0;
  std::uint64_t expires_at_ms = 0;  ///< CLOCK_REALTIME ms

  [[nodiscard]] bool expired(std::uint64_t now_ms) const {
    return expires_at_ms <= now_ms;
  }
};

struct LeaseOptions {
  std::string path;
  /// How long one acquisition/renewal holds without a renew.
  double ttl_ms = 1000;
};

class LeaseError : public std::runtime_error {
 public:
  explicit LeaseError(const std::string& what) : std::runtime_error(what) {}
};

class LeaseFile {
 public:
  /// Opens (creating if absent) the lease file. Throws LeaseError when the
  /// file cannot be opened.
  explicit LeaseFile(LeaseOptions options);
  ~LeaseFile();

  LeaseFile(const LeaseFile&) = delete;
  LeaseFile& operator=(const LeaseFile&) = delete;

  struct Acquire {
    bool acquired = false;
    std::uint64_t epoch = 0;  ///< the new epoch when acquired
    LeaseRecord current;      ///< the blocking record when not acquired
  };

  /// Takes the lease when it is free, expired, or already ours — bumping
  /// the epoch in every acquired case (an acquisition is a promotion, and
  /// fencing needs each promotion distinguishable). Returns the blocking
  /// record otherwise.
  [[nodiscard]] Acquire try_acquire(std::uint64_t owner, std::uint16_t port);

  /// Extends our lease by one TTL. Returns false — leadership lost — when
  /// the record is no longer ours at our epoch (stolen after an expiry).
  [[nodiscard]] bool renew(std::uint64_t owner, std::uint64_t epoch,
                           std::uint16_t port);

  /// Expires our lease in place (graceful handoff: the standby's next poll
  /// acquires immediately instead of waiting out the TTL). Keeps the epoch
  /// so monotonicity survives the release. No-op when the record is not
  /// ours at `epoch`.
  void release(std::uint64_t owner, std::uint64_t epoch);

  /// Reads the current record (shared lock). nullopt when the file is
  /// empty or the record fails validation.
  [[nodiscard]] std::optional<LeaseRecord> read();

  /// One-shot read without a LeaseFile instance (worker-side fencing and
  /// leader hints). nullopt when the file is missing/empty/corrupt.
  [[nodiscard]] static std::optional<LeaseRecord> peek(
      const std::string& path);

  [[nodiscard]] static std::uint64_t now_ms();

  [[nodiscard]] const std::string& path() const { return options_.path; }

 private:
  LeaseOptions options_;
  int fd_ = -1;
};

}  // namespace trico::cluster::ha
