// cluster::Coordinator — one logical TriangleService served by N worker
// processes.
//
// The coordinator fronts a WorkerSupervisor pool and executes every request
// as a distributed plan (docs/cluster.md):
//
//   affinity   Small graphs and the analysis ops route *whole* to one
//              worker, chosen by rendezvous (HRW) hashing of the catalog
//              content key — each graph has a stable home worker whose
//              catalog/artifact/page cache stays hot for it. Breaker-aware:
//              when the home worker is down or refuses, the request fails
//              over to the next-ranked healthy worker.
//
//   scatter/   Large kCount requests shard into an edge-balanced row tiling
//   gather     of the prepared oriented CSR (cpu::shard_rows — the
//              cross-process analogue of MultiGpuCounter's per-device edge
//              slices). Each shard runs as a wire subrequest on a distinct
//              worker; the gather sums the partials after verifying the
//              shard echoes: equal graph fingerprints (same prepared CSR
//              everywhere), contiguous row tiling, per-shard FNV slice
//              checksums. A shard lost to a crash, kill -9 or drain is
//              *re-scattered* to another healthy worker — bounded attempts
//              per shard — so the cluster still returns the exact count.
//
// Admission reuses RequestScheduler unchanged (bounded queue, weighted DRR
// across tenants, deadlines + watchdog); on top of it the coordinator
// enforces a *global* per-tenant in-flight cap across the pool — each
// worker's local FairQueue keeps per-process fairness, the gate keeps one
// hot tenant from occupying every worker at once.
//
// Dispatch runs through one FIFO lane per worker. A lane prefers, within a
// bounded lookahead window, jobs whose content key matches the one it just
// served (bounded run length so no key starves the lane) — a worker drains
// the queued ops for a graph while that graph's artifacts are hot (the
// service-level analogue of the paper's §III-D batching).
//
// Coordinator implements transport::RequestSink, so a transport::Server can
// front it directly: the PR-6 wire Client talks to a cluster unchanged.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/metrics.hpp"
#include "service/request.hpp"
#include "service/scheduler.hpp"
#include "transport/server.hpp"
#include "transport/supervisor.hpp"

namespace trico::cluster {

struct CoordinatorOptions {
  /// The worker pool (cli_path, num_workers, worker_args, breakers...).
  transport::SupervisorOptions supervisor;
  /// Admission + fairness front. workers = concurrent distributed plans;
  /// keep it above tenant_inflight_cap so gate-blocked plans cannot occupy
  /// every slot.
  service::RequestScheduler::Options scheduler = [] {
    service::RequestScheduler::Options o;
    o.workers = 8;
    o.queue_capacity = 256;
    o.backend_threads = 1;
    return o;
  }();
  /// kCount requests whose edge-slot count reaches this threshold scatter;
  /// below it (and for every non-count op) they affinity-route whole.
  std::uint64_t scatter_edge_threshold = std::uint64_t{1} << 17;
  /// Cap on shard fan-out per request; 0 = one shard per healthy worker.
  std::uint32_t max_shards = 0;
  /// Dispatch attempts per shard (first try + re-scatters) before the
  /// request fails.
  int shard_attempts = 4;
  /// Global per-tenant in-flight cap across the pool; 0 = uncapped. A
  /// tenant at the cap waits (bounded waiters), beyond that it is rejected
  /// with kRejectedQueueFull.
  std::size_t tenant_inflight_cap = 0;
  /// Same-key batching: how far into a lane's queue the dispatcher may look
  /// for a job matching the key it just served. 0 disables batching.
  std::size_t batch_window = 8;
  /// Consecutive same-key picks before the lane must take its FIFO head
  /// (starvation bound for the batching heuristic).
  std::size_t max_batch_run = 16;
  /// HA fencing: when set, every dispatched subrequest is stamped with the
  /// cell's current value (the coordinator's lease epoch) so workers can
  /// reject scatter frames from a deposed leader. Shared with the
  /// HaCoordinator that owns the lease loop. Null / zero = unfenced.
  std::shared_ptr<const std::atomic<std::uint64_t>> lease_epoch;
};

/// Monotonic counters of the coordinator's own decisions (the cluster-level
/// complement of the per-worker MetricsSnapshots).
struct CoordinatorStats {
  std::uint64_t affinity_requests = 0;  ///< plans routed whole
  std::uint64_t scatter_requests = 0;   ///< plans sharded
  std::uint64_t shard_subrequests = 0;  ///< shard dispatches incl. re-scatters
  std::uint64_t rescatters = 0;         ///< shards re-dispatched after loss
  std::uint64_t failovers = 0;          ///< affinity hops past the HRW home
  std::uint64_t gather_integrity_failures = 0;  ///< fingerprint/tiling rejects
  std::uint64_t batched_dispatches = 0;  ///< lane picks that continued a key run
  std::uint64_t tenant_throttle_waits = 0;    ///< plans that waited at the gate
  std::uint64_t tenant_throttle_rejects = 0;  ///< plans refused at the gate
};

class Coordinator : public transport::RequestSink {
 public:
  explicit Coordinator(CoordinatorOptions options);
  ~Coordinator() override;

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Spawns the worker pool, the per-worker dispatch lanes and the
  /// scheduler. Throws TransportError when workers fail to come up.
  void start();

  /// Drains the scheduler (every admitted plan reaches a terminal state),
  /// stops the lanes, then stops the pool. Idempotent.
  void stop();

  /// RequestSink: async submission through the admission front.
  service::Ticket submit(service::Request request) override;
  /// RequestSink: cluster-wide metrics report.
  std::string metrics_text() override;

  /// Synchronous convenience: submit + wait.
  [[nodiscard]] service::Response execute(service::Request request);

  /// Cluster-wide snapshot: the coordinator's own lifecycle/latency
  /// counters plus the per-worker supervision slots.
  [[nodiscard]] service::MetricsSnapshot metrics() const;

  [[nodiscard]] CoordinatorStats stats() const;
  [[nodiscard]] transport::WorkerSupervisor& supervisor() {
    return *supervisor_;
  }

 private:
  /// One dispatched subrequest: fulfilled (or failed) by a lane thread.
  struct Job {
    std::uint64_t key = 0;
    service::Request request;
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    service::Response response;
    std::exception_ptr error;
  };

  /// Per-worker FIFO dispatch queue + the thread draining it. The lane
  /// serializes traffic to its worker (Client is single-threaded) and owns
  /// the same-key batching pick.
  struct Lane {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::shared_ptr<Job>> queue;
    std::thread thread;
    std::uint64_t hot_key = 0;  ///< key of the job served last
    bool has_hot_key = false;
    std::size_t run_length = 0;
    bool stop = false;
  };

  service::Response plan(const service::Request& request,
                         service::ExecContext& ctx);
  service::Response affinity_plan(const service::Request& request,
                                  std::uint64_t key,
                                  const util::CancelToken* cancel);
  service::Response scatter_plan(const service::Request& request,
                                 std::uint64_t key,
                                 const util::CancelToken* cancel);
  std::shared_ptr<Job> enqueue(std::size_t lane_index, std::uint64_t key,
                               service::Request request);
  service::Response await(const std::shared_ptr<Job>& job,
                          const util::CancelToken* cancel);
  void lane_loop(std::size_t index);

  /// Global tenant gate. Returns true when the plan may proceed (and the
  /// tenant's in-flight count was incremented); false = reject.
  bool gate_acquire(const std::string& tenant);
  void gate_release(const std::string& tenant);

  CoordinatorOptions options_;
  std::unique_ptr<transport::WorkerSupervisor> supervisor_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  service::MetricsRegistry metrics_;

  mutable std::mutex stats_mutex_;
  CoordinatorStats stats_{};

  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  std::unordered_map<std::string, std::size_t> gate_inflight_;
  std::unordered_map<std::string, std::size_t> gate_waiters_;
  bool gate_open_ = true;  ///< false while stopping: waiters drain as rejects

  std::atomic<bool> started_{false};
  /// Declared last: its destructor drains in-flight plans while the lanes
  /// and pool above are still alive.
  std::unique_ptr<service::RequestScheduler> scheduler_;
};

}  // namespace trico::cluster
