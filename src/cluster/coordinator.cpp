#include "cluster/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "cluster/hrw.hpp"
#include "service/catalog.hpp"
#include "util/cancel.hpp"

namespace trico::cluster {

namespace {

void sleep_ms(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  if (started_.exchange(true)) return;
  supervisor_ = std::make_unique<transport::WorkerSupervisor>(
      options_.supervisor);
  supervisor_->start();

  const std::size_t n = supervisor_->size();
  lanes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
  }
  for (std::size_t i = 0; i < n; ++i) {
    lanes_[i]->thread = std::thread([this, i] { lane_loop(i); });
  }

  scheduler_ = std::make_unique<service::RequestScheduler>(
      options_.scheduler,
      [this](const service::Request& request, service::ExecContext& ctx) {
        return plan(request, ctx);
      },
      [this](const service::Request& request,
             const service::Response& response) {
        metrics_.record_response(request, response);
      });
}

void Coordinator::stop() {
  if (!started_.exchange(false)) return;
  // Order matters: the scheduler drains first (every admitted plan reaches
  // a terminal state, and plans need the lanes + pool alive to finish),
  // then the gate unblocks any stragglers, then the lanes stop, then the
  // pool.
  scheduler_.reset();
  {
    std::lock_guard lock(gate_mutex_);
    gate_open_ = false;
  }
  gate_cv_.notify_all();
  for (auto& lane : lanes_) {
    {
      std::lock_guard lock(lane->mutex);
      lane->stop = true;
    }
    lane->cv.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
  lanes_.clear();
  if (supervisor_ != nullptr) supervisor_->stop();
}

service::Ticket Coordinator::submit(service::Request request) {
  metrics_.record_submitted(request);
  return scheduler_->submit(std::move(request));
}

service::Response Coordinator::execute(service::Request request) {
  return submit(std::move(request)).wait();
}

std::string Coordinator::metrics_text() {
  std::ostringstream out;
  out << metrics().to_string() << "\n";
  const CoordinatorStats s = stats();
  out << "cluster: affinity=" << s.affinity_requests
      << " scatter=" << s.scatter_requests
      << " shards=" << s.shard_subrequests
      << " rescatters=" << s.rescatters << " failovers=" << s.failovers
      << " integrity_failures=" << s.gather_integrity_failures
      << " batched=" << s.batched_dispatches
      << " throttle_waits=" << s.tenant_throttle_waits
      << " throttle_rejects=" << s.tenant_throttle_rejects << "\n";
  return out.str();
}

service::MetricsSnapshot Coordinator::metrics() const {
  service::MetricsSnapshot snapshot = metrics_.snapshot();
  if (scheduler_ != nullptr) {
    snapshot.queue_depth = scheduler_->queue_depth();
    snapshot.queue_peak_depth = scheduler_->queue_peak_depth();
    snapshot.queue_capacity = scheduler_->queue_capacity();
    snapshot.per_tenant_queue_cap = scheduler_->per_tenant_queue_cap();
    snapshot.tenant_queue_depths = scheduler_->tenant_queue_depths();
    snapshot.watchdog_budget_cancels = scheduler_->watchdog_flags();
  }
  if (supervisor_ != nullptr) {
    for (const transport::WorkerStatus& status : supervisor_->workers()) {
      service::MetricsSnapshot::WorkerSlot slot;
      slot.pid = status.pid;
      slot.port = status.port;
      slot.alive = status.alive;
      slot.breaker = status.breaker;
      slot.restarts = status.restarts;
      snapshot.workers.push_back(slot);
    }
    const transport::SupervisorStats pool = supervisor_->stats();
    snapshot.worker_restarts = pool.restarts;
    snapshot.worker_heartbeat_faults = pool.heartbeat_faults;
    snapshot.worker_reroutes = pool.reroutes;
  }
  return snapshot;
}

CoordinatorStats Coordinator::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

// ---------------------------------------------------------------------------
// Tenant gate: aggregate in-flight cap per tenant across the whole pool.

bool Coordinator::gate_acquire(const std::string& tenant) {
  const std::size_t cap = options_.tenant_inflight_cap;
  if (cap == 0) return true;
  std::unique_lock lock(gate_mutex_);
  std::size_t& inflight = gate_inflight_[tenant];
  if (inflight < cap) {
    ++inflight;
    return true;
  }
  // At the cap: wait, but bound the waiters so a flooding tenant occupies
  // at most 2*cap plan slots (cap running + cap waiting) — the rest reject
  // immediately and the scheduler's DRR keeps serving other tenants.
  std::size_t& waiters = gate_waiters_[tenant];
  if (waiters >= cap) {
    lock.unlock();
    std::lock_guard slock(stats_mutex_);
    ++stats_.tenant_throttle_rejects;
    return false;
  }
  ++waiters;
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.tenant_throttle_waits;
  }
  gate_cv_.wait(lock, [&] { return !gate_open_ || inflight < cap; });
  --waiters;
  if (!gate_open_) return false;
  ++inflight;
  return true;
}

void Coordinator::gate_release(const std::string& tenant) {
  if (options_.tenant_inflight_cap == 0) return;
  {
    std::lock_guard lock(gate_mutex_);
    auto it = gate_inflight_.find(tenant);
    if (it != gate_inflight_.end() && it->second > 0) --it->second;
  }
  gate_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Dispatch lanes.

std::shared_ptr<Coordinator::Job> Coordinator::enqueue(
    std::size_t lane_index, std::uint64_t key, service::Request request) {
  auto job = std::make_shared<Job>();
  job->key = key;
  job->request = std::move(request);
  if (options_.lease_epoch != nullptr) {
    // Fencing stamp: read at dispatch time (not admission) so a subrequest
    // queued across a promotion carries the *current* epoch.
    job->request.lease_epoch =
        options_.lease_epoch->load(std::memory_order_acquire);
  }
  Lane& lane = *lanes_[lane_index];
  {
    std::lock_guard lock(lane.mutex);
    lane.queue.push_back(job);
  }
  lane.cv.notify_one();
  return job;
}

service::Response Coordinator::await(const std::shared_ptr<Job>& job,
                                     const util::CancelToken* cancel) {
  std::unique_lock lock(job->mutex);
  while (!job->done) {
    job->cv.wait_for(lock, std::chrono::milliseconds(10));
    if (cancel != nullptr && cancel->cancelled()) {
      // Abandon the job (the lane still completes it against its shared
      // ref) and let the scheduler convert the cancel into the terminal
      // kCancelled/kDeadlineExpired response.
      lock.unlock();
      cancel->throw_if_cancelled();
    }
  }
  if (job->error != nullptr) std::rethrow_exception(job->error);
  return std::move(job->response);
}

void Coordinator::lane_loop(std::size_t index) {
  Lane& lane = *lanes_[index];
  for (;;) {
    std::shared_ptr<Job> job;
    bool continued_run = false;
    {
      std::unique_lock lock(lane.mutex);
      lane.cv.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
      if (lane.queue.empty()) return;  // stop && drained
      // Same-key batching: within the lookahead window, prefer a job for
      // the graph this worker just served so its artifacts stay hot —
      // bounded run length so a busy key cannot starve the FIFO head.
      std::size_t pick = 0;
      if (options_.batch_window > 0 && lane.has_hot_key &&
          lane.run_length < options_.max_batch_run) {
        const std::size_t window =
            std::min(options_.batch_window, lane.queue.size());
        for (std::size_t j = 0; j < window; ++j) {
          if (lane.queue[j]->key == lane.hot_key) {
            pick = j;
            break;
          }
        }
      }
      job = lane.queue[pick];
      lane.queue.erase(lane.queue.begin() +
                       static_cast<std::ptrdiff_t>(pick));
      continued_run = lane.has_hot_key && job->key == lane.hot_key;
      if (continued_run) {
        ++lane.run_length;
      } else {
        lane.hot_key = job->key;
        lane.has_hot_key = true;
        lane.run_length = 1;
      }
    }
    if (continued_run) {
      std::lock_guard slock(stats_mutex_);
      ++stats_.batched_dispatches;
    }

    service::Response response;
    std::exception_ptr error;
    try {
      response = supervisor_->execute_on(index, job->request);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(job->mutex);
      job->response = std::move(response);
      job->error = error;
      job->done = true;
    }
    job->cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Distributed plans.

service::Response Coordinator::plan(const service::Request& request,
                                    service::ExecContext& ctx) {
  service::Response response;
  if (!request.graph) {
    response.status = service::Status::kFailed;
    response.reason = "request carries no graph";
    return response;
  }

  if (!gate_acquire(request.tenant_id)) {
    response.status = service::Status::kRejectedQueueFull;
    std::ostringstream reason;
    reason << "tenant '"
           << (request.tenant_id.empty() ? "(default)" : request.tenant_id)
           << "' at the cluster-wide in-flight cap "
           << options_.tenant_inflight_cap;
    response.reason = reason.str();
    return response;
  }
  struct GateRelease {
    Coordinator* self;
    const std::string& tenant;
    ~GateRelease() { self->gate_release(tenant); }
  } release{this, request.tenant_id};

  const std::uint64_t key =
      service::GraphCatalog::content_hash(*request.graph);
  const bool scatter =
      request.op == service::Operation::kCount && !request.sharded() &&
      (request.backend == service::Backend::kAuto ||
       request.backend == service::Backend::kCpuHybrid) &&
      request.graph->edges().size() >= options_.scatter_edge_threshold;
  if (scatter) return scatter_plan(request, key, ctx.cancel);
  return affinity_plan(request, key, ctx.cancel);
}

service::Response Coordinator::affinity_plan(const service::Request& request,
                                             std::uint64_t key,
                                             const util::CancelToken* cancel) {
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.affinity_requests;
  }
  std::string last_error = "no healthy worker";
  bool moved = false;
  // Two passes, like the supervisor's own router: a crash mid-pass gives
  // the monitor a beat to respawn before the retry pass.
  for (int round = 0; round < 2; ++round) {
    if (round > 0) sleep_ms(options_.supervisor.monitor_period_ms * 2);
    const std::vector<std::size_t> order =
        hrw_rank(key, supervisor_->healthy_workers());
    for (const std::size_t target : order) {
      const std::shared_ptr<Job> job = enqueue(target, key, request);
      try {
        service::Response response = await(job, cancel);
        if (moved) {
          std::lock_guard slock(stats_mutex_);
          ++stats_.failovers;
        }
        return response;
      } catch (const transport::TransportError& error) {
        if (error.fault() == transport::TransportFault::kProtocol) throw;
        // kDraining, kConnect, kTimeout, kExhausted: the home worker is
        // out; fail over to the next HRW rank. The worker-side dedup makes
        // the cross-worker resend at-most-once for results.
        last_error = error.what();
        moved = true;
      }
    }
  }
  service::Response response;
  response.status = service::Status::kFailed;
  response.reason = "cluster: every worker failed the affinity route; last: " +
                    last_error;
  return response;
}

service::Response Coordinator::scatter_plan(const service::Request& request,
                                            std::uint64_t key,
                                            const util::CancelToken* cancel) {
  const std::vector<std::size_t> healthy = supervisor_->healthy_workers();
  std::uint32_t shards = static_cast<std::uint32_t>(healthy.size());
  if (options_.max_shards > 0) shards = std::min(shards, options_.max_shards);
  if (shards <= 1) return affinity_plan(request, key, cancel);

  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.scatter_requests;
    stats_.shard_subrequests += shards;
  }

  struct ShardSlot {
    std::shared_ptr<Job> job;
    int attempts = 0;
    service::Response response;
    bool ok = false;
  };
  std::vector<ShardSlot> slots(shards);

  const auto subrequest = [&](std::uint32_t i) {
    service::Request sub = request;
    sub.shard_index = i;
    sub.shard_count = shards;
    sub.backend = service::Backend::kCpuHybrid;
    return sub;
  };
  // Deterministic placement: shard i on the i-th HRW rank for the key, so
  // repeated scatters of the same graph land the same shards on the same
  // workers (each worker re-reads a warm artifact and re-counts the same
  // row range).
  const std::vector<std::size_t> order = hrw_rank(key, healthy);
  for (std::uint32_t i = 0; i < shards; ++i) {
    slots[i].job = enqueue(order[i % order.size()], key, subrequest(i));
    slots[i].attempts = 1;
  }

  bool rescattered = false;
  std::string last_error;
  for (;;) {
    std::vector<std::uint32_t> lost;
    for (std::uint32_t i = 0; i < shards; ++i) {
      if (slots[i].ok) continue;
      try {
        service::Response sub = await(slots[i].job, cancel);
        if (sub.status == service::Status::kOk) {
          slots[i].response = std::move(sub);
          slots[i].ok = true;
        } else if (sub.status == service::Status::kDeadlineExpired ||
                   sub.status == service::Status::kCancelled) {
          // A deadline or cancel is a verdict on the whole request, not on
          // this shard's worker: propagate it instead of re-scattering.
          return sub;
        } else {
          last_error = to_string(sub.status) +
                       (sub.reason.empty() ? std::string()
                                           : ": " + sub.reason);
          lost.push_back(i);
        }
      } catch (const transport::TransportError& error) {
        if (error.fault() == transport::TransportFault::kProtocol) throw;
        last_error = error.what();
        lost.push_back(i);
      }
    }
    if (lost.empty()) break;

    // Re-scatter: each lost shard moves to the next healthy worker (its
    // attempt count walks the fresh HRW ranking, so consecutive retries of
    // one shard visit distinct workers while the pool heals).
    for (const std::uint32_t i : lost) {
      if (slots[i].attempts >= options_.shard_attempts) {
        service::Response response;
        response.status = service::Status::kFailed;
        std::ostringstream reason;
        reason << "cluster: shard " << i << "/" << shards << " failed after "
               << slots[i].attempts << " attempts; last: " << last_error;
        response.reason = reason.str();
        return response;
      }
    }
    std::vector<std::size_t> now_healthy = supervisor_->healthy_workers();
    if (now_healthy.empty()) {
      sleep_ms(options_.supervisor.monitor_period_ms * 2);
      now_healthy = supervisor_->healthy_workers();
      if (now_healthy.empty()) {
        service::Response response;
        response.status = service::Status::kFailed;
        response.reason =
            "cluster: no healthy worker to re-scatter to; last: " +
            last_error;
        return response;
      }
    }
    const std::vector<std::size_t> rerank = hrw_rank(key, now_healthy);
    for (const std::uint32_t i : lost) {
      const std::size_t target =
          rerank[(i + static_cast<std::size_t>(slots[i].attempts)) %
                 rerank.size()];
      slots[i].job = enqueue(target, key, subrequest(i));
      ++slots[i].attempts;
    }
    rescattered = true;
    {
      std::lock_guard slock(stats_mutex_);
      stats_.rescatters += lost.size();
      stats_.shard_subrequests += lost.size();
    }
  }

  // Gather. Before trusting the sum, verify the shard echoes: every shard
  // must have been cut from the same prepared graph (equal fingerprints),
  // under the same plan (shard_count echo), and the row ranges must tile
  // [0, n) contiguously in shard order. The per-shard checksums pin the
  // neighbor bytes each partial was computed from (logged via metrics; two
  // executions of the same shard must agree, which the tests assert).
  const auto integrity_failure = [&](const std::string& what) {
    {
      std::lock_guard slock(stats_mutex_);
      ++stats_.gather_integrity_failures;
    }
    service::Response response;
    response.status = service::Status::kFailed;
    response.reason = "cluster: gather integrity check failed: " + what;
    return response;
  };
  TriangleCount total = 0;
  std::uint64_t edges_covered = 0;
  bool all_hits = true;
  for (std::uint32_t i = 0; i < shards; ++i) {
    const service::Response& sub = slots[i].response;
    if (sub.shard_index != i || sub.shard_count != shards) {
      std::ostringstream what;
      what << "shard " << i << " echoed " << sub.shard_index << "/"
           << sub.shard_count << " (expected " << i << "/" << shards << ")";
      return integrity_failure(what.str());
    }
    if (sub.graph_fingerprint != slots[0].response.graph_fingerprint) {
      std::ostringstream what;
      what << "shard " << i << " fingerprint " << std::hex
           << sub.graph_fingerprint << " != shard 0 fingerprint "
           << slots[0].response.graph_fingerprint;
      return integrity_failure(what.str());
    }
    const std::uint64_t expected_begin =
        i == 0 ? 0 : slots[i - 1].response.shard_row_end;
    if (sub.shard_row_begin != expected_begin) {
      std::ostringstream what;
      what << "shard " << i << " rows [" << sub.shard_row_begin << ", "
           << sub.shard_row_end << ") do not continue the tiling at "
           << expected_begin;
      return integrity_failure(what.str());
    }
    total += sub.triangles;
    edges_covered += sub.shard_edges;
    all_hits = all_hits && sub.catalog_hit;
  }

  service::Response response;
  response.status = service::Status::kOk;
  response.triangles = total;
  response.backend = service::Backend::kCpuHybrid;
  response.catalog_hit = all_hits;
  response.shard_count = shards;
  response.shard_edges = edges_covered;
  response.graph_fingerprint = slots[0].response.graph_fingerprint;
  if (rescattered) {
    response.degraded = true;
    response.reason = "re-scattered lost shards; last fault: " + last_error;
  }
  return response;
}

}  // namespace trico::cluster
