// Multi-GPU scenario (§III-E): scale triangle counting across devices and
// see Amdahl's law in action.
//
// Two workloads are compared on 1-4 simulated Tesla C2050s:
//  * a triangle-rich Kronecker graph, where the counting phase dominates
//    and extra devices pay off (the paper reaches 2.8x on 4 GPUs), and
//  * a sparse, triangle-poor graph, where the single-device preprocessing
//    phase bounds the speedup near 1x.

#include <iostream>

#include "gen/generators.hpp"
#include "multigpu/multi_gpu.hpp"
#include "util/table.hpp"

int main() {
  using namespace trico;

  gen::RmatParams kron;
  kron.scale = 13;
  kron.edge_factor = 24;
  const EdgeList triangle_rich = gen::rmat(kron, 11);

  gen::SocialParams sparse_params;
  sparse_params.n = 50000;
  sparse_params.attach = 5;
  sparse_params.closure_rounds = 0.3;
  sparse_params.closure_prob = 0.2;
  const EdgeList triangle_poor = gen::social(sparse_params, 12);

  core::CountingOptions options;
  options.sim.sample_sms = 2;

  for (const auto& [name, graph] :
       {std::pair<const char*, const EdgeList&>{"kronecker (triangle-rich)",
                                                triangle_rich},
        {"social (preprocessing-bound)", triangle_poor}}) {
    std::cout << "=== " << name << ": " << graph.num_edge_slots()
              << " slots ===\n";
    util::Table table({"devices", "preproc [ms]", "broadcast [ms]",
                       "counting [ms]", "total [ms]", "speedup", "Amdahl max"});
    double base_total = 0, fraction = 0;
    for (unsigned devices = 1; devices <= 4; ++devices) {
      multigpu::MultiGpuCounter counter(simt::DeviceConfig::tesla_c2050(),
                                        devices, options);
      const multigpu::MultiGpuResult result = counter.count(graph);
      if (devices == 1) {
        base_total = result.total_ms();
        fraction = result.preprocessing_ms / result.total_ms();
      }
      table.row()
          .cell(static_cast<int>(devices))
          .cell(result.preprocessing_ms, 2)
          .cell(result.broadcast_ms, 2)
          .cell(result.counting_ms, 2)
          .cell(result.total_ms(), 2)
          .cell(base_total / result.total_ms(), 2)
          .cell(multigpu::amdahl_max_speedup(fraction, devices), 2);
    }
    table.print(std::cout);
    std::cout << "preprocessing fraction p = " << fraction
              << "  (max 4-GPU speedup 1/(p + (1-p)/4) = "
              << multigpu::amdahl_max_speedup(fraction, 4) << ")\n\n";
  }
  return 0;
}
