// Input-format scenario (§III-A): why trico takes an edge array.
//
// Loads/generates a graph, converts between the edge-array and
// adjacency-list representations in both directions with timing, validates
// the canonical-form invariants, and round-trips through the binary and
// text file formats.

#include <cstdio>
#include <iostream>

#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "graph/conversion.hpp"
#include "graph/io.hpp"
#include "util/timer.hpp"

int main() {
  using namespace trico;

  const EdgeList graph = gen::barabasi_albert(100000, 8, 3);
  std::cout << "graph: " << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges\n";

  // Validation: the pipeline's contract on its input.
  const ValidationReport report = graph.validate();
  std::cout << "validate: " << report.message << "\n\n";

  // Edge array -> adjacency list: needs a sort (the expensive direction).
  util::Timer to_adj_timer;
  const Csr adjacency = edge_array_to_adjacency(graph);
  std::cout << "edge array -> adjacency list: " << to_adj_timer.elapsed_ms()
            << " ms (sort-bound)\n";

  // Adjacency list -> edge array: a single pass (the cheap direction).
  util::Timer to_edges_timer;
  const EdgeList back = adjacency_to_edge_array(adjacency);
  std::cout << "adjacency list -> edge array: " << to_edges_timer.elapsed_ms()
            << " ms (single pass)\n\n";

  // Counting agrees across representations.
  const TriangleCount from_edges = cpu::count_forward(graph);
  const TriangleCount from_adjacency =
      cpu::count_forward_from_adjacency(adjacency);
  std::cout << "triangles (edge-array solver):     " << from_edges << "\n";
  std::cout << "triangles (adjacency solver):      " << from_adjacency << "\n";
  if (from_edges != from_adjacency || back.num_edge_slots() != graph.num_edge_slots()) {
    std::cerr << "BUG: representations disagree\n";
    return 1;
  }

  // File round-trips.
  const char* bin_path = "format_conversion_example.trico";
  const char* txt_path = "format_conversion_example.txt";
  io::write_binary_file(bin_path, graph);
  io::write_text_file(txt_path, graph);
  const EdgeList from_bin = io::read_binary_file(bin_path);
  const EdgeList from_txt = io::read_text_file(txt_path);
  std::cout << "\nbinary round-trip: "
            << (from_bin == graph ? "exact" : "MISMATCH") << "\n";
  std::cout << "text round-trip:   "
            << (from_txt.num_edges() == graph.num_edges() ? "ok" : "MISMATCH")
            << "\n";
  std::remove(bin_path);
  std::remove(txt_path);
  return 0;
}
