// trico_cli — command-line triangle counter, modeled on the tool the
// paper's artifact repository ships.
//
// Usage:
//   trico_cli [options] <graph-file>
//   trico_cli [options] --rmat <scale>
//   trico_cli batch [options] <script-file>
//
// Options (single-shot mode):
//   --algorithm A   cpu-forward | cpu-edge-iterator | cpu-node-iterator |
//                   cpu-compact-forward | cpu-hashed | gpu | multigpu
//                   (default: gpu)
//   --device D      c2050 | gtx980 | nvs5200m   (default: gtx980)
//   --devices N     device count for multigpu   (default: 4)
//   --binary        input file is trico binary format (default: SNAP text)
//   --clustering    also print global clustering / transitivity
//   --stats         print graph statistics before counting
//
// Batch mode drives the triangle-analytics service (src/service/) over a
// query script: one query per line, `[tenant:<id>] <graph-spec> <op>`,
// where the optional leading `tenant:<id>` token names the submitting
// tenant (per-tenant queue caps, fair dequeue, per-tenant metrics slice),
// graph-spec is a file path (*.trico loads as binary, anything else as
// SNAP text) or `rmat:<scale>`, and op is count | clustering | truss
// (default count). '#' starts a comment. Every query prints one result
// line with its latency; the run ends with the service MetricsSnapshot,
// including one slice per tenant named in the script.
//
// Batch options:
//   --workers N     scheduler workers            (default: 2)
//   --queue N       admission-queue capacity     (default: 256)
//   --tenant-cap N  per-tenant queue cap; 0 = off (default: 0)
//   --backend B     cpu | gpu | multigpu | outofcore | auto (default: auto)
//   --objective O   wall | modeled               (default: wall)
//   --catalog-mb N  catalog byte budget in MiB; 0 disables (default: 1024)
//   --device D      device model for the simulated tiers
//
// Server mode (`trico_cli serve`) exposes the service over the transport
// wire protocol (src/transport/): prints exactly one "LISTENING <port>"
// line on stdout once bound, serves until SIGTERM/SIGINT, then drains
// gracefully (finishes in-flight requests, flushes responses). The
// --chaos-* flags arm worker-side fault injection for the chaos harness.
//
// Serve options:
//   --port N            0 = ephemeral (default)
//   --workers/--queue/--device/--catalog-mb as in batch mode
//   --chaos-seed S      seed for randomized chaos (0 = chaos off)
//   --chaos-torn R      torn-response-frame probability
//   --chaos-reset R     connection-reset probability
//   --chaos-delay R     delayed-ack probability
//   --chaos-max-delay M max ack delay in ms        (default: 5)
//   --chaos-kill R      abrupt worker-exit probability (kill -9 semantics)
//
// Client mode (`trico_cli client --port N <graph-spec>`) sends requests to
// a running server with idempotent retries and prints the result like
// single-shot mode. `--repeat N` sends the query N times (catalog hits),
// `--metrics` dumps the server's MetricsSnapshot stream afterwards.
//
// Cluster mode (`trico_cli cluster <graph-spec>`) runs the WorkerSupervisor
// demo: spawns N supervised serve workers (of this same binary), routes
// --requests requests across them, and reports supervisor stats.
//
// Coordinator HA (`trico_cli coordinator --lease FILE --journal DIR
// [--standby] [--ha-ttl MS]`) runs one node of an active/standby pair over
// a shared lease file and exactly-once response journal (docs/cluster.md
// "Failover"): the standby answers clients with a kNotLeader redirect,
// tails the journal, and promotes itself — bumping the fencing epoch — when
// the active misses its lease TTL. Workers get --lease forwarded so they
// reject scatter frames from a deposed leader. Clients reach the pair with
// repeated `client --endpoint H:P` flags.
//
// `trico_cli version` prints the detected CPU features and the ISA level
// the hybrid engine's intersection kernels will dispatch to (honouring a
// TRICO_FORCE_ISA override), then exits.
//
// Store mode (docs/storage.md): batch and serve accept `--store DIR` to
// enable the persistent artifact store — preprocessed graphs are published
// to DIR and mmapped back on later runs, skipping the preprocess.
// `trico_cli prewarm --store DIR <graph-spec>...` builds and publishes
// artifacts ahead of serving; `trico_cli inspect (--store DIR | <file.tpg>)`
// prints artifact headers (key, sections, bytes) after verifying checksums.
//
// Exit status 0 on success; the triangle count goes to stdout.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/clustering.hpp"
#include "core/gpu_forward.hpp"
#include "cpu/counting.hpp"
#include "cpu/simd/cpu_features.hpp"
#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "multigpu/multi_gpu.hpp"
#include "service/service.hpp"
#include "cluster/coordinator.hpp"
#include "cluster/ha/lease.hpp"
#include "cluster/ha/node.hpp"
#include "store/artifact.hpp"
#include "store/store.hpp"
#include "transport/client.hpp"
#include "transport/server.hpp"
#include "transport/supervisor.hpp"
#include "util/io.hpp"
#include "util/timer.hpp"

namespace {

using namespace trico;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--algorithm A] [--device D] [--devices N] [--binary]\n"
               "       [--clustering] [--stats] (<graph-file> | --rmat "
               "<scale>)\n"
               "       " << argv0
            << " batch [--workers N] [--queue N] [--tenant-cap N]\n"
               "       [--backend B] [--objective O] [--catalog-mb N] "
               "[--device D] <script-file>\n"
               "       " << argv0
            << " serve [--port N] [--workers N] [--queue N] [--device D]\n"
               "       [--lease FILE] [--seed S]\n"
               "       [--chaos-seed S] [--chaos-torn R] [--chaos-reset R] "
               "[--chaos-delay R]\n"
               "       [--chaos-max-delay MS] [--chaos-kill R]\n"
               "       " << argv0
            << " client (--port N | --endpoint H:P ...) [--host H] "
               "[--repeat N] [--same-id]\n"
               "       [--tenant T] [--op OP] [--backend B] [--attempts N] "
               "[--seed S]\n"
               "       [--metrics] <graph-spec>\n"
               "       " << argv0
            << " cluster [--workers N] [--requests N] [--seed S] "
               "[--chaos-* ...] <graph-spec>\n"
               "       " << argv0
            << " coordinator [--port N] [--workers N] [--queue N] "
               "[--plan-workers N]\n"
               "       [--scatter-edges N] [--shards N] [--tenant-cap N] "
               "[--store DIR]\n"
               "       [--lease FILE --journal DIR] [--standby] "
               "[--ha-ttl MS] [--seed S]\n"
               "       [--device D] [--chaos-* ...]   (docs/cluster.md)\n"
               "       " << argv0
            << " prewarm --store DIR <graph-spec>...\n"
               "       " << argv0
            << " inspect (--store DIR | <artifact.tpg>)\n"
               "       " << argv0 << " version\n"
               "batch/serve also accept --store DIR (persistent artifact "
               "store, docs/storage.md)\n";
  std::exit(2);
}

// -- version ---------------------------------------------------------------

/// Prints the CPU feature probe and the ISA level the engine's intersection
/// kernels resolve to (TRICO_FORCE_ISA > EngineOptions request > best
/// detected, clamped down so an unsupported request can never dispatch).
int run_version() {
  const cpu::simd::CpuFeatures features = cpu::simd::detect_cpu_features();
  std::cout << "trico_cli (triangle counting, Polak IPDPSW'16 reproduction)\n"
            << "cpu features: [" << features.to_string() << "]\n"
            << "engine isa:   " << to_string(cpu::simd::resolve_isa())
            << (std::getenv("TRICO_FORCE_ISA") ? " (TRICO_FORCE_ISA)" : "")
            << "\n";
  return 0;
}

simt::DeviceConfig parse_device(const std::string& name) {
  if (name == "c2050") return simt::DeviceConfig::tesla_c2050();
  if (name == "gtx980") return simt::DeviceConfig::gtx_980();
  if (name == "nvs5200m") return simt::DeviceConfig::nvs_5200m();
  throw std::invalid_argument("unknown device: " + name);
}

service::Backend parse_backend(const std::string& name) {
  if (name == "cpu") return service::Backend::kCpuHybrid;
  if (name == "gpu") return service::Backend::kGpu;
  if (name == "multigpu") return service::Backend::kMultiGpu;
  if (name == "outofcore") return service::Backend::kOutOfCore;
  if (name == "auto") return service::Backend::kAuto;
  throw std::invalid_argument("unknown backend: " + name);
}

service::Operation parse_operation(const std::string& name) {
  if (name == "count") return service::Operation::kCount;
  if (name == "clustering") return service::Operation::kClustering;
  if (name == "truss") return service::Operation::kTruss;
  throw std::invalid_argument("unknown operation: " + name);
}

/// Loads one graph-spec (`rmat:<scale>` or a file path; *.trico = binary).
EdgeList load_spec(const std::string& spec, std::uint64_t seed = 1) {
  if (spec.rfind("rmat:", 0) == 0) {
    gen::RmatParams params;
    params.scale = static_cast<unsigned>(std::stoul(spec.substr(5)));
    return gen::rmat(params, seed == 0 ? 1 : seed);
  }
  if (spec.size() > 6 && spec.compare(spec.size() - 6, 6, ".trico") == 0) {
    return service::GraphCatalog::load_graph_file(spec);
  }
  return io::read_text_file(spec);
}

struct BatchQuery {
  std::string spec;
  std::string tenant;  ///< empty = the anonymous default tenant
  service::Operation op = service::Operation::kCount;
};

int run_batch(int argc, char** argv) {
  std::size_t workers = 2, queue = 256, tenant_cap = 0;
  std::uint64_t catalog_mb = 1024;
  service::Backend backend = service::Backend::kAuto;
  service::RouteObjective objective = service::RouteObjective::kWallClock;
  std::string device_name = "gtx980";
  std::string store_root;
  std::string script_path;
  std::uint64_t seed = 1;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--workers") {
      workers = std::stoul(next());
    } else if (arg == "--queue") {
      queue = std::stoul(next());
    } else if (arg == "--tenant-cap") {
      tenant_cap = std::stoul(next());
    } else if (arg == "--backend") {
      backend = parse_backend(next());
    } else if (arg == "--objective") {
      const std::string o = next();
      if (o == "wall") {
        objective = service::RouteObjective::kWallClock;
      } else if (o == "modeled") {
        objective = service::RouteObjective::kModeledDevice;
      } else {
        throw std::invalid_argument("unknown objective: " + o);
      }
    } else if (arg == "--catalog-mb") {
      catalog_mb = std::stoull(next());
    } else if (arg == "--store") {
      store_root = next();
    } else if (arg == "--device") {
      device_name = next();
    } else if (arg == "--seed") {
      // Seeds rmat: graph generation so a scripted storm is bit-identical
      // across runs (batch mode makes no outgoing connections).
      seed = std::stoull(next());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
    } else {
      script_path = arg;
    }
  }
  if (script_path.empty()) usage(argv[0]);

  std::ifstream script(script_path);
  if (!script) {
    std::cerr << "error: cannot open script " << script_path << "\n";
    return 1;
  }
  std::vector<BatchQuery> queries;
  std::string line;
  while (std::getline(script, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    BatchQuery query;
    if (!(fields >> query.spec)) continue;  // blank / comment-only line
    if (query.spec.rfind("tenant:", 0) == 0) {
      query.tenant = query.spec.substr(7);
      if (!(fields >> query.spec)) continue;  // tenant prefix, no query
    }
    std::string op;
    if (fields >> op) query.op = parse_operation(op);
    queries.push_back(std::move(query));
  }

  // Load each distinct spec once; the catalog also dedups by content.
  std::map<std::string, std::shared_ptr<const EdgeList>> graphs;
  for (const BatchQuery& query : queries) {
    if (graphs.count(query.spec)) continue;
    graphs[query.spec] =
        std::make_shared<const EdgeList>(load_spec(query.spec, seed));
  }

  service::ServiceOptions options;
  options.scheduler.workers = workers;
  options.scheduler.queue_capacity = queue;
  options.scheduler.per_tenant_queue_cap = tenant_cap;
  options.catalog.byte_budget = catalog_mb << 20;
  options.catalog.store.root = store_root;
  options.router.device = parse_device(device_name);
  service::TriangleService svc(options);

  util::Timer timer;
  std::vector<service::Ticket> tickets;
  tickets.reserve(queries.size());
  for (const BatchQuery& query : queries) {
    service::Request request;
    request.graph = graphs[query.spec];
    request.op = query.op;
    request.backend = backend;
    request.objective = objective;
    request.tenant_id = query.tenant;
    tickets.push_back(svc.submit(request));
  }
  int failed = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const service::Response& r = tickets[i].wait();
    if (!queries[i].tenant.empty()) {
      std::cout << "tenant:" << queries[i].tenant << " ";
    }
    std::cout << queries[i].spec << " " << to_string(queries[i].op) << " "
              << to_string(r.status);
    if (r.status == service::Status::kOk) {
      switch (queries[i].op) {
        case service::Operation::kCount:
          std::cout << " triangles=" << r.triangles;
          break;
        case service::Operation::kClustering:
          std::cout << " clustering=" << r.clustering
                    << " transitivity=" << r.transitivity;
          break;
        case service::Operation::kTruss:
          std::cout << " max_trussness=" << r.max_trussness;
          break;
      }
      std::cout << " backend=" << to_string(r.backend)
                << " hit=" << (r.catalog_hit ? 1 : 0);
      if (r.degraded) std::cout << " degraded=1";
    } else {
      ++failed;
      std::cout << " reason=\"" << r.reason << "\"";
    }
    std::cout << " queue_ms=" << r.queue_ms << " exec_ms=" << r.execute_ms
              << "\n";
  }
  std::cerr << "batch wall time: " << timer.elapsed_ms() << " ms, "
            << queries.size() << " queries\n"
            << svc.metrics().to_string();
  return failed == 0 ? 0 : 1;
}

// -- prewarm / inspect -----------------------------------------------------

/// Builds artifacts ahead of serving: for each graph-spec, load → preprocess
/// → publish to the store, so the next `batch`/`serve` run with the same
/// --store maps them instead of preprocessing.
int run_prewarm(int argc, char** argv) {
  std::string store_root;
  std::vector<std::string> specs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--store") {
      store_root = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown prewarm option: " << arg << "\n";
      usage(argv[0]);
    } else {
      specs.push_back(arg);
    }
  }
  if (store_root.empty() || specs.empty()) usage(argv[0]);

  store::StoreOptions store_options;
  store_options.root = store_root;
  store::ArtifactStore store(store_options);
  prim::ThreadPool& pool = prim::ThreadPool::shared();

  int failed = 0;
  for (const std::string& spec : specs) {
    try {
      util::Timer timer;
      const EdgeList graph = load_spec(spec);
      const std::uint64_t key = store::edge_list_key(graph);
      if (auto mapped = store.find(key)) {
        std::cerr << spec << ": already published (key="
                  << mapped->content_key() << ", "
                  << mapped->mapped_bytes() << " bytes)\n";
        continue;
      }
      const GraphStats stats = compute_stats(graph);
      const cpu::PreparedGraph prepared = cpu::prepare(graph, pool);
      const auto mapped = store.publish(key, prepared, stats);
      if (mapped == nullptr) {
        std::cerr << spec << ": publish failed\n";
        ++failed;
        continue;
      }
      std::cerr << spec << ": published key=" << key << " ("
                << mapped->mapped_bytes() << " bytes, "
                << timer.elapsed_ms() << " ms) -> "
                << store.prepared_path(key) << "\n";
    } catch (const std::exception& error) {
      std::cerr << spec << ": error: " << error.what() << "\n";
      ++failed;
    }
  }
  return failed == 0 ? 0 : 1;
}

void print_artifact(const std::string& path) {
  const auto mapped = store::open_prepared_artifact(path);
  const store::ArtifactHeader& h = mapped->header();
  const GraphStats& stats = mapped->graph_stats();
  std::cout << path << "\n"
            << "  key=0x" << std::hex << h.content_key << std::dec
            << " version=" << h.version
            << " payload=" << h.payload_bytes << " bytes"
            << " (mapped " << mapped->mapped_bytes() << ")\n"
            << "  graph: n=" << stats.num_vertices
            << " m=" << stats.num_edges
            << " max_deg=" << stats.max_degree << "\n"
            << "  sections: offsets=" << h.num_offsets
            << " neighbors=" << h.num_neighbors
            << " new_to_old=" << h.num_new_to_old
            << " bitmap_rows=" << h.num_bitmap_rows
            << " bitmap_offsets=" << h.num_bitmap_offsets
            << " bitmap_words=" << h.num_bitmap_words << "\n"
            << "  checksums: payload=0x" << std::hex << h.payload_checksum
            << " header=0x" << h.header_checksum << std::dec
            << " (verified)\n";
}

/// Prints verified artifact headers: every `.tpg` under --store DIR, or a
/// single artifact file given directly.
int run_inspect(int argc, char** argv) {
  std::string store_root;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--store") {
      store_root = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown inspect option: " << arg << "\n";
      usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  if (!store_root.empty()) {
    for (const auto& entry : std::filesystem::directory_iterator(store_root)) {
      if (entry.path().extension() == ".tpg") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  }
  if (files.empty()) {
    if (store_root.empty()) usage(argv[0]);
    std::cout << "no artifacts under " << store_root << "\n";
    return 0;
  }
  int failed = 0;
  for (const std::string& file : files) {
    try {
      print_artifact(file);
    } catch (const store::StoreError& error) {
      std::cout << file << "\n  UNREADABLE: " << error.what() << "\n";
      ++failed;
    }
  }
  return failed == 0 ? 0 : 1;
}

// -- serve -----------------------------------------------------------------

/// SIGTERM/SIGINT land here; the handler only writes a byte to the
/// self-pipe (async-signal-safe) and the main thread does the drain.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

int run_serve(int argc, char** argv) {
  std::size_t workers = 2, queue = 256;
  std::uint64_t catalog_mb = 1024;
  std::uint16_t port = 0;
  std::string device_name = "gtx980";
  std::string store_root;
  std::string lease_path;
  std::uint64_t chaos_seed = 0;
  service::ChaosPlan::RandomOptions chaos_opts;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--workers") {
      workers = std::stoul(next());
    } else if (arg == "--queue") {
      queue = std::stoul(next());
    } else if (arg == "--catalog-mb") {
      catalog_mb = std::stoull(next());
    } else if (arg == "--store") {
      store_root = next();
    } else if (arg == "--device") {
      device_name = next();
    } else if (arg == "--lease") {
      lease_path = next();
    } else if (arg == "--seed") {
      // Accepted for arg-forwarding uniformity (HA coordinators forward
      // their flag set to workers); serve makes no outgoing connections.
      (void)next();
    } else if (arg == "--chaos-seed") {
      chaos_seed = std::stoull(next());
    } else if (arg == "--chaos-torn") {
      chaos_opts.torn_frame_rate = std::stod(next());
    } else if (arg == "--chaos-reset") {
      chaos_opts.conn_reset_rate = std::stod(next());
    } else if (arg == "--chaos-delay") {
      chaos_opts.wire_delay_rate = std::stod(next());
    } else if (arg == "--chaos-max-delay") {
      chaos_opts.max_wire_delay_ms = std::stod(next());
    } else if (arg == "--chaos-kill") {
      chaos_opts.worker_kill_rate = std::stod(next());
    } else {
      std::cerr << "unknown serve option: " << arg << "\n";
      usage(argv[0]);
    }
  }

  service::ChaosPlan chaos;
  service::ServiceOptions options;
  options.scheduler.workers = workers;
  options.scheduler.queue_capacity = queue;
  options.catalog.byte_budget = catalog_mb << 20;
  options.catalog.store.root = store_root;
  options.router.device = parse_device(device_name);
  transport::ServerOptions server_options;
  server_options.port = port;
  if (chaos_seed != 0) {
    chaos.randomize(chaos_seed, chaos_opts);
    options.chaos = &chaos;
    server_options.chaos = &chaos;
  }
  if (!lease_path.empty()) {
    // Worker-side fencing: the epoch floor is the lease file's current
    // epoch (re-peeked at most every 50 ms; the Server additionally keeps
    // a monotonic high-water mark of epochs seen on the wire). A scatter
    // frame stamped below the floor is from a deposed coordinator.
    auto cached = std::make_shared<std::atomic<std::uint64_t>>(0);
    auto last_peek_ms = std::make_shared<std::atomic<std::int64_t>>(-1000);
    server_options.fence_epoch = [lease_path, cached, last_peek_ms] {
      const std::int64_t now =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      std::int64_t last = last_peek_ms->load(std::memory_order_acquire);
      if (now - last >= 50 &&
          last_peek_ms->compare_exchange_strong(last, now)) {
        if (const auto record = cluster::ha::LeaseFile::peek(lease_path)) {
          std::uint64_t seen = cached->load(std::memory_order_acquire);
          while (record->epoch > seen &&
                 !cached->compare_exchange_weak(seen, record->epoch)) {
          }
        }
      }
      return cached->load(std::memory_order_acquire);
    };
  }

  service::TriangleService svc(options);
  transport::Server server(svc, server_options);

  if (::pipe(g_signal_pipe) < 0) {
    std::cerr << "error: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  std::signal(SIGTERM, on_terminate_signal);
  std::signal(SIGINT, on_terminate_signal);

  server.start();
  // The supervisor's spawn handshake: exactly one LISTENING line, nothing
  // else ever goes to stdout in serve mode.
  std::cout << "LISTENING " << server.port() << "\n" << std::flush;
  std::cerr << "trico_cli serve: pid " << ::getpid() << " port "
            << server.port() << "\n";

  char byte = 0;
  (void)util::io::read_full(g_signal_pipe[0], &byte, 1);
  std::cerr << "trico_cli serve: draining\n";
  server.drain();
  server.stop();
  const transport::ServerStats stats = server.stats();
  std::cerr << "trico_cli serve: done (" << stats.requests << " requests, "
            << stats.duplicates << " duplicates, " << stats.drained_rejects
            << " drained)\n";
  return 0;
}

// -- client ----------------------------------------------------------------

int run_client(int argc, char** argv) {
  transport::ClientOptions copts;
  std::string spec, tenant, op_name = "count", backend_name = "auto";
  int repeat = 1;
  bool metrics = false;
  bool same_id = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--host") {
      copts.host = next();
    } else if (arg == "--port") {
      copts.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--endpoint") {
      // Repeatable H:P pairs — the multi-endpoint failover set (HA
      // coordinator pairs). Supersedes --host/--port when given.
      const std::string value = next();
      const std::size_t colon = value.rfind(':');
      if (colon == std::string::npos || colon + 1 >= value.size()) {
        std::cerr << "bad --endpoint (want host:port): " << value << "\n";
        usage(argv[0]);
      }
      transport::Endpoint endpoint;
      endpoint.host = value.substr(0, colon);
      endpoint.port =
          static_cast<std::uint16_t>(std::stoul(value.substr(colon + 1)));
      copts.endpoints.push_back(std::move(endpoint));
    } else if (arg == "--seed") {
      copts.seed = std::stoull(next());
    } else if (arg == "--same-id") {
      // Reuse one request id across --repeat sends: the later sends must
      // replay the recorded response (dedup/journal), not re-execute.
      same_id = true;
    } else if (arg == "--repeat") {
      repeat = std::stoi(next());
    } else if (arg == "--tenant") {
      tenant = next();
    } else if (arg == "--op") {
      op_name = next();
    } else if (arg == "--backend") {
      backend_name = next();
    } else if (arg == "--attempts") {
      copts.max_attempts = std::stoi(next());
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown client option: " << arg << "\n";
      usage(argv[0]);
    } else {
      spec = arg;
    }
  }
  if (spec.empty() || (copts.port == 0 && copts.endpoints.empty())) {
    usage(argv[0]);
  }

  transport::Client client(copts);
  service::Request request;
  request.graph = std::make_shared<const EdgeList>(load_spec(spec));
  request.op = parse_operation(op_name);
  request.backend = parse_backend(backend_name);
  request.tenant_id = tenant;

  int failed = 0;
  for (int i = 0; i < repeat; ++i) {
    util::Timer timer;
    const service::Response r =
        same_id ? client.execute_with_id(request, 1)
                : client.execute(request);
    std::cerr << spec << " " << to_string(r.status);
    if (r.status == service::Status::kOk) {
      std::cerr << " backend=" << to_string(r.backend)
                << " hit=" << (r.catalog_hit ? 1 : 0);
    } else {
      ++failed;
      std::cerr << " reason=\"" << r.reason << "\"";
    }
    std::cerr << " rtt_ms=" << timer.elapsed_ms() << "\n";
    if (i + 1 == repeat && r.status == service::Status::kOk) {
      switch (request.op) {
        case service::Operation::kCount:
          std::cout << r.triangles << "\n";
          break;
        case service::Operation::kClustering:
          std::cout << r.clustering << " " << r.transitivity << "\n";
          break;
        case service::Operation::kTruss:
          std::cout << r.max_trussness << "\n";
          break;
      }
    }
  }
  if (metrics) std::cerr << client.fetch_metrics();
  return failed == 0 ? 0 : 1;
}

// -- cluster ---------------------------------------------------------------

int run_cluster(int argc, char** argv) {
  transport::SupervisorOptions sopts;
  sopts.cli_path = "/proc/self/exe";
  std::string spec;
  int requests = 16;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--workers") {
      sopts.num_workers = std::stoi(next());
    } else if (arg == "--requests") {
      requests = std::stoi(next());
    } else if (arg == "--seed") {
      // Deterministic backoff jitter for the supervisor's worker clients
      // (each slot derives seed+index) — seeded chaos storms reproduce.
      sopts.client.seed = std::stoull(next());
    } else if (arg.rfind("--chaos-", 0) == 0) {
      // Forwarded verbatim to every worker's serve command line.
      sopts.worker_args.push_back(arg);
      sopts.worker_args.push_back(next());
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown cluster option: " << arg << "\n";
      usage(argv[0]);
    } else {
      spec = arg;
    }
  }
  if (spec.empty()) usage(argv[0]);

  transport::WorkerSupervisor supervisor(sopts);
  supervisor.start();

  service::Request request;
  request.graph = std::make_shared<const EdgeList>(load_spec(spec));

  util::Timer timer;
  int failed = 0;
  TriangleCount triangles = 0;
  for (int i = 0; i < requests; ++i) {
    try {
      const service::Response r = supervisor.execute(request);
      if (r.status == service::Status::kOk) {
        triangles = r.triangles;
      } else {
        ++failed;
        std::cerr << "request " << i << ": " << to_string(r.status)
                  << " reason=\"" << r.reason << "\"\n";
      }
    } catch (const transport::TransportError& error) {
      ++failed;
      std::cerr << "request " << i << ": " << error.what() << "\n";
    }
  }
  const transport::SupervisorStats stats = supervisor.stats();
  std::cerr << "cluster: " << requests << " requests in "
            << timer.elapsed_ms() << " ms, " << failed << " failed, "
            << stats.restarts << " worker restarts, " << stats.reroutes
            << " reroutes, " << stats.heartbeat_faults
            << " heartbeat faults\n";
  supervisor.stop();
  std::cout << triangles << "\n";
  return failed == 0 ? 0 : 1;
}

// -- coordinator -----------------------------------------------------------

int run_coordinator(int argc, char** argv) {
  cluster::CoordinatorOptions copts;
  copts.supervisor.cli_path = "/proc/self/exe";
  transport::ServerOptions server_options;
  std::string lease_path, journal_dir;
  double ha_ttl_ms = 1000;
  bool standby = false;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--port") {
      server_options.port = static_cast<std::uint16_t>(std::stoul(next()));
    } else if (arg == "--workers") {
      copts.supervisor.num_workers = std::stoi(next());
    } else if (arg == "--queue") {
      copts.scheduler.queue_capacity = std::stoul(next());
    } else if (arg == "--plan-workers") {
      copts.scheduler.workers = std::stoul(next());
    } else if (arg == "--scatter-edges") {
      copts.scatter_edge_threshold = std::stoull(next());
    } else if (arg == "--shards") {
      copts.max_shards = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--tenant-cap") {
      copts.tenant_inflight_cap = std::stoul(next());
    } else if (arg == "--lease") {
      lease_path = next();
    } else if (arg == "--journal") {
      journal_dir = next();
    } else if (arg == "--ha-ttl") {
      ha_ttl_ms = std::stod(next());
    } else if (arg == "--standby") {
      standby = true;
    } else if (arg == "--seed") {
      // Deterministic backoff jitter for the pool's worker clients.
      copts.supervisor.client.seed = std::stoull(next());
    } else if (arg == "--store" || arg == "--device" ||
               arg.rfind("--chaos-", 0) == 0) {
      // Forwarded verbatim to every worker's serve command line: the
      // coordinator itself never prepares graphs, workers do.
      copts.supervisor.worker_args.push_back(arg);
      copts.supervisor.worker_args.push_back(next());
    } else {
      std::cerr << "unknown coordinator option: " << arg << "\n";
      usage(argv[0]);
    }
  }
  const bool ha_mode = !lease_path.empty();
  if (ha_mode && journal_dir.empty()) {
    std::cerr << "error: --lease requires --journal DIR (the exactly-once "
                 "journal)\n";
    usage(argv[0]);
  }
  if (ha_mode) {
    // Workers fence: give every serve process the lease path so it can
    // reject scatter frames stamped with a deposed leader's epoch.
    copts.supervisor.worker_args.push_back("--lease");
    copts.supervisor.worker_args.push_back(lease_path);
  }

  std::unique_ptr<cluster::Coordinator> coordinator;
  std::unique_ptr<cluster::ha::HaCoordinator> ha;
  if (ha_mode) {
    cluster::ha::HaNodeOptions hopts;
    hopts.coordinator = copts;
    hopts.lease_path = lease_path;
    hopts.journal_dir = journal_dir;
    hopts.lease_ttl_ms = ha_ttl_ms;
    hopts.standby = standby;
    ha = std::make_unique<cluster::ha::HaCoordinator>(std::move(hopts));
    server_options.journal = &ha->journal();
    server_options.leadership = [node = ha.get()] {
      return node->leader_view();
    };
  } else {
    coordinator = std::make_unique<cluster::Coordinator>(copts);
  }
  transport::RequestSink& sink =
      ha_mode ? static_cast<transport::RequestSink&>(*ha)
              : static_cast<transport::RequestSink&>(*coordinator);

  if (::pipe(g_signal_pipe) < 0) {
    std::cerr << "error: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  std::signal(SIGTERM, on_terminate_signal);
  std::signal(SIGINT, on_terminate_signal);

  if (ha_mode) {
    ha->start();  // warm pool + journal tail + lease loop
  } else {
    coordinator->start();
  }
  transport::Server server(sink, server_options);
  server.start();
  if (ha_mode) ha->set_advertised_port(server.port());
  // Same spawn handshake as serve mode: exactly one LISTENING line on
  // stdout, so scripts (and CI) can address the cluster like one server.
  std::cout << "LISTENING " << server.port() << "\n" << std::flush;
  std::cerr << "trico_cli coordinator: pid " << ::getpid() << " port "
            << server.port() << " workers " << copts.supervisor.num_workers
            << (ha_mode ? (standby ? " role standby" : " role active") : "")
            << "\n";

  char byte = 0;
  (void)util::io::read_full(g_signal_pipe[0], &byte, 1);
  std::cerr << "trico_cli coordinator: draining\n";
  server.drain();
  server.stop();
  cluster::Coordinator& inner = ha_mode ? ha->coordinator() : *coordinator;
  const cluster::CoordinatorStats cstats = inner.stats();
  std::cerr << sink.metrics_text();
  std::cerr << "trico_cli coordinator: done (" << cstats.affinity_requests
            << " affinity, " << cstats.scatter_requests << " scatter, "
            << cstats.shard_subrequests << " shard subrequests, "
            << cstats.rescatters << " rescatters, " << cstats.failovers
            << " failovers, " << cstats.batched_dispatches << " batched)\n";
  if (ha_mode) {
    const cluster::ha::HaStats hstats = ha->stats();
    std::cerr << "trico_cli coordinator: ha leading="
              << (hstats.leading ? 1 : 0) << " epoch=" << hstats.epoch
              << " promotions=" << hstats.promotions
              << " demotions=" << hstats.demotions
              << " journal_appends=" << hstats.journal.appends
              << " journal_replays=" << hstats.journal.replays << "\n";
    ha->stop();
  } else {
    coordinator->stop();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const std::string mode = argv[1];
    try {
      if (mode == "batch") return run_batch(argc, argv);
      if (mode == "serve") return run_serve(argc, argv);
      if (mode == "client") return run_client(argc, argv);
      if (mode == "cluster") return run_cluster(argc, argv);
      if (mode == "coordinator") return run_coordinator(argc, argv);
      if (mode == "prewarm") return run_prewarm(argc, argv);
      if (mode == "inspect") return run_inspect(argc, argv);
      if (mode == "version") return run_version();
    } catch (const std::exception& error) {
      std::cerr << "error: " << error.what() << "\n";
      return 1;
    }
  }

  std::string algorithm = "gpu";
  std::string device_name = "gtx980";
  std::string path;
  unsigned devices = 4;
  int rmat_scale = -1;
  bool binary = false, clustering = false, stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--algorithm") {
      algorithm = next();
    } else if (arg == "--device") {
      device_name = next();
    } else if (arg == "--devices") {
      devices = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--rmat") {
      rmat_scale = std::stoi(next());
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--clustering") {
      clustering = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty() && rmat_scale < 0) usage(argv[0]);

  try {
    EdgeList graph;
    if (rmat_scale >= 0) {
      gen::RmatParams params;
      params.scale = static_cast<unsigned>(rmat_scale);
      graph = gen::rmat(params, 1);
    } else {
      graph = binary ? io::read_binary_file(path) : io::read_text_file(path);
    }
    if (stats) std::cerr << compute_stats(graph) << "\n";

    util::Timer timer;
    TriangleCount triangles = 0;
    double modeled_ms = -1.0;
    if (algorithm == "cpu-forward") {
      triangles = cpu::count_forward(graph);
    } else if (algorithm == "cpu-edge-iterator") {
      triangles = cpu::count_edge_iterator(graph);
    } else if (algorithm == "cpu-node-iterator") {
      triangles = cpu::count_node_iterator(graph);
    } else if (algorithm == "cpu-compact-forward") {
      triangles = cpu::count_compact_forward(graph);
    } else if (algorithm == "cpu-hashed") {
      triangles = cpu::count_forward_hashed(graph);
    } else if (algorithm == "gpu") {
      const auto result =
          core::count_triangles_gpu(graph, parse_device(device_name));
      triangles = result.triangles;
      modeled_ms = result.phases.total_ms();
    } else if (algorithm == "multigpu") {
      multigpu::MultiGpuCounter counter(parse_device(device_name), devices);
      const auto result = counter.count(graph);
      triangles = result.triangles;
      modeled_ms = result.total_ms();
    } else {
      std::cerr << "unknown algorithm: " << algorithm << "\n";
      usage(argv[0]);
    }

    std::cerr << "wall time: " << timer.elapsed_ms() << " ms";
    if (modeled_ms >= 0) std::cerr << " (modeled device time: " << modeled_ms << " ms)";
    std::cerr << "\n";
    std::cout << triangles << "\n";

    if (clustering) {
      std::cerr << "global clustering: " << analysis::global_clustering(graph)
                << "\ntransitivity:      " << analysis::transitivity(graph)
                << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
