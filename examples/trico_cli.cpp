// trico_cli — command-line triangle counter, modeled on the tool the
// paper's artifact repository ships.
//
// Usage:
//   trico_cli [options] <graph-file>
//   trico_cli [options] --rmat <scale>
//
// Options:
//   --algorithm A   cpu-forward | cpu-edge-iterator | cpu-node-iterator |
//                   cpu-compact-forward | cpu-hashed | gpu | multigpu
//                   (default: gpu)
//   --device D      c2050 | gtx980 | nvs5200m   (default: gtx980)
//   --devices N     device count for multigpu   (default: 4)
//   --binary        input file is trico binary format (default: SNAP text)
//   --clustering    also print global clustering / transitivity
//   --stats         print graph statistics before counting
//
// Exit status 0 on success; the triangle count goes to stdout.

#include <cstring>
#include <iostream>
#include <string>

#include "analysis/clustering.hpp"
#include "core/gpu_forward.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "multigpu/multi_gpu.hpp"
#include "util/timer.hpp"

namespace {

using namespace trico;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--algorithm A] [--device D] [--devices N] [--binary]\n"
               "       [--clustering] [--stats] (<graph-file> | --rmat "
               "<scale>)\n";
  std::exit(2);
}

simt::DeviceConfig parse_device(const std::string& name) {
  if (name == "c2050") return simt::DeviceConfig::tesla_c2050();
  if (name == "gtx980") return simt::DeviceConfig::gtx_980();
  if (name == "nvs5200m") return simt::DeviceConfig::nvs_5200m();
  throw std::invalid_argument("unknown device: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  std::string algorithm = "gpu";
  std::string device_name = "gtx980";
  std::string path;
  unsigned devices = 4;
  int rmat_scale = -1;
  bool binary = false, clustering = false, stats = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--algorithm") {
      algorithm = next();
    } else if (arg == "--device") {
      device_name = next();
    } else if (arg == "--devices") {
      devices = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--rmat") {
      rmat_scale = std::stoi(next());
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "--clustering") {
      clustering = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage(argv[0]);
    } else {
      path = arg;
    }
  }
  if (path.empty() && rmat_scale < 0) usage(argv[0]);

  try {
    EdgeList graph;
    if (rmat_scale >= 0) {
      gen::RmatParams params;
      params.scale = static_cast<unsigned>(rmat_scale);
      graph = gen::rmat(params, 1);
    } else {
      graph = binary ? io::read_binary_file(path) : io::read_text_file(path);
    }
    if (stats) std::cerr << compute_stats(graph) << "\n";

    util::Timer timer;
    TriangleCount triangles = 0;
    double modeled_ms = -1.0;
    if (algorithm == "cpu-forward") {
      triangles = cpu::count_forward(graph);
    } else if (algorithm == "cpu-edge-iterator") {
      triangles = cpu::count_edge_iterator(graph);
    } else if (algorithm == "cpu-node-iterator") {
      triangles = cpu::count_node_iterator(graph);
    } else if (algorithm == "cpu-compact-forward") {
      triangles = cpu::count_compact_forward(graph);
    } else if (algorithm == "cpu-hashed") {
      triangles = cpu::count_forward_hashed(graph);
    } else if (algorithm == "gpu") {
      const auto result =
          core::count_triangles_gpu(graph, parse_device(device_name));
      triangles = result.triangles;
      modeled_ms = result.phases.total_ms();
    } else if (algorithm == "multigpu") {
      multigpu::MultiGpuCounter counter(parse_device(device_name), devices);
      const auto result = counter.count(graph);
      triangles = result.triangles;
      modeled_ms = result.total_ms();
    } else {
      std::cerr << "unknown algorithm: " << algorithm << "\n";
      usage(argv[0]);
    }

    std::cerr << "wall time: " << timer.elapsed_ms() << " ms";
    if (modeled_ms >= 0) std::cerr << " (modeled device time: " << modeled_ms << " ms)";
    std::cerr << "\n";
    std::cout << triangles << "\n";

    if (clustering) {
      std::cerr << "global clustering: " << analysis::global_clustering(graph)
                << "\ntransitivity:      " << analysis::transitivity(graph)
                << "\n";
    }
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
