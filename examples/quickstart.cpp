// Quickstart: count triangles in a graph three ways.
//
//   1. Load (or generate) a canonical undirected edge array.
//   2. Count on the CPU with the forward algorithm (the paper's baseline).
//   3. Count on a simulated GTX 980 with the paper's GPU pipeline and look
//      at the phase breakdown and kernel statistics.
//
// Usage:
//   quickstart                # generates a small R-MAT graph
//   quickstart graph.txt      # loads a SNAP-style text edge list

#include <iostream>

#include "core/gpu_forward.hpp"
#include "cpu/counting.hpp"
#include "gen/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace trico;

  // 1. Input: a canonical undirected edge array (every edge in both
  //    directions, no self-loops, no duplicates).
  EdgeList graph;
  if (argc > 1) {
    std::cout << "loading " << argv[1] << "...\n";
    graph = io::read_text_file(argv[1]);
  } else {
    std::cout << "generating an R-MAT graph (scale 14, edge factor 16)...\n";
    gen::RmatParams params;
    params.scale = 14;
    params.edge_factor = 16;
    graph = gen::rmat(params, /*seed=*/42);
  }
  std::cout << "graph: " << compute_stats(graph) << "\n\n";

  // 2. CPU forward algorithm — O(m sqrt m), the paper's baseline.
  util::Timer cpu_timer;
  const TriangleCount cpu_count = cpu::count_forward(graph);
  std::cout << "CPU forward:      " << cpu_count << " triangles in "
            << cpu_timer.elapsed_ms() << " ms (measured)\n";

  // 3. GPU pipeline on a simulated GeForce GTX 980.
  core::GpuCountResult gpu =
      core::count_triangles_gpu(graph, simt::DeviceConfig::gtx_980());
  std::cout << "GPU pipeline:     " << gpu.triangles << " triangles in "
            << gpu.phases.total_ms() << " ms (modeled)\n\n";

  if (gpu.triangles != cpu_count) {
    std::cerr << "BUG: GPU and CPU counts disagree!\n";
    return 1;
  }

  std::cout << "phase breakdown (modeled ms):\n"
            << "  host->device copy   " << gpu.phases.h2d_ms << "\n"
            << "  vertex count        " << gpu.phases.vertex_count_ms << "\n"
            << "  sort (u64 radix)    " << gpu.phases.sort_ms << "\n"
            << "  node array          " << gpu.phases.node_array_ms << "\n"
            << "  orientation         "
            << gpu.phases.mark_backward_ms + gpu.phases.remove_ms << "\n"
            << "  unzip (AoS->SoA)    " << gpu.phases.unzip_ms << "\n"
            << "  node array rebuild  " << gpu.phases.node_array2_ms << "\n"
            << "  counting kernel     " << gpu.phases.counting_ms << "\n"
            << "  reduce + copy back  "
            << gpu.phases.reduce_ms + gpu.phases.d2h_ms << "\n";

  std::cout << "\nkernel statistics:\n"
            << "  cache hit rate      " << 100.0 * gpu.kernel.cache_hit_rate()
            << " %\n"
            << "  DRAM bandwidth      " << gpu.kernel.achieved_bandwidth_gbps()
            << " GB/s\n"
            << "  warps executed      " << gpu.kernel.warps << "\n";
  return 0;
}
